"""Sharded sweep executor: crash-safety acceptance + dispatch overhead.

Two jobs, one file:

* Under pytest(-benchmark): time the executor's serial dispatch against a
  bare in-process loop over the same trials — the scheduling, checkpoint
  and capture plumbing must stay noise-level next to the simulation
  itself — and record the pooled fan-out for the same sweep.
* As a plain script (the CI job)::

      python benchmarks/bench_executor.py --smoke

  starts a real ``repro sweep`` in a subprocess with a checkpoint
  directory, SIGKILLs the whole process group mid-flight, re-runs the
  same command to completion, and asserts the merged result is
  bit-identical to an uninterrupted in-process reference — the
  kill-and-resume acceptance criterion.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.priority import PAPER_SERIES_ORDER
from repro.exec.checkpoint import CheckpointStore
from repro.exec.executor import SweepExecutor
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator
from repro.simulation.metrics import TrialMetrics
from repro.simulation.rng import generator_for_trial

# -- pytest-benchmark section -------------------------------------------------

_CFG = SimulationConfig(n_hosts=24, scheme="id", drain_model="fixed")
_TRIALS = 6
_SEED = 2001


def test_dispatch_overhead_serial(benchmark):
    """Executor (serial) vs bare loop: plumbing must be noise-level."""

    def bare() -> list[TrialMetrics]:
        return [
            LifespanSimulator(
                _CFG, rng=generator_for_trial(_SEED, t)
            ).run().metrics
            for t in range(_TRIALS)
        ]

    expected = bare()

    def through_executor():
        return SweepExecutor(processes=1).run(
            [("cell", _CFG)], _TRIALS, root_seed=_SEED
        )

    outcome = benchmark(through_executor)
    assert outcome.cell("cell") == expected


def test_pooled_fanout(benchmark):
    def pooled():
        return SweepExecutor(processes=4).run(
            [("cell", _CFG)], _TRIALS, root_seed=_SEED
        )

    outcome = benchmark.pedantic(pooled, rounds=3, iterations=1)
    assert len(outcome.cell("cell")) == _TRIALS


# -- CI smoke mode: kill a sweep mid-flight, resume, compare ------------------

_SMOKE_KNOB = "stability"
_SMOKE_VALUES = (0.3, 0.7)
_SMOKE_HOSTS = 24
_SMOKE_TRIALS = 4
_SMOKE_PROCS = 2


def _smoke_command(ck_dir: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "sweep", _SMOKE_KNOB,
        ",".join(str(v) for v in _SMOKE_VALUES),
        "--hosts", str(_SMOKE_HOSTS), "--trials", str(_SMOKE_TRIALS),
        "--seed", str(_SEED), "--processes", str(_SMOKE_PROCS),
        "--resume", ck_dir,
    ]


def _count_complete_lines(path: Path) -> int:
    if not path.exists():
        return 0
    n = 0
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        try:
            json.loads(line)
            n += 1
        except json.JSONDecodeError:
            pass
    return n


def _reference_cells() -> dict[str, list[TrialMetrics]]:
    """The uninterrupted result, computed in-process (same cell naming as
    :func:`repro.analysis.sweeps.sweep_parameter`)."""
    base = SimulationConfig(n_hosts=_SMOKE_HOSTS, drain_model="fixed")
    cells = [
        (
            f"{_SMOKE_KNOB}={value}/{scheme}",
            base.with_overrides(**{_SMOKE_KNOB: value, "scheme": scheme}),
        )
        for value in _SMOKE_VALUES
        for scheme in PAPER_SERIES_ORDER
    ]
    outcome = SweepExecutor(processes=_SMOKE_PROCS).run(
        cells, _SMOKE_TRIALS, root_seed=_SEED
    )
    return outcome.cells


def _smoke() -> int:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    total = len(_SMOKE_VALUES) * len(PAPER_SERIES_ORDER) * _SMOKE_TRIALS

    with tempfile.TemporaryDirectory() as d:
        ck = Path(d) / "ck"
        shard_file = ck / "shards.jsonl"

        # 1. start the sweep and SIGKILL its whole process group mid-flight
        proc = subprocess.Popen(
            _smoke_command(str(ck)), env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120.0
        try:
            while _count_complete_lines(shard_file) < 3:
                if proc.poll() is not None:
                    raise AssertionError(
                        "sweep finished before it could be killed; "
                        "raise the trial count"
                    )
                if time.monotonic() > deadline:
                    raise AssertionError("no shards appeared within 120s")
                time.sleep(0.02)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()
        before = shard_file.read_text(encoding="utf-8", errors="replace")
        n_before = _count_complete_lines(shard_file)
        print(f"killed sweep with {n_before}/{total} shards checkpointed")
        assert 0 < n_before < total, "kill landed outside the useful window"

        # 2. resume to completion with the identical command
        subprocess.run(
            _smoke_command(str(ck)), env=env, check=True,
            stdout=subprocess.DEVNULL, timeout=600,
        )

        # 3. pre-kill records must have been restored, not recomputed
        after = shard_file.read_text(encoding="utf-8", errors="replace")
        assert after.startswith(before.rsplit("\n", 1)[0]), (
            "resume rewrote the pre-kill shard log"
        )
        records = CheckpointStore(ck).load()
        assert len(records) == total, (
            f"expected {total} unique shards after resume, got {len(records)}"
        )

        # 4. merged result == uninterrupted in-process reference, bit for bit
        reference = _reference_cells()
        for rec in records.values():
            got = TrialMetrics.from_dict(rec["metrics"])
            want = reference[rec["cell"]][rec["trial"]]
            assert got == want, (
                f"shard {rec['cell']} trial {rec['trial']} diverged "
                "after kill/resume"
            )
    print(f"smoke ok: kill/resume of {total} shards is bit-identical")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="kill a checkpointed sweep mid-flight, resume, compare",
    )
    args = p.parse_args(argv)
    if not args.smoke:
        p.error("run under pytest for timings, or pass --smoke")
    return _smoke()


if __name__ == "__main__":
    sys.exit(main())
