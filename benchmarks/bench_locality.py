"""Locality of the marking process under mobility (supports the paper's
§2.2 locality claim — not a numbered figure).

After each mobility step, compares full marker recomputation against the
localized update (only the distance-1 ball around changed hosts), checking
equality and reporting how much work locality saves at the paper's
mobility parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.marking import marked_mask
from repro.geometry.space import Region2D
from repro.graphs.generators import random_connected_network
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk
from repro.protocol.locality import localized_recompute

from conftest import bench_seed


def _roll(n, intervals, rng, stability=0.5):
    net = random_connected_network(n, rng=rng)
    mgr = MobilityManager(
        net, PaperWalk(stability=stability), Region2D(side=net.side), rng=rng
    )
    old_adj = list(net.adjacency)
    marked = marked_mask(old_adj)
    recomputed = 0
    for _ in range(intervals):
        mgr.step()
        new_adj = list(net.adjacency)
        marked, touched = localized_recompute(old_adj, new_adj, marked)
        assert marked == marked_mask(new_adj)  # equality with full recompute
        recomputed += touched
        old_adj = new_adj
    return recomputed / (intervals * n)


def test_localized_update_savings(results_dir, capsys, benchmark):
    rng = np.random.default_rng(bench_seed())
    intervals = 30
    rows = []
    fractions = {}
    for n in (25, 50, 100):
        for stability, label in ((0.5, "paper c=0.5"), (0.95, "low mobility c=0.95")):
            frac = _roll(n, intervals, rng, stability=stability)
            fractions[(n, stability)] = frac
            rows.append([n, label, frac])
    table = render_table(
        ["N", "mobility", "fraction of markers recomputed"],
        rows,
        title=f"Marking locality ({intervals} intervals; full recompute = 1.0)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "locality_savings.txt").write_text(table + "\n")

    # with the paper's c = 0.5, half the hosts move every interval, so the
    # 1-hop ball covers nearly the whole network (an honest negative
    # result: locality pays off only when changes are sparse).  At low
    # mobility the saving must be real:
    for n in (25, 50, 100):
        assert fractions[(n, 0.95)] < fractions[(n, 0.5)] + 1e-9
    assert fractions[(100, 0.95)] < 0.9

    net = random_connected_network(100, rng=rng)
    old_adj = list(net.adjacency)
    marked = marked_mask(old_adj)
    mgr = MobilityManager(net, PaperWalk(), Region2D(side=net.side), rng=rng)
    mgr.step()
    new_adj = list(net.adjacency)
    benchmark(lambda: localized_recompute(old_adj, new_adj, marked))


def test_decision_radius_of_full_pipeline(results_dir, capsys, benchmark):
    """How far can one host's movement flip gateway statuses?

    The paper's locality claim covers the *marking* process (distance 1).
    The pruning rules consult neighbors' markers, and the Rule-2 waves
    can cascade, so the full pipeline's decision radius is larger — this
    bench measures its empirical distribution: hop distance (from the
    moved host) of every node whose final status changed after a single
    small move.
    """
    import numpy as np

    from repro.analysis.tables import render_table
    from repro.core.cds import compute_cds
    from repro.routing.shortest_path import bfs_distances

    rng = np.random.default_rng(bench_seed())
    by_distance: dict[int, int] = {}
    moves = flips_total = 0
    for _ in range(60):
        net = random_connected_network(40, rng=rng)
        before = compute_cds(net, "nd").status_vector()
        v = int(rng.integers(0, 40))
        step = rng.uniform(-6, 6, size=2)
        old_pos = net.positions[v].copy()
        net.move_host(v, np.clip(old_pos + step, 0, 100))
        if not net.is_connected():
            continue
        after = compute_cds(net, "nd").status_vector()
        dist = bfs_distances(net.adjacency, v)
        moves += 1
        for u in range(40):
            if before[u] != after[u]:
                d = dist[u] if dist[u] >= 0 else 99
                by_distance[d] = by_distance.get(d, 0) + 1
                flips_total += 1
    rows = [
        [d, count, count / flips_total]
        for d, count in sorted(by_distance.items())
    ]
    table = render_table(
        ["hop distance from moved host", "status flips", "fraction"],
        rows,
        title=(
            f"Decision radius of the full ND pipeline "
            f"({moves} single-host moves, {flips_total} flips)"
        ),
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "locality_decision_radius.txt").write_text(table + "\n")

    near = sum(c for d, c in by_distance.items() if d <= 2)
    assert near / flips_total > 0.8  # decisions are overwhelmingly local

    net = random_connected_network(40, rng=rng)
    benchmark(lambda: compute_cds(net, "nd").size)
