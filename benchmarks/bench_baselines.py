"""CDS size and speed vs classical baselines (quantifies the intro's claim
that Wu–Li "outperforms several classical approaches ... and does so
quickly" — not a numbered figure).

Compares the marking process + rules against Guha–Khuller (both
algorithms), MIS + connectors, and greedy-DS + Steiner connection on the
paper's random geometric workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.baselines import (
    connected_greedy_ds,
    guha_khuller_cds,
    mis_cds,
    pieces_cds,
)
from repro.core.cds import compute_cds
from repro.core.properties import is_cds
from repro.graphs.generators import random_connected_network

from conftest import bench_seed

ALGOS = {
    "wu-li ID": lambda adj: compute_cds(adj, "id").gateways,
    "wu-li ND": lambda adj: compute_cds(adj, "nd").gateways,
    "guha-khuller": guha_khuller_cds,
    "gk pieces": pieces_cds,
    "MIS+connect": mis_cds,
    "greedyDS+steiner": connected_greedy_ds,
}


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(bench_seed())
    return {
        n: [random_connected_network(n, rng=rng) for _ in range(8)]
        for n in (25, 50, 100)
    }


def test_baseline_size_comparison(workload, results_dir, capsys, benchmark):
    rows = []
    sizes: dict[tuple[str, int], float] = {}
    for n, nets in workload.items():
        for name, algo in ALGOS.items():
            total = 0
            for net in nets:
                cds = algo(list(net.adjacency))
                assert is_cds(net.adjacency, cds), (name, n)
                total += len(cds)
            sizes[(name, n)] = total / len(nets)
    for name in ALGOS:
        rows.append([name] + [sizes[(name, n)] for n in workload])
    table = render_table(
        ["algorithm"] + [f"N={n}" for n in workload],
        rows,
        title="Average CDS size: Wu-Li rules vs classical baselines",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "baseline_sizes.txt").write_text(table + "\n")

    # centralized greedy finds smaller sets than local ND rules (the price
    # of locality), but ND must stay within a small constant factor
    for n in workload:
        assert sizes[("wu-li ND", n)] <= 2.5 * sizes[("guha-khuller", n)]

    net = workload[100][0]
    benchmark(lambda: guha_khuller_cds(list(net.adjacency)))


@pytest.mark.parametrize(
    "name", ["wu-li ID", "wu-li ND", "guha-khuller", "MIS+connect"]
)
def test_baseline_speed(workload, benchmark, name):
    net = workload[100][0]
    adj = list(net.adjacency)
    out = benchmark(lambda: ALGOS[name](adj))
    assert len(out) >= 1
