"""Figure 12 — average lifespan vs N under drain model 2 (d ∝ N).

Paper shape: EL1 is "clearly the winner although it does not generate the
smallest set of connected dominating set"; ID is the worst.

Both readings regenerated (see EXPERIMENTS.md):

* **literal** ``d = N/|G'|`` — total gateway drain is the constant N, so
  the largest backbone (NR) trivially shares it best and dominates every
  pruned scheme; the paper's ordering cannot emerge.  Robust facts only.
* **per-gateway** ``d = N/10`` — bypass cost grows with N but is
  scheme-blind; the paper's ordering reproduces and is asserted.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_lifespan_figure
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator

from conftest import bench_parallel, bench_seed, bench_sweep, bench_trials, emit


def _run(model):
    return run_lifespan_figure(
        model,
        n_values=bench_sweep(),
        trials=bench_trials(),
        root_seed=bench_seed(),
        parallel=bench_parallel(),
    )


@pytest.fixture(scope="module")
def literal():
    return _run("linear")


@pytest.fixture(scope="module")
def per_gateway():
    return _run("pg-linear")


def test_fig12_literal_reading(literal, results_dir, capsys, benchmark):
    emit(capsys, literal, results_dir, "figure12_literal")

    for i, n in enumerate(literal.n_values):
        nr = literal.series["nr"][i].mean
        for scheme in ("id", "nd", "el1", "el2"):
            # constant total drain: the unpruned backbone shares it widest
            assert literal.series[scheme][i].mean <= nr * 1.05, (scheme, n)
        # nobody can outlive initial_energy (average drain >= 1 per host)
        assert nr <= 101.0

    cfg = SimulationConfig(n_hosts=50, scheme="el1", drain_model="linear")
    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=3,
        iterations=1,
    )


def test_fig12_per_gateway_reading(per_gateway, results_dir, capsys, benchmark):
    emit(capsys, per_gateway, results_dir, "figure12_per_gateway")

    large = [i for i, n in enumerate(per_gateway.n_values) if n >= 50]
    assert large
    for i in large:
        el1 = per_gateway.series["el1"][i].mean
        idm = per_gateway.series["id"][i].mean
        nr = per_gateway.series["nr"][i].mean
        # the paper's headline: power-aware rotation clearly beats static ID
        assert el1 > idm, (per_gateway.n_values[i], el1, idm)
        # and beats the no-pruning baseline (its big backbone now costs)
        assert el1 > nr, (per_gateway.n_values[i], el1, nr)
        # "although it does not generate the smallest set": the winner's
        # backbone is not the smallest one
        sizes = {
            s: per_gateway.series[s][i].mean for s in per_gateway.series
        }
        assert sizes  # lifespans, not sizes — size claim checked in fig10

    cfg = SimulationConfig(n_hosts=50, scheme="el1", drain_model="pg-linear")
    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=3,
        iterations=1,
    )
