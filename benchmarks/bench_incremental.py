"""Incremental delta-CDS pipeline vs the from-scratch path (not a figure).

Replays identical seeded mobility trajectories (the Figure-11 setup:
N = 100 hosts, 100x100 region, radius 25, paper walk) through both
per-interval pipelines:

* **incremental** — :meth:`AdHocNetwork.apply_moves` (grid-delta adjacency
  maintenance) + :class:`DeltaCDSPipeline` (dirty-set marking, cached rule
  engine, short-circuit on unchanged fingerprints);
* **scratch** — invalidate + snapshot + :func:`compute_cds`, exactly what
  the simulator did per interval before the delta pipeline existed.

Both paths see the same moves and the same per-interval energy drain, so
their gateway masks must be bit-identical (asserted on every replay that
collects masks).  pytest-benchmark times a fixed-length replay per scheme
at stability 0.9; ``test_speedup_summary`` additionally records best-of-k
per-scheme speedups, a speedup-vs-stability sweep, and the delta
pipeline's dirty-fraction counters into
``benchmarks/results/BENCH_pipeline.json`` (under ``"extra"``).

Timing methodology: the two paths are timed in fully separate replays
(never interleaved — alternating them pollutes the cached engine's memory
locality and understates the win) and each configuration takes the best
of ``k`` runs to suppress machine noise.

Also runnable as a plain script for CI::

    python benchmarks/bench_incremental.py --smoke

which asserts delta == scratch masks on a seeded 100-host trial for all
five schemes and fails if the incremental path is slower at stability 0.9.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.core.cds import compute_cds
from repro.core.delta import DeltaCDSPipeline
from repro.core.priority import scheme_by_name
from repro.geometry.space import Region2D
from repro.graphs import bitset
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import random_connected_network
from repro.mobility.paper_walk import PaperWalk

N_HOSTS = 100
SIDE = 100.0
RADIUS = 25.0
#: enough to outlast any replay below (gateways drain 3/interval).
INITIAL_ENERGY = 2000.0
SCHEMES = ("nr", "id", "nd", "el1", "el2")
BENCH_INTERVALS = 100
STABILITY = 0.9


def _trajectory(
    stability: float, seed: int, intervals: int, n: int = N_HOSTS
) -> list[np.ndarray]:
    """Seeded per-interval position frames (frame 0 = initial placement)."""
    net = random_connected_network(n, side=SIDE, radius=RADIUS, rng=seed)
    region = Region2D(side=SIDE)
    walk = PaperWalk(stability=stability)
    rng = np.random.default_rng(seed + 1)
    pos = net.positions.copy()
    frames = [pos.copy()]
    for _ in range(intervals):
        walk.step(pos, region, rng)
        frames.append(pos.copy())
    return frames


def _drain(energy: np.ndarray, gateway_mask: int) -> None:
    """Deterministic drain (gateways 3, others 1) so EL keys keep rotating."""
    energy -= 1.0
    ids = bitset.ids_from_mask(gateway_mask)
    if ids:
        energy[np.asarray(ids, dtype=np.intp)] -= 2.0


def _replay_incremental(
    frames: list[np.ndarray], scheme_name: str, collect: bool = False
) -> list[int]:
    sch = scheme_by_name(scheme_name)
    net = AdHocNetwork(frames[0].copy(), RADIUS, side=SIDE)
    net.adjacency  # build the cache so apply_moves patches in place
    pipe = DeltaCDSPipeline(sch)
    energy = np.full(len(frames[0]), INITIAL_ENERGY)
    masks: list[int] = []
    for i, pos in enumerate(frames):
        if i:
            moved = np.flatnonzero(np.any(pos != net.positions, axis=1))
            net.positions[moved] = pos[moved]
            net.apply_moves(moved)
        cds = pipe.compute(
            net, energy=energy if sch.needs_energy else None
        )
        _drain(energy, cds.gateway_mask)
        if collect:
            masks.append(cds.gateway_mask)
    return masks


def _replay_scratch(
    frames: list[np.ndarray], scheme_name: str, collect: bool = False
) -> list[int]:
    sch = scheme_by_name(scheme_name)
    net = AdHocNetwork(frames[0].copy(), RADIUS, side=SIDE)
    energy = np.full(len(frames[0]), INITIAL_ENERGY)
    masks: list[int] = []
    for i, pos in enumerate(frames):
        if i:
            net.positions[:] = pos
            net.invalidate()
        cds = compute_cds(
            net.snapshot(),
            sch,
            energy=energy if sch.needs_energy else None,
        )
        _drain(energy, cds.gateway_mask)
        if collect:
            masks.append(cds.gateway_mask)
    return masks


def _assert_equivalent(frames: list[np.ndarray], scheme: str) -> None:
    inc = _replay_incremental(frames, scheme, collect=True)
    scr = _replay_scratch(frames, scheme, collect=True)
    assert inc == scr, (
        f"scheme {scheme}: incremental and scratch gateway masks diverged "
        f"at interval {next(i for i, (a, b) in enumerate(zip(inc, scr)) if a != b)}"
    )


def _best_of(k: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _dirty_counters(frames: list[np.ndarray], scheme: str) -> dict:
    """Run one instrumented incremental replay; return the delta.* counters."""
    from repro import obs

    with obs.capture() as reg:
        _replay_incremental(frames, scheme)
    c = reg.counters
    intervals = c.get("delta.intervals", 0.0)
    nodes = c.get("delta.nodes", 0.0)
    out = {
        k.removeprefix("delta."): v
        for k, v in sorted(c.items())
        if k.startswith("delta.")
    }
    out["dirty_fraction"] = (
        c.get("delta.dirty_marking", 0.0) / nodes if nodes else 0.0
    )
    out["changed_row_fraction"] = (
        c.get("delta.changed_rows", 0.0) / nodes if nodes else 0.0
    )
    out["short_circuit_fraction"] = (
        c.get("delta.short_circuit", 0.0) / intervals if intervals else 0.0
    )
    return out


def speedup_summary(
    seed: int, *, intervals: int = BENCH_INTERVALS, k: int = 3
) -> dict:
    """Per-scheme speedups at stability 0.9 + a stability sweep for el2."""
    frames = _trajectory(STABILITY, seed, intervals)
    per_scheme = {}
    for scheme in SCHEMES:
        _assert_equivalent(frames, scheme)
        t_inc = _best_of(k, _replay_incremental, frames, scheme)
        t_scr = _best_of(k, _replay_scratch, frames, scheme)
        per_scheme[scheme] = {
            "incremental_ms_per_interval": 1e3 * t_inc / (intervals + 1),
            "scratch_ms_per_interval": 1e3 * t_scr / (intervals + 1),
            "speedup": t_scr / t_inc,
        }
    sweep = {}
    for stability in (0.5, 0.7, 0.9, 0.97):
        fr = _trajectory(stability, seed + 17, intervals)
        t_inc = _best_of(k, _replay_incremental, fr, "el2")
        t_scr = _best_of(k, _replay_scratch, fr, "el2")
        sweep[str(stability)] = t_scr / t_inc
    speedups = [d["speedup"] for d in per_scheme.values()]
    return {
        "config": {
            "n_hosts": N_HOSTS,
            "side": SIDE,
            "radius": RADIUS,
            "stability": STABILITY,
            "intervals": intervals,
            "best_of": k,
            "seed": seed,
        },
        "per_scheme": per_scheme,
        "mean_speedup": float(np.mean(speedups)),
        "min_speedup": float(np.min(speedups)),
        "speedup_vs_stability_el2": sweep,
        "delta_counters_el2": _dirty_counters(frames, "el2"),
    }


# -- pytest benches ----------------------------------------------------------


@pytest.fixture(scope="module")
def frames():
    from conftest import bench_seed

    return _trajectory(STABILITY, bench_seed(), BENCH_INTERVALS)


@pytest.mark.benchmark(group="incremental-pipeline")
@pytest.mark.parametrize("scheme", SCHEMES)
def test_interval_incremental(benchmark, frames, scheme):
    masks = benchmark(lambda: _replay_incremental(frames, scheme, collect=True))
    assert len(masks) == len(frames) and all(masks)


@pytest.mark.benchmark(group="incremental-pipeline")
@pytest.mark.parametrize("scheme", SCHEMES)
def test_interval_scratch(benchmark, frames, scheme):
    masks = benchmark(lambda: _replay_scratch(frames, scheme, collect=True))
    assert len(masks) == len(frames) and all(masks)


def test_speedup_summary(capsys, results_dir):
    """Equivalence + the JSON summary the acceptance criteria read."""
    import conftest

    summary = speedup_summary(conftest.bench_seed())
    conftest.EXTRA["incremental"] = summary
    lines = [
        "incremental delta-CDS pipeline vs scratch "
        f"(N={N_HOSTS}, stability {STABILITY}, {BENCH_INTERVALS} intervals):"
    ]
    for scheme, d in summary["per_scheme"].items():
        lines.append(
            f"  {scheme:>3}: {d['incremental_ms_per_interval']:.3f} ms vs "
            f"{d['scratch_ms_per_interval']:.3f} ms  ({d['speedup']:.2f}x)"
        )
    lines.append(f"  mean speedup {summary['mean_speedup']:.2f}x")
    lines.append(
        "  el2 speedup vs stability: "
        + ", ".join(
            f"c={c}: {s:.2f}x"
            for c, s in summary["speedup_vs_stability_el2"].items()
        )
    )
    with capsys.disabled():
        print("\n" + "\n".join(lines))
    # the delta path must never lose to scratch at high stability
    assert summary["min_speedup"] > 1.0


# -- CI smoke mode -----------------------------------------------------------


def _smoke(seed: int, intervals: int) -> int:
    frames = _trajectory(STABILITY, seed, intervals)
    for scheme in SCHEMES:
        _assert_equivalent(frames, scheme)
        print(f"equivalence ok: {scheme} ({intervals + 1} intervals)")
    t_inc = sum(_best_of(2, _replay_incremental, frames, s) for s in SCHEMES)
    t_scr = sum(_best_of(2, _replay_scratch, frames, s) for s in SCHEMES)
    speedup = t_scr / t_inc
    print(
        f"all-scheme replay: incremental {t_inc:.3f}s vs scratch {t_scr:.3f}s "
        f"({speedup:.2f}x) at stability {STABILITY}"
    )
    if t_inc >= t_scr:
        print("FAIL: incremental pipeline is slower than scratch")
        return 1
    print("smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="assert delta == scratch on a seeded trial and that the "
        "incremental path is not slower at stability 0.9",
    )
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument("--intervals", type=int, default=60)
    args = p.parse_args(argv)
    if not args.smoke:
        p.error("run under pytest for timings, or pass --smoke")
    return _smoke(args.seed, args.intervals)


if __name__ == "__main__":
    raise SystemExit(main())
