"""Fault-tolerance sweep: loss rate × crash count × priority scheme.

Quantifies how the distributed protocol degrades on a faulty radio (see
``repro.faults``): convergence rate of the degrade policy, retransmission
overhead beyond the fault-free schedule, and how often the localized
2-hop repair pass fires.  Also pins the robustness acceptance bar: with
20% frame loss and one *gateway* crash, the degrade policy must converge
— quiesce without raising AND pass the surviving-component domination +
connectivity checks — on at least 95% of random 50-host topologies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.faults import FaultPlan
from repro.graphs.generators import random_connected_network
from repro.protocol.fault_tolerant import run_fault_tolerant_cds
from repro.simulation.metrics import FaultSummary

from conftest import bench_seed

SCHEMES = ("id", "nd", "el1", "el2")
LOSSES = (0.0, 0.1, 0.2, 0.3)
CRASHES = (0, 1, 2)
RUNS_PER_CELL = 8
N_HOSTS = 50


@pytest.fixture(scope="module")
def topologies():
    seed = bench_seed()
    nets = [
        random_connected_network(N_HOSTS, rng=seed + i)
        for i in range(RUNS_PER_CELL)
    ]
    energy = np.linspace(1, 100, N_HOSTS)
    return nets, energy


def _cell(nets, energy, scheme, loss, crashes, fault_seed) -> FaultSummary:
    outcomes = []
    for i, net in enumerate(nets):
        plan = FaultPlan.random(
            net.n,
            seed=fault_seed + 1000 * i,
            loss=loss,
            n_crashes=crashes,
        )
        outcomes.append(
            run_fault_tolerant_cds(net, scheme, energy=energy, plan=plan)
        )
    return FaultSummary.from_outcomes(outcomes)


def test_fault_sweep(topologies, results_dir, capsys, benchmark):
    nets, energy = topologies
    fault_seed = bench_seed() * 31 + 17
    rows = []
    for scheme in SCHEMES:
        for loss in LOSSES:
            for crashes in CRASHES:
                s = _cell(nets, energy, scheme, loss, crashes, fault_seed)
                rows.append(
                    [
                        scheme.upper(),
                        loss,
                        crashes,
                        f"{s.convergence_rate:.2f}",
                        f"{s.mean_extra_rounds:.1f}",
                        f"{s.mean_retransmissions:.0f}",
                        f"{s.mean_dropped:.0f}",
                        f"{s.mean_coverage_gap:.2f}",
                        f"{s.repair_rate:.2f}",
                        f"{s.mean_cds_size:.1f}",
                    ]
                )
                # fault-free cells must always converge exactly
                if loss == 0.0 and crashes == 0:
                    assert s.convergence_rate == 1.0
                    assert s.mean_retransmissions == 0.0
    table = render_table(
        ["scheme", "loss", "crashes", "conv", "extra rds", "retx",
         "dropped", "gap", "repair", "|G'|"],
        rows,
        title=(
            f"Fault tolerance: N={N_HOSTS}, {RUNS_PER_CELL} runs/cell, "
            f"degrade policy, 6 retries"
        ),
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "fault_tolerance.txt").write_text(table + "\n")

    net = nets[0]
    plan = FaultPlan.random(net.n, seed=fault_seed, loss=0.2, n_crashes=1)
    benchmark(
        lambda: run_fault_tolerant_cds(net, "nd", energy=energy, plan=plan)
    )


@pytest.mark.slow
def test_gateway_crash_acceptance(results_dir, capsys):
    """The robustness bar: p=0.2 loss + one gateway crash, >= 95% converge.

    100 random connected 50-host topologies; in each, the crash victim is
    drawn from the *centralized* CDS gateways so the crash always tears
    the backbone, and crashes mid-protocol (stage uniform in [1, 8)).
    """
    seed = bench_seed() * 101 + 3
    runs = 100
    outcomes = []
    for i in range(runs):
        net = random_connected_network(N_HOSTS, rng=seed + i)
        energy = np.linspace(1, 100, N_HOSTS)
        central = compute_cds(net, "nd", energy=energy)
        gws = sorted(central.gateways)
        victim = gws[(seed + i) % len(gws)]
        stage = 1 + (seed + 7 * i) % 7
        plan = FaultPlan(seed=seed + i, loss=0.2, crashes={victim: stage})
        outcomes.append(
            run_fault_tolerant_cds(net, "nd", energy=energy, plan=plan)
        )
    s = FaultSummary.from_outcomes(outcomes)
    table = render_table(
        ["metric", "value"],
        [
            ["runs", s.runs],
            ["converged", s.converged],
            ["convergence rate", f"{s.convergence_rate:.2f}"],
            ["mean extra rounds", f"{s.mean_extra_rounds:.1f}"],
            ["mean retransmissions", f"{s.mean_retransmissions:.0f}"],
            ["repair rate", f"{s.repair_rate:.2f}"],
            ["mean |G'|", f"{s.mean_cds_size:.1f}"],
        ],
        title=(
            f"Acceptance: N={N_HOSTS}, ND, loss p=0.2, one gateway crash, "
            f"{runs} topologies"
        ),
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "fault_acceptance.txt").write_text(table + "\n")
    assert s.convergence_rate >= 0.95
