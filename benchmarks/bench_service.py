"""Backbone service: throughput/latency timing + kill -9 acceptance.

Two jobs, one file (mirroring ``bench_executor.py``):

* Under pytest(-benchmark): time the service's sustained update
  throughput on a mid-size tenant, record the query-latency percentiles
  into ``conftest.EXTRA["service"]`` (so they land in
  ``BENCH_pipeline.json``), and time raw journal (WAL + snapshot)
  overhead against the in-memory service.
* As a plain script (the ``service-chaos`` CI job)::

      python benchmarks/bench_service.py --smoke

  starts a journaled ``repro serve`` in a subprocess, SIGKILLs the whole
  process group mid-update-stream, re-runs the same command, and asserts
  the recovered final states are **bit-identical** (sha256 state
  digests) to an uninterrupted in-process reference run.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceConfig
from repro.service.driver import bench_service, drive_tenants
from repro.service.server import BackboneService

_SEED = 2001

# -- pytest-benchmark section -------------------------------------------------

_BENCH_HOSTS = 100
_BENCH_UPDATES = 40


def _run_bench(data_dir: str | None = None) -> dict:
    async def go() -> dict:
        service = BackboneService(
            ServiceConfig(queue_high_water=4 * _BENCH_UPDATES, data_dir=data_dir)
        )
        try:
            return await bench_service(
                service,
                hosts=_BENCH_HOSTS,
                updates=_BENCH_UPDATES,
                seed=_SEED,
                side=100.0,
            )
        finally:
            await service.close()

    return asyncio.run(go())


def test_service_throughput(benchmark):
    """Sustained updates/sec through the full maintain-verify-publish path."""
    res = benchmark.pedantic(_run_bench, rounds=3, iterations=1)
    assert res["updates_per_s"] > 0
    assert res["stale_publishes"] == 0, "no degradation expected without chaos"
    import conftest

    conftest.EXTRA.setdefault("service", {})[f"n{_BENCH_HOSTS}"] = res


def test_service_throughput_journaled(benchmark):
    """Same workload with per-update fsync'd WAL: the durability tax."""

    def run():
        with tempfile.TemporaryDirectory() as d:
            return _run_bench(data_dir=d)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res["updates_per_s"] > 0
    import conftest

    conftest.EXTRA.setdefault("service", {})[
        f"n{_BENCH_HOSTS}_journaled"
    ] = res


# -- CI smoke mode: SIGKILL a journaled serve, restart, compare ---------------

_SMOKE_TENANTS = 2
_SMOKE_HOSTS = 30
_SMOKE_UPDATES = 250
_SMOKE_SNAP_EVERY = 7


def _serve_command(data_dir: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--tenants", str(_SMOKE_TENANTS),
        "--hosts", str(_SMOKE_HOSTS),
        "--updates", str(_SMOKE_UPDATES),
        "--seed", str(_SEED),
        "--snapshot-every", str(_SMOKE_SNAP_EVERY),
        "--data-dir", data_dir,
        "--digest",
    ]


def _reference_digests() -> dict[str, str]:
    """Uninterrupted in-process run, no journal: the ground truth."""

    async def go() -> dict[str, str]:
        service = BackboneService(ServiceConfig())
        try:
            report = await drive_tenants(
                service,
                tenants=_SMOKE_TENANTS,
                hosts=_SMOKE_HOSTS,
                updates=_SMOKE_UPDATES,
                seed=_SEED,
                side=100.0,
            )
        finally:
            await service.close()
        assert report.ok, "reference run must complete cleanly"
        return report.digests

    return asyncio.run(go())


def _progress_snapshots(root: Path) -> int:
    """Snapshot generations with base > 0 across all tenant journals —
    the signal that real update processing is underway."""
    n = 0
    for snap in root.glob("*/snapshot-*.json"):
        if not snap.name.endswith("-000000000000.json"):
            n += 1
    return n


def _parse_digests(stdout: str) -> dict[str, str]:
    out = {}
    for line in stdout.splitlines():
        parts = line.split()
        if len(parts) == 3 and parts[0] == "digest":
            out[parts[1]] = parts[2]
    return out


def _smoke() -> int:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")

    with tempfile.TemporaryDirectory() as d:
        data = Path(d) / "journals"

        # 1. start a journaled serve and SIGKILL it mid-update-stream
        proc = subprocess.Popen(
            _serve_command(str(data)), env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120.0
        try:
            while _progress_snapshots(data) < 2:
                if proc.poll() is not None:
                    raise AssertionError(
                        "serve finished before it could be killed; raise "
                        "_SMOKE_UPDATES"
                    )
                if time.monotonic() > deadline:
                    raise AssertionError(
                        "no progress snapshots appeared within 120s"
                    )
                time.sleep(0.002)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()
        print(
            f"killed serve with {_progress_snapshots(data)} progress "
            "snapshots on disk"
        )

        # 2. identical command recovers from WAL + snapshots and resumes
        done = subprocess.run(
            _serve_command(str(data)), env=env, check=True,
            capture_output=True, text=True, timeout=600,
        )
        recovered = _parse_digests(done.stdout)
        assert len(recovered) == _SMOKE_TENANTS, (
            f"expected {_SMOKE_TENANTS} digests, got: {done.stdout!r}"
        )

        # 3. bit-identical to the uninterrupted reference
        reference = _reference_digests()
        for tenant, want in reference.items():
            got = recovered.get(tenant)
            assert got == want, (
                f"tenant {tenant} diverged after kill/restart: "
                f"{got} != {want}"
            )
    print(
        f"smoke ok: kill -9 mid-stream recovery of {_SMOKE_TENANTS} "
        f"tenants x {_SMOKE_UPDATES} updates is bit-identical"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="SIGKILL a journaled serve mid-stream, restart, compare digests",
    )
    args = p.parse_args(argv)
    if not args.smoke:
        p.error("run under pytest for timings, or pass --smoke")
    return _smoke()


if __name__ == "__main__":
    sys.exit(main())
