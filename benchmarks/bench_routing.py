"""Dominating-set routing quality (supports §2.1's design rationale — not
a numbered figure).

Measures, per scheme: path stretch of backbone routes vs true shortest
paths, the share of forwarding work carried by gateways (the paper's
bypass-traffic premise), and routing-table size (the state saving that
motivates dominating-set-based routing in the first place).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network
from repro.routing.dsr import DominatingSetRouter
from repro.routing.forwarding import ForwardingEngine
from repro.routing.shortest_path import bfs_distances
from repro.routing.tables import build_routing_tables

from conftest import bench_seed


@pytest.fixture(scope="module")
def routed_networks():
    rng = np.random.default_rng(bench_seed())
    nets = [random_connected_network(50, rng=rng) for _ in range(5)]
    return nets


def test_routing_quality_per_scheme(routed_networks, results_dir, capsys, benchmark):
    rng = np.random.default_rng(bench_seed() + 1)
    rows = []
    stretch_by_scheme = {}
    for scheme in ("nr", "id", "nd"):
        stretches, shares, table_entries = [], [], []
        for net in routed_networks:
            r = compute_cds(net, scheme)
            router = DominatingSetRouter(net.adjacency, r.gateway_mask)
            eng = ForwardingEngine(router)
            eng.send_random_pairs(100, rng)
            shares.append(eng.gateway_share_of_forwarding())
            # stretch over sampled pairs
            for _ in range(40):
                s, t = rng.choice(50, size=2, replace=False)
                true = bfs_distances(net.adjacency, int(s))[int(t)]
                got = router.route(int(s), int(t)).length
                stretches.append(got / true)
            tables = build_routing_tables(net.adjacency, r.gateways)
            table_entries.append(
                sum(t.entry_count() for t in tables.values()) / len(tables)
            )
        stretch_by_scheme[scheme] = float(np.mean(stretches))
        rows.append(
            [scheme.upper(), float(np.mean(stretches)),
             float(np.max(stretches)), float(np.mean(shares)),
             float(np.mean(table_entries))]
        )
    table = render_table(
        ["scheme", "mean stretch", "max stretch", "gateway fwd share",
         "table entries/gw"],
        rows,
        title="Backbone routing quality (N=50, 5 networks)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "routing_quality.txt").write_text(table + "\n")

    # Property 3 for the unpruned set: stretch exactly 1
    assert stretch_by_scheme["nr"] == pytest.approx(1.0)
    # pruned backbones stay near-shortest
    assert stretch_by_scheme["nd"] <= 1.4

    net = routed_networks[0]
    r = compute_cds(net, "nd")
    router = DominatingSetRouter(net.adjacency, r.gateway_mask)
    benchmark(lambda: router.route(0, 49).length)


def test_table_construction_speed(routed_networks, benchmark):
    net = routed_networks[0]
    r = compute_cds(net, "id")
    adj = list(net.adjacency)
    tables = benchmark(lambda: build_routing_tables(adj, r.gateways))
    assert len(tables) == r.size
