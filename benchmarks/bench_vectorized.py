"""Vectorized batch CDS engine vs the scalar paths (not a figure).

Replays identical seeded mobility trajectories (paper walk, stability
0.9, density-constant arena: ``side = scaled_side(n)``) through three
per-interval pipelines:

* **vectorized** — :class:`VectorizedCDSPipeline` (batched uint64 word
  kernels: edge-table marking, miss-list Rule 1/2, batch width 1);
* **delta** — :class:`DeltaCDSPipeline` (dirty-set incremental path);
* **scratch** — invalidate + snapshot + :func:`compute_cds`, the scalar
  oracle every other path is pinned against.

All three see the same moves and the same per-interval energy drain, so
their gateway masks must be bit-identical (asserted on every replay that
collects masks).  pytest-benchmark times fixed-length replays at
N = 1000; ``test_speedup_summary`` additionally records best-of-k
speedups into ``benchmarks/results/BENCH_pipeline.json`` (under
``"extra"``).

The acceptance-criteria N = 10k point (single topology, stability 0.9,
per-interval vectorized vs scalar scratch, >= 10x) is too heavy for the
default pytest session — the scalar oracle needs minutes per interval at
that size — so it runs in script mode and merges into the *existing*
``BENCH_pipeline.json`` (read-modify-write, like ``repro serve-bench``)::

    python benchmarks/bench_vectorized.py --smoke     # CI equivalence gate
    python benchmarks/bench_vectorized.py --record    # N=10k timing point

``--smoke`` asserts vectorized == scratch == delta masks on a seeded
small grid (n straddling the word boundary, all five schemes) and gates
a catastrophic slowdown at N = 1000.  ``--record`` measures the N = 10k
per-interval costs (vectorized vs both scalar references: the delta
pipeline that ``backend="scalar"`` runs at that size, and plain scratch
``compute_cds``), fails below 10x vs the scalar pipeline, and writes
``extra.vectorized_10k``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.core.cds import compute_cds
from repro.core.delta import DeltaCDSPipeline
from repro.core.priority import scheme_by_name
from repro.core.vectorized import VectorizedCDSPipeline
from repro.geometry.space import Region2D
from repro.graphs import bitset
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import random_connected_network, scaled_side
from repro.mobility.paper_walk import PaperWalk

RADIUS = 25.0
#: enough to outlast any replay below (gateways drain 3/interval).
INITIAL_ENERGY = 20000.0
SCHEMES = ("nr", "id", "nd", "el1", "el2")
STABILITY = 0.9
BENCH_HOSTS = 1000
BENCH_INTERVALS = 10
BIG_HOSTS = 10_000


def _trajectory(
    n: int, stability: float, seed: int, intervals: int
) -> tuple[list[np.ndarray], float]:
    """Seeded per-interval position frames on a density-constant arena."""
    side = scaled_side(n)
    net = random_connected_network(
        n, side=side, radius=RADIUS, rng=np.random.default_rng(seed)
    )
    region = Region2D(side=side)
    walk = PaperWalk(stability=stability)
    rng = np.random.default_rng(seed + 1)
    pos = net.positions.copy()
    frames = [pos.copy()]
    for _ in range(intervals):
        walk.step(pos, region, rng)
        frames.append(pos.copy())
    return frames, side


def _drain(energy: np.ndarray, gateway_mask: int) -> None:
    """Deterministic drain (gateways 3, others 1) so EL keys keep rotating."""
    energy -= 1.0
    ids = bitset.ids_from_mask(gateway_mask)
    if ids:
        energy[np.asarray(ids, dtype=np.intp)] -= 2.0


def _replay_pipeline(
    pipe, frames: list[np.ndarray], side: float, scheme_name: str,
    collect: bool = False,
) -> list[int]:
    """Incremental-adjacency replay through any pipeline-API object."""
    sch = scheme_by_name(scheme_name)
    net = AdHocNetwork(frames[0].copy(), RADIUS, side=side)
    net.adjacency  # build the cache so apply_moves patches in place
    energy = np.full(len(frames[0]), INITIAL_ENERGY)
    masks: list[int] = []
    for i, pos in enumerate(frames):
        if i:
            moved = np.flatnonzero(np.any(pos != net.positions, axis=1))
            net.positions[moved] = pos[moved]
            net.apply_moves(moved)
        cds = pipe.compute(
            net, energy=energy if sch.needs_energy else None
        )
        _drain(energy, cds.gateway_mask)
        if collect:
            masks.append(cds.gateway_mask)
    return masks


def _replay_vectorized(frames, side, scheme_name, collect=False):
    pipe = VectorizedCDSPipeline(scheme_by_name(scheme_name))
    return _replay_pipeline(pipe, frames, side, scheme_name, collect)


def _replay_delta(frames, side, scheme_name, collect=False):
    pipe = DeltaCDSPipeline(scheme_by_name(scheme_name))
    return _replay_pipeline(pipe, frames, side, scheme_name, collect)


def _replay_scratch(
    frames: list[np.ndarray], side: float, scheme_name: str,
    collect: bool = False,
) -> list[int]:
    sch = scheme_by_name(scheme_name)
    net = AdHocNetwork(frames[0].copy(), RADIUS, side=side)
    energy = np.full(len(frames[0]), INITIAL_ENERGY)
    masks: list[int] = []
    for i, pos in enumerate(frames):
        if i:
            net.positions[:] = pos
            net.invalidate()
        cds = compute_cds(
            net.snapshot(),
            sch,
            energy=energy if sch.needs_energy else None,
        )
        _drain(energy, cds.gateway_mask)
        if collect:
            masks.append(cds.gateway_mask)
    return masks


def _assert_equivalent(frames, side, scheme: str) -> None:
    vec = _replay_vectorized(frames, side, scheme, collect=True)
    scr = _replay_scratch(frames, side, scheme, collect=True)
    dlt = _replay_delta(frames, side, scheme, collect=True)
    assert vec == scr, (
        f"scheme {scheme}: vectorized and scratch gateway masks diverged "
        f"at interval {next(i for i, (a, b) in enumerate(zip(vec, scr)) if a != b)}"
    )
    assert dlt == scr, f"scheme {scheme}: delta and scratch masks diverged"


def _best_of(k: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def speedup_summary(
    seed: int, *, n: int = BENCH_HOSTS, intervals: int = BENCH_INTERVALS,
    k: int = 3,
) -> dict:
    """Per-scheme vectorized-vs-scalar speedups at stability 0.9."""
    frames, side = _trajectory(n, STABILITY, seed, intervals)
    per_scheme = {}
    for scheme in SCHEMES:
        _assert_equivalent(frames, side, scheme)
        t_vec = _best_of(k, _replay_vectorized, frames, side, scheme)
        t_scr = _best_of(k, _replay_scratch, frames, side, scheme)
        t_dlt = _best_of(k, _replay_delta, frames, side, scheme)
        per_scheme[scheme] = {
            "vectorized_ms_per_interval": 1e3 * t_vec / (intervals + 1),
            "scratch_ms_per_interval": 1e3 * t_scr / (intervals + 1),
            "delta_ms_per_interval": 1e3 * t_dlt / (intervals + 1),
            "speedup_vs_scratch": t_scr / t_vec,
            "speedup_vs_delta": t_dlt / t_vec,
        }
    speedups = [d["speedup_vs_scratch"] for d in per_scheme.values()]
    return {
        "config": {
            "n_hosts": n,
            "side": side,
            "radius": RADIUS,
            "stability": STABILITY,
            "intervals": intervals,
            "best_of": k,
            "seed": seed,
        },
        "per_scheme": per_scheme,
        "mean_speedup_vs_scratch": float(np.mean(speedups)),
        "min_speedup_vs_scratch": float(np.min(speedups)),
    }


# -- pytest benches ----------------------------------------------------------


@pytest.fixture(scope="module")
def frames_1k():
    from conftest import bench_seed

    return _trajectory(BENCH_HOSTS, STABILITY, bench_seed(), BENCH_INTERVALS)


@pytest.mark.benchmark(group="vectorized-engine")
@pytest.mark.parametrize("scheme", ("nd", "el2"))
def test_interval_vectorized(benchmark, frames_1k, scheme):
    frames, side = frames_1k
    masks = benchmark(
        lambda: _replay_vectorized(frames, side, scheme, collect=True)
    )
    assert len(masks) == len(frames) and all(masks)


@pytest.mark.benchmark(group="vectorized-engine")
@pytest.mark.parametrize("scheme", ("nd", "el2"))
def test_interval_scratch(benchmark, frames_1k, scheme):
    frames, side = frames_1k
    masks = benchmark(
        lambda: _replay_scratch(frames, side, scheme, collect=True)
    )
    assert len(masks) == len(frames) and all(masks)


def test_speedup_summary(capsys, results_dir):
    """Equivalence + the JSON summary under extra.vectorized."""
    import conftest

    summary = speedup_summary(conftest.bench_seed())
    conftest.EXTRA["vectorized"] = summary
    lines = [
        "vectorized batch CDS engine vs scalar "
        f"(N={BENCH_HOSTS}, stability {STABILITY}, "
        f"{BENCH_INTERVALS} intervals):"
    ]
    for scheme, d in summary["per_scheme"].items():
        lines.append(
            f"  {scheme:>3}: {d['vectorized_ms_per_interval']:.2f} ms vs "
            f"scratch {d['scratch_ms_per_interval']:.2f} ms "
            f"({d['speedup_vs_scratch']:.2f}x) / delta "
            f"{d['delta_ms_per_interval']:.2f} ms "
            f"({d['speedup_vs_delta']:.2f}x)"
        )
    lines.append(
        f"  mean speedup vs scratch "
        f"{summary['mean_speedup_vs_scratch']:.2f}x"
    )
    with capsys.disabled():
        print("\n" + "\n".join(lines))
    # At N=1000 the replay is dominated by shared adjacency maintenance,
    # so expect rough parity here (the scalar rule passes only blow up
    # towards N=10k — that 10x bar is enforced by --record).  This gate
    # just catches a catastrophic kernel regression.
    assert summary["min_speedup_vs_scratch"] > 0.5
    assert summary["mean_speedup_vs_scratch"] > 0.8


# -- CI script modes ---------------------------------------------------------


def _smoke(seed: int) -> int:
    # equivalence grid straddling the uint64 word boundary, all schemes
    for n in (63, 64, 65, 100):
        frames, side = _trajectory(n, STABILITY, seed + n, 4)
        for scheme in SCHEMES:
            _assert_equivalent(frames, side, scheme)
        print(f"equivalence ok: n={n} x {len(SCHEMES)} schemes (5 intervals)")
    frames, side = _trajectory(BENCH_HOSTS, STABILITY, seed, 4)
    t_vec = _best_of(2, _replay_vectorized, frames, side, "nd")
    t_scr = _best_of(2, _replay_scratch, frames, side, "nd")
    print(
        f"N={BENCH_HOSTS} replay: vectorized {t_vec:.3f}s vs scratch "
        f"{t_scr:.3f}s ({t_scr / t_vec:.2f}x) at stability {STABILITY}"
    )
    # at N=1000 expect rough parity (the blow-up the engine fixes starts
    # past a few thousand hosts); gate only a catastrophic regression
    if t_vec > 1.25 * t_scr:
        print("FAIL: vectorized engine much slower than scratch at N=1000")
        return 1
    print("smoke ok")
    return 0


def _record(seed: int, output: str, scalar_intervals: int) -> int:
    """The acceptance-criteria point: N=10k per-interval, >= 10x.

    Two scalar references are timed and recorded:

    * **delta** — :class:`DeltaCDSPipeline`, what ``backend="scalar"``
      actually runs per interval at this size (``n >= 48``).  Its
      dirty-set repair degrades superlinearly (~60-80 s/interval at
      N=10k); this is the path the 10x bar is enforced against.
    * **scratch** — snapshot + :func:`compute_cds`.  Python's big-int
      bitwise ops are already word-parallel in C, so this stays within
      a small factor of the numpy kernels even at N=10k; it is recorded
      for transparency, not gated.
    """
    import json

    n = BIG_HOSTS
    print(f"building N={n} trajectory (stability {STABILITY}) ...")
    frames, side = _trajectory(n, STABILITY, seed, 3)
    t0 = time.perf_counter()
    masks = _replay_vectorized(frames, side, "nd", collect=True)
    t_vec = (time.perf_counter() - t0) / len(frames)
    assert all(masks)
    print(f"vectorized: {t_vec:.3f} s/interval (CDS size {bin(masks[0]).count('1')})")
    # the scalar paths need ~minutes per interval at N=10k: time
    # truncated replays and check mask equivalence on what ran
    short = frames[: scalar_intervals + 1]
    t0 = time.perf_counter()
    scr = _replay_scratch(short, side, "nd", collect=True)
    t_scr = (time.perf_counter() - t0) / len(short)
    assert masks[: len(scr)] == scr, "vectorized != scratch at N=10k"
    print(f"scratch: {t_scr:.3f} s/interval ({t_scr / t_vec:.1f}x)")
    t0 = time.perf_counter()
    dlt = _replay_delta(short, side, "nd", collect=True)
    t_dlt = (time.perf_counter() - t0) / len(short)
    assert masks[: len(dlt)] == dlt, "vectorized != delta at N=10k"
    speedup = t_dlt / t_vec
    print(
        f"delta (scalar-backend pipeline): {t_dlt:.3f} s/interval over "
        f"{len(short)} intervals -> speedup {speedup:.1f}x"
    )
    record = {
        "n_hosts": n,
        "side": side,
        "radius": RADIUS,
        "stability": STABILITY,
        "scheme": "nd",
        "seed": seed,
        "vectorized_s_per_interval": t_vec,
        "scratch_s_per_interval": t_scr,
        "delta_s_per_interval": t_dlt,
        "scalar_intervals_timed": len(short),
        "speedup_vs_scalar_pipeline": speedup,
        "speedup_vs_scratch": t_scr / t_vec,
        "cds_size_interval0": bin(masks[0]).count("1"),
        "created_unix": time.time(),
    }
    if output != "-":
        out = Path(output)
        if out.exists():
            payload = json.loads(out.read_text(encoding="utf-8"))
        else:
            payload = {"schema": "repro-bench-pipeline/1", "benchmarks": []}
        payload.setdefault("extra", {})["vectorized_10k"] = record
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"merged N=10k numbers into {out} (extra.vectorized_10k)")
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import perf_trajectory

        perf_trajectory.append_run(
            "vectorized_interval_n10k_nd", t_vec, "s", meta={"seed": seed}
        )
        perf_trajectory.append_run(
            "vectorized_10k_speedup_vs_scalar", speedup, "x",
            meta={"seed": seed, "scalar_intervals": len(short)},
        )
        print(f"appended trajectory runs to {perf_trajectory.TRAJECTORY_JSON}")
    if speedup < 10.0:
        print(
            "FAIL: vectorized speedup vs the scalar-backend pipeline is "
            "below the 10x acceptance bar"
        )
        return 1
    print("record ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="assert vectorized == scratch == delta on a seeded word-"
        "boundary grid and that vectorized is faster at N=1000",
    )
    p.add_argument(
        "--record", action="store_true",
        help="measure the N=10k per-interval point (vectorized vs the "
        "scalar-backend delta pipeline and scratch) and merge it into "
        "the bench JSON; fails below 10x vs the scalar pipeline",
    )
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument(
        "--scalar-intervals", type=int, default=1,
        help="intervals of the N=10k scalar replay to time (each costs "
        "minutes; the vectorized replay covers the full trajectory)",
    )
    p.add_argument(
        "--output", default="benchmarks/results/BENCH_pipeline.json",
        help="bench JSON to merge --record numbers into (under "
        "extra.vectorized_10k); '-' skips writing",
    )
    args = p.parse_args(argv)
    if not (args.smoke or args.record):
        p.error("run under pytest for timings, or pass --smoke / --record")
    rc = 0
    if args.smoke:
        rc = _smoke(args.seed)
    if rc == 0 and args.record:
        rc = _record(args.seed, args.output, args.scalar_intervals)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
