"""Perf-trajectory gate: fail CI when a tier-1 micro-benchmark regresses.

The repo's benchmark artifacts are snapshots; this script is the *gate*.
It measures a small fixed set of micro-benchmarks (seconds-per-interval
of the vectorized and sparse engines, plus machine-independent speedup
ratios), compares each against the median of its recorded history in
``benchmarks/results/BENCH_trajectory.json`` (see
:mod:`perf_trajectory`), and exits non-zero when any measurement falls
outside the noise band.

Comparability rules — the part that makes this honest across machines:

* **ratio metrics** (speedups, relative engine costs) cancel the
  machine out, so they are gated against the full history, strictly;
* **absolute metrics** (wall-clock seconds) are only gated against runs
  recorded on the *same* platform + python signature; with no
  same-platform history they bootstrap (record and pass) instead of
  comparing apples to a different orchard.

Noise band: ``REPRO_PERF_BAND`` (default 0.35) — a measurement may be up
to 35% worse than the recorded median before the gate trips.  Generous
on purpose: shared CI runners jitter, and the gate's job is catching
"the kernel got 2x slower", not 5% wobble.

Usage::

    python benchmarks/perf_gate.py --record   # measure + append history
    python benchmarks/perf_gate.py --check    # measure + gate (CI job)
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

import perf_trajectory
from bench_vectorized import (
    RADIUS,
    STABILITY,
    _best_of,
    _replay_scratch,
    _replay_vectorized,
    _trajectory,
)

BAND_ENV = "REPRO_PERF_BAND"
DEFAULT_BAND = 0.35
#: history length the median is taken over (newest runs win).
HISTORY_WINDOW = 20


@dataclass(frozen=True)
class Metric:
    """One gated micro-benchmark."""

    name: str
    unit: str
    #: absolute wall-clock (same-platform comparisons only) vs
    #: machine-independent ratio (full-history comparisons).
    absolute: bool
    higher_is_better: bool
    description: str


METRICS = (
    Metric(
        "vec_interval_n1000_nd", "s", True, False,
        "vectorized engine, s/interval of an N=1000 nd replay",
    ),
    Metric(
        "vec_speedup_vs_scratch_n1000", "x", False, True,
        "scalar-scratch over vectorized replay time at N=1000",
    ),
    Metric(
        "sparse_interval_n4096_el2", "s", True, False,
        "sparse CSR engine, one N=4096 el2 interval (CSR build + run)",
    ),
    Metric(
        "sparse_over_vec_n4096", "x", False, False,
        "sparse interval cost over dense-vectorized cost at N=4096",
    ),
    Metric(
        "sparse_mobility_interval_ratio", "x", False, False,
        "incremental-sparse over full-rebuild replay cost of an N=4096 "
        "mobile el2 trajectory (persistent CSR + dirty components)",
    ),
)


def measure(seed: int) -> dict[str, float]:
    """Run every gated micro-benchmark once; returns name -> value."""
    from repro.core.sparse import CSRBatch, SparseCDSEngine
    from repro.core.vectorized import BatchCDSEngine, pack_batch
    from repro.graphs.adhoc import AdHocNetwork

    out: dict[str, float] = {}

    # -- vectorized vs scratch replay at N=1000 ---------------------------
    intervals = 4
    frames, side = _trajectory(1000, STABILITY, seed, intervals)
    t_vec = _best_of(2, _replay_vectorized, frames, side, "nd")
    t_scr = _best_of(2, _replay_scratch, frames, side, "nd")
    out["vec_interval_n1000_nd"] = t_vec / (intervals + 1)
    out["vec_speedup_vs_scratch_n1000"] = t_scr / t_vec

    # -- sparse vs dense single interval at N=4096 ------------------------
    n = 4096
    sframes, sside = _trajectory(n, STABILITY, seed + n, 0)
    pos = sframes[0]
    energy = np.random.default_rng(seed).uniform(50.0, 150.0, size=n)[None]
    sparse_engine = SparseCDSEngine("el2")
    dense_engine = BatchCDSEngine("el2")

    def sparse_interval():
        csr = CSRBatch.from_positions(pos, RADIUS)
        sparse_engine.run(csr, energy)

    adj = [list(AdHocNetwork(pos.copy(), RADIUS, side=sside).adjacency)]

    def dense_interval():
        dense_engine.run(pack_batch(adj), energy)

    t_sparse = _best_of(2, sparse_interval)
    t_dense = _best_of(2, dense_interval)
    out["sparse_interval_n4096_el2"] = t_sparse
    out["sparse_over_vec_n4096"] = t_sparse / t_dense

    # -- incremental vs full-rebuild sparse mobility at N=4096 ------------
    # the backbone-maintenance regime the incremental pipeline targets:
    # a scattered multi-component field (the sparse engine's documented
    # regime) where a handful of hosts move per interval, so clean
    # components dominate.  Both replays cover the identical frame
    # sequence, cold first frame included, so the ratio cancels the
    # machine out.  A dirty-component regression (everything recomputed)
    # pushes this toward/past 1.0.
    from repro.core.sparse_delta import IncrementalSparseCDSPipeline
    from repro.geometry.space import Region2D
    from repro.graphs.generators import scaled_side
    from repro.mobility.paper_walk import PaperWalk

    mob_side = 2.2 * scaled_side(n)
    mob_rng = np.random.default_rng(seed + 1)
    walk = PaperWalk(stability=0.99)
    region = Region2D(side=mob_side)
    cur = mob_rng.uniform(0.0, mob_side, size=(n, 2))
    mob_frames = [cur.copy()]
    for _ in range(6):
        walk.step(cur, region, mob_rng)
        mob_frames.append(cur.copy())
    energy_1d = energy[0]

    def full_replay():
        for f in mob_frames:
            sparse_engine.run(CSRBatch.from_positions(f, RADIUS), energy)

    def incremental_replay():
        pipe = IncrementalSparseCDSPipeline("el2")
        net = AdHocNetwork(mob_frames[0].copy(), RADIUS, side=mob_side)
        for f in mob_frames:
            net.positions[:] = f
            net.invalidate()
            pipe.compute(net, energy=energy_1d)

    t_full = _best_of(2, full_replay)
    t_inc = _best_of(2, incremental_replay)
    out["sparse_mobility_interval_ratio"] = t_inc / t_full
    return out


def _band() -> float:
    raw = os.environ.get(BAND_ENV)
    if raw is None:
        return DEFAULT_BAND
    band = float(raw)
    if band <= 0:
        raise ValueError(f"{BAND_ENV} must be positive, got {band}")
    return band


def record(seed: int, path: str | Path | None = None) -> int:
    values = measure(seed)
    for metric in METRICS:
        run = perf_trajectory.append_run(
            metric.name, values[metric.name], metric.unit,
            meta={"seed": seed, "gate": True}, path=path,
        )
        print(f"recorded {metric.name} = {run['value']:.4g} {metric.unit}")
    return 0


def check(seed: int, path: str | Path | None = None) -> int:
    band = _band()
    payload = perf_trajectory.load(path)
    values = measure(seed)
    failures = []
    for metric in METRICS:
        current = values[metric.name]
        history = perf_trajectory.series(
            payload, metric.name, same_platform_only=metric.absolute
        )[-HISTORY_WINDOW:]
        if not history:
            # bootstrap: nothing comparable on record — store this run so
            # the next check has a baseline, and pass
            perf_trajectory.append_run(
                metric.name, current, metric.unit,
                meta={"seed": seed, "gate": True, "bootstrap": True},
                path=path,
            )
            scope = "same-platform " if metric.absolute else ""
            print(
                f"BOOTSTRAP {metric.name} = {current:.4g} {metric.unit} "
                f"(no {scope}history; recorded as baseline)"
            )
            continue
        median = float(np.median(history))
        if metric.higher_is_better:
            ok = current >= median * (1.0 - band)
            limit = median * (1.0 - band)
        else:
            ok = current <= median * (1.0 + band)
            limit = median * (1.0 + band)
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"{verdict:>10} {metric.name}: {current:.4g} {metric.unit} "
            f"vs median {median:.4g} over {len(history)} run(s) "
            f"(limit {limit:.4g}, band {band:.0%})"
        )
        if not ok:
            failures.append(metric)
    if failures:
        print(
            f"\nperf gate FAILED: {len(failures)} metric(s) regressed "
            f"beyond the {band:.0%} noise band — "
            + ", ".join(m.name for m in failures)
        )
        return 1
    print("\nperf gate ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--record", action="store_true",
        help="measure the gated micro-benchmarks and append them to the "
        "trajectory log",
    )
    p.add_argument(
        "--check", action="store_true",
        help="measure and gate against the recorded medians (CI mode); "
        "metrics with no comparable history bootstrap instead of failing",
    )
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help=f"trajectory JSON (default {perf_trajectory.TRAJECTORY_JSON})",
    )
    args = p.parse_args(argv)
    if not (args.record or args.check):
        p.error("pass --record and/or --check")
    t0 = time.perf_counter()
    rc = 0
    if args.record:
        rc = record(args.seed, args.trajectory)
    if rc == 0 and args.check:
        rc = check(args.seed, args.trajectory)
    print(f"({time.perf_counter() - t0:.1f}s)")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
