"""Sensitivity sweeps — "more in-depth simulation under different
settings" (the paper's stated future work).

Verifies the headline conclusion (power-aware rotation extends life under
per-gateway bypass cost) across transmission radii and mobility rates,
i.e. that it is not an artifact of the single operating point the paper
evaluates (radius 25, c = 0.5).
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import sweep_radius, sweep_stability
from repro.simulation.config import SimulationConfig

from conftest import bench_parallel, bench_seed, bench_trials


BASE = SimulationConfig(n_hosts=50, drain_model="fixed")
SCHEMES = ("id", "nd", "el1", "el2")


def test_radius_sensitivity(results_dir, capsys, benchmark):
    trials = max(4, bench_trials() // 2)
    result = sweep_radius(
        (18.0, 25.0, 35.0),
        base=BASE,
        schemes=SCHEMES,
        trials=trials,
        root_seed=bench_seed(),
        parallel=bench_parallel(),
    )
    table = result.to_table()
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "sensitivity_radius.txt").write_text(table + "\n")

    for i in range(len(result.values)):
        assert result.series["el1"][i].mean >= result.series["id"][i].mean

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_stability_sensitivity(results_dir, capsys, benchmark):
    trials = max(4, bench_trials() // 2)
    result = sweep_stability(
        (0.2, 0.5, 0.9),
        base=BASE,
        schemes=SCHEMES,
        trials=trials,
        root_seed=bench_seed(),
        parallel=bench_parallel(),
    )
    table = result.to_table()
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "sensitivity_stability.txt").write_text(table + "\n")

    for i in range(len(result.values)):
        assert result.series["el1"][i].mean >= result.series["id"][i].mean

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_battery_heterogeneity_sensitivity(results_dir, capsys, benchmark):
    """The EL schemes' whole point is sheltering weak batteries; their
    advantage over static ID should grow with initial heterogeneity."""
    from repro.analysis.sweeps import sweep_parameter

    trials = max(4, bench_trials() // 2)
    result = sweep_parameter(
        "initial_energy_jitter",
        (0.0, 0.2, 0.4),
        base=BASE,
        schemes=SCHEMES,
        trials=trials,
        root_seed=bench_seed(),
        parallel=bench_parallel(),
    )
    table = result.to_table()
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "sensitivity_jitter.txt").write_text(table + "\n")

    id_means = result.means("id")
    el_means = result.means("el1")
    for i in range(len(result.values)):
        assert el_means[i] >= id_means[i]
    # relative advantage does not shrink as batteries diverge
    rel = [e / i for e, i in zip(el_means, id_means)]
    assert rel[-1] >= rel[0] * 0.95

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_clustered_workload(results_dir, capsys, benchmark):
    """Team-clustered placements (the intro's motivating deployments):
    dense cores collapse to few gateways, so backbones are much smaller
    than under the uniform workload, and the EL ordering persists."""
    import numpy as np

    from repro.analysis.tables import render_table
    from repro.core.cds import compute_cds
    from repro.graphs.generators import (
        clustered_connected_network,
        random_connected_network,
    )

    rng = np.random.default_rng(bench_seed())
    rows = []
    sizes = {}
    for label, gen in (
        ("uniform", lambda: random_connected_network(50, rng=rng)),
        ("3 clusters", lambda: clustered_connected_network(
            50, clusters=3, rng=rng)),
        ("5 clusters", lambda: clustered_connected_network(
            50, clusters=5, rng=rng)),
    ):
        per_scheme = {}
        for scheme in ("nr", "id", "nd"):
            total = 0
            for _ in range(8):
                net = gen()
                total += compute_cds(net, scheme).size
            per_scheme[scheme] = total / 8
        sizes[label] = per_scheme
        rows.append(
            [label, per_scheme["nr"], per_scheme["id"], per_scheme["nd"]]
        )
    table = render_table(
        ["placement", "NR", "ID", "ND"],
        rows,
        title="CDS size on clustered vs uniform placements (N=50)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "sensitivity_clustered.txt").write_text(table + "\n")

    # clustering shrinks the pruned backbone relative to uniform
    assert sizes["3 clusters"]["nd"] < sizes["uniform"]["nd"]
    # and the scheme ordering is stable
    for label in sizes:
        assert sizes[label]["nr"] > sizes[label]["id"] > sizes[label]["nd"] * 0.99

    net = clustered_connected_network(50, clusters=3, rng=rng)
    benchmark(lambda: compute_cds(net, "nd").size)
