"""Figure 10 — average number of gateway hosts vs N for NR/ID/ND/EL1/EL2.

Paper shape: NR is by far the largest; ND and EL2 give the smallest sets;
ID sits in between.  The metric is |G'| averaged over every update interval
of the dynamic simulation (energies diverge over time, which is what
separates EL1/EL2 from ID/ND).

Regenerates the figure once (module fixture), prints the table + chart,
asserts the headline orderings, and times the figure's kernel (one full
marking + pruning pipeline at N = 100) with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_figure10
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network

from conftest import bench_parallel, bench_seed, bench_sweep, bench_trials, emit


@pytest.fixture(scope="module")
def figure10():
    return run_figure10(
        n_values=bench_sweep(),
        trials=bench_trials(),
        root_seed=bench_seed(),
        parallel=bench_parallel(),
    )


def test_fig10_report_and_shape(figure10, results_dir, capsys, benchmark):
    emit(capsys, figure10, results_dir, "figure10")

    ns = figure10.n_values
    large = [i for i, n in enumerate(ns) if n >= 50]
    assert large, "sweep must include N >= 50 to judge the paper's shape"
    for i in large:
        nr = figure10.series["nr"][i].mean
        idm = figure10.series["id"][i].mean
        nd = figure10.series["nd"][i].mean
        el2 = figure10.series["el2"][i].mean
        # NR largest by far; ID prunes; ND prunes harder; EL2 tracks ND
        # (well below ID, within ~a quarter of ND once energies diverge)
        assert nr > idm > nd
        assert el2 < idm
        assert el2 <= nd * 1.3

    # kernel timing: one full pipeline on a fresh N=100 snapshot
    net = random_connected_network(100, rng=bench_seed())
    adj = net.snapshot()
    result = benchmark(lambda: compute_cds(adj, "nd"))
    assert result.size >= 1
