"""Append-only perf-trajectory store: ``BENCH_trajectory.json``.

``BENCH_pipeline.json`` is a *snapshot* — rewritten wholesale at the end
of every benchmark session, so it can only be diffed against a copy you
remembered to keep.  This module is the longitudinal complement: a small
append-only log of named measurements (one JSON object per run, stamped
with time + platform) that the perf gate (:mod:`perf_gate`) compares new
measurements against.  ``bench_vectorized.py --record`` and
``bench_sparse.py --record`` both append their headline numbers here.

Schema (``repro-bench-trajectory/1``)::

    {
      "schema": "repro-bench-trajectory/1",
      "runs": [
        {"name": "vec_interval_n1000_nd", "value": 0.062, "unit": "s",
         "platform": "Linux-...", "python": "3.12.3",
         "created_unix": 1754660000.0, "meta": {...}},
        ...
      ]
    }

Two kinds of measurement live side by side and the gate treats them
differently (see :mod:`perf_gate`):

* **ratios** (speedups, relative costs) — machine-independent, compared
  against the full recorded history;
* **absolute times** — only comparable on the machine that recorded
  them, so the gate filters history to runs with the same
  platform/python signature before judging.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

SCHEMA = "repro-bench-trajectory/1"
TRAJECTORY_JSON = Path(__file__).parent / "results" / "BENCH_trajectory.json"

__all__ = [
    "SCHEMA",
    "TRAJECTORY_JSON",
    "append_run",
    "load",
    "platform_signature",
    "series",
]


def platform_signature() -> tuple[str, str]:
    """(platform, python) pair that makes absolute timings comparable."""
    return platform.platform(), platform.python_version()


def load(path: str | Path | None = None) -> dict[str, Any]:
    """Read the trajectory log (an empty, valid payload if absent)."""
    p = Path(path) if path is not None else TRAJECTORY_JSON
    if not p.exists():
        return {"schema": SCHEMA, "runs": []}
    payload = json.loads(p.read_text(encoding="utf-8"))
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{p}: unknown trajectory schema {payload.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    payload.setdefault("runs", [])
    return payload


def append_run(
    name: str,
    value: float,
    unit: str,
    *,
    meta: dict[str, Any] | None = None,
    path: str | Path | None = None,
) -> dict[str, Any]:
    """Append one timestamped measurement; returns the stored record."""
    p = Path(path) if path is not None else TRAJECTORY_JSON
    payload = load(p)
    plat, py = platform_signature()
    run = {
        "name": name,
        "value": float(value),
        "unit": unit,
        "platform": plat,
        "python": py,
        "created_unix": time.time(),
    }
    if meta:
        run["meta"] = meta
    payload["runs"].append(run)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return run


def series(
    payload: dict[str, Any],
    name: str,
    *,
    same_platform_only: bool = False,
) -> list[float]:
    """All recorded values of ``name``, oldest first.

    ``same_platform_only`` keeps only runs whose (platform, python)
    signature matches this interpreter — required before judging
    absolute wall-clock numbers.
    """
    plat, py = platform_signature()
    out = []
    for run in payload.get("runs", []):
        if run.get("name") != name:
            continue
        if same_platform_only and (
            run.get("platform") != plat or run.get("python") != py
        ):
            continue
        out.append(float(run["value"]))
    return out
