"""Unidirectional-links bench: the directed extension at work.

Sweeps the transmission-range heterogeneity: at spread 0 every link is
bidirectional (the paper's model) and the directed pipeline must coincide
with Wu–Li; as spread grows, one-way links appear and the backbone must
grow to keep every host both dominated (hearable) and absorbed (heard).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.core.unidirectional import (
    compute_directed_cds,
    is_dominating_and_absorbing,
    strongly_connected_within,
)
from repro.graphs import bitset
from repro.graphs.digraph import random_strongly_connected_digraph

from conftest import bench_seed


def test_directed_backbone_vs_heterogeneity(results_dir, capsys, benchmark):
    rng = np.random.default_rng(bench_seed())
    n = 50
    rows = []
    sizes = {}
    for spread in (0.0, 0.2, 0.4):
        cds_sizes, oneway_fracs = [], []
        for _ in range(6):
            view, _, _ = random_strongly_connected_digraph(
                n, range_spread=spread, rng=rng
            )
            out = compute_directed_cds(view, "nd", use_rule_k=True)
            assert is_dominating_and_absorbing(view, out)
            assert strongly_connected_within(view, bitset.mask_from_ids(out))
            cds_sizes.append(len(out))
            arcs = sum(bitset.popcount(m) for m in view.out_adj)
            mutual = sum(bitset.popcount(m) for m in view.bidirectional_core())
            oneway_fracs.append(1.0 - mutual / arcs if arcs else 0.0)
            if spread == 0.0:
                # bidirectional case must coincide with the undirected
                # pipeline up to rule family (marking identical)
                und = compute_cds(view.underlying_undirected(), "nr")
                d = compute_directed_cds(view, "nr")
                assert frozenset(und.gateways) == d
        sizes[spread] = float(np.mean(cds_sizes))
        rows.append(
            [spread, float(np.mean(oneway_fracs)), float(np.mean(cds_sizes))]
        )
    table = render_table(
        ["range spread", "one-way link fraction", "directed |G'| (ND+rule-k)"],
        rows,
        title=f"Unidirectional links: backbone size vs heterogeneity (N={n})",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "unidirectional.txt").write_text(table + "\n")

    view, _, _ = random_strongly_connected_digraph(n, range_spread=0.4, rng=rng)
    benchmark(lambda: compute_directed_cds(view, "nd", use_rule_k=True))


def test_directed_lifespan(results_dir, capsys, benchmark):
    """Does power-aware rotation survive asymmetric links?

    The directed rules prune less aggressively (coverers must be
    bidirectional and strictly higher-key), so the EL edge narrows —
    we assert only that rotation never hurts, and report the numbers.
    """
    from repro.simulation.config import SimulationConfig
    from repro.simulation.directed_lifespan import DirectedLifespanSimulator

    trials = 6
    rows = []
    means = {}
    for scheme in ("id", "nd", "el1", "el2"):
        cfg = SimulationConfig(n_hosts=30, scheme=scheme, drain_model="fixed")
        runs = [
            DirectedLifespanSimulator(
                cfg, rng=np.random.default_rng(bench_seed() + t)
            ).run()
            for t in range(trials)
        ]
        life = float(np.mean([r.lifespan for r in runs]))
        means[scheme] = life
        rows.append(
            [scheme.upper(), life,
             float(np.mean([r.mean_cds_size for r in runs])),
             float(np.mean([r.one_way_arc_fraction for r in runs]))]
        )
    table = render_table(
        ["scheme", "lifespan", "mean |G'|", "one-way fraction"],
        rows,
        title=f"Directed lifespan (range spread 0.4, N=30, {trials} trials)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "unidirectional_lifespan.txt").write_text(table + "\n")

    assert means["el1"] >= means["id"] * 0.98
    assert means["el2"] >= means["id"] * 0.98

    cfg = SimulationConfig(n_hosts=20, scheme="el1", drain_model="fixed")
    benchmark.pedantic(
        lambda: DirectedLifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=3,
        iterations=1,
    )
