"""Extension benches: Rule-k, traffic-driven lifespan, churn, and
routing-table maintenance (beyond the paper's own figures).

Each quantifies one extension DESIGN.md calls out:

* Rule-k — the Dai–Wu arbitrary-coverage generalization vs the paper's
  pair rules, per priority scheme;
* traffic lifespan — the headline conclusion re-derived with drain coming
  from actually-routed packets instead of the abstract d/d';
* churn — the paper's "switching on/off as a special form of mobility",
  with per-component CDS over the fragmenting topology;
* maintenance — §1's "no need to recalculate routing tables" claim,
  measured as the fraction of intervals whose change class required a
  full backbone recomputation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.core.marking import marked_mask
from repro.core.properties import is_cds
from repro.core.rule_k import compute_cds_rule_k
from repro.geometry.space import Region2D
from repro.graphs import bitset
from repro.graphs.generators import random_connected_network
from repro.mobility.churn import ChurnModel
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk
from repro.routing.maintenance import TableMaintainer
from repro.simulation.config import SimulationConfig
from repro.simulation.churn_lifespan import ChurnLifespanSimulator
from repro.simulation.traffic_lifespan import TrafficLifespanSimulator

from conftest import bench_seed, bench_trials


@pytest.fixture(scope="module")
def snapshots():
    rng = np.random.default_rng(bench_seed())
    nets = [random_connected_network(50, rng=rng) for _ in range(8)]
    energies = [rng.integers(1, 100, 50).astype(float) for _ in nets]
    return nets, energies


def test_rule_k_vs_pair_rules(snapshots, results_dir, capsys, benchmark):
    nets, energies = snapshots
    rows = []
    for scheme in ("id", "nd", "el1", "el2"):
        pair_total = k_total = 0
        for net, energy in zip(nets, energies):
            pair = compute_cds(net, scheme, energy=energy)
            k = compute_cds_rule_k(net, scheme, energy=energy)
            assert is_cds(net.adjacency, bitset.mask_from_ids(k))
            pair_total += pair.size
            k_total += len(k)
        rows.append(
            [scheme.upper(), pair_total / len(nets), k_total / len(nets)]
        )
    table = render_table(
        ["scheme", "pair rules |G'|", "rule-k |G'|"],
        rows,
        title="Rule-k (Dai-Wu) vs the paper's pair rules (N=50, 8 snapshots)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "extension_rule_k.txt").write_text(table + "\n")

    # under the plain ID priority, arbitrary coverage prunes at least as
    # hard as the pair rules on average
    id_row = rows[0]
    assert id_row[2] <= id_row[1] + 0.5

    net, energy = nets[0], energies[0]
    benchmark(lambda: compute_cds_rule_k(net, "nd", energy=energy))


def test_traffic_driven_lifespan(results_dir, capsys, benchmark):
    trials = max(4, bench_trials() // 2)
    rows = []
    means = {}
    for scheme in ("nr", "id", "nd", "el1", "el2"):
        cfg = SimulationConfig(n_hosts=30, scheme=scheme, drain_model="fixed")
        runs = [
            TrafficLifespanSimulator(
                cfg, rng=np.random.default_rng(bench_seed() + t)
            ).run()
            for t in range(trials)
        ]
        life = float(np.mean([r.lifespan for r in runs]))
        means[scheme] = life
        rows.append(
            [scheme.upper(), life,
             float(np.mean([r.mean_cds_size for r in runs])),
             float(np.mean([r.mean_route_length for r in runs]))]
        )
    table = render_table(
        ["scheme", "lifespan", "mean |G'|", "mean route len"],
        rows,
        title=(
            f"Traffic-driven lifespan (real routed packets, N=30, "
            f"{trials} trials)"
        ),
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "extension_traffic.txt").write_text(table + "\n")

    # the paper's conclusion must survive real routing: EL rotation wins
    assert means["el1"] >= means["id"]

    cfg = SimulationConfig(n_hosts=20, scheme="el1", drain_model="fixed")
    benchmark.pedantic(
        lambda: TrafficLifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=3,
        iterations=1,
    )


def test_churn_lifespan(results_dir, capsys, benchmark):
    trials = max(4, bench_trials() // 2)
    rows = []
    means = {}
    for scheme in ("id", "el1"):
        for churn, label in (
            (ChurnModel(0.0, 0.0), "always on"),
            (ChurnModel(0.2, 0.4), "churning"),
        ):
            cfg = SimulationConfig(
                n_hosts=30, scheme=scheme, drain_model="fixed"
            )
            runs = [
                ChurnLifespanSimulator(
                    cfg, churn, rng=np.random.default_rng(bench_seed() + t)
                ).run()
                for t in range(trials)
            ]
            life = float(np.mean([r.lifespan for r in runs]))
            means[(scheme, label)] = life
            rows.append(
                [scheme.upper(), label, life,
                 float(np.mean([r.mean_active_hosts for r in runs])),
                 float(np.mean([r.mean_components for r in runs]))]
            )
    table = render_table(
        ["scheme", "churn", "lifespan", "mean active", "mean components"],
        rows,
        title=f"Lifespan with host on/off churn (N=30, {trials} trials)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "extension_churn.txt").write_text(table + "\n")

    # sleeping part of the time extends life; EL1 keeps its edge either way
    assert means[("id", "churning")] > means[("id", "always on")]
    assert means[("el1", "churning")] >= means[("id", "churning")] * 0.95

    cfg = SimulationConfig(n_hosts=20, scheme="el1", drain_model="fixed")
    benchmark.pedantic(
        lambda: ChurnLifespanSimulator(
            cfg, ChurnModel(0.2, 0.4), rng=bench_seed()
        ).run().lifespan,
        rounds=3,
        iterations=1,
    )


def test_table_maintenance_rate(results_dir, capsys, benchmark):
    rng = np.random.default_rng(bench_seed())
    intervals = 40
    rows = []
    rates = {}
    for stability, label in ((0.5, "paper c=0.5"), (0.95, "c=0.95")):
        net = random_connected_network(25, rng=rng)
        mgr = MobilityManager(
            net, PaperWalk(stability=stability),
            Region2D(side=net.side), rng=rng,
        )
        maintainer = TableMaintainer()
        for _ in range(intervals):
            r = compute_cds(net, "id")
            maintainer.update(net.adjacency, r.gateways)
            mgr.step()
        s = maintainer.stats
        rates[label] = s.recalculation_rate()
        rows.append(
            [label, s.unchanged, s.membership_only, s.backbone,
             s.recalculation_rate()]
        )
    table = render_table(
        ["mobility", "unchanged", "membership-only", "backbone recompute",
         "recompute rate"],
        rows,
        title=f"Routing-table maintenance over {intervals} intervals (N=25)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "extension_maintenance.txt").write_text(table + "\n")

    # slower networks recalculate less — the paper's claimed saving
    assert rates["c=0.95"] <= rates["paper c=0.5"]

    net = random_connected_network(25, rng=rng)
    r = compute_cds(net, "id")
    maintainer = TableMaintainer()
    adj = list(net.adjacency)
    benchmark(lambda: maintainer.update(adj, r.gateways))


def test_price_of_locality(results_dir, capsys, benchmark):
    """How close does the local EL1 scheme come to a centralized oracle?

    The oracle recomputes a Guha-Khuller-style CDS each interval with
    global knowledge of every battery (ties break toward high energy).
    EL1 sees only 2-hop neighborhoods — its gap to the oracle is the
    price of the paper's locality.
    """
    from repro.baselines.energy_greedy import energy_aware_greedy_cds
    from repro.simulation.lifespan import LifespanSimulator

    trials = max(4, bench_trials() // 2)
    rows = []
    means = {}
    for label, scheme, fn in (
        ("ID (local)", "id", None),
        ("EL1 (local)", "el1", None),
        ("energy oracle (global)", "id", energy_aware_greedy_cds),
    ):
        cfg = SimulationConfig(n_hosts=40, scheme=scheme, drain_model="fixed")
        runs = [
            LifespanSimulator(
                cfg, rng=np.random.default_rng(bench_seed() + t), cds_fn=fn
            ).run()
            for t in range(trials)
        ]
        life = float(np.mean([r.lifespan for r in runs]))
        means[label] = life
        rows.append(
            [label, life,
             float(np.mean([r.metrics.mean_cds_size for r in runs])),
             float(np.mean([r.metrics.gateway_duty_jain for r in runs]))]
        )
    table = render_table(
        ["selector", "lifespan", "mean |G'|", "duty Jain"],
        rows,
        title=f"Price of locality (N=40, d=2 per gateway, {trials} trials)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "extension_price_of_locality.txt").write_text(table + "\n")

    # local EL1 beats local ID and lands within 80% of the global oracle
    assert means["EL1 (local)"] > means["ID (local)"]
    assert means["EL1 (local)"] >= 0.8 * means["energy oracle (global)"]

    cfg = SimulationConfig(n_hosts=30, scheme="id", drain_model="fixed")
    benchmark.pedantic(
        lambda: LifespanSimulator(
            cfg, rng=bench_seed(), cds_fn=energy_aware_greedy_cds
        ).run().lifespan,
        rounds=3,
        iterations=1,
    )
