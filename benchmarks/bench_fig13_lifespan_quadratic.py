"""Figure 13 — average lifespan vs N, drain model 3 (d ∝ N(N-1)/2).

Paper shape: as Figure 12 but sharper — pair traffic makes gateway drain
dwarf d' at large N, lifespans collapse with N, EL1 clearly best, ID worst.

Both readings regenerated (literal ``d = N(N-1)/2 / (10|G'|)`` and
per-gateway ``d = N(N-1)/200``); the paper's ordering is asserted on the
per-gateway reading, collapse-with-N on both.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_lifespan_figure
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator

from conftest import bench_parallel, bench_seed, bench_sweep, bench_trials, emit


def _run(model):
    return run_lifespan_figure(
        model,
        n_values=bench_sweep(),
        trials=bench_trials(),
        root_seed=bench_seed(),
        parallel=bench_parallel(),
    )


@pytest.fixture(scope="module")
def literal():
    return _run("quadratic")


@pytest.fixture(scope="module")
def per_gateway():
    return _run("pg-quadratic")


def test_fig13_literal_reading(literal, results_dir, capsys, benchmark):
    emit(capsys, literal, results_dir, "figure13_literal")

    # lifespan collapses as N grows for every scheme
    for scheme, summaries in literal.series.items():
        assert summaries[-1].mean < summaries[0].mean, scheme

    cfg = SimulationConfig(n_hosts=50, scheme="el1", drain_model="quadratic")
    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=5,
        iterations=1,
    )


def test_fig13_per_gateway_reading(per_gateway, results_dir, capsys, benchmark):
    emit(capsys, per_gateway, results_dir, "figure13_per_gateway")

    ns = per_gateway.n_values
    large = [i for i, n in enumerate(ns) if n >= 25]
    assert large
    strict_wins = 0
    for i in large:
        el1 = per_gateway.series["el1"][i].mean
        idm = per_gateway.series["id"][i].mean
        nr = per_gateway.series["nr"][i].mean
        # quadratic drain is so harsh at the top of the sweep that every
        # scheme dies within a gateway stint or two (lifespans quantize to
        # the same handful of intervals); EL1 must never lose, and must
        # strictly win wherever rotation has room to act
        assert el1 >= idm, (ns[i], el1, idm)
        assert el1 >= nr, (ns[i], el1, nr)
        if el1 > idm and el1 > nr:
            strict_wins += 1
    assert strict_wins >= 1

    for scheme, summaries in per_gateway.series.items():
        assert summaries[-1].mean < summaries[0].mean, scheme

    cfg = SimulationConfig(
        n_hosts=50, scheme="el1", drain_model="pg-quadratic"
    )
    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=5,
        iterations=1,
    )
