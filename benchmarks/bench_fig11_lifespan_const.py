"""Figure 11 — average lifespan vs N under drain model 1 ("d is a constant").

Paper shape: ND, EL1, EL2 stay very close, ID clearly the worst.

Both readings of the model are regenerated (see EXPERIMENTS.md):

* **literal** ``d = 2/|G'|`` — gateways then drain *slower* than
  non-gateways whenever |G'| > 2, so lifespans floor at ~initial_energy
  and larger backbones (NR) shelter more hosts.  We assert only those
  robust facts here.
* **per-gateway** ``d = 2`` — every gateway pays a constant bypass cost,
  under which the paper's claimed ordering reproduces and is asserted.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_lifespan_figure
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator

from conftest import bench_parallel, bench_seed, bench_sweep, bench_trials, emit


def _run(model):
    return run_lifespan_figure(
        model,
        n_values=bench_sweep(),
        trials=bench_trials(),
        root_seed=bench_seed(),
        parallel=bench_parallel(),
    )


@pytest.fixture(scope="module")
def literal():
    return _run("constant")


@pytest.fixture(scope="module")
def per_gateway():
    return _run("fixed")


def test_fig11_literal_reading(literal, results_dir, capsys, benchmark):
    emit(capsys, literal, results_dir, "figure11_literal")

    for i, n in enumerate(literal.n_values):
        nr = literal.series["nr"][i].mean
        for scheme, summaries in literal.series.items():
            # max per-host drain is max(d', 2/|G'|) <= 1 for |G'| >= 2:
            # no trial can end much before initial_energy intervals
            assert summaries[i].mean >= 95.0, (scheme, n)
            assert summaries[i].mean <= nr * 1.05, (scheme, n)

    cfg = SimulationConfig(n_hosts=50, scheme="id", drain_model="constant")
    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=3,
        iterations=1,
    )


def test_fig11_per_gateway_reading(per_gateway, results_dir, capsys, benchmark):
    emit(capsys, per_gateway, results_dir, "figure11_per_gateway")

    large = [i for i, n in enumerate(per_gateway.n_values) if n >= 50]
    assert large
    for i in large:
        idm = per_gateway.series["id"][i].mean
        nd = per_gateway.series["nd"][i].mean
        el1 = per_gateway.series["el1"][i].mean
        el2 = per_gateway.series["el2"][i].mean
        # ND/EL1/EL2 close together ...
        trio = [nd, el1, el2]
        assert max(trio) - min(trio) <= 0.25 * max(trio)
        # ... with ID clearly the worst of the rule-based schemes
        assert idm <= min(trio), (per_gateway.n_values[i], idm, trio)

    cfg = SimulationConfig(n_hosts=50, scheme="el1", drain_model="fixed")
    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=3,
        iterations=1,
    )
