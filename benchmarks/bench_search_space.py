"""Search-space reduction bench (supports the paper's §1 motivation —
not a numbered figure).

"The main idea of this approach is to reduce routing and searching to a
subgraph induced from the dominating set."  This bench quantifies the
claim: a route-discovery broadcast relayed only by gateways versus blind
flooding, across network sizes and schemes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network
from repro.routing.broadcast import compare_flooding

from conftest import bench_seed


def test_flooding_savings(results_dir, capsys, benchmark):
    rng = np.random.default_rng(bench_seed())
    rows = []
    savings = {}
    for n in (25, 50, 100):
        for scheme in ("id", "nd"):
            blind_tx = bb_tx = 0
            nets = [random_connected_network(n, rng=rng) for _ in range(5)]
            for net in nets:
                r = compute_cds(net, scheme)
                src = int(rng.integers(0, n))
                cmp = compare_flooding(net.adjacency, src, r.gateway_mask)
                blind_tx += cmp.blind.transmissions
                bb_tx += cmp.backbone.transmissions
            saving = 1.0 - bb_tx / blind_tx
            savings[(n, scheme)] = saving
            rows.append(
                [n, scheme.upper(), blind_tx / 5, bb_tx / 5, saving]
            )
    table = render_table(
        ["N", "scheme", "blind tx", "backbone tx", "saving"],
        rows,
        title="Route-discovery broadcast: blind vs backbone flooding",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "search_space.txt").write_text(table + "\n")

    # the reduction must be real and grow with N (backbone ratio shrinks)
    for (n, scheme), saving in savings.items():
        assert saving > 0.1, (n, scheme)
    assert savings[(100, "nd")] > savings[(25, "nd")]
    # the smaller ND backbone saves more than ID's
    assert savings[(100, "nd")] > savings[(100, "id")]

    net = random_connected_network(100, rng=rng)
    r = compute_cds(net, "nd")
    adj = list(net.adjacency)
    benchmark(lambda: compare_flooding(adj, 0, r.gateway_mask))
