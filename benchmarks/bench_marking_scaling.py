"""Performance scaling of the CDS pipeline (not a paper figure).

Times the three computational kernels — UDG construction, the marking
process, and the full marking + pruning pipeline — at increasing network
sizes, so regressions in the bitset hot paths are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.marking import marked_mask
from repro.graphs.unitdisk import unit_disk_adjacency
from repro.graphs.generators import random_connected_network

from conftest import bench_seed


@pytest.fixture(scope="module")
def topologies():
    nets = {}
    for n in (50, 100, 200):
        nets[n] = random_connected_network(n, rng=bench_seed() + n)
    return nets


@pytest.mark.parametrize("n", [50, 100, 200])
def test_udg_construction(benchmark, topologies, n):
    pos = topologies[n].positions
    adj = benchmark(lambda: unit_disk_adjacency(pos, 25.0))
    assert len(adj) == n


@pytest.mark.parametrize("n", [50, 100, 200])
def test_marking_process(benchmark, topologies, n):
    adj = list(topologies[n].adjacency)
    marked = benchmark(lambda: marked_mask(adj))
    assert marked


@pytest.mark.parametrize("n", [50, 100, 200])
@pytest.mark.parametrize("scheme", ["id", "nd", "el2"])
def test_full_pipeline(benchmark, topologies, n, scheme):
    snap = topologies[n].snapshot()
    energy = np.linspace(1.0, 100.0, n)
    result = benchmark(lambda: compute_cds(snap, scheme, energy=energy))
    assert result.size >= 1
