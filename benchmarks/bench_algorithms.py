"""The algorithm registry: Wu–Li bit-identity gate + the matrix campaign.

Two script modes (plus nothing under pytest — the timing benches live in
``bench_vectorized.py``; this file is the registry's CI gate and the
producer of the ``extra.algorithms`` payload)::

    python benchmarks/bench_algorithms.py --smoke     # CI gate
    python benchmarks/bench_algorithms.py --record    # algorithm matrix

``--smoke`` asserts two things on seeded geometric networks:

* routing Wu–Li through :mod:`repro.core.registry` is **bit-identical**
  (gateway mask *and* PruneStats) to calling ``compute_cds`` directly,
  across all five schemes and all three execution paths (scalar scratch,
  delta pipeline, vectorized kernels);
* every registered algorithm drives one verified lifespan interval — a
  real :func:`repro.simulation.interval.run_interval` tick with
  ``verify=True`` — at small N.

``--record`` runs :func:`repro.analysis.experiments.run_algorithm_matrix`
(the algorithm × scheme lifespan grid through the sharded SweepExecutor)
and merges the curves into ``benchmarks/results/BENCH_pipeline.json``
under ``extra.algorithms`` (read-modify-write, same protocol as
``bench_vectorized.py --record``).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.cds import compute_cds
from repro.core.delta import DeltaCDSPipeline
from repro.core.priority import scheme_by_name
from repro.core.registry import ALGORITHMS
from repro.core.vectorized import VectorizedCDSPipeline
from repro.graphs.generators import random_connected_network

SCHEMES = ("nr", "id", "nd", "el1", "el2")


def _nets(seed: int, count: int = 4, lo: int = 10, hi: int = 70):
    rng = np.random.default_rng(seed)
    for i in range(count):
        n = int(rng.integers(lo, hi))
        net = random_connected_network(n, side=80, radius=25, rng=seed + i)
        energy = list(rng.uniform(50.0, 150.0, size=n))
        yield net, energy


def _gate_wu_li_identity(seed: int) -> None:
    """Registry wu_li == compute_cds, masks and stats, all backends."""
    algo = ALGORITHMS["wu_li"]
    checked = 0
    for net, energy in _nets(seed):
        for scheme in SCHEMES:
            ref = compute_cds(net, scheme, energy=energy)
            via = algo.compute(net, scheme, energy)
            assert (via.gateway_mask, via.stats) == (
                ref.gateway_mask, ref.stats,
            ), f"registry wu_li diverged from compute_cds on scheme {scheme}"
            sch = scheme_by_name(scheme)
            dlt = DeltaCDSPipeline(sch).compute(list(net.adjacency), energy)
            assert dlt.gateway_mask == ref.gateway_mask, (
                f"delta pipeline diverged on scheme {scheme}"
            )
            vec = VectorizedCDSPipeline(sch).compute(net, energy=energy)
            assert (vec.gateway_mask, vec.stats) == (
                ref.gateway_mask, ref.stats,
            ), f"vectorized pipeline diverged on scheme {scheme}"
            checked += 1
    print(f"wu_li bit-identity ok: {checked} (network, scheme) cells x 3 backends")


def _gate_one_interval_each(seed: int) -> None:
    """Every registered algorithm survives a verified lifespan interval."""
    from repro.simulation.config import SimulationConfig
    from repro.simulation.lifespan import LifespanSimulator

    for name in sorted(ALGORITHMS):
        cfg = SimulationConfig(
            n_hosts=15,
            side=60.0,
            radius=30.0,
            scheme="el2",
            initial_energy=10.0,
            max_intervals=200,
            verify_invariants=True,
            algorithm=name,
        )
        result = LifespanSimulator(cfg, rng=seed).run()
        print(
            f"  {name:>16}: lifespan {result.lifespan:>3} intervals, "
            f"mean |G'| {result.metrics.mean_cds_size:.1f} (verified)"
        )


def _smoke(seed: int) -> int:
    _gate_wu_li_identity(seed)
    _gate_one_interval_each(seed)
    print("smoke ok")
    return 0


def _record(seed: int, output: str, n_hosts: int, trials: int) -> int:
    import json

    from repro.analysis.experiments import run_algorithm_matrix

    t0 = time.perf_counter()
    matrix = run_algorithm_matrix(
        n_hosts=n_hosts, trials=trials, root_seed=seed, parallel=True
    )
    elapsed = time.perf_counter() - t0
    print(matrix.to_table())
    print(f"matrix done in {elapsed:.1f}s")
    if output != "-":
        out = Path(output)
        if out.exists():
            payload = json.loads(out.read_text(encoding="utf-8"))
        else:
            payload = {"schema": "repro-bench-pipeline/1", "benchmarks": []}
        record = matrix.to_json()
        record["seed"] = seed
        record["wall_seconds"] = elapsed
        record["created_unix"] = time.time()
        payload.setdefault("extra", {})["algorithms"] = record
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"merged algorithm matrix into {out} (extra.algorithms)")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="wu_li bit-identity across schemes x backends + one verified "
        "lifespan run per registered algorithm",
    )
    p.add_argument(
        "--record", action="store_true",
        help="run the algorithm x scheme lifespan matrix and merge the "
        "curves into the bench JSON under extra.algorithms",
    )
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument("--hosts", type=int, default=30)
    p.add_argument("--trials", type=int, default=5)
    p.add_argument(
        "--output", default="benchmarks/results/BENCH_pipeline.json",
        help="bench JSON to merge --record numbers into (under "
        "extra.algorithms); '-' skips writing",
    )
    args = p.parse_args(argv)
    if not (args.smoke or args.record):
        p.error("pass --smoke and/or --record")
    rc = 0
    if args.smoke:
        rc = _smoke(args.seed)
    if rc == 0 and args.record:
        rc = _record(args.seed, args.output, args.hosts, args.trials)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
