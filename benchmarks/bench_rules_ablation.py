"""Ablations of the design choices DESIGN.md calls out (not a paper figure).

1. **Rule contributions** — how much of the pruning each rule delivers
   (Rule 1 alone vs Rule 1 + Rule 2), per scheme.
2. **Single pass vs fixed point** — the paper applies each rule once per
   interval; iterating to a fixed point shrinks the set further at extra
   local rounds.
3. **Mobility details** — integer vs continuous step lengths and the three
   boundary policies; the paper leaves both unspecified, so we show the
   lifespan conclusion is insensitive to them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_trials

from conftest import bench_parallel, bench_seed, bench_trials


@pytest.fixture(scope="module")
def snapshots():
    rng = np.random.default_rng(bench_seed())
    nets = [random_connected_network(50, rng=rng) for _ in range(10)]
    energy = [rng.integers(1, 100, 50).astype(float) for _ in nets]
    return nets, energy


def test_rule_contributions(benchmark, snapshots, results_dir, capsys):
    nets, energies = snapshots
    rows = []
    for scheme in ("id", "nd", "el1", "el2"):
        marked = r1 = r2 = 0
        for net, energy in zip(nets, energies):
            r = compute_cds(net, scheme, energy=energy)
            marked += r.stats.initial_marked
            r1 += r.stats.removed_rule1
            r2 += r.stats.removed_rule2
        rows.append(
            [scheme.upper(), marked / len(nets), r1 / len(nets), r2 / len(nets),
             (marked - r1 - r2) / len(nets)]
        )
    table = render_table(
        ["scheme", "marked", "rule1 removed", "rule2 removed", "final"],
        rows,
        title="Rule contribution ablation (N=50, 10 snapshots)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "ablation_rules.txt").write_text(table + "\n")

    # Rule 2 does the heavy lifting for the keyed schemes
    for row in rows[1:]:
        assert row[3] > 0

    net, energy = nets[0], energies[0]
    benchmark(lambda: compute_cds(net, "el2", energy=energy))


def test_single_pass_vs_fixed_point(benchmark, snapshots, results_dir, capsys):
    nets, energies = snapshots
    rows = []
    for scheme in ("id", "nd", "el1", "el2"):
        single = fixed = rounds = 0
        for net, energy in zip(nets, energies):
            s = compute_cds(net, scheme, energy=energy)
            f = compute_cds(net, scheme, energy=energy, fixed_point=True)
            single += s.size
            fixed += f.size
            rounds += f.stats.rounds
            assert f.size <= s.size
        rows.append(
            [scheme.upper(), single / len(nets), fixed / len(nets),
             rounds / len(nets)]
        )
    table = render_table(
        ["scheme", "single-pass |G'|", "fixed-point |G'|", "rounds"],
        rows,
        title="Single pass (paper) vs fixed-point iteration (N=50)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "ablation_fixed_point.txt").write_text(table + "\n")

    net, energy = nets[0], energies[0]
    benchmark(
        lambda: compute_cds(net, "nd", energy=energy, fixed_point=True)
    )


def test_mobility_detail_insensitivity(benchmark, results_dir, capsys):
    trials = max(4, bench_trials() // 2)
    variants = {
        "paper (clamp, continuous l)": {},
        "integer steps": {"integer_steps": True},
        "reflect boundary": {"boundary": "reflect"},
        "torus boundary": {"boundary": "torus"},
    }
    rows = []
    means = {}
    for label, overrides in variants.items():
        cfg = SimulationConfig(
            n_hosts=50, scheme="el1", drain_model="fixed", **overrides
        )
        ms = run_trials(
            cfg, trials, root_seed=bench_seed(), parallel=bench_parallel()
        )
        mean = float(np.mean([m.lifespan for m in ms]))
        means[label] = mean
        rows.append([label, mean])
    table = render_table(
        ["mobility variant", "mean lifespan"],
        rows,
        title=f"Mobility-detail ablation (EL1, d=2, N=50, {trials} trials)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "ablation_mobility.txt").write_text(table + "\n")

    base = means["paper (clamp, continuous l)"]
    for label, mean in means.items():
        assert abs(mean - base) <= 0.30 * base, (label, mean, base)

    cfg = SimulationConfig(n_hosts=30, scheme="el1", drain_model="fixed")
    from repro.simulation.lifespan import LifespanSimulator

    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().lifespan,
        rounds=3,
        iterations=1,
    )
