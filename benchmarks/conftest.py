"""Benchmark harness configuration.

Every figure bench regenerates its paper figure in a module-scoped fixture
(one sweep per file), prints the table + ASCII chart through
``capsys.disabled()`` so it lands in the terminal / ``bench_output.txt``,
saves the raw data under ``benchmarks/results/``, and uses the
``benchmark`` fixture to time the figure's computational kernel.

Environment knobs (all optional):

* ``REPRO_BENCH_TRIALS``  — trials per (N, scheme) cell (default 12),
* ``REPRO_BENCH_SWEEP``   — comma-separated N values (default 10,25,50,75,100),
* ``REPRO_BENCH_SEED``    — root seed (default 2001),
* ``REPRO_BENCH_SERIAL``  — set to 1 to disable the process pool.

At session end every timed benchmark is consolidated into one
machine-readable ``benchmarks/results/BENCH_pipeline.json`` (name, group,
params, timing stats, plus platform + knob metadata).  That file is the
perf trajectory optimisation PRs are judged against: regenerate it before
and after a change and diff the per-kernel means.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
PIPELINE_JSON = "BENCH_pipeline.json"

#: Benches may drop structured side-results here (e.g. the incremental
#: pipeline's speedup/dirty-fraction summary); merged into the
#: ``BENCH_pipeline.json`` payload under ``"extra"`` at session end.
EXTRA: dict = {}


def bench_trials() -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", "12"))


def bench_sweep() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SWEEP", "10,25,50,75,100")
    return tuple(int(x) for x in raw.split(","))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2001"))


def bench_parallel() -> bool:
    return os.environ.get("REPRO_BENCH_SERIAL", "0") != "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(capsys, result, results_dir: Path, stem: str) -> None:
    """Print a figure report live and persist table + JSON + CSV."""
    from repro.io.traces import experiment_to_csv, experiment_to_json

    report = result.report()
    if result.raw is not None and "id" in result.series:
        report += "\n\nWelch t vs the ID baseline (|t| over ~2 is resolved):\n"
        report += "\n".join(f"  {line}" for line in result.significance_lines())
    with capsys.disabled():
        print(f"\n{'=' * 78}\n{report}\n{'=' * 78}")
    (results_dir / f"{stem}.txt").write_text(report + "\n")
    experiment_to_json(result, results_dir / f"{stem}.json")
    experiment_to_csv(result, results_dir / f"{stem}.csv")


def _bench_entry(meta) -> dict | None:
    """One pytest-benchmark Metadata → a flat, JSON-safe record."""
    try:
        d = meta.as_dict(include_data=False, flat=True, stats=True)
    except Exception:
        return None
    keep_stats = (
        "min", "max", "mean", "stddev", "median", "iqr", "rounds",
        "iterations", "ops",
    )
    return {
        "name": d.get("name"),
        "fullname": d.get("fullname"),
        "group": d.get("group"),
        "params": d.get("params"),
        "stats": {k: d[k] for k in keep_stats if k in d},
    }


def pytest_sessionfinish(session, exitstatus):
    """Consolidate this run's timed benchmarks into BENCH_pipeline.json."""
    bs = getattr(session.config, "_benchmarksession", None)
    benches = getattr(bs, "benchmarks", None) if bs is not None else None
    if not benches:
        return
    entries = [e for e in (_bench_entry(m) for m in benches) if e is not None]
    if not entries:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": "repro-bench-pipeline/1",
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "knobs": {
            "trials": bench_trials(),
            "sweep": list(bench_sweep()),
            "seed": bench_seed(),
            "parallel": bench_parallel(),
        },
        "exit_status": int(exitstatus),
        "benchmarks": sorted(entries, key=lambda e: e["fullname"] or ""),
    }
    if EXTRA:
        payload["extra"] = dict(EXTRA)
    (RESULTS_DIR / PIPELINE_JSON).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
