"""Distributed protocol traffic (quantifies the paper's "low bandwidth"
motivation — not a numbered figure).

Measures rounds, broadcasts, and bytes on air for the full distributed CDS
protocol as the network grows, and verifies the Rule-2 sub-round count
stays small (the protocol's latency is dominated by the fixed 3 rounds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network
from repro.protocol.distributed_cds import distributed_cds

from conftest import bench_seed


@pytest.fixture(scope="module")
def networks():
    rng = np.random.default_rng(bench_seed())
    return {n: random_connected_network(n, rng=rng) for n in (25, 50, 100)}


def test_protocol_traffic_scaling(networks, results_dir, capsys, benchmark):
    rows = []
    for n, net in networks.items():
        energy = np.linspace(1, 100, n)
        out = distributed_cds(net.snapshot(), "el2", energy=energy)
        # agreement with the centralized pipeline on the same input
        central = compute_cds(net.snapshot(), "el2", energy=energy)
        assert out.gateways == central.gateways
        s = out.stats
        rows.append(
            [n, s.rounds, s.broadcasts, s.bytes_on_air, s.bytes_delivered,
             len(out.gateways)]
        )
    table = render_table(
        ["N", "rounds", "broadcasts", "bytes on air", "bytes delivered", "|G'|"],
        rows,
        title="Distributed CDS protocol overhead (scheme EL2)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "protocol_overhead.txt").write_text(table + "\n")

    # latency: fixed 3 rounds + Rule-2 sub-rounds.  Sub-round count is
    # bounded by the longest ascending-key candidate chain (worst case
    # linear in N; with fully distinct energies chains of ~15 appear at
    # N=100), so assert the linear bound and report the observed counts.
    for row in rows:
        assert row[1] <= 3 + 2 * row[0]

    net = networks[50]
    energy = np.linspace(1, 100, 50)
    snap = net.snapshot()
    benchmark(lambda: distributed_cds(snap, "el2", energy=energy))


def test_async_protocol_latency(networks, results_dir, capsys, benchmark):
    """Makespan of the event-driven execution under latency jitter.

    Complements the synchronous round counts with wall-clock-style
    latency: per-delivery latencies uniform on [0.5, 2.0] time units.
    """
    from repro.analysis.stats import summarize
    from repro.protocol.async_sim import run_async_cds

    rng = np.random.default_rng(bench_seed())
    rows = []
    for n, net in networks.items():
        energy = np.linspace(1, 100, n)
        makespans, waves, msgs = [], [], []
        snap = net.snapshot()
        for _ in range(5):
            out = run_async_cds(snap, "el2", energy=energy, rng=rng)
            # always the same set as the synchronous protocol
            assert out.gateways == compute_cds(
                snap, "el2", energy=energy
            ).gateways
            makespans.append(out.makespan)
            waves.append(out.rule2_waves)
            msgs.append(out.messages_sent)
        s = summarize(makespans)
        rows.append(
            [n, s.mean, float(np.mean(waves)), float(np.mean(msgs))]
        )
    table = render_table(
        ["N", "mean makespan", "rule-2 waves", "messages"],
        rows,
        title="Async protocol makespan (latency ~ U[0.5, 2.0] per delivery)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "protocol_async.txt").write_text(table + "\n")

    snap = networks[50].snapshot()
    energy = np.linspace(1, 100, 50)
    benchmark(lambda: run_async_cds(snap, "el2", energy=energy, rng=1))
