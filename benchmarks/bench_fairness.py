"""Energy-balance bench — the paper's stated objective, measured directly.

"The objective is [to] devise a selection scheme so that the overall
energy consumption is balanced in [the] network."  Lifespan (Figures
11-13) measures balance indirectly; this bench measures it head-on:

* **gateway duty Jain index** — how evenly gateway work is spread
  (1.0 = everyone serves equally);
* **energy std at death** — how unequal the batteries are when the first
  host dies (lower = more balanced drain).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_trials

from conftest import bench_parallel, bench_seed, bench_trials


def test_energy_balance(results_dir, capsys, benchmark):
    trials = bench_trials()
    rows = []
    jains = {}
    stds = {}
    for scheme in ("nr", "id", "nd", "el1", "el2"):
        cfg = SimulationConfig(n_hosts=50, scheme=scheme, drain_model="fixed")
        ms = run_trials(
            cfg, trials, root_seed=bench_seed(), parallel=bench_parallel()
        )
        jain = float(np.mean([m.gateway_duty_jain for m in ms]))
        std = float(np.mean([m.energy_std_at_death for m in ms]))
        life = float(np.mean([m.lifespan for m in ms]))
        jains[scheme] = jain
        stds[scheme] = std
        rows.append([scheme.upper(), life, jain, std])
    table = render_table(
        ["scheme", "lifespan", "duty Jain", "energy std at death"],
        rows,
        title=f"Energy balance (d = 2 per gateway, N=50, {trials} trials)",
    )
    with capsys.disabled():
        print(f"\n{table}")
    (results_dir / "fairness.txt").write_text(table + "\n")

    # the power-aware schemes must spread duty more evenly than static ID
    assert jains["el1"] > jains["id"]
    assert jains["el2"] > jains["id"]
    # and leave the population's batteries more even at first death
    assert stds["el1"] < stds["id"]

    cfg = SimulationConfig(n_hosts=30, scheme="el1", drain_model="fixed")
    from repro.simulation.lifespan import LifespanSimulator

    benchmark.pedantic(
        lambda: LifespanSimulator(cfg, rng=bench_seed()).run().metrics.gateway_duty_jain,
        rounds=3,
        iterations=1,
    )
