"""Sparse streaming CDS engine: equivalence smoke + the N=100k point.

The sparse engine (:mod:`repro.core.sparse`) is the scale path: CSR
adjacency, per-connected-component decomposition, and chunked streaming
kernels that never allocate an ``n``-bit row — built for N = 100k..1M
where the dense packed batch (N² bits per element) caps out.

pytest mode times the engine at N = 1024/4096 against the dense batch
engine on identical graphs (groups ``sparse-engine``) and pins
bit-identity.  Script modes mirror ``bench_vectorized.py``::

    python benchmarks/bench_sparse.py --smoke     # CI equivalence gate
    python benchmarks/bench_sparse.py --record    # N=100k timing point

``--smoke`` asserts sparse == scratch == vectorized masks + PruneStats
over a seeded grid: word-boundary sizes, disconnected multi-component
batches, a forced-CSR tier (``dense_cutoff=2``), and a tiny memory
budget.  ``--record`` builds an N = 100k (default; ``--hosts`` scales)
unit-disk graph straight from positions, runs one full interval per
scheme under ``tracemalloc``, and merges latency + peak memory into
``BENCH_pipeline.json`` under ``extra.sparse_100k`` (read-modify-write —
the pytest session owns the rest of the file) and appends the headline
numbers to ``BENCH_trajectory.json``.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from repro.core.cds import compute_cds
from repro.core.sparse import CSRBatch, SparseCDSEngine, compute_cds_sparse
from repro.core.vectorized import (
    BatchCDSEngine,
    compute_cds_batch,
    pack_batch,
)
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import random_connected_network, scaled_side

RADIUS = 25.0
SCHEMES = ("nr", "id", "nd", "el1", "el2")
BIG_HOSTS = 100_000
#: --record asserts the tracemalloc peak stays under this multiple of
#: ``max(CSR bytes, chunk budget)``.  Measured behavior: each streamed
#: chunk materializes ~7-8 budget-sized int64 temporaries (miss lists,
#: coverage probes, rank gathers), so peak ≈ 8x the chunk budget once
#: edges overflow one chunk; 16x covers that with headroom while still
#: catching a densification bug (a dense N=100k row table would be
#: ~1.25 GB per 64 MB of budget — far past the limit).
PEAK_OVER_BUDGET_LIMIT = 16.0


def _positions(n: int, seed: int) -> tuple[np.ndarray, float]:
    """Density-constant uniform placements (no connectivity resampling —
    at 100k that would never converge, and components are the point)."""
    side = scaled_side(n)
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, side, size=(n, 2)), side


def _graphs(seed: int):
    """The --smoke equivalence grid: adjacency batches + energies."""
    rng = np.random.default_rng(seed)
    batches = []
    # word-boundary sizes, connected
    for n in (63, 64, 65, 100):
        net = random_connected_network(
            n, side=scaled_side(n), radius=RADIUS, rng=rng
        )
        batches.append(([list(net.adjacency)], f"connected n={n}"))
    # disconnected multi-component batches (uniform, no resampling)
    for n in (90, 140):
        side = 2.2 * scaled_side(n)
        pos = rng.uniform(0.0, side, size=(n, 2))
        net = AdHocNetwork(pos, RADIUS, side=side)
        batches.append(([list(net.adjacency)], f"scattered n={n}"))
    # a stacked batch of mixed sizes is not possible (one n per batch),
    # but B > 1 is: three independent connected graphs of one size
    n = 72
    multi = [
        list(
            random_connected_network(
                n, side=scaled_side(n), radius=RADIUS, rng=rng
            ).adjacency
        )
        for _ in range(3)
    ]
    batches.append((multi, f"B=3 n={n}"))
    return batches


def _assert_equivalent(
    adjacencies, label: str, seed: int, **sparse_kwargs
) -> None:
    rng = np.random.default_rng(seed)
    n = len(adjacencies[0])
    energies = rng.uniform(50.0, 150.0, size=(len(adjacencies), n))
    for scheme in SCHEMES:
        for fixed_point in (False, True):
            sparse = compute_cds_sparse(
                adjacencies, scheme, energies=energies,
                fixed_point=fixed_point, **sparse_kwargs,
            )
            dense = compute_cds_batch(
                adjacencies, scheme, energies=energies,
                fixed_point=fixed_point,
            )
            for b, adj in enumerate(adjacencies):
                ref = compute_cds(
                    adj, scheme, energy=list(energies[b]),
                    fixed_point=fixed_point,
                )
                got = sparse[b]
                assert got.gateway_mask == ref.gateway_mask, (
                    f"{label} scheme={scheme} fp={fixed_point} b={b}: "
                    f"sparse mask != scratch"
                )
                assert got.stats == ref.stats, (
                    f"{label} scheme={scheme} fp={fixed_point} b={b}: "
                    f"sparse stats != scratch"
                )
                assert dense[b].gateway_mask == ref.gateway_mask, (
                    f"{label} scheme={scheme} fp={fixed_point} b={b}: "
                    f"vectorized mask != scratch"
                )


# -- pytest benches ----------------------------------------------------------


@pytest.fixture(scope="module", params=(1024, 4096))
def sized_graph(request):
    from conftest import bench_seed

    n = request.param
    pos, side = _positions(n, bench_seed() + n)
    net = AdHocNetwork(pos.copy(), RADIUS, side=side)
    energy = np.random.default_rng(bench_seed()).uniform(
        50.0, 150.0, size=(1, n)
    )
    return n, pos, [list(net.adjacency)], energy


@pytest.mark.benchmark(group="sparse-engine")
def test_interval_sparse(benchmark, sized_graph):
    n, pos, adjacencies, energy = sized_graph
    engine = SparseCDSEngine("el2")

    def run():
        csr = CSRBatch.from_positions(pos, RADIUS)
        return engine.run(csr, energy)

    flags, stats = benchmark(run)
    assert stats[0].final_size > 0


@pytest.mark.benchmark(group="sparse-engine")
def test_interval_dense(benchmark, sized_graph):
    n, pos, adjacencies, energy = sized_graph
    engine = BatchCDSEngine("el2")
    flags, stats = benchmark(lambda: engine.run(pack_batch(adjacencies), energy))
    assert stats[0].final_size > 0


def test_sparse_matches_dense(sized_graph):
    n, pos, adjacencies, energy = sized_graph
    csr = CSRBatch.from_positions(pos, RADIUS)
    sflags, sstats = SparseCDSEngine("el2").run(csr, energy)
    dflags, dstats = BatchCDSEngine("el2").run(pack_batch(adjacencies), energy)
    assert np.array_equal(sflags, dflags)
    assert list(sstats) == list(dstats)


# -- CI script modes ---------------------------------------------------------


def _smoke(seed: int) -> int:
    for adjacencies, label in _graphs(seed):
        _assert_equivalent(adjacencies, label, seed)
        print(f"equivalence ok: {label} x {len(SCHEMES)} schemes x fp")
    # force the streaming CSR tier (every component > cutoff=2) and a
    # tiny chunk budget; results must not move
    scattered, label = _graphs(seed)[4]
    _assert_equivalent(scattered, label + " [csr tier]", seed, dense_cutoff=2)
    _assert_equivalent(
        scattered, label + " [tiny budget]", seed,
        dense_cutoff=2, memory_budget_mb=0.25,
    )
    print("equivalence ok: forced CSR tier + 0.25 MB budget")
    # from_positions == adjacency-derived CSR on one uniform field
    pos, side = _positions(600, seed)
    net = AdHocNetwork(pos.copy(), RADIUS, side=side)
    a = CSRBatch.from_positions(pos, RADIUS)
    b = CSRBatch.from_adjacency([list(net.adjacency)])
    assert np.array_equal(a.indptr, b.indptr) and np.array_equal(a.dst, b.dst)
    print("from_positions CSR == adjacency CSR (n=600)")
    print("smoke ok")
    return 0


def _record(seed: int, output: str, hosts: int) -> int:
    """The scale point: one full N=hosts interval per scheme, with peaks."""
    import json

    import perf_trajectory

    n = hosts
    print(f"building N={n} unit-disk CSR from positions ...")
    pos, side = _positions(n, seed)
    t0 = time.perf_counter()
    csr = CSRBatch.from_positions(pos, RADIUS)
    t_build = time.perf_counter() - t0
    print(
        f"csr: {csr.nnz} directed edges, {csr.nbytes / 1e6:.1f} MB, "
        f"built in {t_build:.2f}s"
    )
    energy = np.random.default_rng(seed).uniform(50.0, 150.0, size=(1, n))
    per_scheme = {}
    peak_bytes = 0
    for scheme in ("nd", "el2"):
        engine = SparseCDSEngine(scheme)
        tracemalloc.start()
        t0 = time.perf_counter()
        flags, stats = engine.run(csr, energy)
        dt = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_bytes = max(peak_bytes, peak)
        per_scheme[scheme] = {
            "interval_s": dt,
            "peak_mb": peak / 1e6,
            "cds_size": int(stats[0].final_size),
        }
        print(
            f"  {scheme}: {dt:.2f} s/interval, peak {peak / 1e6:.0f} MB, "
            f"{stats[0].final_size} gateways"
        )
    from repro.core.vectorized import resolve_memory_budget_mb

    budget_bytes = resolve_memory_budget_mb(None) * 2**20
    denom = max(csr.nbytes, budget_bytes)
    peak_over_budget = peak_bytes / denom
    print(
        f"max peak / max(csr, budget) = {peak_over_budget:.1f}x "
        f"(csr {csr.nbytes / 1e6:.1f} MB, budget {budget_bytes / 1e6:.0f} MB)"
    )
    record = {
        "n_hosts": n,
        "side": side,
        "radius": RADIUS,
        "seed": seed,
        "csr_edges": int(csr.nnz),
        "csr_mb": csr.nbytes / 1e6,
        "csr_build_s": t_build,
        "memory_budget_mb": budget_bytes / 2**20,
        "per_scheme": per_scheme,
        "peak_over_budget": peak_over_budget,
        "peak_over_budget_limit": PEAK_OVER_BUDGET_LIMIT,
        "created_unix": time.time(),
    }
    if output != "-":
        out = Path(output)
        if out.exists():
            payload = json.loads(out.read_text(encoding="utf-8"))
        else:
            payload = {"schema": "repro-bench-pipeline/1", "benchmarks": []}
        payload.setdefault("extra", {})["sparse_100k"] = record
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"merged N={n} numbers into {out} (extra.sparse_100k)")
        perf_trajectory.append_run(
            f"sparse_interval_n{n}_el2", per_scheme["el2"]["interval_s"],
            "s", meta={"seed": seed, "peak_mb": per_scheme["el2"]["peak_mb"]},
        )
        perf_trajectory.append_run(
            f"sparse_peak_over_budget_n{n}", peak_over_budget, "x",
            meta={"seed": seed},
        )
        print(f"appended trajectory runs to {perf_trajectory.TRAJECTORY_JSON}")
    if peak_over_budget > PEAK_OVER_BUDGET_LIMIT:
        print(
            f"FAIL: peak memory is {peak_over_budget:.0f}x "
            f"max(csr, chunk budget) (limit {PEAK_OVER_BUDGET_LIMIT:.0f}x) "
            "— a kernel is densifying"
        )
        return 1
    print("record ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="assert sparse == vectorized == scratch (masks + stats) on "
        "the seeded grid, incl. forced-CSR tier and tiny budgets",
    )
    p.add_argument(
        "--record", action="store_true",
        help="measure the N=100k interval (latency + tracemalloc peak) "
        "and merge into the bench JSON under extra.sparse_100k",
    )
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument(
        "--hosts", type=int, default=BIG_HOSTS,
        help="scale point for --record (default 100000)",
    )
    p.add_argument(
        "--output", default="benchmarks/results/BENCH_pipeline.json",
        help="bench JSON to merge --record numbers into (under "
        "extra.sparse_100k); '-' skips writing",
    )
    args = p.parse_args(argv)
    if not (args.smoke or args.record):
        p.error("run under pytest for timings, or pass --smoke / --record")
    rc = 0
    if args.smoke:
        rc = _smoke(args.seed)
    if rc == 0 and args.record:
        rc = _record(args.seed, args.output, args.hosts)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
