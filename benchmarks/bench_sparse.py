"""Sparse streaming CDS engine: equivalence smoke + the N=100k point.

The sparse engine (:mod:`repro.core.sparse`) is the scale path: CSR
adjacency, per-connected-component decomposition, and chunked streaming
kernels that never allocate an ``n``-bit row — built for N = 100k..1M
where the dense packed batch (N² bits per element) caps out.

pytest mode times the engine at N = 1024/4096 against the dense batch
engine on identical graphs (groups ``sparse-engine``) and pins
bit-identity.  Script modes mirror ``bench_vectorized.py``::

    python benchmarks/bench_sparse.py --smoke     # CI equivalence gate
    python benchmarks/bench_sparse.py --record    # N=100k timing point

``--smoke`` asserts sparse == scratch == vectorized masks + PruneStats
over a seeded grid: word-boundary sizes, disconnected multi-component
batches, a forced-CSR tier (``dense_cutoff=2``), and a tiny memory
budget.  ``--record`` builds an N = 100k (default; ``--hosts`` scales)
unit-disk graph straight from positions, runs one full interval per
scheme under ``tracemalloc``, and merges latency + peak memory into
``BENCH_pipeline.json`` under ``extra.sparse_100k`` (read-modify-write —
the pytest session owns the rest of the file) and appends the headline
numbers to ``BENCH_trajectory.json``.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ImportError:  # plain-script mode without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from repro.core.cds import compute_cds
from repro.core.sparse import CSRBatch, SparseCDSEngine, compute_cds_sparse
from repro.core.vectorized import (
    BatchCDSEngine,
    compute_cds_batch,
    flags_to_masks,
    pack_batch,
)
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import random_connected_network, scaled_side

RADIUS = 25.0
SCHEMES = ("nr", "id", "nd", "el1", "el2")
BIG_HOSTS = 100_000
#: --record asserts the tracemalloc peak stays under this multiple of
#: ``max(CSR bytes, chunk budget)``.  Measured behavior: each streamed
#: chunk materializes ~7-8 budget-sized int64 temporaries (miss lists,
#: coverage probes, rank gathers), so peak ≈ 8x the chunk budget once
#: edges overflow one chunk; 16x covers that with headroom while still
#: catching a densification bug (a dense N=100k row table would be
#: ~1.25 GB per 64 MB of budget — far past the limit).
PEAK_OVER_BUDGET_LIMIT = 16.0


def _positions(n: int, seed: int) -> tuple[np.ndarray, float]:
    """Density-constant uniform placements (no connectivity resampling —
    at 100k that would never converge, and components are the point)."""
    side = scaled_side(n)
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, side, size=(n, 2)), side


def _graphs(seed: int):
    """The --smoke equivalence grid: adjacency batches + energies."""
    rng = np.random.default_rng(seed)
    batches = []
    # word-boundary sizes, connected
    for n in (63, 64, 65, 100):
        net = random_connected_network(
            n, side=scaled_side(n), radius=RADIUS, rng=rng
        )
        batches.append(([list(net.adjacency)], f"connected n={n}"))
    # disconnected multi-component batches (uniform, no resampling)
    for n in (90, 140):
        side = 2.2 * scaled_side(n)
        pos = rng.uniform(0.0, side, size=(n, 2))
        net = AdHocNetwork(pos, RADIUS, side=side)
        batches.append(([list(net.adjacency)], f"scattered n={n}"))
    # a stacked batch of mixed sizes is not possible (one n per batch),
    # but B > 1 is: three independent connected graphs of one size
    n = 72
    multi = [
        list(
            random_connected_network(
                n, side=scaled_side(n), radius=RADIUS, rng=rng
            ).adjacency
        )
        for _ in range(3)
    ]
    batches.append((multi, f"B=3 n={n}"))
    return batches


def _assert_equivalent(
    adjacencies, label: str, seed: int, **sparse_kwargs
) -> None:
    rng = np.random.default_rng(seed)
    n = len(adjacencies[0])
    energies = rng.uniform(50.0, 150.0, size=(len(adjacencies), n))
    for scheme in SCHEMES:
        for fixed_point in (False, True):
            sparse = compute_cds_sparse(
                adjacencies, scheme, energies=energies,
                fixed_point=fixed_point, **sparse_kwargs,
            )
            dense = compute_cds_batch(
                adjacencies, scheme, energies=energies,
                fixed_point=fixed_point,
            )
            for b, adj in enumerate(adjacencies):
                ref = compute_cds(
                    adj, scheme, energy=list(energies[b]),
                    fixed_point=fixed_point,
                )
                got = sparse[b]
                assert got.gateway_mask == ref.gateway_mask, (
                    f"{label} scheme={scheme} fp={fixed_point} b={b}: "
                    f"sparse mask != scratch"
                )
                assert got.stats == ref.stats, (
                    f"{label} scheme={scheme} fp={fixed_point} b={b}: "
                    f"sparse stats != scratch"
                )
                assert dense[b].gateway_mask == ref.gateway_mask, (
                    f"{label} scheme={scheme} fp={fixed_point} b={b}: "
                    f"vectorized mask != scratch"
                )


# -- pytest benches ----------------------------------------------------------


@pytest.fixture(scope="module", params=(1024, 4096))
def sized_graph(request):
    from conftest import bench_seed

    n = request.param
    pos, side = _positions(n, bench_seed() + n)
    net = AdHocNetwork(pos.copy(), RADIUS, side=side)
    energy = np.random.default_rng(bench_seed()).uniform(
        50.0, 150.0, size=(1, n)
    )
    return n, pos, [list(net.adjacency)], energy


@pytest.mark.benchmark(group="sparse-engine")
def test_interval_sparse(benchmark, sized_graph):
    n, pos, adjacencies, energy = sized_graph
    engine = SparseCDSEngine("el2")

    def run():
        csr = CSRBatch.from_positions(pos, RADIUS)
        return engine.run(csr, energy)

    flags, stats = benchmark(run)
    assert stats[0].final_size > 0


@pytest.mark.benchmark(group="sparse-engine")
def test_interval_dense(benchmark, sized_graph):
    n, pos, adjacencies, energy = sized_graph
    engine = BatchCDSEngine("el2")
    flags, stats = benchmark(lambda: engine.run(pack_batch(adjacencies), energy))
    assert stats[0].final_size > 0


def test_sparse_matches_dense(sized_graph):
    n, pos, adjacencies, energy = sized_graph
    csr = CSRBatch.from_positions(pos, RADIUS)
    sflags, sstats = SparseCDSEngine("el2").run(csr, energy)
    dflags, dstats = BatchCDSEngine("el2").run(pack_batch(adjacencies), energy)
    assert np.array_equal(sflags, dflags)
    assert list(sstats) == list(dstats)


# -- CI script modes ---------------------------------------------------------


def _smoke(seed: int) -> int:
    for adjacencies, label in _graphs(seed):
        _assert_equivalent(adjacencies, label, seed)
        print(f"equivalence ok: {label} x {len(SCHEMES)} schemes x fp")
    # force the streaming CSR tier (every component > cutoff=2) and a
    # tiny chunk budget; results must not move
    scattered, label = _graphs(seed)[4]
    _assert_equivalent(scattered, label + " [csr tier]", seed, dense_cutoff=2)
    _assert_equivalent(
        scattered, label + " [tiny budget]", seed,
        dense_cutoff=2, memory_budget_mb=0.25,
    )
    print("equivalence ok: forced CSR tier + 0.25 MB budget")
    # from_positions == adjacency-derived CSR on one uniform field
    pos, side = _positions(600, seed)
    net = AdHocNetwork(pos.copy(), RADIUS, side=side)
    a = CSRBatch.from_positions(pos, RADIUS)
    b = CSRBatch.from_adjacency([list(net.adjacency)])
    assert np.array_equal(a.indptr, b.indptr) and np.array_equal(a.dst, b.dst)
    print("from_positions CSR == adjacency CSR (n=600)")
    # incremental-sparse equivalence grid: a churny multi-component
    # replay (jitter + teleports + drain) through the persistent-CSR
    # pipeline with shadow_check on — every interval is compared against
    # the scalar oracle (masks + PruneStats) inside the pipeline itself
    from repro.core.priority import SCHEMES as SCHEME_REGISTRY
    from repro.core.sparse_delta import IncrementalSparseCDSPipeline

    n = 120
    side = 2.2 * scaled_side(n)
    for scheme in SCHEMES:
        rng = np.random.default_rng(seed)
        net = AdHocNetwork(
            rng.uniform(0.0, side, size=(n, 2)), RADIUS, side=side
        )
        needs_energy = SCHEME_REGISTRY[scheme].needs_energy
        energy = np.full(n, 100.0)
        pipe = IncrementalSparseCDSPipeline(scheme, shadow_check=True)
        prev = None
        for k in range(6):
            if k:
                who = rng.choice(n, size=6, replace=False)
                net.positions[who] += rng.uniform(-6, 6, size=(6, 2))
                np.clip(net.positions, 0.0, side, out=net.positions)
                net.invalidate()
                net.move_host(
                    int(rng.integers(0, n)),
                    rng.uniform(0.0, side, size=2),
                )
            res = pipe.compute(
                net, energy=list(energy) if needs_energy else None
            )
            # unchanged interval: the cached result object must come back
            again = pipe.compute(
                net, energy=list(energy) if needs_energy else None
            )
            assert again is res, f"short-circuit broken ({scheme})"
            prev = res
            for v in range(n):
                energy[v] -= 3.0 if (prev.gateway_mask >> v) & 1 else 1.0
        print(f"incremental == scalar over churny replay: {scheme}")
    print("smoke ok")
    return 0


def _bitmask_to_bool(mask: int, n: int) -> np.ndarray:
    raw = np.frombuffer(
        mask.to_bytes((n + 7) // 8, "little"), dtype=np.uint8
    )
    return np.unpackbits(raw, bitorder="little")[:n].astype(bool)


def _record_mobility(
    seed: int, output: str, hosts: int, intervals: int = 4
) -> int:
    """The N=100k *mobile* point: incremental vs full rebuild per interval.

    Regime x scheme cells, all recorded:

    * ``scattered`` (nd and el2) — 2.2x the density-constant side (the
      sparse engine's documented multi-component regime) with stability
      0.999, i.e. ~0.1% of hosts move per interval: the
      backbone-*maintenance* workload ISSUE 10 targets.  Under ``nd``
      clean components dominate (keys never consult energy), so the
      incremental pipeline recomputes a tiny dirty fraction — the
      headline cell.  Under ``el2`` the per-interval gateway drain
      re-keys most components (rotation is the *point* of the EL
      schemes), so reuse is limited to order-stable components — the
      honest energy-scheme cell.
    * ``dense`` (el2) — the density-constant arena (one giant
      component) with stability 0.9: any mover dirties the giant
      component, so the incremental win collapses to the avoided CSR
      rebuild.  Recorded so the headline number cannot be mistaken for
      a universal speedup.

    Every interval's incremental mask is asserted equal to the full
    rebuild's before its timing is trusted.
    """
    import json

    import perf_trajectory

    from repro.core.sparse_delta import IncrementalSparseCDSPipeline
    from repro.geometry.space import Region2D
    from repro.mobility.paper_walk import PaperWalk

    n = hosts
    cells = {}
    for regime, scheme, side_mult, stability in (
        ("scattered", "nd", 2.2, 0.999),
        ("scattered", "el2", 2.2, 0.999),
        ("dense", "el2", 1.0, 0.9),
    ):
        side = side_mult * scaled_side(n)
        rng = np.random.default_rng(seed)
        walk = PaperWalk(stability=stability)
        region = Region2D(side=side)
        cur = rng.uniform(0.0, side, size=(n, 2))
        frames = [cur.copy()]
        for _ in range(intervals):
            walk.step(cur, region, rng)
            frames.append(cur.copy())
        label = f"{regime}/{scheme}"
        print(
            f"[{label}] N={n} side={side:.0f} stability={stability} "
            f"{intervals} mobile intervals"
        )
        needs_energy = scheme in ("el1", "el2")

        # incremental replay (+ gateway drain, timing each compute)
        pipe = IncrementalSparseCDSPipeline(scheme)
        net = AdHocNetwork(frames[0].copy(), RADIUS, side=side)
        energy = np.full(n, 100.0)
        energies, masks, inc_times = [], [], []
        for f in frames:
            net.positions[:] = f
            net.invalidate()
            energies.append(energy.copy())
            t0 = time.perf_counter()
            res = pipe.compute(
                net, energy=energy if needs_energy else None
            )
            inc_times.append(time.perf_counter() - t0)
            masks.append(res.gateway_mask)
            gw = _bitmask_to_bool(res.gateway_mask, n)
            energy = energy - np.where(gw, 3.0, 1.0)

        # full rebuild replay over the identical (frames, energies)
        engine = SparseCDSEngine(scheme)
        full_times = []
        for i, f in enumerate(frames):
            t0 = time.perf_counter()
            csr = CSRBatch.from_positions(f, RADIUS)
            flags, _ = engine.run(
                csr, energies[i][None] if needs_energy else None
            )
            full_times.append(time.perf_counter() - t0)
            got = flags_to_masks(flags)[0]
            assert got == masks[i], (
                f"[{label}] interval {i}: incremental mask != full rebuild"
            )

        full_mean = float(np.mean(full_times))
        warm_mean = float(np.mean(inc_times[1:]))
        speedup = full_mean / warm_mean
        cells[f"{regime}_{scheme}"] = {
            "regime": regime,
            "scheme": scheme,
            "side": side,
            "stability": stability,
            "intervals": intervals,
            "full_interval_s": full_mean,
            "incremental_cold_s": inc_times[0],
            "incremental_warm_interval_s": warm_mean,
            "speedup_warm_vs_full": speedup,
        }
        print(
            f"[{label}] full {full_mean:.2f} s/interval, incremental "
            f"cold {inc_times[0]:.2f} s, warm {warm_mean:.2f} s/interval "
            f"-> {speedup:.1f}x"
        )

    record = {
        "n_hosts": n,
        "radius": RADIUS,
        "seed": seed,
        "cells": cells,
        "created_unix": time.time(),
    }
    if output != "-":
        out = Path(output)
        if out.exists():
            payload = json.loads(out.read_text(encoding="utf-8"))
        else:
            payload = {"schema": "repro-bench-pipeline/1", "benchmarks": []}
        payload.setdefault("extra", {})["sparse_100k_mobility"] = record
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"merged N={n} numbers into {out} (extra.sparse_100k_mobility)")
        sc = cells["scattered_nd"]
        perf_trajectory.append_run(
            f"sparse_mobility_warm_n{n}_nd",
            sc["incremental_warm_interval_s"], "s",
            meta={"seed": seed, "regime": "scattered"},
        )
        perf_trajectory.append_run(
            f"sparse_mobility_speedup_n{n}",
            sc["speedup_warm_vs_full"], "x",
            meta={"seed": seed, "regime": "scattered"},
        )
        print(f"appended trajectory runs to {perf_trajectory.TRAJECTORY_JSON}")
    print("record-mobility ok")
    return 0


def _record(seed: int, output: str, hosts: int) -> int:
    """The scale point: one full N=hosts interval per scheme, with peaks."""
    import json

    import perf_trajectory

    n = hosts
    print(f"building N={n} unit-disk CSR from positions ...")
    pos, side = _positions(n, seed)
    t0 = time.perf_counter()
    csr = CSRBatch.from_positions(pos, RADIUS)
    t_build = time.perf_counter() - t0
    print(
        f"csr: {csr.nnz} directed edges, {csr.nbytes / 1e6:.1f} MB, "
        f"built in {t_build:.2f}s"
    )
    energy = np.random.default_rng(seed).uniform(50.0, 150.0, size=(1, n))
    per_scheme = {}
    peak_bytes = 0
    for scheme in ("nd", "el2"):
        engine = SparseCDSEngine(scheme)
        tracemalloc.start()
        t0 = time.perf_counter()
        flags, stats = engine.run(csr, energy)
        dt = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peak_bytes = max(peak_bytes, peak)
        per_scheme[scheme] = {
            "interval_s": dt,
            "peak_mb": peak / 1e6,
            "cds_size": int(stats[0].final_size),
        }
        print(
            f"  {scheme}: {dt:.2f} s/interval, peak {peak / 1e6:.0f} MB, "
            f"{stats[0].final_size} gateways"
        )
    from repro.core.vectorized import resolve_memory_budget_mb

    budget_bytes = resolve_memory_budget_mb(None) * 2**20
    denom = max(csr.nbytes, budget_bytes)
    peak_over_budget = peak_bytes / denom
    print(
        f"max peak / max(csr, budget) = {peak_over_budget:.1f}x "
        f"(csr {csr.nbytes / 1e6:.1f} MB, budget {budget_bytes / 1e6:.0f} MB)"
    )
    record = {
        "n_hosts": n,
        "side": side,
        "radius": RADIUS,
        "seed": seed,
        "csr_edges": int(csr.nnz),
        "csr_mb": csr.nbytes / 1e6,
        "csr_build_s": t_build,
        "memory_budget_mb": budget_bytes / 2**20,
        "per_scheme": per_scheme,
        "peak_over_budget": peak_over_budget,
        "peak_over_budget_limit": PEAK_OVER_BUDGET_LIMIT,
        "created_unix": time.time(),
    }
    if output != "-":
        out = Path(output)
        if out.exists():
            payload = json.loads(out.read_text(encoding="utf-8"))
        else:
            payload = {"schema": "repro-bench-pipeline/1", "benchmarks": []}
        payload.setdefault("extra", {})["sparse_100k"] = record
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"merged N={n} numbers into {out} (extra.sparse_100k)")
        perf_trajectory.append_run(
            f"sparse_interval_n{n}_el2", per_scheme["el2"]["interval_s"],
            "s", meta={"seed": seed, "peak_mb": per_scheme["el2"]["peak_mb"]},
        )
        perf_trajectory.append_run(
            f"sparse_peak_over_budget_n{n}", peak_over_budget, "x",
            meta={"seed": seed},
        )
        print(f"appended trajectory runs to {perf_trajectory.TRAJECTORY_JSON}")
    if peak_over_budget > PEAK_OVER_BUDGET_LIMIT:
        print(
            f"FAIL: peak memory is {peak_over_budget:.0f}x "
            f"max(csr, chunk budget) (limit {PEAK_OVER_BUDGET_LIMIT:.0f}x) "
            "— a kernel is densifying"
        )
        return 1
    print("record ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument(
        "--smoke", action="store_true",
        help="assert sparse == vectorized == scratch (masks + stats) on "
        "the seeded grid, incl. forced-CSR tier and tiny budgets",
    )
    p.add_argument(
        "--record", action="store_true",
        help="measure the N=100k interval (latency + tracemalloc peak) "
        "and merge into the bench JSON under extra.sparse_100k",
    )
    p.add_argument(
        "--record-mobility", action="store_true",
        help="measure the N=100k mobile replay (incremental vs full "
        "rebuild) and merge into the bench JSON under "
        "extra.sparse_100k_mobility",
    )
    p.add_argument("--seed", type=int, default=2001)
    p.add_argument(
        "--hosts", type=int, default=BIG_HOSTS,
        help="scale point for --record (default 100000)",
    )
    p.add_argument(
        "--output", default="benchmarks/results/BENCH_pipeline.json",
        help="bench JSON to merge --record numbers into (under "
        "extra.sparse_100k); '-' skips writing",
    )
    args = p.parse_args(argv)
    if not (args.smoke or args.record or args.record_mobility):
        p.error(
            "run under pytest for timings, or pass --smoke / --record / "
            "--record-mobility"
        )
    rc = 0
    if args.smoke:
        rc = _smoke(args.seed)
    if rc == 0 and args.record:
        rc = _record(args.seed, args.output, args.hosts)
    if rc == 0 and args.record_mobility:
        rc = _record_mobility(args.seed, args.output, args.hosts)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
