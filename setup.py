"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP-660 editable
installs (``pip install -e .``) cannot build the editable wheel.  This shim
enables the legacy path: ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on environments that have wheel).
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
