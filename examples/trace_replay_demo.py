#!/usr/bin/env python
"""Record a simulation run and verify it by replay.

Reproducibility workflow: run a lifespan simulation with a trace recorder
attached, save the trace (every interval's positions, batteries, and
gateway set) to JSON, reload it, and *replay* it — recomputing each
frame's CDS from the recorded state and checking it matches.  A published
trace is thus self-verifying: no access to our RNG or simulator needed.

Run:  python examples/trace_replay_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.io.replay import SimulationTrace, TraceRecorder, replay_trace
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator


def main() -> None:
    cfg = SimulationConfig(n_hosts=20, scheme="el1", drain_model="fixed")
    sim = LifespanSimulator(cfg, rng=2026)
    recorder = TraceRecorder(scheme="el1", radius=cfg.radius, side=cfg.side)
    result = sim.run(recorder=recorder)
    trace = recorder.finish()
    print(
        f"recorded run: {result.lifespan} intervals, first death host "
        f"{result.metrics.first_dead_host}, "
        f"mean |G'| {result.metrics.mean_cds_size:.1f}"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.trace.json"
        trace.save(path)
        print(f"trace saved: {path.stat().st_size} bytes, "
              f"{len(trace.frames)} frames")

        loaded = SimulationTrace.load(path)
        mismatches = replay_trace(loaded)
        if mismatches:
            print(f"REPLAY FAILED at intervals {mismatches}")
        else:
            print(
                "replay verified: every frame's gateway set recomputes "
                "identically from the recorded positions and batteries"
            )

    # show what tampering looks like
    import dataclasses

    f0 = trace.frames[0]
    tampered = dataclasses.replace(
        trace,
        frames=(dataclasses.replace(f0, gateways=f0.gateways[1:]),)
        + trace.frames[1:],
    )
    bad = replay_trace(tampered)
    print(f"tampered trace (dropped one gateway): replay flags intervals {bad}")


if __name__ == "__main__":
    main()
