#!/usr/bin/env python
"""Dominating-set-based routing on the paper's worked example (§2.1, §3.3).

Builds the 27-node topology of Figures 5-9, computes the CDS, constructs
the gateway routing state of Figure 2 (domain membership lists + gateway
routing tables), and routes packets with the three-step process.

Run:  python examples/routing_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.cds import compute_cds
from repro.graphs.generators import paper_example_graph
from repro.routing import (
    DominatingSetRouter,
    ForwardingEngine,
    build_routing_tables,
)


def lab(v: int) -> int:
    """Dense id -> the paper figures' 1-based label."""
    return v + 1


def main() -> None:
    ex = paper_example_graph()
    result = compute_cds(ex.graph, "id", verify=True)
    print(f"gateways (ID rules): {sorted(lab(v) for v in result.gateways)}")

    # -- Figure 2 state: membership lists and routing tables ---------------
    tables = build_routing_tables(ex.graph.adjacency, result.gateways)
    print("\ngateway domain membership lists:")
    for g in sorted(tables):
        members = sorted(lab(m) for m in tables[g].members)
        print(f"  gateway {lab(g):2d}: members {members}")

    some_gateway = sorted(tables)[0]
    t = tables[some_gateway]
    print(f"\ngateway routing table at host {lab(some_gateway)}:")
    for h in sorted(t.membership_of):
        print(
            f"  -> gateway {lab(h):2d}  dist {t.distance_to[h]}  "
            f"next hop {lab(t.next_hop_to[h]):2d}  "
            f"members {sorted(lab(m) for m in t.membership_of[h])}"
        )

    # -- the three-step routing process -------------------------------------
    router = DominatingSetRouter(ex.graph.adjacency, result.gateway_mask)
    for src_label, dst_label in ((1, 27), (5, 23), (3, 19)):
        route = router.route(src_label - 1, dst_label - 1)
        hops = " -> ".join(str(lab(v)) for v in route.nodes)
        sg = lab(route.source_gateway) if route.source_gateway is not None else "-"
        dg = (
            lab(route.destination_gateway)
            if route.destination_gateway is not None
            else "-"
        )
        print(
            f"\nroute {src_label} -> {dst_label}: {hops}"
            f"\n  source gateway {sg}, destination gateway {dg}, "
            f"{route.length} hops"
        )

    # -- who carries the traffic? -------------------------------------------
    eng = ForwardingEngine(router)
    eng.send_random_pairs(500, np.random.default_rng(1))
    print(
        f"\n500 random packets: mean route {eng.mean_route_length():.2f} hops, "
        f"gateways performed {eng.gateway_share_of_forwarding():.0%} of all "
        "forwarding — the bypass traffic the energy-aware rules exist for"
    )
    busiest = int(np.argmax(eng.forwarded))
    print(
        f"busiest relay: host {lab(busiest)} carried "
        f"{int(eng.forwarded[busiest])} packets"
    )


if __name__ == "__main__":
    main()
