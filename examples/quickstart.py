#!/usr/bin/env python
"""Quickstart: compute a power-aware connected dominating set.

Builds the paper's random geometric workload (hosts in a 100x100 square,
radius-25 radios), runs the Wu-Li marking process with each pruning
scheme, and verifies the CDS invariants.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    # 1. a connected ad hoc network, exactly the paper's workload model
    net = repro.random_connected_network(40, side=100.0, radius=25.0, rng=7)
    print(f"network: {net.n} hosts, {sum(net.degree(v) for v in range(net.n)) // 2} links")

    # 2. the raw marking process (series NR): every host with two
    #    unconnected neighbors marks itself a gateway
    marked = repro.marked_set(net)
    print(f"marking process alone: {len(marked)} gateways")

    # 3. prune with each priority scheme; EL schemes rank by battery level
    energy = np.random.default_rng(7).uniform(20.0, 100.0, net.n)
    for scheme in ("id", "nd", "el1", "el2"):
        result = repro.compute_cds(
            net,
            scheme,
            energy=energy if repro.scheme_by_name(scheme).needs_energy else None,
            verify=True,  # asserts Properties 1-2 (dominating + connected)
        )
        removed = result.stats
        print(
            f"scheme {scheme.upper():>3}: {result.size:2d} gateways "
            f"(rule 1 removed {removed.removed_rule1}, "
            f"rule 2 removed {removed.removed_rule2})"
        )

    # 4. the gateway set is a true backbone: every host is a gateway or
    #    adjacent to one, and the gateways form a connected subgraph
    result = repro.compute_cds(net, "nd")
    assert repro.is_cds(net.adjacency, result.gateway_mask)
    print(f"\nND gateways: {sorted(result.gateways)}")


if __name__ == "__main__":
    main()
