#!/usr/bin/env python
"""Search-and-rescue scenario: team-clustered hosts, churn, and messaging.

The paper motivates ad hoc networks with exactly this kind of deployment:
teams of responders, each a tight cluster of radios, joined by a few
long-range bridges, with units powering down to save battery.  This
scenario drives the whole stack at once:

* clustered placement (`clustered_connected_network`),
* the power-aware CDS keeping the inter-team bridges alive,
* status messages routed team-to-team over the backbone,
* a comparison of how long the operation lasts under ID vs EL1 selection.

Run:  python examples/search_and_rescue.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.netview import render_network
from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.graphs.generators import clustered_connected_network
from repro.mobility.churn import ChurnModel
from repro.routing.dsr import DominatingSetRouter
from repro.routing.forwarding import ForwardingEngine
from repro.simulation.churn_lifespan import ChurnLifespanSimulator
from repro.simulation.config import SimulationConfig

TEAMS = 3
RESPONDERS = 36


def main() -> None:
    rng = np.random.default_rng(17)
    net = clustered_connected_network(
        RESPONDERS, clusters=TEAMS, cluster_std=10.0, rng=rng
    )
    result = compute_cds(net, "el1", energy=np.full(net.n, 100.0), verify=True)
    print(
        f"{TEAMS} teams, {RESPONDERS} responders: backbone of "
        f"{result.size} relays keeps every unit reachable"
    )
    print(render_network(
        net.positions, net.side,
        gateway_mask=result.gateway_mask,
        show_backbone_links=True,
        adjacency=net.adjacency,
    ))
    print("legend: # relay (gateway)   o responder   + backbone link")

    # team-to-team status traffic: most forwarding lands on the bridges
    router = DominatingSetRouter(net.adjacency, result.gateway_mask)
    engine = ForwardingEngine(router)
    engine.send_random_pairs(300, rng)
    busiest = np.argsort(engine.forwarded)[-3:][::-1]
    print(
        f"\n300 status messages: mean {engine.mean_route_length():.2f} hops, "
        f"relays carried {engine.gateway_share_of_forwarding():.0%} of traffic"
    )
    print(
        "busiest relays (the inter-team bridges): "
        + ", ".join(
            f"host {int(v)} ({int(engine.forwarded[v])} msgs)" for v in busiest
        )
    )

    # how long does the operation last? units sleep opportunistically
    print()
    rows = []
    for scheme in ("id", "el1"):
        cfg = SimulationConfig(
            n_hosts=RESPONDERS, scheme=scheme, drain_model="fixed"
        )
        runs = [
            ChurnLifespanSimulator(
                cfg, ChurnModel(0.15, 0.5),
                rng=np.random.default_rng(500 + t),
            ).run()
            for t in range(5)
        ]
        rows.append([
            scheme.upper(),
            float(np.mean([r.lifespan for r in runs])),
            float(np.mean([r.mean_active_hosts for r in runs])),
        ])
    print(render_table(
        ["selection", "operation lifetime", "mean active units"],
        rows,
        title="time until the first radio dies (5 missions, units sleep ~23%)",
    ))
    print(
        "\npower-aware relay selection (EL1) rotates the bridge duty and "
        "keeps the operation alive longer."
    )


if __name__ == "__main__":
    main()
