#!/usr/bin/env python
"""Lifespan study: how the gateway-selection scheme changes network life.

Reproduces a slice of the paper's second simulation (Figures 11-13): run
the full dynamic loop — mark, prune, drain, roam — until the first host
dies, for every scheme, under a chosen drain model.

Run:  python examples/lifespan_study.py [drain_model] [n_hosts] [trials]
      drain_model in {constant, linear, quadratic, fixed, pg-linear,
      pg-quadratic}; defaults: fixed 50 10
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.simulation import SimulationConfig, run_trials


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "fixed"
    n_hosts = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    trials = int(sys.argv[3]) if len(sys.argv) > 3 else 10

    rows = []
    for scheme in ("nr", "id", "nd", "el1", "el2"):
        cfg = SimulationConfig(
            n_hosts=n_hosts, scheme=scheme, drain_model=model
        )
        metrics = run_trials(cfg, trials, root_seed=2001)
        life = summarize([m.lifespan for m in metrics])
        size = summarize([m.mean_cds_size for m in metrics])
        balance = summarize([m.energy_std_at_death for m in metrics])
        rows.append(
            [scheme.upper(), life.mean, life.sem, size.mean, balance.mean]
        )

    print(
        render_table(
            ["scheme", "lifespan", "±sem", "mean |G'|", "energy std at death"],
            rows,
            title=(
                f"Network lifespan, drain model '{model}', "
                f"N={n_hosts}, {trials} trials"
            ),
        )
    )
    print(
        "\nlifespan = update intervals until the first host battery dies"
        "\nenergy std at death = how unbalanced consumption was (lower is"
        " more balanced — the power-aware schemes' goal)"
    )


if __name__ == "__main__":
    main()
