#!/usr/bin/env python
"""Watch the backbone adapt as hosts roam (ASCII animation frames).

Runs the paper's mobility model on a small network and prints a coarse
ASCII map every few update intervals: gateways as ``#``, ordinary hosts
as ``o``.  Also demonstrates the locality result — how few hosts need to
re-decide their status after each move.

Run:  python examples/mobility_playground.py [intervals]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.cds import compute_cds
from repro.core.marking import marked_mask
from repro.geometry.space import Region2D
from repro.graphs import bitset
from repro.graphs.generators import random_connected_network
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk
from repro.protocol.locality import localized_recompute

GRID = 24  # characters per side of the ASCII map


def draw(net, gateway_mask) -> str:
    cell = net.side / GRID
    canvas = [[" "] * GRID for _ in range(GRID)]
    for v, (x, y) in enumerate(net.positions):
        col = min(GRID - 1, int(x / cell))
        row = min(GRID - 1, int(y / cell))
        canvas[GRID - 1 - row][col] = "#" if gateway_mask >> v & 1 else "o"
    border = "+" + "-" * GRID + "+"
    return "\n".join([border] + ["|" + "".join(r) + "|" for r in canvas] + [border])


def main() -> None:
    intervals = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    rng = np.random.default_rng(5)
    net = random_connected_network(30, rng=rng)
    mgr = MobilityManager(net, PaperWalk(), Region2D(side=net.side), rng=rng)

    old_adj = list(net.adjacency)
    old_marked = marked_mask(old_adj)

    for t in range(intervals):
        result = compute_cds(net, "nd")
        if t % 4 == 0:
            print(f"\ninterval {t}: |G'| = {result.size} (ND rules)")
            print(draw(net, result.gateway_mask))
        changed = mgr.step()
        new_adj = list(net.adjacency)
        new_marked, touched = localized_recompute(old_adj, new_adj, old_marked)
        assert new_marked == marked_mask(new_adj)
        print(
            f"interval {t}: topology {'changed' if changed else 'stable '} — "
            f"localized update re-decided {touched}/{net.n} markers "
            f"({bitset.popcount(new_marked)} marked)"
        )
        old_adj, old_marked = new_adj, new_marked

    print(
        f"\n{mgr.frozen_intervals} interval(s) froze hosts to keep the "
        "network connected (retry policy)"
    )


if __name__ == "__main__":
    main()
