#!/usr/bin/env python
"""Trace the distributed CDS protocol message by message.

Shows the paper's algorithm as hosts actually execute it: neighbor-set
exchange (building distance-2 knowledge), local marking, the Rule-1
status broadcast, and the Rule-2 candidacy sub-rounds — and confirms the
outcome equals the centralized computation.

Run:  python examples/distributed_protocol_trace.py
"""

from __future__ import annotations

from repro.core.cds import compute_cds
from repro.graphs.generators import paper_example_graph
from repro.protocol.distributed_cds import distributed_cds


def main() -> None:
    ex = paper_example_graph()
    lab = lambda vs: sorted(v + 1 for v in vs)

    out = distributed_cds(ex.graph, "el2", energy=ex.energy)

    print("distributed CDS protocol on the paper's 27-node example (EL2):\n")
    agents = out.agents

    marked = [a.node for a in agents if a.marked]
    print(f"after marking round:          gateways {lab(marked)}")

    post1 = [a.node for a in agents if a.marked_post_rule1]
    print(f"after Rule-1 round:           gateways {lab(post1)}")
    removed1 = set(marked) - set(post1)
    if removed1:
        print(f"  Rule 1 (1b') unmarked:      {lab(removed1)}")

    final = [a.node for a in agents if a.final_marked]
    removed2 = set(post1) - set(final)
    print(f"after Rule-2 sub-rounds:      gateways {lab(final)}")
    if removed2:
        print(f"  Rule 2 (2b') unmarked:      {lab(removed2)}")

    s = out.stats
    print(
        f"\nprotocol cost: {s.rounds} synchronous rounds, "
        f"{s.broadcasts} broadcasts, {s.bytes_on_air} bytes on air, "
        f"{s.bytes_delivered} bytes delivered"
    )

    central = compute_cds(ex.graph, "el2", energy=ex.energy)
    assert out.gateways == central.gateways
    print(
        "\nevery host decided from neighbor messages only — and the result "
        "matches the centralized pipeline exactly."
    )

    # peek inside one agent's local knowledge
    v = ex.id_of_label(22)
    agent = agents[v]
    print(
        f"\nhost 22's local view: neighbors {lab(agent.neighbors)}, "
        f"2-hop tables for {len(agent.nbr_sets)} neighbors, "
        f"final status {'GATEWAY' if agent.final_marked else 'non-gateway'}"
    )


if __name__ == "__main__":
    main()
