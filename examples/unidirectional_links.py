#!/usr/bin/env python
"""Unidirectional links: heterogeneous radios and the directed backbone.

The paper assumes every host has the same transmission range, making all
links bidirectional.  This example drops that assumption (each host's
range is drawn from ``25 * (1 ± 0.4)``), which creates one-way links, and
demonstrates the directed extension:

* the directed marking process and rules produce a *dominating and
  absorbing* backbone whose induced subgraph is strongly connected;
* routing becomes asymmetric — ``a -> b`` and ``b -> a`` can take
  different paths with different lengths;
* the backbone grows as ranges diverge (more one-way links to cover).

Run:  python examples/unidirectional_links.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.core.unidirectional import (
    compute_directed_cds,
    is_dominating_and_absorbing,
    strongly_connected_within,
)
from repro.graphs import bitset
from repro.graphs.digraph import random_strongly_connected_digraph
from repro.routing.directed_routing import DirectedBackboneRouter


def main() -> None:
    rng = np.random.default_rng(11)
    view, pos, ranges = random_strongly_connected_digraph(
        30, range_spread=0.4, rng=rng
    )
    arcs = sum(bitset.popcount(m) for m in view.out_adj)
    mutual = sum(bitset.popcount(m) for m in view.bidirectional_core())
    print(
        f"30 hosts, ranges {ranges.min():.1f}..{ranges.max():.1f}: "
        f"{arcs} arcs, {arcs - mutual} unidirectional "
        f"({(arcs - mutual) / arcs:.0%})"
    )

    gws = compute_directed_cds(view, "nd", use_rule_k=True)
    mask = bitset.mask_from_ids(gws)
    print(f"\ndirected backbone (ND + rule-k): {sorted(gws)}")
    print(f"  dominating and absorbing: {is_dominating_and_absorbing(view, gws)}")
    print(f"  strongly connected:       {strongly_connected_within(view, mask)}")

    router = DirectedBackboneRouter(view, mask)
    rows = []
    for _ in range(5):
        a, b = rng.choice(30, size=2, replace=False)
        fwd = router.route(int(a), int(b))
        back = router.route(int(b), int(a))
        rows.append([
            f"{a}->{b}", fwd.length, " ".join(map(str, fwd.nodes)),
        ])
        rows.append([
            f"{b}->{a}", back.length, " ".join(map(str, back.nodes)),
        ])
    print()
    print(render_table(
        ["pair", "hops", "path"],
        rows,
        title="asymmetric routes over the directed backbone",
    ))

    print("\nbackbone size vs range heterogeneity:")
    for spread in (0.0, 0.2, 0.4):
        sizes = []
        for _ in range(5):
            v, _, _ = random_strongly_connected_digraph(
                30, range_spread=spread, rng=rng
            )
            sizes.append(len(compute_directed_cds(v, "nd", use_rule_k=True)))
        print(f"  spread {spread:.1f}: mean |G'| = {np.mean(sizes):.1f}")


if __name__ == "__main__":
    main()
