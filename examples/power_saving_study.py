#!/usr/bin/env python
"""Power-saving extensions in one tour: churn, real traffic, and the
search-space saving.

Three mini-studies built on the extension APIs:

1. hosts that switch off part-time ("a special form of mobility", §1)
   live longer, and the power-aware EL1 scheme keeps its edge;
2. when drain comes from actually-routed packets instead of abstract
   constants, the EL schemes still win;
3. route discovery over the backbone needs a fraction of blind flooding's
   transmissions — the paper's reduced-search-space motivation, measured.

Run:  python examples/power_saving_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network
from repro.mobility.churn import ChurnModel
from repro.routing.broadcast import compare_flooding
from repro.simulation.config import SimulationConfig
from repro.simulation.churn_lifespan import ChurnLifespanSimulator
from repro.simulation.traffic_lifespan import TrafficLifespanSimulator

TRIALS = 5


def study_churn() -> None:
    rows = []
    for scheme in ("id", "el1"):
        for churn, label in (
            (ChurnModel(0.0, 0.0), "always on"),
            (ChurnModel(0.25, 0.4), "sleeps ~40% of the time"),
        ):
            cfg = SimulationConfig(n_hosts=30, scheme=scheme, drain_model="fixed")
            lifespans = [
                ChurnLifespanSimulator(
                    cfg, churn, rng=np.random.default_rng(100 + t)
                ).run().lifespan
                for t in range(TRIALS)
            ]
            rows.append([scheme.upper(), label, float(np.mean(lifespans))])
    print(render_table(
        ["scheme", "behaviour", "lifespan"],
        rows,
        title="1. Switching off to save power (N=30)",
    ))


def study_traffic() -> None:
    rows = []
    for scheme in ("nr", "id", "nd", "el1", "el2"):
        cfg = SimulationConfig(n_hosts=25, scheme=scheme, drain_model="fixed")
        runs = [
            TrafficLifespanSimulator(
                cfg, rng=np.random.default_rng(200 + t)
            ).run()
            for t in range(TRIALS)
        ]
        rows.append([
            scheme.upper(),
            float(np.mean([r.lifespan for r in runs])),
            float(np.mean([r.mean_route_length for r in runs])),
        ])
    print()
    print(render_table(
        ["scheme", "lifespan", "route len"],
        rows,
        title="2. Drain from real routed packets (N=25, 50 pkts/interval)",
    ))


def study_search_space() -> None:
    rng = np.random.default_rng(7)
    rows = []
    for n in (30, 60, 100):
        net = random_connected_network(n, rng=rng)
        r = compute_cds(net, "nd")
        cmp = compare_flooding(net.adjacency, 0, r.gateway_mask)
        rows.append([
            n, r.size, cmp.blind.transmissions,
            cmp.backbone.transmissions, cmp.transmission_saving,
        ])
    print()
    print(render_table(
        ["N", "|G'|", "blind tx", "backbone tx", "saving"],
        rows,
        title="3. Route discovery: blind flooding vs the backbone (ND rules)",
    ))


if __name__ == "__main__":
    study_churn()
    study_traffic()
    study_search_space()
