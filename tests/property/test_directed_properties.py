"""Property-based tests for the unidirectional-link extension."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.unidirectional import (
    compute_directed_cds,
    directed_marking,
    is_dominating_and_absorbing,
    strongly_connected_within,
)
from repro.graphs import bitset
from repro.graphs.digraph import DirectedView, strongly_connected


@st.composite
def strongly_connected_digraphs(draw, min_nodes=2, max_nodes=16):
    """A directed Hamiltonian cycle (strong connectivity by construction)
    plus random extra arcs."""
    n = draw(st.integers(min_nodes, max_nodes))
    out = [0] * n
    for v in range(n):
        out[v] |= 1 << ((v + 1) % n)
    extra = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda t: t[0] != t[1]
            ),
            max_size=3 * n,
        )
    )
    for u, v in extra:
        out[u] |= 1 << v
    return DirectedView(out)


def _is_complete_digraph(view: DirectedView) -> bool:
    full = (1 << view.n) - 1
    return all(
        view.out_adj[v] | (1 << v) == full for v in range(view.n)
    )


class TestDirectedMarkingProperties:
    @given(strongly_connected_digraphs())
    @settings(max_examples=150, deadline=None)
    def test_inputs_are_strongly_connected(self, view):
        assert strongly_connected(view)

    @given(strongly_connected_digraphs())
    @settings(max_examples=150, deadline=None)
    def test_marked_set_dominates_absorbs_connects(self, view):
        marked = directed_marking(view)
        if marked == 0:
            # no relays: every u -> v -> w shortcuts to u -> w, so a
            # strongly connected digraph is transitively closed = complete
            assert _is_complete_digraph(view)
            return
        assert is_dominating_and_absorbing(view, marked)
        assert strongly_connected_within(view, marked)

    @given(strongly_connected_digraphs(), st.sampled_from(["id", "nd"]),
           st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_pruned_set_keeps_invariants(self, view, scheme, use_rule_k):
        out = compute_directed_cds(view, scheme, use_rule_k=use_rule_k)
        if not out:
            return
        assert is_dominating_and_absorbing(view, out)
        assert strongly_connected_within(view, bitset.mask_from_ids(out))

    @given(strongly_connected_digraphs())
    @settings(max_examples=100, deadline=None)
    def test_rules_shrink_monotonically(self, view):
        marked = directed_marking(view)
        pruned = compute_directed_cds(view, "id")
        assert bitset.mask_from_ids(pruned) & ~marked == 0

    @given(strongly_connected_digraphs())
    @settings(max_examples=80, deadline=None)
    def test_symmetric_closure_matches_undirected_marking(self, view):
        """Symmetrizing the digraph and running the undirected marking
        equals running the directed marking on the symmetrized digraph."""
        from repro.core.marking import marked_mask

        sym = [o | i for o, i in zip(view.out_adj, view.in_adj)]
        sym_view = DirectedView(sym)
        # sym is its own transpose, so the directed marking's I(v) = O(v)
        assert directed_marking(sym_view) == marked_mask(sym)
