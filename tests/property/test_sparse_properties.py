"""Property tests for the sparse streaming CDS engine (ISSUE 9).

Random *possibly-disconnected* adjacency batches — drawn to produce many
small components, the regime the per-component decomposition must get
right — are run through :func:`repro.core.sparse.compute_cds_sparse`
under every priority scheme, both rule modes, every execution-tier
forcing (``dense_cutoff`` 0/2/8/huge) and a tiny chunk budget, and every
element's gateway mask AND :class:`PruneStats` must equal the scalar
oracle :func:`repro.core.cds.compute_cds`.

This subsumes the dense engine's equivalence property: the sparse engine
routes small components through :class:`BatchCDSEngine` sub-batches and
large ones through the streamed CSR kernels, so a passing run pins both
tiers and their stats aggregation (removals add across components,
rounds max)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cds import compute_cds
from repro.core.priority import SCHEMES
from repro.core.sparse import compute_cds_sparse


@st.composite
def sparse_batches(draw):
    """Batches of 1-3 sparse graphs: n crossing the word boundary, edge
    probability low enough that disconnection is the common case."""
    n = draw(st.sampled_from([3, 9, 16, 31, 63, 64, 65, 90]))
    b = draw(st.integers(1, 3))
    p_milli = draw(st.integers(10, 120))  # edge probability 1%..12%
    batch = []
    for _ in range(b):
        adj = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if draw(st.integers(0, 999)) < p_milli:
                    adj[i] |= 1 << j
                    adj[j] |= 1 << i
        batch.append(adj)
    energies = [
        [float(draw(st.integers(1, 1000))) / 10.0 for _ in range(n)]
        for _ in range(b)
    ]
    return batch, energies


class TestSparseEngineEquivalence:
    @given(
        sparse_batches(),
        st.sampled_from(sorted(SCHEMES)),
        st.booleans(),
        st.sampled_from([0, 2, 8, 10**6]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_scalar(
        self, payload, scheme_name, fixed_point, dense_cutoff
    ):
        batch, energies = payload
        res = compute_cds_sparse(
            batch, scheme_name, energies=energies,
            fixed_point=fixed_point, dense_cutoff=dense_cutoff,
        )
        for b, adj in enumerate(batch):
            want = compute_cds(
                adj, scheme_name, energy=energies[b], fixed_point=fixed_point
            )
            assert res[b].gateway_mask == want.gateway_mask
            assert res[b].stats == want.stats

    @given(sparse_batches(), st.sampled_from(sorted(SCHEMES)))
    @settings(max_examples=20, deadline=None)
    def test_budget_never_changes_results(self, payload, scheme_name):
        batch, energies = payload
        default = compute_cds_sparse(batch, scheme_name, energies=energies)
        tiny = compute_cds_sparse(
            batch, scheme_name, energies=energies, memory_budget_mb=0.001
        )
        for a, b in zip(default, tiny):
            assert a.gateway_mask == b.gateway_mask
            assert a.stats == b.stats
