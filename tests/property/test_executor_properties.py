"""Property tests for the sharded sweep executor (PR 5).

The contract under test: a sweep's results are a pure function of
(cells, root_seed) — bit-identical per trial across

* process counts (serial in-process vs a real pool),
* shard submission order permutations (``shuffle_seed``), and
* a kill/resume cycle from any partial checkpoint prefix.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.exec.executor import SweepExecutor
from repro.simulation.config import SimulationConfig

TRIALS = 3


def _cells(stability: float):
    return [
        (
            "id",
            SimulationConfig(
                n_hosts=8, scheme="id", drain_model="linear",
                stability=stability,
            ),
        ),
        (
            "el2",
            SimulationConfig(
                n_hosts=8, scheme="el2", drain_model="linear",
                stability=stability,
            ),
        ),
    ]


class TestExecutorProperties:
    @given(
        seed=st.integers(0, 2**20),
        stability=st.sampled_from([0.1, 0.5, 0.9]),
        shuffle=st.integers(0, 2**10),
        cut=st.integers(0, 2 * TRIALS),
    )
    @settings(max_examples=5, deadline=None)
    def test_bit_identical_across_processes_order_and_resume(
        self, seed, stability, shuffle, cut
    ):
        cells = _cells(stability)
        serial = SweepExecutor(processes=1).run(
            cells, TRIALS, root_seed=seed
        )
        pooled = SweepExecutor(processes=4).run(
            cells, TRIALS, root_seed=seed, shuffle_seed=shuffle
        )
        assert pooled.cells == serial.cells

        with tempfile.TemporaryDirectory() as d:
            ck = Path(d) / "ck"
            SweepExecutor(processes=4, checkpoint=ck).run(
                cells, TRIALS, root_seed=seed, shuffle_seed=shuffle
            )
            # kill at an arbitrary point: keep only the first `cut` shards
            shard_file = ck / "shards.jsonl"
            lines = shard_file.read_text().splitlines(keepends=True)
            shard_file.write_text("".join(lines[:cut]))
            resumed = SweepExecutor(processes=4, checkpoint=ck).run(
                cells, TRIALS, root_seed=seed, shuffle_seed=shuffle + 1
            )
        assert resumed.restored == cut
        assert resumed.cells == serial.cells
