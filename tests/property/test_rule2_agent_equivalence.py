"""Pin the two surviving Rule-2 implementations to each other.

The dead centralized copy (``RuleEngine._rule2_unmarks``) is gone; what
remains is the bitmask engine (:meth:`repro.core.rules.RuleEngine.rule2_pass`)
and the message-driven node agent
(:meth:`repro.protocol.node_agent.NodeAgent._rule2_unmarks` plus the
candidacy sub-round machinery).  This property test seeds both from the
*same* post-Rule-1 marked set on random connected graphs and random
energies, runs the agents' sub-rounds to convergence, and requires the
final gateway masks to be bit-identical — so the copies cannot drift.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.marking import marked_mask
from repro.core.priority import scheme_by_name
from repro.core.rules import RuleEngine
from repro.graphs.neighborhoods import NeighborhoodView
from repro.protocol.node_agent import NodeAgent

RULE_SCHEMES = ["id", "nd", "el1", "el2"]


@st.composite
def connected_graphs(draw, min_nodes=3, max_nodes=14):
    """Random connected graph: random spanning tree + extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    edges = set()
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.add((u, v))
    extra = draw(
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).map(lambda t: (min(t), max(t))).filter(lambda t: t[0] != t[1]),
            max_size=2 * n,
        )
    )
    edges |= extra
    adj = [0] * n
    for u, v in edges:
        adj[u] |= 1 << v
        adj[v] |= 1 << u
    return NeighborhoodView(adj)


@st.composite
def graph_energy_scheme(draw):
    g = draw(connected_graphs())
    # small integer-valued floats force frequent energy ties, which is
    # exactly where the two key computations could disagree
    energy = draw(
        st.lists(st.integers(1, 4).map(float), min_size=g.n, max_size=g.n)
    )
    scheme = draw(st.sampled_from(RULE_SCHEMES))
    return g, energy, scheme


def _agents_after_rule1(g, energy, scheme, after1: int) -> list[NodeAgent]:
    """Build agents with exchanged neighbor sets, state forced to ``after1``.

    Marking and Rule 1 are bypassed on purpose: the test isolates Rule 2,
    so a drift there cannot be masked (or faked) by the earlier stages.
    """
    adj = g.adjacency
    agents = [
        NodeAgent(
            v,
            frozenset(u for u in range(g.n) if adj[v] >> u & 1),
            scheme,
            energy=energy[v],
        )
        for v in range(g.n)
    ]
    msgs = [a.make_neighbor_set_msg() for a in agents]
    for a in agents:
        a.receive_neighbor_sets([m for m in msgs if m.sender in a.neighbors])
    for a in agents:
        a.marked = bool(after1 >> a.node & 1)  # pre-rule1 value is unused
        a.marked_post_rule1 = bool(after1 >> a.node & 1)
        a.nbr_marked_post_rule1 = {
            u: bool(after1 >> u & 1) for u in a.neighbors
        }
    return agents


def _run_agent_rule2(agents: list[NodeAgent]) -> int:
    for a in agents:
        a.begin_rule2()
    for _ in range(len(agents) + 1):  # convergence bound: ≥1 unmark/round
        markers = [a.make_rule2_marker_msg() for a in agents]
        for a in agents:
            a.receive_rule2_markers(
                [m for m in markers if m.sender in a.neighbors]
            )
        cands = [a.make_candidacy_msg() for a in agents]
        for a in agents:
            a.receive_candidacies(
                [m for m in cands if m.sender in a.neighbors]
            )
        if not any(a.decide_rule2_subround() for a in agents):
            break
    else:  # pragma: no cover - would mean non-termination
        raise AssertionError("rule2 sub-rounds did not converge")
    mask = 0
    for a in agents:
        if a.finalize():
            mask |= 1 << a.node
    return mask


class TestRule2Equivalence:
    @given(graph_energy_scheme())
    @settings(max_examples=150, deadline=None)
    def test_engine_and_agents_agree_from_same_rule1_state(self, ges):
        g, energy, name = ges
        scheme = scheme_by_name(name)
        engine = RuleEngine(g.adjacency, scheme, energy)
        after1 = engine.rule1_pass(marked_mask(g.adjacency))

        centralized = engine.rule2_pass(after1)
        agent_mask = _run_agent_rule2(
            _agents_after_rule1(g, energy, scheme, after1)
        )
        assert agent_mask == centralized, (
            f"scheme={name} after1={after1:b} "
            f"engine={centralized:b} agents={agent_mask:b}"
        )

    @given(connected_graphs(), st.sampled_from(RULE_SCHEMES))
    @settings(max_examples=60, deadline=None)
    def test_agreement_with_uniform_energy(self, g, name):
        # uniform energy: every EL key ties on energy, so ordering falls
        # entirely to the tie-breakers — the historically fragile path
        scheme = scheme_by_name(name)
        energy = [2.0] * g.n
        engine = RuleEngine(g.adjacency, scheme, energy)
        after1 = engine.rule1_pass(marked_mask(g.adjacency))
        agent_mask = _run_agent_rule2(
            _agents_after_rule1(g, energy, scheme, after1)
        )
        assert agent_mask == engine.rule2_pass(after1)
