"""Property-based verification of the fault-tolerance contract.

The degrade-policy guarantee, stated as properties over arbitrary
connected graphs and arbitrary seeded fault plans (loss p <= 0.3, at
most two crashes):

* the engine **never raises** — it always returns a
  :class:`~repro.faults.outcome.FaultOutcome`;
* a converged outcome really satisfies domination + backbone
  connectivity on every surviving component (re-checked here against the
  oracle, not trusted from the engine);
* a non-converged outcome is honest: it reports a positive coverage gap,
  a broken backbone, or an incomplete run — never a silent success;
* fault realizations replay bit-identically from their seed.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan, evaluate_surviving
from repro.graphs import bitset
from repro.graphs.neighborhoods import NeighborhoodView
from repro.protocol.fault_tolerant import run_fault_tolerant_cds


@st.composite
def connected_graphs(draw, min_nodes=4, max_nodes=16):
    """A random connected graph: a random spanning tree + extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    edges = set()
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.add((u, v))
    extra = draw(
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).map(lambda t: (min(t), max(t))).filter(lambda t: t[0] != t[1]),
            max_size=2 * n,
        )
    )
    edges |= extra
    adj = [0] * n
    for u, v in edges:
        adj[u] |= 1 << v
        adj[v] |= 1 << u
    return NeighborhoodView(adj)


@st.composite
def fault_scenarios(draw):
    g = draw(connected_graphs())
    energy = draw(
        st.lists(st.integers(1, 5).map(float), min_size=g.n, max_size=g.n)
    )
    seed = draw(st.integers(0, 2**32 - 1))
    loss = draw(st.sampled_from([0.0, 0.1, 0.2, 0.3]))
    n_crashes = draw(st.integers(0, 2))
    victims = draw(
        st.sets(st.integers(0, g.n - 1), min_size=n_crashes, max_size=n_crashes)
    )
    stages = draw(
        st.lists(st.integers(1, 7), min_size=n_crashes, max_size=n_crashes)
    )
    plan = FaultPlan(
        seed=seed, loss=loss, crashes=dict(zip(sorted(victims), stages))
    )
    scheme = draw(st.sampled_from(["id", "nd", "el1", "el2"]))
    return g, energy, plan, scheme


@settings(max_examples=60, deadline=None)
@given(fault_scenarios())
def test_degrade_never_raises_and_reports_honestly(scenario):
    g, energy, plan, scheme = scenario
    # the whole point: this call must not raise, whatever the plan says
    out = run_fault_tolerant_cds(
        g, scheme, energy=energy, plan=plan, policy="degrade"
    )
    adj = list(g.adjacency)
    crashed_mask = bitset.mask_from_ids(out.crashed)
    gw_mask = bitset.mask_from_ids(out.gateways)
    # crashed hosts can never end up in the gateway set
    assert not (gw_mask & crashed_mask)
    # re-derive the verdict from the oracle; the outcome must agree
    check = evaluate_surviving(adj, crashed_mask, gw_mask)
    assert out.check == check
    if out.converged:
        assert check.dominates and check.backbone_connected
        assert out.coverage_gap == 0
    else:
        # honest failure: a gap, a broken backbone, or an incomplete run
        assert (
            out.coverage_gap > 0
            or not check.backbone_connected
            or not out.completed
        )
    # only scheduled victims ever crash (a crash stage past the protocol's
    # quiescence point simply never fires)
    assert out.crashed <= frozenset(plan.crashes)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    loss=st.floats(0.05, 0.5),
    delay=st.floats(0.0, 0.3),
)
def test_fault_plan_replays_bit_identically(seed, loss, delay):
    plan = FaultPlan(seed=seed, loss=loss, delay=delay)
    a, b = plan.realize(), plan.realize()
    queries = [
        (r, s, d) for r in range(4) for s in range(4) for d in range(4) if s != d
    ]
    assert [a.link_event(*q) for q in queries] == [
        b.link_event(*q) for q in queries
    ]
    for s, r in [(0, 1), (1, 2), (2, 0)]:
        for k in range(3):
            assert a.async_attempt(s, r, k) == b.async_attempt(s, r, k)
