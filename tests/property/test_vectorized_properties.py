"""Property tests for the vectorized batch CDS engine (ISSUE 7).

Layer 1 — exact: for random batches of mixed topologies, every element's
gateway mask and :class:`PruneStats` from
:func:`repro.core.vectorized.compute_cds_batch` equal the scalar oracle
:func:`repro.core.cds.compute_cds`, across all five priority schemes,
both rule modes, and n straddling the uint64 word boundary.

Layer 2 — statistical: at N = 10k exhaustive comparison is infeasible,
so the engine is checked against the Hansen–Schmutz prediction instead
(PAPERS.md, "Probabilistic Analysis of Rule 2"): on random geometric
ensembles of constant density the expected CDS size after marking +
Rules 1/2 is Θ(n) — the per-node gateway *fraction* is a constant of the
density, independent of n.  So the fraction measured on small ensembles
must carry, within sampling tolerance, to N = 10k, and the ensemble must
concentrate (small relative spread).  A tail-word bug, a broken rule
round, or a rank mix-up at scale shifts the fraction far beyond the
tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cds import compute_cds
from repro.core.priority import SCHEMES
from repro.core.vectorized import compute_cds_batch
from repro.graphs.generators import random_connected_network, scaled_side


@st.composite
def adjacency_batches(draw):
    """Batches of 1-4 independent graphs on a shared n (odd and even,
    crossing the 64-bit word boundary)."""
    n = draw(st.sampled_from([2, 3, 9, 16, 31, 63, 64, 65]))
    b = draw(st.integers(1, 4))
    batch = []
    for _ in range(b):
        adj = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if draw(st.booleans()):
                    adj[i] |= 1 << j
                    adj[j] |= 1 << i
        batch.append(adj)
    energies = [
        [
            float(draw(st.integers(1, 1000))) / 10.0
            for _ in range(n)
        ]
        for _ in range(b)
    ]
    return batch, energies


class TestBatchEngineEquivalence:
    @given(
        adjacency_batches(),
        st.sampled_from(sorted(SCHEMES)),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_scalar(self, payload, scheme_name, fixed_point):
        batch, energies = payload
        res = compute_cds_batch(
            batch, scheme_name, energies, fixed_point=fixed_point
        )
        for b, adj in enumerate(batch):
            want = compute_cds(
                adj, scheme_name, energy=energies[b], fixed_point=fixed_point
            )
            assert res[b].gateway_mask == want.gateway_mask
            assert res[b].stats == want.stats


def _gateway_fraction(n: int, seeds, scheme: str = "nd") -> np.ndarray:
    """Per-topology CDS fraction on constant-density geometric graphs."""
    batch = []
    for seed in seeds:
        net = random_connected_network(
            n,
            side=scaled_side(n),
            radius=25.0,
            rng=np.random.default_rng(seed),
        )
        batch.append(list(net.adjacency))
    res = compute_cds_batch(batch, scheme)
    return np.array([r.size / n for r in res], dtype=np.float64)


@pytest.mark.slow
class TestHansenSchmutzScaling:
    def test_cds_fraction_is_density_constant_up_to_10k(self):
        # reference fraction from a cheap ensemble; 10k from a small one
        small = _gateway_fraction(1000, seeds=range(5))
        big = _gateway_fraction(10_000, seeds=range(100, 103))
        # Θ(n): the per-node fraction carries across a 10x size jump.
        # Tolerances reflect ensemble noise (fractions sit near 0.28 at
        # this density; boundary effects shrink with n, so allow a few
        # percentage points drift).
        assert abs(float(big.mean()) - float(small.mean())) < 0.04
        # concentration: relative spread collapses at n = 10k
        assert float(big.std()) / float(big.mean()) < 0.05
        # sanity band: a broken rules pass leaves ~all marked (>0.8),
        # a broken marking pass leaves ~none (<0.05)
        assert 0.1 < float(big.mean()) < 0.6
