"""Property-based checks over the whole algorithm registry.

One law for every registered construction: on any connected graph with
any energy assignment, ``compute(..., verify=True)`` must not raise —
i.e. the result passes the shared :func:`repro.core.properties.verify_cds`
invariants (domination + induced connectivity, with the empty-CDS
exemption for graphs whose marking is trivially empty).  The registry's
per-component decomposition gets the same treatment on disconnected
inputs built by stacking two drawn graphs into one id space.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.registry import ALGORITHMS
from repro.graphs import bitset
from repro.graphs.neighborhoods import NeighborhoodView

from tests.property.test_cds_invariants import connected_graphs


@st.composite
def graph_energy_scheme(draw):
    g = draw(connected_graphs(min_nodes=2, max_nodes=16))
    energy = draw(
        st.lists(
            st.integers(1, 200).map(float), min_size=g.n, max_size=g.n
        )
    )
    scheme = draw(st.sampled_from(["nr", "id", "nd", "el1", "el2"]))
    return g, energy, scheme


@st.composite
def two_component_graphs(draw):
    a = draw(connected_graphs(min_nodes=2, max_nodes=10))
    b = draw(connected_graphs(min_nodes=2, max_nodes=10))
    shift = a.n
    adj = list(a.adjacency) + [row << shift for row in b.adjacency]
    return NeighborhoodView(adj), a.n


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestEveryAlgorithmSatisfiesTheInvariants:
    @given(ges=graph_energy_scheme())
    @settings(max_examples=40, deadline=None)
    def test_verifies_on_connected_graphs(self, name, ges):
        g, energy, scheme = ges
        result = ALGORITHMS[name].compute(g, scheme, energy, verify=True)
        assert result.gateway_mask >> g.n == 0
        assert result.n == g.n
        if result.stats is not None:
            assert result.stats.initial_marked >= bitset.popcount(
                result.gateway_mask
            ) - result.stats.removed_rule1 - result.stats.removed_rule2

    @given(gs=two_component_graphs())
    @settings(max_examples=25, deadline=None)
    def test_verifies_per_component_when_disconnected(self, name, gs):
        g, split = gs
        result = ALGORITHMS[name].compute(g, "nd", None, verify=True)
        # gateways never leak across the component boundary: each row of
        # the adjacency confines a gateway's usefulness to its side
        lo_mask = (1 << split) - 1
        lo = result.gateway_mask & lo_mask
        hi = result.gateway_mask & ~lo_mask
        for v in bitset.iter_bits(lo):
            assert g.adjacency[v] & ~lo_mask == 0
        for v in bitset.iter_bits(hi):
            assert g.adjacency[v] & lo_mask == 0
