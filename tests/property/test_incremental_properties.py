"""Property tests for the incremental delta-CDS pipeline (PR 4).

Three layers, each pinned against its from-scratch reference:

1. :class:`UniformGridIndex` queries == brute-force distance filtering,
   including negative coordinates and points exactly on cell boundaries
   (the floor-based bucketing's edge cases);
2. incrementally maintained adjacency (:meth:`AdHocNetwork.apply_moves`)
   == a full :func:`unit_disk_adjacency` rebuild over random move
   sequences — both the dense and the grid delta strategies;
3. :class:`DeltaCDSPipeline` gateway masks == :func:`compute_cds` for all
   five schemes over random move sequences with draining energy.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.cds import compute_cds
from repro.core.delta import DeltaCDSPipeline
from repro.core.priority import SCHEMES
from repro.geometry.spatial_index import UniformGridIndex
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.unitdisk import unit_disk_adjacency

# Coordinates straddle zero and land on exact multiples of every radius
# below, exercising the floor-bucketing seams.  They are quantized to 0.5
# so squared distances are exact in float64: a coordinate within a
# sub-ulp of a cell seam can otherwise make the float ``d2 <= r*r``
# filter accept a point whose true distance exceeds r and which therefore
# legitimately lies outside the 3x3 cell block (a measure-zero tie the
# simulator's clamped [0, side] domain cannot produce).
coords = st.integers(-100, 100).map(lambda k: 0.5 * k)
radii = st.sampled_from([1.0, 2.5, 5.0, 25.0])
point_arrays = st.lists(
    st.tuples(coords, coords), min_size=1, max_size=40
).map(lambda pts: np.array(pts, dtype=np.float64))


def _brute_query(pts: np.ndarray, q, r: float) -> list[int]:
    d2 = np.sum((pts - np.asarray(q, dtype=np.float64)) ** 2, axis=1)
    return [int(i) for i in np.flatnonzero(d2 <= r * r)]


class TestGridIndexProperties:
    @given(point_arrays, radii)
    @settings(max_examples=150, deadline=None)
    def test_query_matches_brute_force(self, pts, radius):
        idx = UniformGridIndex(pts, radius)
        for q in pts[:8]:
            assert idx.query(q) == _brute_query(pts, q, radius)

    @given(point_arrays, radii)
    @settings(max_examples=100, deadline=None)
    def test_cell_block_is_candidate_superset(self, pts, radius):
        idx = UniformGridIndex(pts, radius)
        for q in pts[:8]:
            block = set(idx.cell_block(q))
            assert block >= set(_brute_query(pts, q, radius))

    @given(point_arrays, radii, st.data())
    @settings(max_examples=100, deadline=None)
    def test_query_after_incremental_moves(self, pts, radius, data):
        """move() re-bucketing keeps queries exact (aliased array mutated)."""
        idx = UniformGridIndex(pts, radius)
        n = len(pts)
        for _ in range(data.draw(st.integers(1, 5))):
            i = data.draw(st.integers(0, n - 1))
            pts[i] = data.draw(st.tuples(coords, coords))
            idx.move(i)
        for q in pts[:8]:
            assert idx.query(q) == _brute_query(pts, q, radius)

    def test_point_on_cell_boundary(self):
        # x == k * radius exactly: the point sits on the seam between cells
        pts = np.array([[25.0, 0.0], [25.0 - 1e-9, 0.0], [-25.0, -25.0]])
        idx = UniformGridIndex(pts, 25.0)
        for q in pts:
            assert idx.query(q) == _brute_query(pts, q, 25.0)


# small regions force topology churn; mix fractional and full-set moves so
# both the dense/grid patch path and the rebuild fallback are exercised
move_counts = st.integers(1, 100)


@st.composite
def move_sequences(draw):
    n = draw(st.integers(1, 30))
    pts = draw(
        hnp.arrays(
            np.float64,
            (n, 2),
            elements=st.floats(0.0, 60.0, allow_nan=False),
        )
    )
    steps = []
    for _ in range(draw(st.integers(1, 6))):
        k = draw(st.integers(1, n))
        ids = draw(
            st.lists(
                st.integers(0, n - 1), min_size=k, max_size=k, unique=True
            )
        )
        deltas = draw(
            hnp.arrays(
                np.float64,
                (k, 2),
                elements=st.floats(-20.0, 20.0, allow_nan=False),
            )
        )
        steps.append((ids, deltas))
    return pts, steps


class TestIncrementalAdjacency:
    @given(move_sequences())
    @settings(max_examples=150, deadline=None)
    def test_apply_moves_equals_full_rebuild(self, seq):
        pts, steps = seq
        net = AdHocNetwork(pts, 25.0, side=60.0)
        net.adjacency  # prime the cache so every step patches incrementally
        for ids, deltas in steps:
            net.positions[ids] += deltas
            net.apply_moves(ids)
            assert net.adjacency == unit_disk_adjacency(net.positions, 25.0)

    @given(move_sequences())
    @settings(max_examples=60, deadline=None)
    def test_apply_moves_reports_exact_changed_rows(self, seq):
        pts, steps = seq
        net = AdHocNetwork(pts, 25.0, side=60.0)
        prev = list(net.adjacency)
        for ids, deltas in steps:
            net.positions[ids] += deltas
            changed = net.apply_moves(ids)
            cur = net.adjacency
            expect = 0
            for v in range(net.n):
                if cur[v] != prev[v]:
                    expect |= 1 << v
            assert changed == expect
            prev = list(cur)


class TestDeltaPipelineEquivalence:
    @given(move_sequences(), st.sampled_from(sorted(SCHEMES)))
    @settings(max_examples=60, deadline=None)
    def test_masks_and_stats_match_scratch(self, seq, scheme_name):
        pts, steps = seq
        net = AdHocNetwork(pts, 25.0, side=60.0)
        net.adjacency
        n = net.n
        scheme = SCHEMES[scheme_name]
        pipe = DeltaCDSPipeline(scheme)
        energy = np.linspace(30.0, 100.0, n)
        for step_no, (ids, deltas) in enumerate([([], None)] + steps):
            if step_no:
                net.positions[ids] += deltas
                net.apply_moves(ids)
            e = energy if scheme.needs_energy else None
            got = pipe.compute(net, energy=e)
            want = compute_cds(net.snapshot(), scheme, energy=e)
            assert got.gateway_mask == want.gateway_mask
            assert got.stats == want.stats
            # drain so EL keys actually change between steps
            energy -= np.where(
                np.arange(n) % 3 == step_no % 3, 2.0, 0.5
            )

    @given(move_sequences())
    @settings(max_examples=30, deadline=None)
    def test_fixed_point_mode_matches_scratch(self, seq):
        pts, steps = seq
        net = AdHocNetwork(pts, 25.0, side=60.0)
        net.adjacency
        pipe = DeltaCDSPipeline("nd", fixed_point=True)
        for step_no, (ids, deltas) in enumerate([([], None)] + steps):
            if step_no:
                net.positions[ids] += deltas
                net.apply_moves(ids)
            got = pipe.compute(net)
            want = compute_cds(net.snapshot(), "nd", fixed_point=True)
            assert got.gateway_mask == want.gateway_mask
