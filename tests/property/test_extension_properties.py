"""Property-based tests for the extension modules (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cds import compute_cds
from repro.core.components_cds import compute_cds_per_component
from repro.core.properties import induced_connected
from repro.core.rule_k import compute_cds_rule_k
from repro.graphs import bitset
from repro.graphs.neighborhoods import NeighborhoodView
from repro.graphs.subgraphs import (
    active_components,
    is_dominating_over,
    restrict_adjacency,
)
from repro.routing.broadcast import backbone_flood, flood

from tests.property.test_cds_invariants import connected_graphs, graph_with_energy, is_complete


class TestRuleKProperties:
    @given(graph_with_energy(), st.sampled_from(["id", "nd", "el1", "el2"]))
    @settings(max_examples=120, deadline=None)
    def test_rule_k_preserves_cds(self, ge, scheme):
        g, energy = ge
        out = compute_cds_rule_k(g, scheme, energy=energy)
        if is_complete(g):
            return
        mask = bitset.mask_from_ids(out)
        full = (1 << g.n) - 1
        assert is_dominating_over(g.adjacency, mask, full), scheme
        assert induced_connected(g.adjacency, mask), scheme


class TestSubgraphProperties:
    @given(connected_graphs(), st.integers(min_value=0))
    @settings(max_examples=100, deadline=None)
    def test_restriction_is_symmetric_and_within_mask(self, g, raw_mask):
        mask = raw_mask & ((1 << g.n) - 1)
        sub = restrict_adjacency(g.adjacency, mask)
        for u in range(g.n):
            assert sub[u] & ~mask == 0
            if not mask >> u & 1:
                assert sub[u] == 0
            for v in bitset.iter_bits(sub[u]):
                assert sub[v] >> u & 1

    @given(connected_graphs(), st.integers(min_value=0))
    @settings(max_examples=100, deadline=None)
    def test_components_partition_the_active_set(self, g, raw_mask):
        mask = raw_mask & ((1 << g.n) - 1)
        comps = active_components(g.adjacency, mask)
        union = 0
        for c in comps:
            assert union & c == 0  # disjoint
            union |= c
        assert union == mask


class TestPerComponentProperties:
    @given(connected_graphs(max_nodes=14), st.integers(min_value=0))
    @settings(max_examples=100, deadline=None)
    def test_each_active_component_gets_a_valid_backbone(self, g, raw_mask):
        mask = raw_mask & ((1 << g.n) - 1)
        gw = compute_cds_per_component(g, "id", active_mask=mask)
        sub = restrict_adjacency(g.adjacency, mask)
        for comp in active_components(g.adjacency, mask):
            comp_gw = gw & comp
            size = bitset.popcount(comp)
            if size <= 2:
                assert comp_gw == 0
                continue
            # a complete component legitimately yields no gateways
            complete = all(
                (sub[v] | (1 << v)) & comp == comp
                for v in bitset.iter_bits(comp)
            )
            if complete:
                assert comp_gw == 0
                continue
            assert is_dominating_over(sub, comp_gw, comp)
            assert induced_connected(sub, comp_gw)


class TestFloodingProperties:
    @given(connected_graphs(max_nodes=16), st.data())
    @settings(max_examples=100, deadline=None)
    def test_blind_flood_reaches_all_with_n_transmissions(self, g, data):
        src = data.draw(st.integers(0, g.n - 1))
        out = flood(g.adjacency, src)
        assert out.reached_all(g.n)
        assert out.transmissions == g.n

    @given(graph_with_energy(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_backbone_flood_reaches_all_over_any_cds(self, ge, data):
        g, energy = ge
        src = data.draw(st.integers(0, g.n - 1))
        r = compute_cds(g, "nd", energy=energy)
        out = backbone_flood(g.adjacency, src, r.gateway_mask)
        if is_complete(g):
            # empty backbone: one transmission covers the clique
            assert out.reached_all(g.n)
            return
        assert out.reached_all(g.n)
        assert out.transmissions <= r.size + 1
