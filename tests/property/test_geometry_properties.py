"""Property-based tests for geometry and UDG construction."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry.space import BoundaryPolicy, Region2D
from repro.graphs.neighborhoods import validate_adjacency
from repro.graphs.unitdisk import (
    unit_disk_adjacency_dense,
    unit_disk_adjacency_grid,
)

positions = hnp.arrays(
    np.float64,
    st.tuples(st.integers(0, 40), st.just(2)),
    elements=st.floats(0.0, 100.0, allow_nan=False),
)
radii = st.floats(0.1, 60.0, allow_nan=False)


class TestUnitDisk:
    @given(positions, radii)
    @settings(max_examples=100, deadline=None)
    def test_dense_equals_grid(self, pos, radius):
        assert unit_disk_adjacency_dense(pos, radius) == \
            unit_disk_adjacency_grid(pos, radius)

    @given(positions, radii)
    @settings(max_examples=100, deadline=None)
    def test_output_is_valid_adjacency(self, pos, radius):
        validate_adjacency(unit_disk_adjacency_dense(pos, radius))

    @given(positions, radii, radii)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_radius(self, pos, r1, r2):
        small, big = sorted([r1, r2])
        a_small = unit_disk_adjacency_dense(pos, small)
        a_big = unit_disk_adjacency_dense(pos, big)
        for ms, mb in zip(a_small, a_big):
            assert ms & mb == ms  # edges only ever get added


policies = st.sampled_from(list(BoundaryPolicy))


class TestBoundary:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 30), st.just(2)),
            elements=st.floats(-500.0, 500.0, allow_nan=False),
        ),
        policies,
    )
    @settings(max_examples=120, deadline=None)
    def test_every_policy_lands_inside(self, pos, policy):
        region = Region2D(side=100.0, policy=policy)
        region.apply_boundary(pos)
        assert np.all(region.contains(pos))

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 30), st.just(2)),
            elements=st.floats(0.0, 100.0, allow_nan=False),
        ),
        policies,
    )
    @settings(max_examples=60, deadline=None)
    def test_interior_points_are_fixed_points(self, pos, policy):
        region = Region2D(side=100.0, policy=policy)
        before = pos.copy()
        region.apply_boundary(pos)
        if policy is BoundaryPolicy.TORUS:
            # 100.0 wraps to 0.0 under mod; ignore exact-boundary inputs
            interior = np.all(before < 100.0, axis=1)
            np.testing.assert_allclose(pos[interior], before[interior])
        else:
            np.testing.assert_allclose(pos, before)

    @given(st.floats(-1000, 1000, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_torus_distance_symmetric_and_bounded(self, x):
        region = Region2D(side=100.0, policy=BoundaryPolicy.TORUS)
        a = np.array([x % 100.0, 0.0])
        b = np.array([0.0, 0.0])
        d1 = region.distances(a, b)
        d2 = region.distances(b, a)
        assert d1 == d2
        assert d1 <= 50.0 * np.sqrt(2) + 1e-9
