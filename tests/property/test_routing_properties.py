"""Property-based tests for the routing layer (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cds import compute_cds
from repro.routing.dsr import DominatingSetRouter
from repro.routing.shortest_path import bfs_distances, bfs_path
from repro.routing.tables import build_routing_tables
from repro.graphs import bitset

from tests.property.test_cds_invariants import graph_with_energy, is_complete


class TestThreeStepRouting:
    @given(graph_with_energy(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_routes_are_valid_walks_near_shortest(self, ge, data):
        g, energy = ge
        if is_complete(g):
            return
        r = compute_cds(g, "nd", energy=energy)
        router = DominatingSetRouter(g.adjacency, r.gateway_mask)
        src = data.draw(st.integers(0, g.n - 1))
        dst = data.draw(st.integers(0, g.n - 1))
        route = router.route(src, dst)
        # valid walk along edges, correct endpoints
        assert route.nodes[0] == src and route.nodes[-1] == dst
        for a, b in route.hops:
            assert g.adjacency[a] >> b & 1
        # intermediates are gateways
        assert all(r.gateway_mask >> v & 1 for v in route.intermediates)
        # near-shortest: the 3-step process adds at most 2 hops
        true = bfs_distances(g.adjacency, src)[dst]
        assert true <= route.length <= true + 2

    @given(graph_with_energy())
    @settings(max_examples=80, deadline=None)
    def test_tables_cover_all_non_gateways(self, ge):
        g, energy = ge
        if is_complete(g):
            return
        r = compute_cds(g, "id", energy=energy)
        tables = build_routing_tables(g.adjacency, r.gateways)
        non_gw = set(range(g.n)) - set(r.gateways)
        covered = set()
        for t in tables.values():
            covered |= t.members
        assert covered == non_gw

    @given(graph_with_energy())
    @settings(max_examples=60, deadline=None)
    def test_next_hops_form_shortest_paths(self, ge):
        g, energy = ge
        if is_complete(g):
            return
        r = compute_cds(g, "id", energy=energy)
        tables = build_routing_tables(g.adjacency, r.gateways)
        for src_gw, t in tables.items():
            for dst_gw, d in t.distance_to.items():
                # walking next hops reaches the destination in d steps
                cur, steps = src_gw, 0
                while cur != dst_gw and steps <= d:
                    cur = tables[cur].next_hop_to[dst_gw] if cur != dst_gw else cur
                    steps += 1
                assert cur == dst_gw and steps == d


class TestBfsProperties:
    @given(graph_with_energy(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_bfs_path_length_equals_distance(self, ge, data):
        g, _ = ge
        src = data.draw(st.integers(0, g.n - 1))
        dst = data.draw(st.integers(0, g.n - 1))
        dist = bfs_distances(g.adjacency, src)[dst]
        path = bfs_path(g.adjacency, src, dst)
        assert len(path) - 1 == dist
        # consecutive nodes adjacent, no repeats
        assert len(set(path)) == len(path)
        for a, b in zip(path, path[1:]):
            assert g.adjacency[a] >> b & 1
