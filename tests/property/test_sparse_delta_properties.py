"""Equivalence properties for the incremental sparse pipeline (ISSUE 10).

Random *move/churn sequences* — per-interval jitter of a random host
subset, teleports that split or merge components, and energy drain — are
replayed through three paths that must stay bit-identical at every
interval, for all five priority schemes:

1. :class:`repro.core.sparse_delta.IncrementalSparseCDSPipeline`
   (persistent CSR, dirty components — the path under test);
2. a *fresh* :class:`repro.core.sparse.SparseCDSPipeline` compute
   (the stateless full rebuild);
3. the scalar oracle :func:`repro.core.cds.compute_cds`.

Both gateway masks and :class:`PruneStats` are compared, so the
component-granular stats aggregation (sums, rounds max, floor) is pinned
too, not just the marking outcome.  The slow Hansen–Schmutz check runs
the *incremental* path at N=10k under drain and asserts the CDS fraction
stays in the density-constant band — the ensemble-scale statistical
oracle for the dirty-component machinery.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cds import compute_cds
from repro.core.priority import SCHEMES
from repro.core.sparse import SparseCDSPipeline
from repro.core.sparse_delta import IncrementalSparseCDSPipeline
from repro.graphs.generators import random_connected_network, scaled_side


@st.composite
def move_sequences(draw):
    """A geometric network + a per-interval script of moves and drains.

    Each interval is (jitter subset, teleport subset, drain?) — teleports
    relocate uniformly across the arena, the reliable way to split a
    component or merge two; jitter is paper-walk-sized.  Small arenas
    keep multi-component states common.
    """
    # feasible (n, side) pairs at radius 25: sparse enough that teleports
    # split components, dense enough that a connected seed placement exists
    n, side = draw(
        st.sampled_from(
            [(12, 60.0), (30, 60.0), (30, 90.0), (64, 90.0), (80, 140.0)]
        )
    )
    seed = draw(st.integers(0, 2**32 - 1))
    intervals = []
    for _ in range(draw(st.integers(2, 5))):
        n_jitter = draw(st.integers(0, max(1, n // 4)))
        n_tp = draw(st.integers(0, 2))
        drains = draw(st.booleans())
        intervals.append((n_jitter, n_tp, drains))
    return n, side, seed, intervals


def _apply_interval(net, energy, mask, spec, rng):
    n_jitter, n_tp, drains = spec
    n = len(energy)
    if n_jitter:
        who = rng.choice(n, size=n_jitter, replace=False)
        step = rng.uniform(1.0, 6.0, size=(n_jitter, 1))
        theta = rng.uniform(0.0, 2 * np.pi, size=n_jitter)
        delta = step * np.stack([np.cos(theta), np.sin(theta)], axis=1)
        net.positions[who] = np.clip(
            net.positions[who] + delta, 0.0, net.side
        )
        net.invalidate()
    for _ in range(n_tp):
        v = int(rng.integers(0, n))
        net.move_host(v, rng.uniform(0.0, net.side, size=2))
    if drains:
        for v in range(n):
            energy[v] -= 3.0 if (mask >> v) & 1 else 1.0


class TestIncrementalSparseEquivalence:
    @given(move_sequences(), st.sampled_from(sorted(SCHEMES)))
    @settings(max_examples=60, deadline=None)
    def test_three_way_bit_identity(self, payload, scheme_name):
        n, side, seed, intervals = payload
        rng = np.random.default_rng(seed)
        net = random_connected_network(n, side=side, radius=25.0, rng=rng)
        needs_energy = SCHEMES[scheme_name].needs_energy
        energy = [100.0] * n
        inc = IncrementalSparseCDSPipeline(scheme_name)
        mask = 0
        for spec in [(0, 0, False)] + intervals:
            _apply_interval(net, energy, mask, spec, rng)
            e = list(energy) if needs_energy else None
            got = inc.compute(net, energy=e)
            stateless = SparseCDSPipeline(scheme_name).compute(
                list(net.adjacency), energy=e
            )
            oracle = compute_cds(net.snapshot(), scheme_name, energy=e)
            assert got.gateway_mask == stateless.gateway_mask
            assert got.stats == stateless.stats
            assert got.gateway_mask == oracle.gateway_mask
            assert got.stats == oracle.stats
            mask = got.gateway_mask

    @given(move_sequences(), st.sampled_from(sorted(SCHEMES)))
    @settings(max_examples=15, deadline=None)
    def test_adjacency_fallback_bit_identity(self, payload, scheme_name):
        """The raw-rows input mode reuses components too; same identity."""
        n, side, seed, intervals = payload
        rng = np.random.default_rng(seed)
        net = random_connected_network(n, side=side, radius=25.0, rng=rng)
        needs_energy = SCHEMES[scheme_name].needs_energy
        energy = [100.0] * n
        inc = IncrementalSparseCDSPipeline(scheme_name)
        mask = 0
        for spec in [(0, 0, False)] + intervals:
            _apply_interval(net, energy, mask, spec, rng)
            e = list(energy) if needs_energy else None
            rows = [int(r) for r in net.adjacency]
            got = inc.compute(rows, energy=e)
            oracle = compute_cds(rows, scheme_name, energy=e)
            assert got.gateway_mask == oracle.gateway_mask
            assert got.stats == oracle.stats
            mask = got.gateway_mask


def _incremental_gateway_fraction(n: int, seeds) -> np.ndarray:
    """Per-topology CDS fraction from the *incremental* path under drain."""
    fractions = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        net = random_connected_network(
            n, side=scaled_side(n), radius=25.0, rng=rng
        )
        pipe = IncrementalSparseCDSPipeline("nd")
        pipe.compute(net)
        # warm steps with real movement: the fraction measured comes off
        # the dirty-component path, not the cold start
        for _ in range(2):
            who = rng.choice(n, size=max(1, n // 100), replace=False)
            for v in who:
                net.move_host(
                    int(v), rng.uniform(0.0, net.side, size=2)
                )
            res = pipe.compute(net)
        fractions.append(res.size / n)
    return np.array(fractions, dtype=np.float64)


@pytest.mark.slow
class TestHansenSchmutzIncremental:
    def test_cds_fraction_density_constant_at_10k(self):
        small = _incremental_gateway_fraction(1000, seeds=range(5))
        big = _incremental_gateway_fraction(10_000, seeds=range(100, 103))
        assert abs(float(big.mean()) - float(small.mean())) < 0.04
        assert float(big.std()) / float(big.mean()) < 0.05
        assert 0.1 < float(big.mean()) < 0.6
