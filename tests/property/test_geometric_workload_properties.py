"""Property-based tests over the paper's *geometric* workload.

The other property suites use abstract random graphs; these generate the
actual simulation objects — positioned hosts, unit-disk radios, the
8-direction walk — and check the end-to-end invariants the simulator
relies on every interval.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.cds import compute_cds
from repro.core.properties import is_cds
from repro.geometry.space import BoundaryPolicy, Region2D
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.neighborhoods import is_connected
from repro.mobility.paper_walk import PaperWalk
from repro.routing.dsr import DominatingSetRouter


positions_arrays = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 25), st.just(2)),
    elements=st.floats(0.0, 100.0, allow_nan=False),
)


def _is_complete(adj) -> bool:
    n = len(adj)
    full = (1 << n) - 1
    return all(adj[v] | (1 << v) == full for v in range(n))


class TestGeometricCds:
    @given(positions_arrays, st.floats(5.0, 80.0))
    @settings(max_examples=120, deadline=None)
    def test_cds_invariants_on_connected_udgs(self, pos, radius):
        net = AdHocNetwork(pos, radius)
        if not net.is_connected() or _is_complete(net.adjacency):
            return
        energy = np.linspace(1.0, 9.0, net.n)
        for scheme in ("id", "el2"):
            r = compute_cds(net, scheme, energy=energy)
            assert is_cds(net.adjacency, r.gateway_mask), scheme

    @given(positions_arrays, st.floats(5.0, 80.0), st.data())
    @settings(max_examples=80, deadline=None)
    def test_every_pair_routable_over_nd_backbone(self, pos, radius, data):
        net = AdHocNetwork(pos, radius)
        if not net.is_connected() or net.n < 3:
            return
        r = compute_cds(net, "nd")
        if r.size == 0:  # complete graph
            return
        router = DominatingSetRouter(net.adjacency, r.gateway_mask)
        s = data.draw(st.integers(0, net.n - 1))
        t = data.draw(st.integers(0, net.n - 1))
        route = router.route(s, t)
        assert route.nodes[0] == s and route.nodes[-1] == t
        for a, b in route.hops:
            assert net.has_edge(a, b)


class TestMobilityInvariants:
    @given(
        positions_arrays,
        st.floats(0.0, 1.0),
        st.sampled_from(list(BoundaryPolicy)),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_walk_keeps_hosts_in_region(self, pos, stability, policy, seed):
        region = Region2D(side=100.0, policy=policy)
        walk = PaperWalk(stability=stability)
        rng = np.random.default_rng(seed)
        p = pos.copy()
        for _ in range(5):
            walk.step(p, region, rng)
        assert np.all(region.contains(p))

    @given(positions_arrays, st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_step_lengths_bounded_without_boundary(self, pos, seed):
        # huge region so the boundary never interferes
        region = Region2D(side=1e9)
        walk = PaperWalk(stability=0.0)
        rng = np.random.default_rng(seed)
        p = pos.copy() + 5e8
        before = p.copy()
        walk.step(p, region, rng)
        lengths = np.hypot(*(p - before).T)
        assert np.all(lengths >= 1.0 - 1e-9)
        assert np.all(lengths <= 6.0 + 1e-9)

    @given(positions_arrays, st.floats(5.0, 60.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_snapshot_immune_to_later_moves(self, pos, radius, seed):
        net = AdHocNetwork(pos, radius)
        before_adj = list(net.adjacency)
        view = net.snapshot()
        rng = np.random.default_rng(seed)
        PaperWalk(stability=0.0).step(net.positions, Region2D(), rng)
        net.invalidate()
        # the snapshot still describes the pre-move topology, whatever the
        # live network now says
        assert list(view.adjacency) == before_adj
