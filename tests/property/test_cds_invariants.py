"""Property-based verification of the paper's central invariants.

On arbitrary connected graphs and arbitrary energy assignments, for every
scheme and both pipeline modes:

* Property 1 — the gateway set dominates G;
* Property 2 — the induced subgraph is connected;
* Property 3 — shortest paths run through the *marked* set (pre-pruning);
* pruning only ever shrinks the marked set;
* the distributed protocol agrees with the centralized pipeline.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cds import compute_cds
from repro.core.marking import marked_mask
from repro.core.properties import (
    is_dominating,
    induced_connected,
    shortest_paths_use_gateways,
)
from repro.graphs import bitset
from repro.graphs.neighborhoods import NeighborhoodView, is_connected
from repro.protocol.distributed_cds import distributed_cds


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=18):
    """A random connected graph: a random spanning tree + extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    edges = set()
    # random spanning tree via random attachment
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.add((u, v))
    extra = draw(
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).map(lambda t: (min(t), max(t))).filter(lambda t: t[0] != t[1]),
            max_size=2 * n,
        )
    )
    edges |= extra
    adj = [0] * n
    for u, v in edges:
        adj[u] |= 1 << v
        adj[v] |= 1 << u
    return NeighborhoodView(adj)


@st.composite
def graph_with_energy(draw):
    g = draw(connected_graphs())
    energy = draw(
        st.lists(
            st.integers(1, 5).map(float), min_size=g.n, max_size=g.n
        )
    )
    return g, energy


def is_complete(g: NeighborhoodView) -> bool:
    full = (1 << g.n) - 1
    return all(g.adjacency[v] | (1 << v) == full for v in range(g.n))


class TestMarkingInvariants:
    @given(connected_graphs())
    @settings(max_examples=150, deadline=None)
    def test_marked_set_is_cds_unless_complete(self, g):
        marked = marked_mask(g.adjacency)
        if is_complete(g):
            assert marked == 0
        else:
            assert is_dominating(g.adjacency, marked)
            assert induced_connected(g.adjacency, marked)

    @given(connected_graphs(max_nodes=12))
    @settings(max_examples=60, deadline=None)
    def test_property3_shortest_paths_through_gateways(self, g):
        marked = marked_mask(g.adjacency)
        if marked:
            assert shortest_paths_use_gateways(g.adjacency, marked)


class TestPrunedInvariants:
    @given(graph_with_energy(), st.sampled_from(["id", "nd", "el1", "el2"]),
           st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_pruned_set_remains_cds(self, ge, scheme, fixed_point):
        g, energy = ge
        r = compute_cds(g, scheme, energy=energy, fixed_point=fixed_point)
        if is_complete(g):
            assert r.size == 0
            return
        assert is_dominating(g.adjacency, r.gateway_mask), scheme
        assert induced_connected(g.adjacency, r.gateway_mask), scheme

    @given(graph_with_energy(), st.sampled_from(["id", "nd", "el1", "el2"]))
    @settings(max_examples=100, deadline=None)
    def test_pruning_is_monotone_shrinking(self, ge, scheme):
        g, energy = ge
        marked = marked_mask(g.adjacency)
        r = compute_cds(g, scheme, energy=energy)
        assert bitset.is_subset(r.gateway_mask, marked)

    @given(graph_with_energy())
    @settings(max_examples=60, deadline=None)
    def test_fixed_point_never_bigger_than_single_pass(self, ge):
        g, energy = ge
        single = compute_cds(g, "nd", energy=energy)
        fp = compute_cds(g, "nd", energy=energy, fixed_point=True)
        assert fp.size <= single.size


class TestDistributedAgreement:
    @given(graph_with_energy(), st.sampled_from(["id", "nd", "el1", "el2"]))
    @settings(max_examples=80, deadline=None)
    def test_protocol_equals_centralized(self, ge, scheme):
        g, energy = ge
        d = distributed_cds(g, scheme, energy=energy)
        c = compute_cds(g, scheme, energy=energy)
        assert d.gateways == c.gateways
