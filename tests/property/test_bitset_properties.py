"""Property-based tests for the bitset layer (hypothesis)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.graphs import bitset

id_sets = st.frozensets(st.integers(min_value=0, max_value=200), max_size=40)


class TestMaskSetIsomorphism:
    @given(id_sets)
    def test_round_trip(self, ids):
        assert set(bitset.ids_from_mask(bitset.mask_from_ids(ids))) == ids

    @given(id_sets, id_sets)
    def test_union_matches_set_union(self, a, b):
        m = bitset.mask_from_ids(a) | bitset.mask_from_ids(b)
        assert set(bitset.ids_from_mask(m)) == a | b

    @given(id_sets, id_sets)
    def test_intersection_matches(self, a, b):
        m = bitset.mask_from_ids(a) & bitset.mask_from_ids(b)
        assert set(bitset.ids_from_mask(m)) == a & b

    @given(id_sets, id_sets)
    def test_subset_matches(self, a, b):
        assert bitset.is_subset(
            bitset.mask_from_ids(a), bitset.mask_from_ids(b)
        ) == (a <= b)

    @given(id_sets)
    def test_popcount_is_cardinality(self, a):
        assert bitset.popcount(bitset.mask_from_ids(a)) == len(a)

    @given(id_sets, st.integers(min_value=0, max_value=200))
    def test_without_matches_discard(self, a, x):
        m = bitset.without(bitset.mask_from_ids(a), x)
        assert set(bitset.ids_from_mask(m)) == a - {x}

    @given(id_sets)
    def test_iter_bits_sorted(self, a):
        out = list(bitset.iter_bits(bitset.mask_from_ids(a)))
        assert out == sorted(a)

    @given(st.lists(id_sets, max_size=6))
    def test_union_all(self, sets):
        m = bitset.union_all(bitset.mask_from_ids(s) for s in sets)
        want = set().union(*sets) if sets else set()
        assert set(bitset.ids_from_mask(m)) == want
