"""Long-running cross-module integration tests.

Each test drives a multi-interval simulation while checking the system's
global invariants at every step — the kind of failure (a stale cache, a
drain applied twice, a CDS briefly invalid after a move) that unit tests
of isolated modules cannot see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.marking import marked_mask
from repro.core.properties import is_cds
from repro.core.priority import scheme_by_name
from repro.energy.accounting import EnergyAccountant
from repro.energy.battery import BatteryBank
from repro.energy.models import drain_model_by_name
from repro.geometry.space import Region2D
from repro.graphs import bitset
from repro.graphs.generators import random_connected_network
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk
from repro.protocol.distributed_cds import distributed_cds
from repro.protocol.locality import localized_recompute
from repro.routing.dsr import DominatingSetRouter
from repro.routing.maintenance import TableMaintainer
from repro.routing.broadcast import backbone_flood
from repro.simulation.config import SimulationConfig
from repro.simulation.interval import run_interval


class TestFullLoopInvariants:
    @pytest.mark.parametrize("scheme", ["id", "nd", "el1", "el2"])
    def test_cds_valid_every_interval_until_death(self, scheme):
        cfg = SimulationConfig(n_hosts=25, scheme=scheme, drain_model="fixed")
        rng = np.random.default_rng(404)
        net = random_connected_network(cfg.n_hosts, rng=rng)
        bank = BatteryBank(cfg.n_hosts, initial=cfg.initial_energy)
        acct = EnergyAccountant(bank, drain_model_by_name(cfg.drain_model))
        mob = MobilityManager(
            net, PaperWalk(), Region2D(side=net.side), rng=rng
        )
        sch = scheme_by_name(scheme)
        prev_total = bank.total()
        for i in range(1, 200):
            out = run_interval(
                net, sch, acct, mob, interval_index=i, verify=True
            )
            # energy is strictly decreasing in total
            assert bank.total() < prev_total
            prev_total = bank.total()
            # the CDS reported is valid for the snapshot it was computed on
            assert out.cds.size >= 1
            if out.someone_died:
                break
        else:
            pytest.fail("nobody died in 200 intervals at d=2")

    def test_interval_metrics_are_internally_consistent(self):
        cfg = SimulationConfig(n_hosts=20, scheme="nd", drain_model="fixed")
        rng = np.random.default_rng(17)
        net = random_connected_network(cfg.n_hosts, rng=rng)
        bank = BatteryBank(cfg.n_hosts)
        acct = EnergyAccountant(bank, drain_model_by_name("fixed"))
        mob = MobilityManager(net, PaperWalk(), Region2D(side=net.side), rng=rng)
        sch = scheme_by_name("nd")
        for i in range(1, 30):
            out = run_interval(net, sch, acct, mob, interval_index=i)
            s = out.cds.stats
            assert s.initial_marked - s.removed_rule1 - s.removed_rule2 == out.cds.size
            assert out.metrics.cds_size == out.cds.size
            if out.someone_died:
                break


class TestCrossLayerAgreement:
    def test_protocol_routing_broadcast_agree_over_a_mobile_run(self):
        """Every interval: distributed == centralized, routes stay on the
        backbone, and a backbone flood reaches every host."""
        rng = np.random.default_rng(99)
        net = random_connected_network(18, rng=rng)
        mob = MobilityManager(net, PaperWalk(), Region2D(side=net.side), rng=rng)
        energy = rng.uniform(10, 100, 18)
        for _ in range(15):
            snap = net.snapshot()
            central = compute_cds(snap, "el2", energy=energy)
            dist = distributed_cds(snap, "el2", energy=energy)
            assert dist.gateways == central.gateways
            assert is_cds(snap.adjacency, central.gateway_mask)

            router = DominatingSetRouter(snap.adjacency, central.gateway_mask)
            s, t = rng.choice(18, size=2, replace=False)
            route = router.route(int(s), int(t))
            assert all(router.is_gateway(v) for v in route.intermediates)

            flood = backbone_flood(snap.adjacency, int(s), central.gateway_mask)
            assert flood.reached_all(18)

            energy -= rng.uniform(0.0, 2.0, 18)  # arbitrary drain history
            mob.step()

    def test_localized_marking_tracks_mobility_for_100_intervals(self):
        rng = np.random.default_rng(123)
        net = random_connected_network(30, rng=rng)
        mob = MobilityManager(net, PaperWalk(), Region2D(side=net.side), rng=rng)
        old_adj = list(net.adjacency)
        marked = marked_mask(old_adj)
        for _ in range(100):
            mob.step()
            new_adj = list(net.adjacency)
            marked, _ = localized_recompute(old_adj, new_adj, marked)
            assert marked == marked_mask(new_adj)
            old_adj = new_adj

    def test_table_maintainer_never_diverges_from_fresh_build(self):
        from repro.routing.tables import build_routing_tables

        rng = np.random.default_rng(77)
        net = random_connected_network(15, rng=rng)
        mob = MobilityManager(
            net, PaperWalk(stability=0.8), Region2D(side=net.side), rng=rng
        )
        maintainer = TableMaintainer()
        for _ in range(40):
            r = compute_cds(net, "id")
            maintainer.update(net.adjacency, r.gateways)
            fresh = build_routing_tables(list(net.adjacency), r.gateways)
            assert set(maintainer.tables) == set(fresh)
            for g in fresh:
                assert maintainer.tables[g].members == fresh[g].members
                assert maintainer.tables[g].distance_to == fresh[g].distance_to
            mob.step()


class TestEnergyConservation:
    def test_ledger_matches_battery_delta(self):
        cfg = SimulationConfig(n_hosts=15, scheme="id", drain_model="linear")
        rng = np.random.default_rng(5)
        net = random_connected_network(cfg.n_hosts, rng=rng)
        bank = BatteryBank(cfg.n_hosts)
        acct = EnergyAccountant(bank, drain_model_by_name("linear"))
        start = bank.total()
        sch = scheme_by_name("id")
        for i in range(1, 12):
            out = run_interval(net, sch, acct, None, interval_index=i)
            if out.someone_died:
                break
        spent = acct.total_gateway_drain + acct.total_non_gateway_drain
        assert start - bank.total() == pytest.approx(spent)
