"""Traffic-driven and churn lifespan simulator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.traffic_model import TrafficEnergyModel
from repro.errors import SimulationError
from repro.mobility.churn import ChurnModel
from repro.simulation.config import SimulationConfig
from repro.simulation.churn_lifespan import ChurnLifespanSimulator
from repro.simulation.traffic_lifespan import TrafficLifespanSimulator


class TestTrafficLifespan:
    def test_runs_to_first_death(self):
        cfg = SimulationConfig(n_hosts=15, scheme="id", drain_model="fixed")
        result = TrafficLifespanSimulator(cfg, rng=3).run()
        assert result.lifespan >= 1
        assert result.first_dead_host is not None
        assert result.packets_routed > 0
        assert result.mean_gateway_share == pytest.approx(1.0)

    def test_reproducible(self):
        cfg = SimulationConfig(n_hosts=12, scheme="el1", drain_model="fixed")
        a = TrafficLifespanSimulator(cfg, rng=8).run()
        b = TrafficLifespanSimulator(cfg, rng=8).run()
        assert a.lifespan == b.lifespan

    def test_keep_records(self):
        cfg = SimulationConfig(n_hosts=10, scheme="id", drain_model="fixed")
        result = TrafficLifespanSimulator(cfg, rng=1).run(keep_records=True)
        assert len(result.records) == result.lifespan

    def test_zero_cost_guard(self):
        cfg = SimulationConfig(
            n_hosts=8, scheme="id", drain_model="fixed", max_intervals=15
        )
        traffic = TrafficEnergyModel(
            tx_cost=0.0, rx_cost=0.0, idle_cost=0.0, packets_per_interval=1
        )
        with pytest.raises(SimulationError, match="max_intervals"):
            TrafficLifespanSimulator(cfg, traffic, rng=1).run()

    def test_el_rotation_extends_life(self):
        """The paper's headline conclusion, validated under real routed
        traffic instead of the abstract drain constants."""
        lifespans = {}
        for scheme in ("id", "el1"):
            cfg = SimulationConfig(
                n_hosts=25, scheme=scheme, drain_model="fixed"
            )
            runs = [
                TrafficLifespanSimulator(
                    cfg, rng=np.random.default_rng(1000 + t)
                ).run().lifespan
                for t in range(6)
            ]
            lifespans[scheme] = float(np.mean(runs))
        assert lifespans["el1"] > lifespans["id"] * 0.98


class TestChurnLifespan:
    def test_runs_to_first_death(self):
        cfg = SimulationConfig(n_hosts=15, scheme="id", drain_model="fixed")
        result = ChurnLifespanSimulator(cfg, ChurnModel(0.1, 0.5), rng=2).run()
        assert result.lifespan >= 1
        assert 0 < result.mean_active_hosts <= 15
        assert result.mean_components >= 1.0

    def test_no_churn_behaves_like_connected_runs(self):
        cfg = SimulationConfig(n_hosts=12, scheme="id", drain_model="fixed")
        result = ChurnLifespanSimulator(
            cfg, ChurnModel(0.0, 0.0), rng=4
        ).run()
        assert result.mean_active_hosts == 12.0

    def test_switching_off_saves_energy(self):
        """Hosts that sleep part-time outlive an always-on population."""
        cfg = SimulationConfig(n_hosts=20, scheme="id", drain_model="fixed")
        always_on = np.mean([
            ChurnLifespanSimulator(
                cfg, ChurnModel(0.0, 0.0), rng=np.random.default_rng(t)
            ).run().lifespan
            for t in range(4)
        ])
        sleepy = np.mean([
            ChurnLifespanSimulator(
                cfg, ChurnModel(0.3, 0.3), rng=np.random.default_rng(t)
            ).run().lifespan
            for t in range(4)
        ])
        assert sleepy > always_on

    def test_heavy_churn_fragments_network(self):
        cfg = SimulationConfig(n_hosts=20, scheme="id", drain_model="fixed")
        result = ChurnLifespanSimulator(
            cfg, ChurnModel(0.4, 0.3), rng=6
        ).run()
        assert result.mean_components > 1.0

    def test_reproducible(self):
        cfg = SimulationConfig(n_hosts=10, scheme="el2", drain_model="fixed")
        a = ChurnLifespanSimulator(cfg, ChurnModel(0.2, 0.5), rng=9).run()
        b = ChurnLifespanSimulator(cfg, ChurnModel(0.2, 0.5), rng=9).run()
        assert a.lifespan == b.lifespan


class TestDirectedLifespan:
    def test_runs_to_first_death(self):
        from repro.simulation.directed_lifespan import DirectedLifespanSimulator

        cfg = SimulationConfig(n_hosts=15, scheme="id", drain_model="fixed")
        r = DirectedLifespanSimulator(cfg, rng=3).run()
        assert r.lifespan >= 1
        assert r.first_dead_host is not None
        assert 0.0 <= r.one_way_arc_fraction < 1.0
        assert r.mean_cds_size >= 1.0

    def test_reproducible(self):
        from repro.simulation.directed_lifespan import DirectedLifespanSimulator

        cfg = SimulationConfig(n_hosts=12, scheme="el1", drain_model="fixed")
        a = DirectedLifespanSimulator(cfg, rng=6).run()
        b = DirectedLifespanSimulator(cfg, rng=6).run()
        assert a.lifespan == b.lifespan

    def test_zero_spread_has_no_one_way_arcs(self):
        from repro.simulation.directed_lifespan import DirectedLifespanSimulator

        cfg = SimulationConfig(n_hosts=12, scheme="id", drain_model="fixed")
        r = DirectedLifespanSimulator(cfg, range_spread=0.0, rng=2).run()
        assert r.one_way_arc_fraction == 0.0

    def test_rotation_never_hurts(self):
        from repro.simulation.directed_lifespan import DirectedLifespanSimulator

        means = {}
        for scheme in ("id", "el1"):
            cfg = SimulationConfig(n_hosts=20, scheme=scheme, drain_model="fixed")
            runs = [
                DirectedLifespanSimulator(
                    cfg, rng=np.random.default_rng(300 + t)
                ).run().lifespan
                for t in range(4)
            ]
            means[scheme] = np.mean(runs)
        assert means["el1"] >= means["id"]
