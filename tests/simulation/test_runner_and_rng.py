"""Trial runner and seed-stream tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.rng import (
    generator_for_trial,
    spawn_generators,
    spawn_seeds,
)
from repro.simulation.runner import TrialRunner, run_trials


class TestRngStreams:
    def test_spawn_counts(self):
        assert len(spawn_seeds(1, 5)) == 5
        assert len(spawn_generators(1, 3)) == 3

    def test_children_are_independent(self):
        a, b = spawn_generators(42, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_trial_stream_matches_spawned_child(self):
        direct = generator_for_trial(42, 3)
        spawned = spawn_generators(42, 5)[3]
        assert np.array_equal(direct.random(8), spawned.random(8))

    def test_same_trial_same_stream(self):
        assert np.array_equal(
            generator_for_trial(7, 0).random(4),
            generator_for_trial(7, 0).random(4),
        )


CFG = SimulationConfig(n_hosts=8, scheme="id", drain_model="linear")


class TestRunner:
    def test_serial_and_parallel_agree(self):
        serial = run_trials(CFG, 4, root_seed=9, parallel=False)
        parallel = run_trials(CFG, 4, root_seed=9, parallel=True, processes=2)
        assert [t.lifespan for t in serial] == [t.lifespan for t in parallel]

    def test_trial_count_respected(self):
        assert len(run_trials(CFG, 5, root_seed=1, parallel=False)) == 5

    def test_different_roots_differ(self):
        a = run_trials(CFG, 6, root_seed=1, parallel=False)
        b = run_trials(CFG, 6, root_seed=2, parallel=False)
        assert [t.lifespan for t in a] != [t.lifespan for t in b]

    def test_runner_object_reusable(self):
        runner = TrialRunner(root_seed=3, processes=1)
        first = runner.run(CFG, 3)
        second = runner.run(CFG, 3)
        assert [t.lifespan for t in first] == [t.lifespan for t in second]

    def test_single_trial_short_circuits_pool(self):
        out = run_trials(CFG, 1, root_seed=4, parallel=True)
        assert len(out) == 1

    def test_parallel_results_fully_equal_serial(self):
        # not just lifespans: every field of every TrialMetrics
        serial = run_trials(CFG, 4, root_seed=9, parallel=False)
        parallel = run_trials(CFG, 4, root_seed=9, parallel=True, processes=2)
        assert serial == parallel

    def test_explicit_spawn_start_method(self):
        spawn = run_trials(
            CFG, 2, root_seed=9, processes=2, start_method="spawn"
        )
        assert spawn == run_trials(CFG, 2, root_seed=9, parallel=False)

    def test_unknown_start_method_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="start method"):
            run_trials(CFG, 2, root_seed=9, start_method="osmosis")

    def test_failed_trial_attributes_seed_and_index(self, monkeypatch):
        from repro.errors import SimulationError, TrialExecutionError

        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:2:99")
        with pytest.raises(TrialExecutionError) as err:
            TrialRunner(root_seed=9, processes=2, max_retries=0).run(CFG, 4)
        assert err.value.trial == 2
        assert err.value.root_seed == 9
        # stays catchable as the engine's base error
        assert isinstance(err.value, SimulationError)

    def test_checkpointed_run_resumes(self, tmp_path):
        first = run_trials(
            CFG, 2, root_seed=9, checkpoint_dir=tmp_path, parallel=False
        )
        full = run_trials(
            CFG, 5, root_seed=9, checkpoint_dir=tmp_path, parallel=False
        )
        assert full[:2] == first
        assert full == run_trials(CFG, 5, root_seed=9, parallel=False)
