"""Incremental vs scratch lifespan simulation must be indistinguishable.

The ``incremental`` config knob only changes *how* the per-interval CDS
is computed, never *what* it is — so two simulators with the same seed
must produce identical trajectories, interval records, and lifespans.
"""

from __future__ import annotations

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator


def _run(incremental: bool, **overrides):
    cfg = SimulationConfig(
        n_hosts=overrides.pop("n_hosts", 50),
        scheme=overrides.pop("scheme", "el2"),
        drain_model="fixed",
        incremental=incremental,
        **overrides,
    )
    sim = LifespanSimulator(cfg, rng=1234)
    assert (sim.pipeline is not None) == incremental  # n=50 >= the cutoff
    return sim.run(keep_intervals=True)


@pytest.mark.parametrize("scheme", ["nr", "id", "nd", "el1", "el2"])
def test_lifespan_identical_across_paths(scheme):
    inc = _run(True, scheme=scheme)
    scr = _run(False, scheme=scheme)
    assert inc.lifespan == scr.lifespan
    assert inc.metrics.first_dead_host == scr.metrics.first_dead_host
    # every per-interval record (|G'|, drains, rule stats, mobility) matches
    assert inc.metrics.intervals == scr.metrics.intervals
    assert inc.metrics.gateway_duty == scr.metrics.gateway_duty


def test_pipeline_constructed_only_when_wanted():
    cfg = SimulationConfig(n_hosts=50, incremental=False)
    assert LifespanSimulator(cfg, rng=0).pipeline is None
    cfg = SimulationConfig(n_hosts=50, incremental=True)
    assert LifespanSimulator(cfg, rng=0).pipeline is not None
    # custom selectors bypass the paper pipeline entirely
    sim = LifespanSimulator(cfg, rng=0, cds_fn=lambda adj, e: (1 << 50) - 1)
    assert sim.pipeline is None


def test_small_networks_stay_on_scratch_path():
    # below the measured crossover the scratch path is faster; the knob
    # is invisible because the two paths are bit-identical anyway
    cfg = SimulationConfig(n_hosts=20, incremental=True)
    assert LifespanSimulator(cfg, rng=0).pipeline is None
    # ... unless shadow checking was requested, which needs the pipeline
    cfg = SimulationConfig(n_hosts=20, incremental=True, shadow_check=True)
    assert LifespanSimulator(cfg, rng=0).pipeline is not None


def test_shadow_check_full_trial():
    # runs both paths on every interval and raises on any divergence
    result = _run(True, scheme="el1", n_hosts=30, shadow_check=True)
    assert result.lifespan >= 1
