"""Lifespan campaigns driven by non-default registry algorithms.

The whole point of the registry refactor: ``SimulationConfig.algorithm``
swaps the backbone construction without touching the simulator.  These
tests run real (small) lifespan trials through alternative algorithms and
pin the default path to the pre-refactor behavior.
"""

from __future__ import annotations

import pytest

from repro.simulation.batch_lifespan import run_lifespan_batch
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator


def _cfg(**overrides):
    base = dict(
        n_hosts=12,
        side=60.0,
        radius=30.0,
        initial_energy=20.0,
        scheme="el2",
        max_intervals=500,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestAlternativeAlgorithmLifespans:
    @pytest.mark.parametrize(
        "algorithm", ["greedy_mcds", "energy_greedy", "aneja_2conn", "zhou_mwcds"]
    )
    def test_trial_runs_to_first_death(self, algorithm):
        result = LifespanSimulator(
            _cfg(algorithm=algorithm, verify_invariants=True), rng=7
        ).run()
        assert result.lifespan >= 1
        assert result.metrics.mean_cds_size >= 0.0

    def test_non_wu_li_disables_marking_pipelines(self):
        sim = LifespanSimulator(_cfg(algorithm="mis_cds", n_hosts=80), rng=3)
        assert sim.pipeline is None
        assert sim.algorithm.name == "mis_cds"

    def test_default_algorithm_is_wu_li_and_unchanged(self):
        """algorithm='wu_li' must be a no-op relative to the pre-registry
        simulator: same rng stream, same pipeline selection, same result."""
        a = LifespanSimulator(_cfg(), rng=11).run()
        b = LifespanSimulator(_cfg(algorithm="wu_li"), rng=11).run()
        assert a.lifespan == b.lifespan
        assert a.metrics.mean_cds_size == b.metrics.mean_cds_size

    def test_cds_fn_wins_over_algorithm(self):
        def take_everyone(adjacency, energy):
            return (1 << len(adjacency)) - 1

        result = LifespanSimulator(
            _cfg(algorithm="greedy_mcds"), rng=5, cds_fn=take_everyone
        ).run(keep_intervals=True)
        for record in result.metrics.intervals:
            assert record.cds_size == result.config.n_hosts


class TestBatchFallback:
    def test_scalar_fallback_matches_sequential_sims(self):
        """Batch runner can't vectorize non-wu_li algorithms; it must fall
        back to per-trial simulators with the same per-trial rng streams."""
        from repro.simulation.batch_lifespan import generator_for_trial

        cfg = _cfg(algorithm="energy_greedy")
        batch = run_lifespan_batch(cfg, trials=3, root_seed=99)
        assert len(batch) == 3
        for t, got in enumerate(batch):
            ref = LifespanSimulator(cfg, rng=generator_for_trial(99, t)).run()
            assert got.lifespan == ref.lifespan

    def test_wu_li_batch_path_untouched(self):
        cfg = _cfg(algorithm="wu_li")
        batch = run_lifespan_batch(cfg, trials=2, root_seed=42)
        ref = run_lifespan_batch(_cfg(), trials=2, root_seed=42)
        assert [r.lifespan for r in batch] == [r.lifespan for r in ref]
