"""Lifespan simulator and single-interval tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priority import scheme_by_name
from repro.energy.accounting import EnergyAccountant
from repro.energy.battery import BatteryBank
from repro.energy.models import FixedDrain
from repro.errors import SimulationError
from repro.graphs.generators import random_connected_network
from repro.simulation.config import SimulationConfig
from repro.simulation.interval import run_interval
from repro.simulation.lifespan import LifespanSimulator


class TestRunInterval:
    def test_interval_computes_cds_and_drains(self, rng):
        net = random_connected_network(15, rng=rng)
        bank = BatteryBank(15, initial=50.0)
        acct = EnergyAccountant(bank, FixedDrain(d=2.0))
        out = run_interval(
            net, scheme_by_name("id"), acct, None, interval_index=1
        )
        assert out.cds.size >= 1
        assert not out.someone_died
        assert out.metrics.cds_size == out.cds.size
        assert bank.total() < 50.0 * 15

    def test_death_stops_movement(self, rng):
        net = random_connected_network(8, rng=rng)
        before = net.positions.copy()
        bank = BatteryBank(8, initial=0.5)  # dies on the first drain
        acct = EnergyAccountant(bank, FixedDrain(d=2.0))
        from repro.geometry.space import Region2D
        from repro.mobility.manager import MobilityManager
        from repro.mobility.paper_walk import PaperWalk

        mgr = MobilityManager(net, PaperWalk(stability=0.0), Region2D(), rng=rng)
        out = run_interval(
            net, scheme_by_name("id"), acct, mgr, interval_index=1
        )
        assert out.someone_died
        np.testing.assert_array_equal(net.positions, before)

    def test_el_scheme_reads_live_battery(self, rng):
        net = random_connected_network(12, rng=rng)
        bank = BatteryBank(12, initial=30.0)
        acct = EnergyAccountant(bank, FixedDrain(d=3.0))
        out1 = run_interval(
            net, scheme_by_name("el1"), acct, None, interval_index=1
        )
        # second interval sees diverged energies; must still run cleanly
        out2 = run_interval(
            net, scheme_by_name("el1"), acct, None, interval_index=2
        )
        assert out2.metrics.interval == 2
        assert out1.cds.size >= 1 and out2.cds.size >= 1


class TestLifespanSimulator:
    def test_runs_to_first_death(self):
        cfg = SimulationConfig(n_hosts=12, scheme="id", drain_model="linear")
        result = LifespanSimulator(cfg, rng=3).run()
        assert result.lifespan >= 1
        assert result.metrics.first_dead_host is not None

    def test_seed_reproducibility(self):
        cfg = SimulationConfig(n_hosts=10, scheme="nd", drain_model="linear")
        a = LifespanSimulator(cfg, rng=11).run()
        b = LifespanSimulator(cfg, rng=11).run()
        assert a.lifespan == b.lifespan
        assert a.metrics.mean_cds_size == b.metrics.mean_cds_size

    def test_keep_intervals_records_every_step(self):
        cfg = SimulationConfig(n_hosts=8, scheme="id", drain_model="linear")
        result = LifespanSimulator(cfg, rng=5).run(keep_intervals=True)
        assert len(result.metrics.intervals) == result.lifespan
        assert [m.interval for m in result.metrics.intervals] == list(
            range(1, result.lifespan + 1)
        )

    def test_intervals_dropped_by_default(self):
        cfg = SimulationConfig(n_hosts=8, scheme="id", drain_model="linear")
        result = LifespanSimulator(cfg, rng=5).run()
        assert result.metrics.intervals == ()

    def test_max_intervals_guard(self):
        cfg = SimulationConfig(
            n_hosts=6,
            scheme="id",
            drain_model="constant",
            non_gateway_drain=0.0,  # nobody can ever die of d' drain
            max_intervals=20,
        )
        sim = LifespanSimulator(cfg, rng=1)
        # constant model d = 2/|G'| < 1 keeps gateways alive a long time;
        # with d' = 0 the guard must fire
        with pytest.raises(SimulationError, match="max_intervals"):
            sim.run()

    def test_all_schemes_complete(self):
        for scheme in ("nr", "id", "nd", "el1", "el2"):
            cfg = SimulationConfig(
                n_hosts=10, scheme=scheme, drain_model="quadratic"
            )
            result = LifespanSimulator(cfg, rng=2).run()
            assert result.lifespan >= 1

    def test_lifespan_at_least_100_under_constant_model(self):
        """With d = 2/|G'| < d' = 1 (for |G'| > 2), every host drains at
        most 1 per interval, so the first death cannot land before
        interval 100; gateway stints only delay it."""
        cfg = SimulationConfig(n_hosts=20, scheme="id", drain_model="constant")
        result = LifespanSimulator(cfg, rng=4).run()
        assert 100 <= result.lifespan <= 400


class TestHeterogeneousBatteries:
    def test_jitter_spreads_initial_levels(self):
        cfg = SimulationConfig(
            n_hosts=30, scheme="id", drain_model="fixed",
            initial_energy_jitter=0.3,
        )
        sim = LifespanSimulator(cfg, rng=1)
        levels = sim.bank.levels
        assert levels.min() >= 70.0 - 1e-9
        assert levels.max() <= 130.0 + 1e-9
        assert levels.std() > 1.0

    def test_zero_jitter_is_uniform(self):
        cfg = SimulationConfig(n_hosts=10, scheme="id", drain_model="fixed")
        sim = LifespanSimulator(cfg, rng=1)
        assert np.all(sim.bank.levels == 100.0)

    def test_bad_jitter_rejected(self):
        with pytest.raises(Exception):
            SimulationConfig(initial_energy_jitter=1.0)
        with pytest.raises(Exception):
            SimulationConfig(initial_energy_jitter=-0.1)

    def test_el_advantage_survives_heterogeneity(self):
        from repro.simulation.runner import run_trials

        means = {}
        for scheme in ("id", "el1"):
            cfg = SimulationConfig(
                n_hosts=30, scheme=scheme, drain_model="fixed",
                initial_energy_jitter=0.4,
            )
            ms = run_trials(cfg, 6, root_seed=55, parallel=False)
            means[scheme] = np.mean([m.lifespan for m in ms])
        assert means["el1"] > means["id"]
