"""SimulationConfig validation tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import SimulationConfig


class TestDefaults:
    def test_paper_parameters(self):
        cfg = SimulationConfig()
        assert cfg.side == 100.0
        assert cfg.radius == 25.0
        assert cfg.initial_energy == 100.0
        assert cfg.stability == 0.5
        assert (cfg.min_step, cfg.max_step) == (1.0, 6.0)
        assert cfg.non_gateway_drain == 1.0

    def test_paper_defaults_helper(self):
        cfg = SimulationConfig.paper_defaults(42, "el1", "linear")
        assert (cfg.n_hosts, cfg.scheme, cfg.drain_model) == (42, "el1", "linear")


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_hosts": 0},
            {"side": -1.0},
            {"radius": -2.0},
            {"initial_energy": 0.0},
            {"stability": 1.5},
            {"min_step": 5.0, "max_step": 2.0},
            {"boundary": "bounce"},
            {"on_disconnect": "explode"},
            {"max_intervals": 0},
            {"non_gateway_drain": -1.0},
            {"scheme": "unknown"},
            {"drain_model": "unknown"},
            {"algorithm": "unknown"},
            {"backend": "gpu"},
            {"algorithm": "greedy_mcds", "backend": "vectorized"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(Exception) as exc:
            SimulationConfig(**kwargs)
        # scheme/drain names raise their registries' error types; everything
        # else is a ConfigurationError — all are ValueErrors
        assert isinstance(exc.value, ValueError)

    def test_none_max_intervals_allowed(self):
        assert SimulationConfig(max_intervals=None).max_intervals is None

    def test_error_messages_enumerate_registries(self):
        """Validation errors list the valid names from the live registries
        instead of hardcoding them (so new entries appear automatically)."""
        from repro.core.priority import SCHEMES
        from repro.core.registry import ALGORITHMS, EXECUTION_BACKENDS

        with pytest.raises(ConfigurationError) as exc:
            SimulationConfig(scheme="bogus")
        for name in SCHEMES:
            assert name in str(exc.value)

        with pytest.raises(ConfigurationError) as exc:
            SimulationConfig(backend="bogus")
        for name in EXECUTION_BACKENDS:
            assert name in str(exc.value)

        with pytest.raises(ConfigurationError) as exc:
            SimulationConfig(algorithm="bogus")
        for name in ALGORITHMS:
            assert name in str(exc.value)

    def test_vectorized_requires_capable_algorithm(self):
        with pytest.raises(ConfigurationError, match="no vectorized backend"):
            SimulationConfig(algorithm="mis_cds", backend="vectorized")
        # wu_li has the flag, so the combination is legal
        cfg = SimulationConfig(algorithm="wu_li", backend="vectorized")
        assert cfg.backend == "vectorized"

    def test_all_registered_algorithms_accepted(self):
        from repro.core.registry import algorithm_names

        for name in algorithm_names():
            assert SimulationConfig(algorithm=name).algorithm == name

    def test_incremental_knob_never_silently_dropped(self):
        """Regression (ISSUE 10): explicit ``incremental`` contradictions
        raise instead of being quietly ignored."""
        with pytest.raises(ConfigurationError, match="no incremental path"):
            SimulationConfig(backend="vectorized", incremental=True)
        with pytest.raises(ConfigurationError, match="is the incremental"):
            SimulationConfig(backend="delta", incremental=False)
        # sparse now honors the knob in both directions
        assert SimulationConfig(backend="sparse", incremental=True).incremental
        cfg = SimulationConfig(backend="sparse", incremental=False)
        assert cfg.incremental is False

    def test_effective_incremental_resolution(self):
        """``None`` resolves per backend: on everywhere vectorized isn't."""
        assert SimulationConfig(backend="scalar").effective_incremental
        assert SimulationConfig(backend="delta").effective_incremental
        assert SimulationConfig(backend="sparse").effective_incremental
        assert not SimulationConfig(backend="vectorized").effective_incremental
        # explicit values win over the per-backend default
        assert not SimulationConfig(
            backend="scalar", incremental=False
        ).effective_incremental


class TestOverrides:
    def test_with_overrides_returns_new_object(self):
        base = SimulationConfig()
        mod = base.with_overrides(n_hosts=7, scheme="nd")
        assert mod.n_hosts == 7 and mod.scheme == "nd"
        assert base.n_hosts == 50 and base.scheme == "id"

    def test_overrides_are_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().with_overrides(stability=-1.0)
