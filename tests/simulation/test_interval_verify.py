"""Regression: ``run_interval(verify=True)`` must verify degenerate
``cds_fn`` output too.

The original guard was ``if verify and mask:`` — a custom selector
returning an *empty* gateway mask (non-dominating on any non-trivial
graph) skipped :func:`verify_cds` entirely and the interval was accepted.
"""

from __future__ import annotations

import pytest

from repro.energy.accounting import EnergyAccountant
from repro.energy.battery import BatteryBank
from repro.energy.models import FixedDrain
from repro.errors import InvariantViolation
from repro.graphs.generators import random_connected_network
from repro.simulation.interval import run_interval


def _parts(n: int = 12, seed: int = 9):
    network = random_connected_network(n, rng=seed)
    bank = BatteryBank(n, initial=100.0)
    accountant = EnergyAccountant(bank, FixedDrain())
    return network, accountant


def test_empty_mask_from_cds_fn_is_rejected_when_verifying():
    network, accountant = _parts()
    from repro.core.priority import scheme_by_name

    with pytest.raises(InvariantViolation, match="not dominating"):
        run_interval(
            network,
            scheme_by_name("nd"),
            accountant,
            None,
            interval_index=1,
            verify=True,
            cds_fn=lambda adj, energy: 0,
        )


def test_empty_mask_still_accepted_without_verify():
    # verify=False keeps the old permissive behavior for oracle sweeps
    network, accountant = _parts()
    from repro.core.priority import scheme_by_name

    outcome = run_interval(
        network,
        scheme_by_name("nd"),
        accountant,
        None,
        interval_index=1,
        verify=False,
        cds_fn=lambda adj, energy: 0,
    )
    assert outcome.cds.size == 0


def test_valid_cds_fn_passes_verification():
    network, accountant = _parts()
    from repro.core.cds import compute_cds
    from repro.core.priority import scheme_by_name

    def good_fn(adj, energy):
        return compute_cds(adj, "nd").gateway_mask

    outcome = run_interval(
        network,
        scheme_by_name("nd"),
        accountant,
        None,
        interval_index=1,
        verify=True,
        cds_fn=good_fn,
    )
    assert outcome.cds.size > 0


def test_disconnected_mask_from_cds_fn_is_rejected():
    # a mask that dominates but is not induced-connected must also raise
    network, accountant = _parts(n=12, seed=9)
    from repro.core.priority import scheme_by_name

    full = (1 << network.n) - 1

    def all_but_connected(adj, energy):
        # every node: dominating and trivially connected — fine
        return full

    outcome = run_interval(
        network,
        scheme_by_name("nd"),
        accountant,
        None,
        interval_index=1,
        verify=True,
        cds_fn=all_but_connected,
    )
    assert outcome.cds.size == network.n
