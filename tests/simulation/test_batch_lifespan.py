"""Batched lifespan runner and backend switch: bit-identical to the
per-trial simulator (ISSUE 7)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation import (
    LifespanSimulator,
    SimulationConfig,
    run_lifespan_batch,
)
from repro.simulation.rng import generator_for_trial


def _per_trial(cfg: SimulationConfig, root_seed: int, trials: int):
    return [
        LifespanSimulator(cfg, rng=generator_for_trial(root_seed, t)).run()
        for t in range(trials)
    ]


class TestBatchLifespan:
    @pytest.mark.parametrize("scheme", ["id", "el2"])
    def test_batch_equals_per_trial(self, scheme):
        cfg = SimulationConfig(n_hosts=25, scheme=scheme, stability=0.6)
        batch = run_lifespan_batch(cfg, 3, root_seed=42)
        ref = _per_trial(cfg, 42, 3)
        for got, want in zip(batch, ref):
            assert got.metrics == want.metrics

    def test_trials_die_at_different_intervals(self):
        # jittered batteries force staggered deaths; the lockstep batch
        # must narrow without disturbing the surviving trials' streams
        cfg = SimulationConfig(
            n_hosts=20, scheme="nd", initial_energy_jitter=0.5
        )
        batch = run_lifespan_batch(cfg, 4, root_seed=9)
        ref = _per_trial(cfg, 9, 4)
        lifespans = {r.lifespan for r in batch}
        assert len(lifespans) > 1  # the scenario actually staggers
        for got, want in zip(batch, ref):
            assert got.metrics == want.metrics

    def test_zero_trials(self):
        cfg = SimulationConfig(n_hosts=10)
        assert run_lifespan_batch(cfg, 0) == []

    def test_negative_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            run_lifespan_batch(SimulationConfig(n_hosts=10), -1)

    def test_shadow_check_passes_on_clean_engine(self):
        cfg = SimulationConfig(n_hosts=15, scheme="nd", shadow_check=True)
        batch = run_lifespan_batch(cfg, 2, root_seed=3)
        assert all(r.lifespan > 0 for r in batch)


class TestBackendSwitch:
    def test_vectorized_backend_bit_identical(self):
        base = SimulationConfig(n_hosts=30, scheme="el1", stability=0.7)
        vec = base.with_overrides(backend="vectorized")
        for t in range(2):
            want = LifespanSimulator(base, rng=generator_for_trial(8, t)).run()
            got = LifespanSimulator(vec, rng=generator_for_trial(8, t)).run()
            assert got.metrics == want.metrics

    def test_backend_validated(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n_hosts=10, backend="simd")

    def test_backend_changes_fingerprint(self):
        # deliberate: checkpointed sweeps must not mix backends silently
        from repro.exec.shards import config_fingerprint

        base = SimulationConfig(n_hosts=10)
        vec = base.with_overrides(backend="vectorized")
        assert config_fingerprint(base) != config_fingerprint(vec)
