"""Network renderer and sensitivity sweep tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.netview import render_network
from repro.analysis.sweeps import sweep_parameter, sweep_radius
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.simulation.config import SimulationConfig


class TestNetview:
    POS = np.array([[10.0, 10.0], [50.0, 50.0], [90.0, 90.0]])

    def test_hosts_and_gateways_rendered(self):
        out = render_network(self.POS, 100.0, gateway_mask=0b010)
        assert out.count("#") == 1
        assert out.count("o") == 2

    def test_inactive_hosts_are_dots(self):
        out = render_network(
            self.POS, 100.0, active=np.array([True, False, True])
        )
        assert out.count(".") == 1
        assert out.count("o") == 2

    def test_grid_size_controls_canvas(self):
        out = render_network(self.POS, 100.0, grid=10)
        lines = out.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(l) == 12 for l in lines)

    def test_backbone_links_marked(self):
        pos = np.array([[10.0, 50.0], [90.0, 50.0]])
        adj = [0b10, 0b01]
        out = render_network(
            pos, 100.0, gateway_mask=0b11,
            show_backbone_links=True, adjacency=adj,
        )
        assert "+" in out.replace("+-", "").replace("-+", "")

    def test_links_require_adjacency(self):
        with pytest.raises(ConfigurationError, match="adjacency"):
            render_network(self.POS, 100.0, show_backbone_links=True)

    def test_tiny_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            render_network(self.POS, 100.0, grid=1)

    def test_out_of_region_points_clamped_onto_canvas(self):
        pos = np.array([[150.0, -20.0]])
        out = render_network(pos, 100.0)
        assert out.count("o") == 1


class TestSweeps:
    @pytest.fixture(scope="class")
    def radius_sweep(self):
        base = SimulationConfig(n_hosts=12, drain_model="fixed")
        return sweep_radius(
            (25.0, 40.0), base=base, schemes=["id", "el1"],
            trials=3, root_seed=5, parallel=False,
        )

    def test_structure(self, radius_sweep):
        assert radius_sweep.knob == "radius"
        assert radius_sweep.values == (25.0, 40.0)
        assert set(radius_sweep.series) == {"id", "el1"}
        assert len(radius_sweep.series["id"]) == 2

    def test_means_and_table(self, radius_sweep):
        assert all(m >= 1.0 for m in radius_sweep.means("el1"))
        table = radius_sweep.to_table()
        assert "radius" in table and "EL1" in table

    def test_generic_knob(self):
        base = SimulationConfig(n_hosts=10, drain_model="fixed")
        out = sweep_parameter(
            "initial_energy", (50.0, 100.0), base=base,
            schemes=["id"], trials=2, root_seed=1, parallel=False,
        )
        # doubling the battery roughly doubles the lifespan
        lo, hi = out.means("id")
        assert hi > lo * 1.5


class TestReport:
    def test_collects_existing_sections(self, tmp_path):
        from repro.analysis.report import collect_report, write_report

        (tmp_path / "figure10.txt").write_text("TABLE10\n")
        (tmp_path / "extension_churn.txt").write_text("CHURN\n")
        report = collect_report(tmp_path)
        assert "TABLE10" in report and "CHURN" in report
        assert "Figure 10" in report
        assert "Not yet generated" in report  # other sections missing

    def test_write_report_default_location(self, tmp_path):
        from repro.analysis.report import write_report

        (tmp_path / "figure10.txt").write_text("X\n")
        out = write_report(tmp_path)
        assert out.name == "REPORT.md"
        assert "X" in out.read_text()

    def test_complete_results_have_no_missing_section(self, tmp_path):
        from repro.analysis.report import _SECTIONS, collect_report

        for _, stem in _SECTIONS:
            (tmp_path / f"{stem}.txt").write_text("data\n")
        report = collect_report(tmp_path)
        assert "Not yet generated" not in report


class TestStabilitySweep:
    def test_sweep_stability_runs(self):
        from repro.analysis.sweeps import sweep_stability

        base = SimulationConfig(n_hosts=10, drain_model="fixed")
        out = sweep_stability(
            (0.3, 0.7), base=base, schemes=["id"], trials=2,
            root_seed=4, parallel=False,
        )
        assert out.knob == "stability"
        assert len(out.means("id")) == 2
