"""Experiment driver tests (small sweeps — the real ones live in
benchmarks/)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    DEFAULT_SWEEP,
    run_figure10,
    run_lifespan_figure,
)


@pytest.fixture(scope="module")
def fig10_mini():
    return run_figure10(
        n_values=[8, 16], trials=3, root_seed=7, parallel=False
    )


class TestFigure10Driver:
    def test_series_cover_all_schemes(self, fig10_mini):
        assert set(fig10_mini.series) == {"nr", "id", "nd", "el1", "el2"}

    def test_summaries_aligned_with_sweep(self, fig10_mini):
        for summaries in fig10_mini.series.values():
            assert len(summaries) == 2
            assert all(s.n == 3 for s in summaries)

    def test_nr_is_never_smaller_than_pruned(self, fig10_mini):
        for i in range(2):
            nr = fig10_mini.series["nr"][i].mean
            for s in ("id", "nd", "el1", "el2"):
                assert fig10_mini.series[s][i].mean <= nr + 1e-9

    def test_report_renders(self, fig10_mini):
        text = fig10_mini.report()
        assert "Figure 10" in text
        assert "legend" in text
        assert "note:" in text

    def test_means_accessor(self, fig10_mini):
        assert len(fig10_mini.means("id")) == 2


class TestLifespanDriver:
    def test_figure_names_follow_model(self):
        r = run_lifespan_figure(
            "linear", n_values=[8], trials=2, schemes=["id"],
            root_seed=1, parallel=False,
        )
        assert r.figure == "Figure 12 (literal)"
        assert r.drain_model == "linear"

    def test_lifespans_positive(self):
        r = run_lifespan_figure(
            "quadratic", n_values=[8], trials=2,
            schemes=["id", "el1"], root_seed=1, parallel=False,
        )
        for summaries in r.series.values():
            assert summaries[0].mean >= 1.0

    def test_default_sweep_matches_paper_range(self):
        assert min(DEFAULT_SWEEP) >= 3
        assert max(DEFAULT_SWEEP) == 100


class TestSignificance:
    @pytest.fixture(scope="class")
    def small_result(self):
        return run_lifespan_figure(
            "fixed", n_values=[15], trials=4,
            schemes=["id", "el1"], root_seed=9, parallel=False,
        )

    def test_raw_values_kept(self, small_result):
        assert small_result.raw is not None
        assert len(small_result.raw["el1"][0]) == 4

    def test_welch_t_antisymmetric(self, small_result):
        t1 = small_result.welch_t("el1", "id", 0)
        t2 = small_result.welch_t("id", "el1", 0)
        assert t1 == pytest.approx(-t2)

    def test_significance_lines_render(self, small_result):
        lines = small_result.significance_lines()
        assert len(lines) == 1
        assert "EL1 vs ID" in lines[0]

    def test_missing_raw_raises(self, small_result):
        import dataclasses

        bare = dataclasses.replace(small_result, raw=None)
        with pytest.raises(ValueError):
            bare.welch_t("el1", "id", 0)
        assert "not kept" in bare.significance_lines()[0]


class TestBatchedCells:
    """ISSUE 9: figure drivers route batchable backends through
    ``run_lifespan_batch`` (one stacked engine pass per sweep cell).
    The batched path must be bit-identical to the per-trial path, and
    the auto rule (``batch_cells=None``) must pick batching exactly for
    the vectorized/sparse backends."""

    @pytest.mark.parametrize("backend", ["vectorized", "sparse"])
    def test_batched_figure_equals_per_trial(self, backend):
        kwargs = dict(
            n_values=[10, 16], trials=3, schemes=["nd", "el2"],
            root_seed=41, parallel=False, backend=backend,
        )
        batched = run_lifespan_figure("linear", batch_cells=True, **kwargs)
        per_trial = run_lifespan_figure("linear", batch_cells=False, **kwargs)
        assert batched.raw == per_trial.raw
        assert batched.series == per_trial.series

    def test_auto_rule_matches_explicit(self):
        kwargs = dict(
            n_values=[12], trials=2, schemes=["id"],
            root_seed=43, parallel=False, backend="sparse",
        )
        auto = run_lifespan_figure("quadratic", **kwargs)
        explicit = run_lifespan_figure(
            "quadratic", batch_cells=True, **kwargs
        )
        assert auto.raw == explicit.raw

    def test_scalar_backend_unchanged_by_auto_rule(self):
        kwargs = dict(
            n_values=[12], trials=2, schemes=["id"],
            root_seed=43, parallel=False, backend="scalar",
        )
        auto = run_lifespan_figure("linear", **kwargs)
        per_trial = run_lifespan_figure("linear", batch_cells=False, **kwargs)
        assert auto.raw == per_trial.raw

    def test_figure10_batched_equals_per_trial(self):
        kwargs = dict(
            n_values=[8, 14], trials=3, root_seed=45,
            parallel=False, backend="vectorized",
        )
        batched = run_figure10(batch_cells=True, **kwargs)
        per_trial = run_figure10(batch_cells=False, **kwargs)
        assert batched.series == per_trial.series

    def test_memory_budget_threads_through_figures(self):
        kwargs = dict(
            n_values=[14], trials=2, schemes=["el2"],
            root_seed=47, parallel=False, backend="sparse",
        )
        tiny = run_lifespan_figure("linear", memory_budget_mb=0.01, **kwargs)
        default = run_lifespan_figure("linear", **kwargs)
        assert tiny.raw == default.raw
