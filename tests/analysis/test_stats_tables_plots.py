"""Analysis layer tests: stats, table rendering, ASCII charts."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.plots import ascii_chart
from repro.analysis.stats import bootstrap_ci, summarize, welch_t
from repro.analysis.tables import render_table


class TestSummarize:
    def test_basic_moments(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.n == 3
        assert s.mean == pytest.approx(4.0)
        assert s.std == pytest.approx(2.0)
        assert s.sem == pytest.approx(2.0 / math.sqrt(3))
        assert (s.minimum, s.maximum) == (2.0, 6.0)

    def test_single_value(self):
        s = summarize([5.0])
        assert (s.mean, s.std, s.sem) == (5.0, 0.0, 0.0)

    def test_empty_is_nan(self):
        s = summarize([])
        assert s.n == 0 and math.isnan(s.mean)

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestBootstrap:
    def test_ci_brackets_mean(self):
        data = list(np.random.default_rng(0).normal(10, 2, 200))
        lo, hi = bootstrap_ci(data, rng=1)
        assert lo < 10.5 and hi > 9.5 and lo < hi

    def test_degenerate_inputs(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)
        lo, hi = bootstrap_ci([])
        assert math.isnan(lo) and math.isnan(hi)

    def test_reproducible_with_seed(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, rng=5) == bootstrap_ci(data, rng=5)


class TestWelch:
    def test_sign_follows_means(self):
        a = [10.0, 11.0, 9.0, 10.5]
        b = [5.0, 6.0, 4.0, 5.5]
        assert welch_t(a, b) > 0
        assert welch_t(b, a) < 0

    def test_small_samples_nan(self):
        assert math.isnan(welch_t([1.0], [2.0, 3.0]))

    def test_identical_constant_samples(self):
        assert welch_t([3.0, 3.0], [3.0, 3.0]) == 0.0


class TestTables:
    def test_rows_align_and_floats_format(self):
        out = render_table(
            ["N", "ID"], [[10, 3.14159], [100, 2.0]], title="demo"
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "3.14" in out and "3.14159" not in out
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # fully aligned

    def test_empty_rows(self):
        out = render_table(["A"], [])
        assert "A" in out


class TestAsciiChart:
    def test_contains_legend_and_markers(self):
        out = ascii_chart(
            [1, 2, 3],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
            title="t",
        )
        assert "legend" in out and "o=up" in out and "x=down" in out
        assert out.count("o") >= 3

    def test_constant_series_does_not_crash(self):
        out = ascii_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in out

    def test_nan_points_skipped(self):
        out = ascii_chart([1, 2, 3], {"s": [1.0, float("nan"), 3.0]})
        grid = "\n".join(l for l in out.splitlines() if "|" in l)
        assert grid.count("o") == 2  # the NaN middle point is dropped

    def test_empty_series(self):
        assert ascii_chart([], {}, title="empty") == "empty"

    def test_axis_labels_present(self):
        out = ascii_chart(
            [0, 10], {"s": [0.0, 1.0]}, xlabel="N", ylabel="life"
        )
        assert "N" in out and "life" in out
