"""Fairness metric tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import duty_fractions, gini, jain_index
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_trials


class TestJain:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_worker_is_one_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        a = [1.0, 2.0, 3.0]
        b = [10.0, 20.0, 30.0]
        assert jain_index(a) == pytest.approx(jain_index(b))

    def test_all_zero_counts_as_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty(self):
        assert jain_index([]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])


class TestGini:
    def test_equal_values_zero(self):
        assert gini([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_concentration_increases_gini(self):
        spread = gini([1.0, 1.0, 1.0, 1.0])
        tight = gini([4.0, 0.0, 0.0, 0.0])
        assert tight > spread

    def test_bounds(self):
        g = gini([9.0, 1.0, 0.0, 5.0])
        assert 0.0 <= g < 1.0

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1.0])


class TestDutyFractions:
    def test_basic(self):
        out = duty_fractions([5, 0, 10], 10)
        np.testing.assert_allclose(out, [0.5, 0.0, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            duty_fractions([1], 0)
        with pytest.raises(ValueError):
            duty_fractions([11], 10)
        with pytest.raises(ValueError):
            duty_fractions([-1], 10)


class TestDutyInSimulation:
    def test_duty_recorded_per_host(self):
        cfg = SimulationConfig(n_hosts=15, scheme="nd", drain_model="fixed")
        m = run_trials(cfg, 1, root_seed=2, parallel=False)[0]
        assert len(m.gateway_duty) == 15
        assert all(0.0 <= d <= 1.0 for d in m.gateway_duty)
        assert 0.0 < m.gateway_duty_jain <= 1.0

    def test_el_rotation_is_fairer_than_static_id(self):
        """The paper's 'balanced consumption' goal, quantified: energy-
        aware selection spreads gateway duty more evenly."""
        jains = {}
        for scheme in ("id", "el1"):
            cfg = SimulationConfig(
                n_hosts=30, scheme=scheme, drain_model="fixed"
            )
            ms = run_trials(cfg, 5, root_seed=3, parallel=False)
            jains[scheme] = float(
                np.mean([m.gateway_duty_jain for m in ms])
            )
        assert jains["el1"] > jains["id"]
