"""Degenerate and word-boundary sizes for every registered construction.

The bitmask kernels pack adjacency rows into machine words, so n = 63,
64, 65 are the sizes where an off-by-one in tail-word handling shows up.
n = 1 and n = 2 are where "a CDS can legitimately be empty" kicks in.
Every algorithm in the registry must survive all of them, plus
disconnected inputs (where the registry decomposes per component while
the raw centralized baselines refuse loudly).
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    aneja_two_connected_cds,
    connected_greedy_ds,
    guha_khuller_cds,
    mis_cds,
    pieces_cds,
    zhou_min_weight_cds,
)
from repro.core.registry import ALGORITHMS
from repro.errors import DisconnectedGraphError
from repro.graphs import bitset
from repro.graphs.generators import cycle_graph, from_edges, path_graph

WORD_BOUNDARY_SIZES = [1, 2, 63, 64, 65]


class TestWordBoundarySizes:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("n", WORD_BOUNDARY_SIZES)
    def test_path(self, name, n):
        g = path_graph(n)
        result = ALGORITHMS[name].compute(g, "id", None, verify=True)
        assert result.n == n
        assert result.gateway_mask >> n == 0
        if n >= 63:
            # a path's CDS is its interior — nothing can shrink below that
            assert bitset.popcount(result.gateway_mask) >= n - 2

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("n", [63, 64, 65])
    def test_cycle(self, name, n):
        g = cycle_graph(n)
        result = ALGORITHMS[name].compute(g, "el2", [100.0] * n, verify=True)
        assert result.gateway_mask >> n == 0
        assert bitset.popcount(result.gateway_mask) >= n - 2

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("n", WORD_BOUNDARY_SIZES)
    def test_energy_slicing_matches_size(self, name, n):
        """Energy vectors are validated/sliced per component — the tail
        host's level must not be dropped."""
        g = path_graph(n)
        energy = [float(10 + i) for i in range(n)]
        result = ALGORITHMS[name].compute(g, "el1", energy, verify=True)
        assert result.n == n


class TestDisconnectedInputs:
    # two squares joined at nothing, plus a lone host
    DISCONNECTED = from_edges(
        9, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7), (7, 4)]
    )

    @pytest.mark.parametrize(
        "algo",
        [guha_khuller_cds, pieces_cds, mis_cds, connected_greedy_ds],
    )
    def test_centralized_baselines_refuse(self, algo):
        with pytest.raises(DisconnectedGraphError):
            algo(self.DISCONNECTED.adjacency)

    def test_mask_baselines_refuse(self):
        adj = list(self.DISCONNECTED.adjacency)
        with pytest.raises(DisconnectedGraphError):
            aneja_two_connected_cds(adj)
        with pytest.raises(DisconnectedGraphError):
            zhou_min_weight_cds(adj)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_registry_decomposes_per_component(self, name):
        result = ALGORITHMS[name].compute(
            self.DISCONNECTED, "nd", None, verify=True
        )
        mask = result.gateway_mask
        # each 4-cycle needs in-component gateways; the isolate gets none
        assert mask >> 8 == 0
        if name != "wu_li":  # marking may legitimately empty a near-clique
            assert mask & 0b00001111
            assert mask & 0b11110000

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_components_at_word_boundary(self, name):
        """64-node path + 64-node cycle in one id space: the second
        component's ids live entirely above bit 63."""
        edges = [(i, i + 1) for i in range(63)]
        edges += [(64 + i, 64 + (i + 1) % 64) for i in range(64)]
        g = from_edges(128, edges)
        result = ALGORITHMS[name].compute(g, "id", None, verify=True)
        lo = result.gateway_mask & ((1 << 64) - 1)
        hi = result.gateway_mask >> 64
        assert bitset.popcount(lo) >= 62  # path interior
        assert bitset.popcount(hi) >= 62  # cycle minus at most 2
