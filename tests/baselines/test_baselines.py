"""Baseline CDS algorithms: validity, size, and edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    connected_greedy_ds,
    greedy_dominating_set,
    guha_khuller_cds,
    mis_cds,
    pieces_cds,
)
from repro.baselines.mis_cds import maximal_independent_set
from repro.core.cds import compute_cds
from repro.core.properties import is_cds, is_dominating
from repro.errors import DisconnectedGraphError
from repro.graphs import bitset
from repro.graphs.generators import (
    clique,
    cycle_graph,
    from_edges,
    path_graph,
    random_gnp_connected,
    star_graph,
)

CDS_ALGOS = [guha_khuller_cds, pieces_cds, mis_cds, connected_greedy_ds]


class TestValidityOnStructuredGraphs:
    @pytest.mark.parametrize("algo", CDS_ALGOS)
    def test_path(self, algo):
        g = path_graph(7)
        assert is_cds(g.adjacency, algo(g.adjacency))

    @pytest.mark.parametrize("algo", CDS_ALGOS)
    def test_cycle(self, algo):
        g = cycle_graph(9)
        assert is_cds(g.adjacency, algo(g.adjacency))

    @pytest.mark.parametrize("algo", CDS_ALGOS)
    def test_star_uses_only_center(self, algo):
        g = star_graph(8)
        assert algo(g.adjacency) == {0}

    @pytest.mark.parametrize("algo", CDS_ALGOS)
    def test_clique_single_node(self, algo):
        g = clique(6)
        result = algo(g.adjacency)
        assert len(result) == 1
        assert is_cds(g.adjacency, result)

    @pytest.mark.parametrize("algo", CDS_ALGOS)
    def test_trivial_sizes(self, algo):
        assert algo([]) == set()
        assert algo([0b0]) == {0} or algo([0b0]) == set()  # single node

    @pytest.mark.parametrize("algo", CDS_ALGOS)
    def test_disconnected_rejected(self, algo):
        g = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            algo(g.adjacency)


class TestValidityOnRandomGraphs:
    @pytest.mark.parametrize("algo", CDS_ALGOS)
    def test_random_graphs(self, algo, random_graphs):
        for g, _ in random_graphs:
            assert is_cds(g.adjacency, algo(g.adjacency))


class TestQuality:
    def test_greedy_sets_are_small_on_paths(self):
        # the optimum CDS of P_n has n-2 nodes; greedy must match it
        g = path_graph(10)
        assert len(guha_khuller_cds(g.adjacency)) == 8

    def test_centralized_greedy_beats_or_ties_marking_process(self, random_graphs):
        """The intro's trade-off: global greedy finds smaller sets than the
        local marking process without rules."""
        wins = ties = losses = 0
        for g, _ in random_graphs:
            nr = compute_cds(g, "nr").size
            gk = len(guha_khuller_cds(g.adjacency))
            if gk < nr:
                wins += 1
            elif gk == nr:
                ties += 1
            else:
                losses += 1
        assert wins + ties > losses

    def test_pieces_is_competitive_with_tree_growth(self, random_graphs):
        total_pieces = total_gk = 0
        for g, _ in random_graphs:
            total_pieces += len(pieces_cds(g.adjacency))
            total_gk += len(guha_khuller_cds(g.adjacency))
        assert total_pieces <= total_gk * 1.5


class TestGreedyDominatingSet:
    def test_dominates_but_may_disconnect(self):
        g = cycle_graph(9)
        ds = greedy_dominating_set(g.adjacency)
        assert is_dominating(g.adjacency, ds)

    def test_connected_variant_is_superset(self, random_graphs):
        for g, _ in random_graphs[:6]:
            ds = greedy_dominating_set(g.adjacency)
            cds = connected_greedy_ds(g.adjacency)
            assert ds <= cds

    def test_empty_graph(self):
        assert greedy_dominating_set([]) == set()


class TestMIS:
    def test_mis_is_independent_and_maximal(self, random_graphs):
        for g, _ in random_graphs[:8]:
            mis = maximal_independent_set(g.adjacency)
            mask = bitset.mask_from_ids(mis)
            for v in mis:
                assert not g.adjacency[v] & mask  # independent
            for v in range(g.n):
                # maximal: every outsider has a neighbor inside
                assert (mask >> v & 1) or (g.adjacency[v] & mask)

    def test_custom_order_changes_selection(self):
        g = path_graph(4)
        by_id = maximal_independent_set(g.adjacency)
        reversed_order = maximal_independent_set(g.adjacency, order=[3, 2, 1, 0])
        assert by_id == {0, 2} or by_id == {0, 3}
        assert reversed_order != by_id


class TestEnergyAwareGreedy:
    def test_produces_valid_cds(self, random_graphs):
        from repro.baselines.energy_greedy import energy_aware_greedy_cds

        for g, energy in random_graphs[:10]:
            mask = energy_aware_greedy_cds(g.adjacency, energy)
            assert is_cds(g.adjacency, mask)

    def test_prefers_high_energy_on_ties(self):
        from repro.baselines.energy_greedy import energy_aware_greedy_cds

        # 4-cycle: every node covers the same amount; energy decides
        g = cycle_graph(4)
        mask = energy_aware_greedy_cds(g.adjacency, [1.0, 9.0, 1.0, 2.0])
        assert mask >> 1 & 1  # the high-energy node is picked first

    def test_trivial_graphs(self):
        from repro.baselines.energy_greedy import energy_aware_greedy_cds

        assert energy_aware_greedy_cds([], []) == 0
        assert energy_aware_greedy_cds([0], [5.0]) == 1

    def test_disconnected_rejected(self):
        from repro.baselines.energy_greedy import energy_aware_greedy_cds

        g = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            energy_aware_greedy_cds(g.adjacency, [1.0] * 4)

    def test_plugs_into_lifespan_simulator(self):
        from repro.baselines.energy_greedy import energy_aware_greedy_cds
        from repro.simulation.config import SimulationConfig
        from repro.simulation.lifespan import LifespanSimulator

        cfg = SimulationConfig(n_hosts=12, scheme="id", drain_model="fixed")
        r = LifespanSimulator(cfg, rng=5, cds_fn=energy_aware_greedy_cds).run()
        assert r.lifespan >= 1
