"""Traffic-driven energy model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.energy.battery import BatteryBank
from repro.energy.traffic_model import TrafficEnergyModel
from repro.errors import EnergyError
from repro.graphs import bitset
from repro.graphs.generators import path_graph, random_connected_network


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tx_cost": -1.0},
            {"rx_cost": -0.1},
            {"idle_cost": -0.1},
            {"packets_per_interval": -1},
        ],
    )
    def test_negative_costs_rejected(self, kwargs):
        with pytest.raises(EnergyError):
            TrafficEnergyModel(**kwargs)


class TestApply:
    def test_idle_only_when_no_traffic(self, rng):
        g = path_graph(4)
        bank = BatteryBank(4, initial=10.0)
        model = TrafficEnergyModel(packets_per_interval=0, idle_cost=0.5)
        rec = model.apply(bank, list(g.adjacency), 0b0110, rng, interval=1)
        assert rec.packets_routed == 0
        assert np.all(bank.levels == 9.5)

    def test_forwarders_pay_more_than_endpoints(self, rng):
        g = path_graph(3)  # 0 - 1 - 2, gateway 1 relays everything
        bank = BatteryBank(3, initial=100.0)
        model = TrafficEnergyModel(
            tx_cost=1.0, rx_cost=0.5, idle_cost=0.0, packets_per_interval=30
        )
        model.apply(bank, list(g.adjacency), 0b010, rng, interval=1)
        # host 1 pays rx+tx per carried packet plus its own endpoint costs
        assert bank.level(1) < bank.level(0)
        assert bank.level(1) < bank.level(2)

    def test_gateway_share_is_full_on_valid_backbone(self, rng):
        net = random_connected_network(20, rng=rng)
        r = compute_cds(net, "id")
        bank = BatteryBank(20, initial=1e6)
        model = TrafficEnergyModel(packets_per_interval=40)
        rec = model.apply(
            bank, list(net.adjacency), r.gateway_mask, rng, interval=1
        )
        assert rec.packets_routed == 40
        assert rec.gateway_forwarding_share == pytest.approx(1.0)
        assert rec.mean_route_length >= 1.0

    def test_no_backbone_drops_all_packets(self, rng):
        g = path_graph(4)
        bank = BatteryBank(4, initial=10.0)
        model = TrafficEnergyModel(packets_per_interval=10)
        rec = model.apply(bank, list(g.adjacency), 0, rng, interval=1)
        assert rec.packets_routed == 0

    def test_death_reported(self, rng):
        g = path_graph(3)
        bank = BatteryBank.from_levels([10.0, 0.4, 10.0])
        model = TrafficEnergyModel(
            tx_cost=1.0, rx_cost=1.0, idle_cost=0.0, packets_per_interval=5
        )
        rec = model.apply(bank, list(g.adjacency), 0b010, rng, interval=1)
        assert 1 in rec.died

    def test_dead_hosts_excluded_from_traffic(self, rng):
        g = path_graph(3)
        bank = BatteryBank.from_levels([10.0, 10.0, -1.0])
        model = TrafficEnergyModel(packets_per_interval=10, idle_cost=0.0)
        before = bank.level(2)
        model.apply(bank, list(g.adjacency), 0b010, rng, interval=1)
        assert bank.level(2) == before  # off the air entirely
