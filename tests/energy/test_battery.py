"""BatteryBank tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.battery import PAPER_INITIAL_ENERGY, BatteryBank
from repro.errors import EnergyError


class TestConstruction:
    def test_paper_default_is_100(self):
        bank = BatteryBank(5)
        assert PAPER_INITIAL_ENERGY == 100.0
        assert np.all(bank.levels == 100.0)

    def test_from_levels_copies(self):
        src = np.array([1.0, 2.0])
        bank = BatteryBank.from_levels(src)
        src[0] = 99.0
        assert bank.level(0) == 1.0

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("inf")])
    def test_bad_initial_rejected(self, bad):
        with pytest.raises(EnergyError):
            BatteryBank(3, initial=bad)

    def test_negative_count_rejected(self):
        with pytest.raises(EnergyError):
            BatteryBank(-1)

    def test_from_levels_rejects_nan(self):
        with pytest.raises(EnergyError):
            BatteryBank.from_levels([1.0, float("nan")])


class TestDrain:
    def test_scalar_drain_hits_everyone(self):
        bank = BatteryBank(3, initial=10.0)
        bank.drain(2.5)
        assert np.all(bank.levels == 7.5)

    def test_vector_drain(self):
        bank = BatteryBank(3, initial=10.0)
        bank.drain(np.array([1.0, 2.0, 3.0]))
        assert bank.levels.tolist() == [9.0, 8.0, 7.0]

    def test_masked_drain(self):
        bank = BatteryBank(3, initial=10.0)
        bank.drain(4.0, who=np.array([True, False, True]))
        assert bank.levels.tolist() == [6.0, 10.0, 6.0]

    def test_negative_drain_rejected(self):
        bank = BatteryBank(2)
        with pytest.raises(EnergyError):
            bank.drain(-1.0)

    def test_recharge(self):
        bank = BatteryBank(2, initial=5.0)
        bank.recharge(1, 3.0)
        assert bank.level(1) == 8.0
        with pytest.raises(EnergyError):
            bank.recharge(0, -1.0)


class TestDeath:
    def test_death_detection(self):
        bank = BatteryBank(3, initial=2.0)
        assert not bank.any_dead()
        bank.drain(np.array([0.0, 2.0, 3.0]))
        assert bank.any_dead()
        assert bank.dead_hosts() == [1, 2]
        assert bank.first_death() == 1

    def test_first_death_none_when_alive(self):
        assert BatteryBank(2).first_death() is None

    def test_exact_zero_counts_as_dead(self):
        bank = BatteryBank(1, initial=1.0)
        bank.drain(1.0)
        assert bank.any_dead()


class TestAggregates:
    def test_min_and_total(self):
        bank = BatteryBank.from_levels([3.0, 1.0, 5.0])
        assert bank.min_level() == 1.0
        assert bank.total() == 9.0

    def test_copy_is_independent(self):
        bank = BatteryBank(2, initial=4.0)
        dup = bank.copy()
        dup.drain(1.0)
        assert bank.level(0) == 4.0
        assert dup.level(0) == 3.0
