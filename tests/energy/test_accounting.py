"""Energy accountant tests."""

from __future__ import annotations

import pytest

from repro.energy.accounting import EnergyAccountant
from repro.energy.battery import BatteryBank
from repro.energy.models import FixedDrain, LinearDrain
from repro.errors import EnergyError
from repro.graphs import bitset


class TestApply:
    def test_gateways_and_others_drain_differently(self):
        bank = BatteryBank(4, initial=10.0)
        acct = EnergyAccountant(bank, FixedDrain(d=3.0))
        rec = acct.apply(bitset.mask_from_ids({0, 2}))
        assert bank.levels.tolist() == [7.0, 9.0, 7.0, 9.0]
        assert rec.n_gateways == 2
        assert rec.gateway_drain == 3.0
        assert rec.non_gateway_drain == 1.0

    def test_linear_model_uses_backbone_size(self):
        bank = BatteryBank(8, initial=100.0)
        acct = EnergyAccountant(bank, LinearDrain())
        rec = acct.apply(bitset.mask_from_ids({1, 2}))
        assert rec.gateway_drain == pytest.approx(8 / 2)

    def test_empty_gateway_set_drains_dprime_only(self):
        bank = BatteryBank(3, initial=5.0)
        acct = EnergyAccountant(bank, FixedDrain(d=3.0))
        rec = acct.apply(0)
        assert bank.levels.tolist() == [4.0, 4.0, 4.0]
        assert rec.n_gateways == 0
        assert rec.gateway_drain == 0.0

    def test_death_reported_once(self):
        bank = BatteryBank(2, initial=1.5)
        acct = EnergyAccountant(bank, FixedDrain(d=1.0))
        first = acct.apply(bitset.mask_from_ids({0}))
        assert first.died == ()
        second = acct.apply(bitset.mask_from_ids({0}))
        # non-gateway (host 1) drained 1.0 twice from 1.5 -> dead
        assert 1 in second.died
        third = acct.apply(bitset.mask_from_ids({0}))
        assert 1 not in third.died  # already dead, not re-reported

    def test_interval_counter_and_ledger(self):
        bank = BatteryBank(3, initial=50.0)
        acct = EnergyAccountant(bank, FixedDrain(d=2.0))
        acct.apply(bitset.mask_from_ids({0}))
        acct.apply(bitset.mask_from_ids({0, 1}))
        assert acct.intervals_applied == 2
        assert acct.total_gateway_drain == pytest.approx(2.0 + 4.0)
        assert acct.total_non_gateway_drain == pytest.approx(2.0 + 1.0)

    def test_custom_dprime(self):
        bank = BatteryBank(2, initial=10.0)
        acct = EnergyAccountant(bank, FixedDrain(d=1.0), non_gateway_drain=0.5)
        acct.apply(bitset.mask_from_ids({0}))
        assert bank.levels.tolist() == [9.0, 9.5]

    def test_negative_dprime_rejected(self):
        with pytest.raises(EnergyError):
            EnergyAccountant(BatteryBank(1), FixedDrain(), non_gateway_drain=-1)

    def test_record_min_level(self):
        bank = BatteryBank.from_levels([5.0, 2.0])
        acct = EnergyAccountant(bank, FixedDrain(d=1.0))
        rec = acct.apply(bitset.mask_from_ids({0}))
        assert rec.min_level_after == pytest.approx(1.0)
