"""Drain model tests — the exact formulas of §4."""

from __future__ import annotations

import pytest

from repro.energy.models import (
    NOMINAL_BACKBONE,
    PAPER_DRAIN_MODELS,
    PER_GATEWAY_DRAIN_MODELS,
    ConstantDrain,
    FixedDrain,
    LinearDrain,
    PerGatewayLinearDrain,
    PerGatewayQuadraticDrain,
    QuadraticDrain,
    drain_model_by_name,
)
from repro.errors import EnergyError

ALL_DRAIN_MODELS = {**PAPER_DRAIN_MODELS, **PER_GATEWAY_DRAIN_MODELS}


class TestFormulas:
    def test_constant_model_is_2_over_gprime(self):
        assert ConstantDrain().gateway_drain(50, 10) == pytest.approx(0.2)
        assert ConstantDrain().gateway_drain(100, 10) == pytest.approx(0.2)

    def test_linear_model_is_n_over_gprime(self):
        assert LinearDrain().gateway_drain(50, 10) == pytest.approx(5.0)
        assert LinearDrain().gateway_drain(100, 20) == pytest.approx(5.0)

    def test_quadratic_model_matches_paper_formula(self):
        # d = N(N-1)/2 / (10 |G'|)
        assert QuadraticDrain().gateway_drain(100, 25) == pytest.approx(
            (100 * 99 / 2) / (10 * 25)
        )

    def test_fixed_model_ignores_gprime(self):
        assert FixedDrain(d=3.0).gateway_drain(10, 2) == 3.0
        assert FixedDrain(d=3.0).gateway_drain(10, 9) == 3.0

    def test_smaller_backbone_works_harder(self):
        m = LinearDrain()
        assert m.gateway_drain(60, 5) > m.gateway_drain(60, 20)


class TestValidation:
    """``_check`` error paths, for all six registered models."""

    @pytest.mark.parametrize(
        "model", ALL_DRAIN_MODELS.values(), ids=list(ALL_DRAIN_MODELS)
    )
    def test_zero_gateways_rejected(self, model):
        with pytest.raises(EnergyError, match="n_gateways must be positive"):
            model.gateway_drain(10, 0)

    @pytest.mark.parametrize(
        "model", ALL_DRAIN_MODELS.values(), ids=list(ALL_DRAIN_MODELS)
    )
    def test_negative_gateways_rejected(self, model):
        with pytest.raises(EnergyError, match="n_gateways must be positive"):
            model.gateway_drain(10, -3)

    @pytest.mark.parametrize(
        "model", ALL_DRAIN_MODELS.values(), ids=list(ALL_DRAIN_MODELS)
    )
    def test_zero_hosts_rejected(self, model):
        with pytest.raises(EnergyError, match="n_hosts must be positive"):
            model.gateway_drain(0, 1)

    @pytest.mark.parametrize(
        "model", ALL_DRAIN_MODELS.values(), ids=list(ALL_DRAIN_MODELS)
    )
    def test_negative_hosts_rejected(self, model):
        with pytest.raises(EnergyError, match="n_hosts must be positive"):
            model.gateway_drain(-1, 1)

    def test_hosts_checked_before_gateways(self):
        # both invalid: the n_hosts message wins (documents _check order)
        with pytest.raises(EnergyError, match="n_hosts must be positive"):
            LinearDrain().gateway_drain(0, 0)


class TestSingleGatewayExtremes:
    """``n_gateways=1``: one host carries the whole backbone.

    The 1/|G'| sharing degenerates, so each literal model must yield its
    *total* bypass traffic, while the per-gateway readings are unchanged.
    """

    def test_constant_pays_full_total(self):
        assert ConstantDrain().gateway_drain(50, 1) == pytest.approx(2.0)
        assert ConstantDrain(total=7.0).gateway_drain(50, 1) == pytest.approx(
            7.0
        )

    def test_linear_pays_full_population(self):
        assert LinearDrain().gateway_drain(50, 1) == pytest.approx(50.0)

    def test_quadratic_pays_all_pairs(self):
        assert QuadraticDrain().gateway_drain(50, 1) == pytest.approx(
            (50 * 49 / 2) / 10.0
        )

    def test_fixed_is_unaffected(self):
        assert FixedDrain().gateway_drain(50, 1) == pytest.approx(2.0)

    def test_pg_linear_is_unaffected(self):
        assert PerGatewayLinearDrain().gateway_drain(50, 1) == pytest.approx(
            50.0 / NOMINAL_BACKBONE
        )

    def test_pg_quadratic_is_unaffected(self):
        assert PerGatewayQuadraticDrain().gateway_drain(
            50, 1
        ) == pytest.approx((50 * 49 / 2) / (10.0 * NOMINAL_BACKBONE))

    @pytest.mark.parametrize(
        "name", ["fixed", "pg-linear", "pg-quadratic"]
    )
    def test_per_gateway_models_are_backbone_blind(self, name):
        m = ALL_DRAIN_MODELS[name]
        assert m.gateway_drain(50, 1) == m.gateway_drain(50, 49)

    def test_single_host_single_gateway(self):
        # N=1, |G'|=1: the degenerate-but-legal corner for every model
        for name, m in ALL_DRAIN_MODELS.items():
            d = m.gateway_drain(1, 1)
            assert d >= 0.0, name
        # the pair-traffic models see zero pairs
        assert QuadraticDrain().gateway_drain(1, 1) == 0.0
        assert PerGatewayQuadraticDrain().gateway_drain(1, 1) == 0.0


class TestRegistry:
    def test_paper_models_registered(self):
        assert set(PAPER_DRAIN_MODELS) == {"constant", "linear", "quadratic"}

    def test_lookup_by_name(self):
        assert isinstance(drain_model_by_name("LINEAR"), LinearDrain)
        assert isinstance(drain_model_by_name("fixed"), FixedDrain)

    def test_unknown_name_raises(self):
        with pytest.raises(EnergyError, match="unknown drain model"):
            drain_model_by_name("cubic")
