"""Drain model tests — the exact formulas of §4."""

from __future__ import annotations

import pytest

from repro.energy.models import (
    PAPER_DRAIN_MODELS,
    ConstantDrain,
    FixedDrain,
    LinearDrain,
    QuadraticDrain,
    drain_model_by_name,
)
from repro.errors import EnergyError


class TestFormulas:
    def test_constant_model_is_2_over_gprime(self):
        assert ConstantDrain().gateway_drain(50, 10) == pytest.approx(0.2)
        assert ConstantDrain().gateway_drain(100, 10) == pytest.approx(0.2)

    def test_linear_model_is_n_over_gprime(self):
        assert LinearDrain().gateway_drain(50, 10) == pytest.approx(5.0)
        assert LinearDrain().gateway_drain(100, 20) == pytest.approx(5.0)

    def test_quadratic_model_matches_paper_formula(self):
        # d = N(N-1)/2 / (10 |G'|)
        assert QuadraticDrain().gateway_drain(100, 25) == pytest.approx(
            (100 * 99 / 2) / (10 * 25)
        )

    def test_fixed_model_ignores_gprime(self):
        assert FixedDrain(d=3.0).gateway_drain(10, 2) == 3.0
        assert FixedDrain(d=3.0).gateway_drain(10, 9) == 3.0

    def test_smaller_backbone_works_harder(self):
        m = LinearDrain()
        assert m.gateway_drain(60, 5) > m.gateway_drain(60, 20)


class TestValidation:
    @pytest.mark.parametrize("model", list(PAPER_DRAIN_MODELS.values()))
    def test_zero_gateways_rejected(self, model):
        with pytest.raises(EnergyError):
            model.gateway_drain(10, 0)

    @pytest.mark.parametrize("model", list(PAPER_DRAIN_MODELS.values()))
    def test_zero_hosts_rejected(self, model):
        with pytest.raises(EnergyError):
            model.gateway_drain(0, 1)


class TestRegistry:
    def test_paper_models_registered(self):
        assert set(PAPER_DRAIN_MODELS) == {"constant", "linear", "quadratic"}

    def test_lookup_by_name(self):
        assert isinstance(drain_model_by_name("LINEAR"), LinearDrain)
        assert isinstance(drain_model_by_name("fixed"), FixedDrain)

    def test_unknown_name_raises(self):
        with pytest.raises(EnergyError, match="unknown drain model"):
            drain_model_by_name("cubic")
