"""CLI tests (driving main() directly; output via capsys)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import random_connected_network
from repro.io.topology_io import save_network


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cds", "--scheme", "bogus"])

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])


class TestCommands:
    def test_example_prints_all_schemes(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        for label in ("NR", "ID", "ND", "EL1", "EL2"):
            assert label in out
        assert "[2, 4, 11, 15, 20, 22]" in out  # the ND result

    def test_cds_renders_map(self, capsys):
        assert main(["cds", "--hosts", "15", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "gateways" in out
        assert "#" in out and "o" in out

    def test_cds_from_saved_topology(self, capsys, tmp_path, rng):
        net = random_connected_network(10, rng=rng)
        path = tmp_path / "net.json"
        save_network(net, path)
        assert main(["cds", "--topology", str(path)]) == 0
        assert "10 hosts" in capsys.readouterr().out

    def test_lifespan_single_scheme(self, capsys):
        assert main([
            "lifespan", "--hosts", "10", "--trials", "2", "--scheme", "el1",
        ]) == 0
        out = capsys.readouterr().out
        assert "EL1" in out and "lifespan" in out

    def test_lifespan_all_schemes(self, capsys):
        assert main([
            "lifespan", "--hosts", "8", "--trials", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "NR" in out and "EL2" in out

    def test_figure_10_small(self, capsys):
        assert main([
            "figure", "10", "--trials", "2", "--sweep", "8,12",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out and "legend" in out

    def test_figure_12_readings(self, capsys):
        assert main([
            "figure", "12", "--trials", "2", "--sweep", "8",
            "--reading", "literal",
        ]) == 0
        assert "literal" in capsys.readouterr().out
        assert main([
            "figure", "12", "--trials", "2", "--sweep", "8",
        ]) == 0
        assert "per-gateway" in capsys.readouterr().out

    def test_directed_command(self, capsys):
        assert main(["directed", "--hosts", "12", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "directed backbone" in out
        assert "dominating and absorbing: True" in out

    def test_report_command(self, capsys, tmp_path):
        (tmp_path / "figure10.txt").write_text("DATA\n")
        assert main(["report", "--results", str(tmp_path)]) == 0
        out_path = tmp_path / "REPORT.md"
        assert out_path.exists()
        assert "DATA" in out_path.read_text()

    def test_sweep_command(self, capsys):
        assert main([
            "sweep", "radius", "20,30", "--hosts", "10", "--trials", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "radius" in out and "EL1" in out

    def test_sweep_n_hosts_casts_to_int(self, capsys):
        assert main([
            "sweep", "n_hosts", "8,12", "--trials", "2",
        ]) == 0
        assert "n_hosts" in capsys.readouterr().out

    def test_sweep_accepts_memory_budget(self, capsys):
        """Flag parity (ISSUE 10): sweep threads --memory-budget-mb into
        its base SimulationConfig (bit-identical at any positive value)."""
        assert main([
            "sweep", "radius", "20,30", "--hosts", "10", "--trials", "2",
            "--memory-budget-mb", "8",
        ]) == 0
        assert "radius" in capsys.readouterr().out

    def test_serve_accepts_memory_budget_and_sparse_backend(self, capsys):
        """Flag parity (ISSUE 10): serve exposes the sparse incremental
        backend and its chunking budget; the digest must match delta."""
        assert main([
            "serve", "--tenants", "1", "--hosts", "12", "--updates", "6",
            "--backend", "sparse", "--memory-budget-mb", "8", "--digest",
        ]) == 0
        sparse_out = capsys.readouterr().out
        assert main([
            "serve", "--tenants", "1", "--hosts", "12", "--updates", "6",
            "--digest",
        ]) == 0
        delta_out = capsys.readouterr().out
        digest = [l for l in sparse_out.splitlines() if l.startswith("digest")]
        assert digest and digest == [
            l for l in delta_out.splitlines() if l.startswith("digest")
        ]

    def test_profile_prints_span_tree(self, capsys):
        assert main([
            "profile", "--hosts", "20", "--scheme", "el2",
            "--intervals", "5", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        for name in ("profile", "interval", "cds", "marking", "rule1",
                     "rule2", "drain"):
            assert name in out, f"span {name!r} missing from profile output"
        assert "interval.count" in out
        assert "rule2.coverage_tests" in out

    def test_profile_leaves_obs_disabled(self, capsys):
        from repro import obs

        assert main(["profile", "--hosts", "15", "--intervals", "3"]) == 0
        capsys.readouterr()
        assert not obs.enabled()

    def test_profile_protocol_and_trace(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main([
            "profile", "--hosts", "15", "--intervals", "3",
            "--protocol", "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "sync_protocol" in out and "async_cds" in out
        events = [json.loads(l) for l in trace.read_text().splitlines()]
        assert events and any(e["ev"] == "span" for e in events)
