"""TenantJournal: crash-safe recovery, corruption handling, rotation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StateRecoveryError
from repro.service.chaos import corrupt_snapshot, tear_wal_tail
from repro.service.state import TenantState
from repro.service.updates import UpdateStream
from repro.service.wal import TenantJournal


def _seeded_state(n: int = 8) -> TenantState:
    st = TenantState(radius=30.0, side=100.0)
    st.seed_population(np.random.default_rng(2).uniform(0, 100, (n, 2)))
    return st


def _journaled_run(
    directory, updates: int, *, snapshot_every: int = 10, n: int = 8
) -> tuple[TenantState, TenantJournal]:
    """Drive a state through the WAL discipline the service uses."""
    st = _seeded_state(n)
    j = TenantJournal(directory)
    j.snapshot(st)  # seq-0 anchor
    for upd in UpdateStream(seed=21, n_initial=n).take(updates):
        j.append(st.seq + 1, upd)
        st.apply(upd)
        if st.seq % snapshot_every == 0:
            j.snapshot(st)
    return st, j


class TestRecovery:
    def test_fresh_directory_recovers_nothing(self, tmp_path):
        assert TenantJournal(tmp_path / "t").recover() is None

    def test_recovery_is_bit_identical(self, tmp_path):
        st, j = _journaled_run(tmp_path, 27)
        j.close()
        back = TenantJournal(tmp_path).recover()
        assert back is not None
        assert back.seq == 27
        assert back.digest() == st.digest()

    def test_recovered_journal_keeps_appending(self, tmp_path):
        st, j = _journaled_run(tmp_path, 13)
        j.close()
        j2 = TenantJournal(tmp_path)
        back = j2.recover()
        stream = UpdateStream(seed=21, n_initial=8)
        stream.skip(13)
        for upd in stream.take(7):
            j2.append(back.seq + 1, upd)
            back.apply(upd)
            st.apply(upd)
        j2.close()
        final = TenantJournal(tmp_path).recover()
        assert final.digest() == st.digest() == back.digest()

    def test_torn_tail_is_tolerated_and_truncated(self, tmp_path):
        st, j = _journaled_run(tmp_path, 25, snapshot_every=10)
        j.close()
        # the kill -9 signature: the final WAL loses half its last record
        tear_wal_tail(tmp_path / "wal-000000000020.jsonl", drop_bytes=9)
        back = TenantJournal(tmp_path).recover()
        assert back.seq == 24  # record 25 was torn away
        # replaying the lost update independently re-converges
        stream = UpdateStream(seed=21, n_initial=8)
        stream.skip(24)
        back.apply(stream.take(1)[0])
        assert back.digest() == st.digest()

    def test_corrupt_newest_snapshot_falls_back_a_generation(self, tmp_path):
        st, j = _journaled_run(tmp_path, 25, snapshot_every=10)
        j.close()
        corrupt_snapshot(tmp_path / "snapshot-000000000020.json")
        back = TenantJournal(tmp_path).recover()
        # recovered from snapshot 10 + WALs 10/20 — same end state
        assert back.seq == 25
        assert back.digest() == st.digest()

    def test_damaged_wal_mid_file_refuses(self, tmp_path):
        st, j = _journaled_run(tmp_path, 9, snapshot_every=100)
        j.close()
        wal = tmp_path / "wal-000000000000.jsonl"
        lines = wal.read_bytes().splitlines(keepends=True)
        lines[3] = b'{"broken\n'  # corruption *followed by* valid records
        wal.write_bytes(b"".join(lines))
        with pytest.raises(StateRecoveryError, match="damaged, not torn"):
            TenantJournal(tmp_path).recover()

    def test_everything_corrupt_raises(self, tmp_path):
        st, j = _journaled_run(tmp_path, 5, snapshot_every=100)
        j.close()
        corrupt_snapshot(tmp_path / "snapshot-000000000000.json")
        # gen-0 snapshot is gone and a gen-0 WAL alone cannot rebuild the
        # seeded population
        with pytest.raises(StateRecoveryError, match="no consistent"):
            TenantJournal(tmp_path).recover()


class TestRotation:
    def test_old_generations_are_pruned(self, tmp_path):
        _, j = _journaled_run(tmp_path, 50, snapshot_every=10)
        j.close()
        snaps = sorted(p.name for p in tmp_path.glob("snapshot-*.json"))
        # keep=2 (default): only the newest two generations survive
        assert snaps == [
            "snapshot-000000000040.json",
            "snapshot-000000000050.json",
        ]
        wals = sorted(p.name for p in tmp_path.glob("wal-*.jsonl"))
        assert all(int(w[4:16]) >= 40 for w in wals)

    def test_pruned_journal_still_recovers(self, tmp_path):
        st, j = _journaled_run(tmp_path, 55, snapshot_every=10)
        j.close()
        back = TenantJournal(tmp_path).recover()
        assert back.digest() == st.digest()
