"""Updates: exact serialization round-trips and stream determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.updates import (
    Drain,
    Join,
    Leave,
    Move,
    UpdateStream,
    update_from_dict,
)


class TestSerialization:
    @pytest.mark.parametrize(
        "upd",
        [
            Join(7, 12.25, 88.0, energy=63.5),
            Leave(3),
            Move(0, 0.1 + 0.2, 99.999999),  # non-representable float travels
            Drain(5, 1.75),
        ],
    )
    def test_round_trip_is_exact(self, upd):
        assert update_from_dict(upd.to_dict()) == upd

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown update op"):
            update_from_dict({"op": "teleport", "node": 1})


class TestUpdateStream:
    def test_same_seed_same_updates(self):
        a = UpdateStream(seed=42, n_initial=10).take(50)
        b = UpdateStream(seed=42, n_initial=10).take(50)
        assert a == b

    def test_different_seed_diverges(self):
        a = UpdateStream(seed=42, n_initial=10).take(50)
        b = UpdateStream(seed=43, n_initial=10).take(50)
        assert a != b

    def test_skip_resumes_the_identical_stream(self):
        # this is the recovery contract: a restarted driver skips the
        # recovered prefix and must generate the same suffix
        full = UpdateStream(seed=7, n_initial=8).take(40)
        resumed = UpdateStream(seed=7, n_initial=8)
        resumed.skip(25)
        assert resumed.position == 25
        assert resumed.take(15) == full[25:]

    def test_population_never_collapses(self):
        # churn may only shrink the network while > 3 nodes are live
        stream = UpdateStream(
            seed=11, n_initial=4, p_move=0.0, p_drain=0.0, p_churn=1.0
        )
        live = set(range(4))
        for upd in stream.take(200):
            if isinstance(upd, Join):
                live.add(upd.node)
            elif isinstance(upd, Leave):
                live.discard(upd.node)
            assert len(live) >= 3

    def test_join_ids_are_never_reused(self):
        stream = UpdateStream(
            seed=13, n_initial=5, p_move=0.0, p_drain=0.0, p_churn=1.0
        )
        seen: set[int] = set()
        for upd in stream.take(300):
            if isinstance(upd, Join):
                assert upd.node not in seen
                seen.add(upd.node)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            UpdateStream(seed=0, n_initial=5, p_move=0.9, p_drain=0.9)

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError, match="n_initial"):
            UpdateStream(seed=0, n_initial=0)
