"""Supervisor: restart-with-backoff, streak reset, quarantine escalation.

No pytest-asyncio in the image: every async scenario runs under a plain
``asyncio.run`` inside a synchronous test function.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.service.supervisor import RestartPolicy, Supervisor

_FAST = RestartPolicy(base_delay_s=0.0, max_delay_s=0.0, jitter=0.0)


def _policy(**kw) -> RestartPolicy:
    merged = dict(base_delay_s=0.0, max_delay_s=0.0, jitter=0.0)
    merged.update(kw)
    return RestartPolicy(**merged)


class TestBackoffDelays:
    def test_doubling_without_jitter(self):
        pol = RestartPolicy(base_delay_s=0.02, max_delay_s=1.0, jitter=0.0)
        assert pol.delay_s("t", 1) == 0.02
        assert pol.delay_s("t", 2) == 0.04
        assert pol.delay_s("t", 3) == 0.08

    def test_capped_at_max_delay(self):
        pol = RestartPolicy(base_delay_s=0.02, max_delay_s=0.1, jitter=0.0)
        assert pol.delay_s("t", 10) == 0.1

    def test_jitter_is_deterministic_and_bounded(self):
        pol = RestartPolicy(base_delay_s=0.08, max_delay_s=2.0, jitter=0.5, seed=9)
        d = pol.delay_s("tenant-a", 1)
        assert d == pol.delay_s("tenant-a", 1)  # replayable
        assert 0.04 <= d <= 0.08  # within [raw*(1-jitter), raw]
        assert d != pol.delay_s("tenant-b", 1)  # per-task streams differ

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="base_delay_s"):
            RestartPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ConfigurationError, match="max_failures"):
            RestartPolicy(max_failures=0)
        with pytest.raises(ConfigurationError, match="jitter"):
            RestartPolicy(jitter=1.5)


class TestSupervision:
    def test_restarts_until_success(self):
        async def go():
            sup = Supervisor(_FAST)
            attempts = 0

            async def flaky():
                nonlocal attempts
                attempts += 1
                if attempts < 3:
                    raise RuntimeError(f"boom {attempts}")

            health = sup.start("t", flaky)
            await asyncio.sleep(0.05)
            assert attempts == 3
            assert health.state == "stopped"
            assert health.restarts == 2
            assert health.total_failures == 2
            await sup.stop()

        asyncio.run(go())

    def test_quarantine_after_consecutive_failures(self):
        async def go():
            sup = Supervisor(_policy(max_failures=3))
            seen = []
            sup.on_quarantine = lambda name, h: seen.append((name, h.failures))

            async def doomed():
                raise RuntimeError("always")

            health = sup.start("t", doomed)
            await asyncio.sleep(0.05)
            assert health.state == "quarantined"
            assert sup.is_quarantined("t")
            assert seen == [("t", 3)]
            assert "always" in health.last_error
            await sup.stop()

        asyncio.run(go())

    def test_progress_resets_the_failure_streak(self):
        async def go():
            sup = Supervisor(_policy(max_failures=2))
            attempts = 0

            async def flaky_but_progressing():
                nonlocal attempts
                attempts += 1
                if attempts <= 4:
                    sup.note_progress("t")  # work happened this incarnation
                    raise RuntimeError("transient")

            sup.start("t", flaky_but_progressing)
            await asyncio.sleep(0.05)
            # 4 failures, each the first of a fresh streak: never quarantined
            assert not sup.is_quarantined("t")
            assert sup.health("t").state == "stopped"
            assert sup.health("t").total_failures == 4
            await sup.stop()

        asyncio.run(go())

    def test_no_progress_means_streak_accumulates(self):
        async def go():
            sup = Supervisor(_policy(max_failures=2))

            async def doomed():
                raise RuntimeError("no progress made")

            sup.start("t", doomed)
            await asyncio.sleep(0.05)
            assert sup.is_quarantined("t")
            assert sup.health("t").failures == 2
            await sup.stop()

        asyncio.run(go())

    def test_duplicate_start_rejected(self):
        async def go():
            sup = Supervisor(_FAST)

            async def forever():
                await asyncio.Event().wait()

            sup.start("t", forever)
            with pytest.raises(ConfigurationError, match="already supervised"):
                sup.start("t", forever)
            await sup.stop()

        asyncio.run(go())

    def test_stop_cancels_running_tasks(self):
        async def go():
            sup = Supervisor(_FAST)
            started = asyncio.Event()

            async def forever():
                started.set()
                await asyncio.Event().wait()

            health = sup.start("t", forever)
            await started.wait()
            await sup.stop()
            assert health.state == "stopped"

        asyncio.run(go())
