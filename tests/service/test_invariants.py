"""BackboneChecker: the hard publish gate + the statistical alarm."""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaCDSPipeline
from repro.graphs import bitset
from repro.graphs.generators import from_edges, path_graph
from repro.graphs.unitdisk import unit_disk_adjacency
from repro.service.invariants import BackboneChecker, expected_marked_count


def _pipeline_mask(adj, n):
    return DeltaCDSPipeline("el2").compute(adj, [100.0] * n).gateway_mask


class TestHardInvariants:
    def test_pipeline_output_passes(self):
        rng = np.random.default_rng(17)
        adj = unit_disk_adjacency(rng.uniform(0, 100, (40, 2)), 30.0)
        mask = _pipeline_mask(adj, 40)
        report = BackboneChecker().check(adj, mask)
        assert report.ok
        assert report.size == bitset.popcount(mask)

    def test_missing_gateway_breaks_domination(self):
        adj = list(path_graph(5).adjacency)
        # only node 1 as gateway: node 4 has no gateway neighbor
        report = BackboneChecker().check(adj, 1 << 1)
        assert not report.dominating
        assert not report.ok
        assert "no gateway neighbor" in report.detail

    def test_disconnected_gateways_break_connectivity(self):
        adj = list(path_graph(7).adjacency)
        # {1, 5} dominates P7 minus nothing... actually covers all but 3
        # — use {1, 3, 5} minus the middle to break only connectivity
        report = BackboneChecker().check(adj, (1 << 1) | (1 << 5))
        assert not report.ok  # either domination (node 3) or connectivity

    def test_empty_backbone_on_clique_is_legal(self):
        # a clique marks nobody (every pair of neighbors is adjacent), so
        # an empty backbone is exactly what compute_cds returns
        k4 = from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        report = BackboneChecker().check(list(k4.adjacency), 0)
        assert report.ok

    def test_empty_backbone_on_path_is_not(self):
        report = BackboneChecker().check(list(path_graph(5).adjacency), 0)
        assert not report.ok
        assert "empty backbone" in report.detail

    def test_tiny_components_need_no_gateway(self):
        # two isolated edges + one isolated node: nothing to relay anywhere
        adj = list(from_edges(5, [(0, 1), (2, 3)]).adjacency)
        assert BackboneChecker().check(adj, 0).ok

    def test_mask_beyond_n_rejected(self):
        report = BackboneChecker().check(list(path_graph(3).adjacency), 1 << 7)
        assert not report.ok
        assert "beyond n" in report.detail

    def test_per_component_checks_on_fragmented_topology(self):
        # two disjoint P3s: each needs its own middle gateway
        adj = list(from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).adjacency)
        assert BackboneChecker().check(adj, (1 << 1) | (1 << 4)).ok
        # covering only one component fails the other
        assert not BackboneChecker().check(adj, 1 << 1).ok


class TestStatisticalAlarm:
    def test_oversized_backbone_trips_the_alarm(self):
        # P30: degrees <= 2, expected marked count is small — publishing
        # every node as a gateway is valid but statistically absurd
        adj = list(path_graph(30).adjacency)
        report = BackboneChecker().check(adj, (1 << 30) - 1)
        assert report.ok  # hard invariants hold...
        assert report.alarm  # ...but the tripwire fires
        assert "expectation band" in report.detail

    def test_normal_backbone_stays_quiet(self):
        rng = np.random.default_rng(23)
        adj = unit_disk_adjacency(rng.uniform(0, 100, (60, 2)), 25.0)
        mask = _pipeline_mask(adj, 60)
        report = BackboneChecker().check(adj, mask)
        assert report.ok
        assert not report.alarm

    def test_expected_marked_count_grows_with_degree(self):
        sparse = expected_marked_count(list(path_graph(20).adjacency))
        k20 = from_edges(
            20, [(i, j) for i in range(20) for j in range(i + 1, 20)]
        )
        dense = expected_marked_count(list(k20.adjacency))
        assert 0.0 < sparse < dense
        assert dense <= 20.0

    def test_slack_widens_the_band(self):
        adj = list(path_graph(30).adjacency)
        tight = BackboneChecker(alarm_slack=0.0).check(adj, (1 << 18) - 1)
        loose = BackboneChecker(alarm_slack=50.0).check(adj, (1 << 18) - 1)
        assert tight.alarm and not loose.alarm


class TestTwoConnectedGate:
    """connectivity=2 arms the survivability gate: the backbone must also
    survive the loss of any single non-cut-vertex gateway."""

    def test_one_connected_backbone_fails_stronger_gate(self):
        from repro.graphs.generators import cycle_graph

        adj = list(cycle_graph(6).adjacency)
        mask = 0b001111  # valid CDS of C6, but losing 0 orphans host 5
        assert BackboneChecker().check(adj, mask).ok
        report = BackboneChecker(connectivity=2).check(adj, mask)
        assert not report.ok
        assert "losing gateway" in report.detail

    def test_aneja_output_passes_stronger_gate(self):
        from repro.core.registry import ALGORITHMS
        from repro.graphs.unitdisk import unit_disk_adjacency

        rng = np.random.default_rng(23)
        for _ in range(4):
            adj = unit_disk_adjacency(rng.uniform(0, 80, (25, 2)), 30.0)
            mask = ALGORITHMS["aneja_2conn"].compute(adj, "id", None).gateway_mask
            report = BackboneChecker(connectivity=2).check(list(adj), mask)
            assert report.dominating and report.connected, report.detail

    def test_cut_vertex_gateways_are_exempt(self):
        # two triangles joined through host 2: losing 2 splits the graph
        # itself, so the gate must not blame the backbone for it
        adj = list(
            from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]).adjacency
        )
        mask = 0b00100  # {2} dominates and connects everything
        report = BackboneChecker(connectivity=2).check(adj, mask)
        assert report.ok, report.detail
