"""Workload drivers: deterministic seeding and multi-tenant drives."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service import BackboneService, ServiceConfig
from repro.service.driver import (
    drive_tenants,
    scaled_side,
    seed_positions,
    tenant_seed,
)


class TestSeeding:
    def test_tenant_seeds_are_stable_and_distinct(self):
        seeds = [tenant_seed(2001, i) for i in range(8)]
        assert seeds == [tenant_seed(2001, i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert all(0 <= s < 2**31 for s in seeds)

    def test_positions_are_a_pure_function_of_identity(self):
        a = seed_positions(2001, 3, 20, 100.0)
        b = seed_positions(2001, 3, 20, 100.0)
        assert np.array_equal(a, b)
        assert a.shape == (20, 2)
        assert not np.array_equal(a, seed_positions(2001, 4, 20, 100.0))

    def test_scaled_side_keeps_density_constant(self):
        assert scaled_side(100) == pytest.approx(100.0)
        assert scaled_side(400) == pytest.approx(200.0)
        # density = hosts / side^2 stays fixed
        assert 1000 / scaled_side(1000) ** 2 == pytest.approx(100 / 100.0**2)


class TestDriveTenants:
    def test_multi_tenant_drive_reports_ok(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                return await drive_tenants(
                    service,
                    tenants=3,
                    hosts=12,
                    updates=15,
                    seed=2001,
                    side=100.0,
                    deadline_s=60.0,
                )
            finally:
                await service.close()

        report = asyncio.run(go())
        assert report.ok
        assert sorted(report.seqs) == ["t000", "t001", "t002"]
        assert all(s == 15 for s in report.seqs.values())
        # tenants are independent networks: digests must differ
        assert len(set(report.digests.values())) == 3

    def test_drive_is_deterministic(self):
        async def once():
            service = BackboneService(ServiceConfig())
            try:
                report = await drive_tenants(
                    service, tenants=2, hosts=10, updates=12,
                    seed=7, side=100.0, deadline_s=60.0,
                )
                return report.digests
            finally:
                await service.close()

        assert asyncio.run(once()) == asyncio.run(once())
