"""BackboneService end-to-end: publish/query, shedding, degradation,
quarantine, and crash-recovery bit-identity.

No pytest-asyncio in the image: each scenario runs under ``asyncio.run``
inside a plain test function.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    InvariantViolation,
    RoutingError,
    ServiceOverloaded,
    TenantQuarantinedError,
)
from repro.faults.plan import FaultPlan
from repro.service import BackboneService, ServiceConfig
from repro.service.chaos import ChaosSchedule
from repro.service.driver import seed_positions, tenant_seed
from repro.service.supervisor import RestartPolicy
from repro.service.updates import Move, UpdateStream

_HOSTS = 16
_SEED = 2001

#: a 6-node line spaced 20 apart with radius 25: a path topology whose
#: backbone is exactly the interior nodes
_LINE = np.array([[20.0 * i, 50.0] for i in range(6)])

_FAST_RESTART = RestartPolicy(
    base_delay_s=0.0, max_delay_s=0.0, jitter=0.0, max_failures=5
)


def _positions():
    return seed_positions(_SEED, 0, _HOSTS, 100.0)


def _stream():
    return UpdateStream(seed=tenant_seed(_SEED, 0), n_initial=_HOSTS)


async def _drive(service, tenant, updates, *, deadline_s=60.0):
    stream = _stream()
    for upd in stream.take(updates):
        await service.submit(tenant, upd, deadline_s=deadline_s)
    await service.wait_seq(tenant, updates, deadline_s=deadline_s)


async def _clean_digest(updates: int) -> str:
    """Digest of an uninterrupted RAM-only run — the recovery oracle."""
    service = BackboneService(ServiceConfig())
    try:
        await service.add_tenant("t", _positions())
        await _drive(service, "t", updates)
        return service.state_digest("t")
    finally:
        await service.close()


class TestPublishAndQuery:
    def test_cold_start_publishes_a_verified_backbone(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                assert await service.add_tenant("net", _LINE) == 0
                view = await service.get_backbone("net", deadline_s=5.0)
                assert view.seq == 0 and not view.stale
                assert view.gateways == frozenset({1, 2, 3, 4})
                path = view.route(0, 5)
                assert path == [0, 1, 2, 3, 4, 5]
            finally:
                await service.close()

        asyncio.run(go())

    def test_updates_advance_the_published_view(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                await service.add_tenant("net", _positions())
                await _drive(service, "net", 25)
                view = await service.get_backbone("net")
                assert view.seq == 25 and not view.stale
                stats = service.stats("net")
                assert stats["applied"] == 25
                assert stats["published_seq"] == 25
            finally:
                await service.close()

        asyncio.run(go())

    def test_route_edge_cases(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                await service.add_tenant("net", _LINE)
                view = await service.get_backbone("net", deadline_s=5.0)
                assert view.route(3, 3) == [3]
                with pytest.raises(RoutingError, match="unknown node"):
                    view.route(0, 99)
            finally:
                await service.close()

        asyncio.run(go())

    def test_route_across_a_partition_fails_typed(self):
        async def go():
            # two line clusters 200 apart: no backbone path between them
            far = np.vstack([_LINE, _LINE + [300.0, 0.0]])
            service = BackboneService(ServiceConfig())
            try:
                await service.add_tenant("net", far)
                with pytest.raises(RoutingError, match="no backbone path"):
                    await service.route("net", 0, 11, deadline_s=5.0)
            finally:
                await service.close()

        asyncio.run(go())

    def test_unknown_tenant_rejected(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                with pytest.raises(ConfigurationError, match="unknown tenant"):
                    await service.get_backbone("ghost")
            finally:
                await service.close()

        asyncio.run(go())


class TestOverloadAndDeadlines:
    def test_nowait_sheds_at_high_water(self):
        async def go():
            service = BackboneService(ServiceConfig(queue_high_water=4))
            try:
                await service.add_tenant("net", _positions())
                # never yield: the maintenance task cannot drain the queue
                stream = _stream()
                for upd in stream.take(4):
                    service.submit_nowait("net", upd)
                with pytest.raises(ServiceOverloaded) as exc:
                    service.submit_nowait("net", stream.take(1)[0])
                assert exc.value.queued == 4
                assert service.stats("net")["shed"] == 1
            finally:
                await service.close()

        asyncio.run(go())

    def test_blocking_submit_applies_backpressure(self):
        async def go():
            # a 2-deep queue forces submit() to wait for drain repeatedly;
            # the drive still lands every update
            service = BackboneService(ServiceConfig(queue_high_water=2))
            try:
                await service.add_tenant("net", _positions())
                await _drive(service, "net", 30)
                assert service.stats("net")["seq"] == 30
                assert service.stats("net")["shed"] == 0
            finally:
                await service.close()

        asyncio.run(go())

    def test_wait_seq_deadline_is_typed(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                await service.add_tenant("net", _positions())
                with pytest.raises(DeadlineExceeded) as exc:
                    await service.wait_seq("net", 1, deadline_s=0.02)
                assert exc.value.tenant == "net"
            finally:
                await service.close()

        asyncio.run(go())


class TestGracefulDegradation:
    def test_rejected_publish_keeps_serving_the_stale_view(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                await service.add_tenant("net", _LINE)
                good = await service.get_backbone("net", deadline_s=5.0)

                class _BrokenPipeline:
                    def compute(self, adj, energy):
                        from types import SimpleNamespace

                        return SimpleNamespace(gateway_mask=0)

                ctx = service._tenants["net"]
                ctx.pipeline = _BrokenPipeline()
                with pytest.raises(InvariantViolation, match="refusing"):
                    await service._recompute_and_publish(ctx)
                view = await service.get_backbone("net")
                assert view.stale  # degraded, but still the verified mask
                assert view.gateway_mask == good.gateway_mask
                assert ctx.counters["rejected_publishes"] == 1
            finally:
                await service.close()

        asyncio.run(go())

    def test_recompute_crash_degrades_without_killing_the_task(self):
        async def go():
            service = BackboneService(ServiceConfig())
            try:
                await service.add_tenant("net", _LINE)
                await service.get_backbone("net", deadline_s=5.0)

                class _ExplodingPipeline:
                    def compute(self, adj, energy):
                        raise RuntimeError("pipeline bug")

                ctx = service._tenants["net"]
                ctx.pipeline = _ExplodingPipeline()
                await service.submit("net", Move(0, 1.0, 50.0))
                await service.wait_seq("net", 1, deadline_s=5.0)
                # the update applied, the publish degraded, a *fresh*
                # pipeline replaced the broken one
                stats = service.stats("net")
                assert stats["seq"] == 1
                assert stats["recompute_failures"] == 1
                assert (await service.get_backbone("net")).stale
                assert not isinstance(ctx.pipeline, _ExplodingPipeline)
            finally:
                await service.close()

        asyncio.run(go())

    def test_recompute_timeouts_degrade_to_stale(self):
        async def go():
            chaos = ChaosSchedule(
                FaultPlan(seed=5, delay=0.99), base_delay_s=0.05
            )
            service = BackboneService(
                ServiceConfig(
                    recompute_timeout_s=0.01, restart=_FAST_RESTART
                ),
                chaos=chaos,
            )
            try:
                await service.add_tenant("net", _LINE)
                await service.submit("net", Move(0, 1.0, 50.0))
                await service.wait_seq("net", 1, deadline_s=10.0)
                stats = service.stats("net")
                # every recompute overran its budget: updates still applied,
                # nothing was ever published
                assert stats["seq"] == 1
                assert stats["recompute_timeouts"] >= 1
                assert stats["published_seq"] is None
                with pytest.raises(DeadlineExceeded):
                    await service.get_backbone("net", deadline_s=0.05)
            finally:
                await service.close()

        asyncio.run(go())


class TestQuarantine:
    def test_escalation_refuses_updates_but_serves_stale(self):
        async def go():
            chaos = ChaosSchedule(pinned={"net": 1})
            service = BackboneService(
                ServiceConfig(
                    restart=RestartPolicy(
                        base_delay_s=0.0, max_delay_s=0.0, jitter=0.0,
                        max_failures=1,
                    )
                ),
                chaos=chaos,
            )
            try:
                await service.add_tenant("net", _LINE)
                await service.get_backbone("net", deadline_s=5.0)
                await service.submit("net", Move(0, 1.0, 50.0))
                with pytest.raises(TenantQuarantinedError):
                    await service.wait_seq("net", 1, deadline_s=5.0)
                assert service.stats("net")["quarantined"]
                # updates refused, queries degrade to the stale baseline
                with pytest.raises(TenantQuarantinedError):
                    service.submit_nowait("net", Move(0, 2.0, 50.0))
                view = await service.get_backbone("net")
                assert view.stale and view.seq == 0
            finally:
                await service.close()

        asyncio.run(go())


class TestCrashRecovery:
    def test_pinned_crash_without_journal_requeues_and_converges(self):
        async def go():
            chaos = ChaosSchedule(pinned={"t": 13})
            service = BackboneService(
                ServiceConfig(restart=_FAST_RESTART), chaos=chaos
            )
            try:
                await service.add_tenant("t", _positions())
                await _drive(service, "t", 30)
                stats = service.stats("t")
                assert stats["seq"] == 30
                assert stats["restarts"] == 1
                return service.state_digest("t")
            finally:
                await service.close()

        digest = asyncio.run(go())
        assert digest == asyncio.run(_clean_digest(30))

    def test_pinned_crash_with_journal_recovers_bit_identical(self, tmp_path):
        async def go():
            chaos = ChaosSchedule(pinned={"t": 13})
            service = BackboneService(
                ServiceConfig(
                    restart=_FAST_RESTART,
                    data_dir=tmp_path,
                    snapshot_every=5,
                ),
                chaos=chaos,
            )
            try:
                await service.add_tenant("t", _positions())
                await _drive(service, "t", 30)
                assert service.stats("t")["restarts"] == 1
                return service.state_digest("t")
            finally:
                await service.close()

        digest = asyncio.run(go())
        assert digest == asyncio.run(_clean_digest(30))

    def test_service_restart_resumes_from_the_journal(self, tmp_path):
        cfg = ServiceConfig(data_dir=tmp_path, snapshot_every=10)

        async def first() -> str:
            service = BackboneService(cfg)
            try:
                await service.add_tenant("t", _positions())
                await _drive(service, "t", 20)
                return service.state_digest("t")
            finally:
                await service.close()

        async def second() -> str:
            service = BackboneService(cfg)
            try:
                # the journal wins over the seed population
                assert await service.add_tenant("t", _positions()) == 20
                stream = _stream()
                stream.skip(20)
                for upd in stream.take(10):
                    await service.submit("t", upd, deadline_s=60.0)
                await service.wait_seq("t", 30, deadline_s=60.0)
                return service.state_digest("t")
            finally:
                await service.close()

        mid = asyncio.run(first())
        assert mid == asyncio.run(_clean_digest(20))
        assert asyncio.run(second()) == asyncio.run(_clean_digest(30))

    def test_corrupt_newest_snapshot_recovers_from_older_generation(
        self, tmp_path
    ):
        cfg = ServiceConfig(data_dir=tmp_path, snapshot_every=5)

        async def first() -> str:
            service = BackboneService(cfg)
            try:
                await service.add_tenant("t", _positions())
                await _drive(service, "t", 12)
                return service.state_digest("t")
            finally:
                await service.close()

        digest = asyncio.run(first())
        # bit-rot the newest snapshot: the checksum must catch it and
        # recovery must fall back to generation 5 + WAL replay
        from repro.service.chaos import corrupt_snapshot

        corrupt_snapshot(tmp_path / "t" / "snapshot-000000000010.json")

        async def second() -> tuple[int, str]:
            service = BackboneService(cfg)
            try:
                seq = await service.add_tenant("t", _positions())
                return seq, service.state_digest("t")
            finally:
                await service.close()

        seq, recovered = asyncio.run(second())
        assert seq == 12
        assert recovered == digest

    def test_seeded_chaos_storm_still_converges(self, tmp_path):
        # probabilistic crash injection on both sides of the WAL append:
        # supervised restarts + recovery must still land the exact state
        async def go() -> tuple[str, int]:
            chaos = ChaosSchedule(FaultPlan(seed=31, loss=0.12))
            service = BackboneService(
                ServiceConfig(
                    restart=_FAST_RESTART, data_dir=tmp_path, snapshot_every=7
                ),
                chaos=chaos,
            )
            try:
                await service.add_tenant("t", _positions())
                await _drive(service, "t", 40, deadline_s=120.0)
                return service.state_digest("t"), len(chaos.events)
            finally:
                await service.close()

        digest, injected = asyncio.run(go())
        assert injected > 0, "the storm must actually inject crashes"
        assert digest == asyncio.run(_clean_digest(40))
