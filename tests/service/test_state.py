"""TenantState: replay purity, adjacency maintenance, digests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.graphs import bitset
from repro.service.state import TenantState
from repro.service.updates import Drain, Join, Leave, Move, UpdateStream


def _fresh(n: int = 6, *, radius: float = 30.0) -> TenantState:
    st = TenantState(radius=radius, side=100.0)
    rng = np.random.default_rng(5)
    st.seed_population(rng.uniform(0, 100, size=(n, 2)))
    return st


class TestApply:
    def test_join_extends_population(self):
        st = _fresh(4)
        changed = st.apply(Join(4, 10.0, 10.0, energy=55.0))
        assert st.n == 5
        assert st.index_of(4) == 4
        assert st.energy[4] == 55.0
        assert changed == (1 << 5) - 1  # membership change = all rows
        assert st.seq == 1

    def test_join_of_member_raises(self):
        st = _fresh(4)
        with pytest.raises(TopologyError, match="existing node"):
            st.apply(Join(2, 0.0, 0.0))

    def test_leave_renumbers_dense_indices(self):
        st = _fresh(5)
        st.apply(Leave(1))
        assert st.n == 4
        assert st.ids == [0, 2, 3, 4]
        # dense indices shift down; external ids keep resolving
        assert st.index_of(2) == 1
        with pytest.raises(TopologyError, match="not a member"):
            st.index_of(1)

    def test_move_reports_flipped_rows(self):
        st = TenantState(radius=10.0, side=100.0)
        st.seed_population(np.array([[0.0, 0.0], [30.0, 0.0], [50.0, 0.0]]))
        # bring node 2 next to node 0 only: rows 0 and 2 gain an edge,
        # row 1 (30 away from both) is untouched
        changed = st.apply(Move(2, 8.0, 0.0))
        assert bitset.popcount(st.adjacency[2] & (1 << 0)) == 1
        assert changed == (1 << 0) | (1 << 2)

    def test_noop_move_reports_nothing(self):
        st = TenantState(radius=10.0, side=100.0)
        st.seed_population(np.array([[0.0, 0.0], [50.0, 0.0]]))
        assert st.apply(Move(0, 0.5, 0.0)) == 0  # no neighborhood change

    def test_drain_changes_energy_not_structure(self):
        st = _fresh(4)
        before = list(st.adjacency)
        assert st.apply(Drain(0, 2.5)) == 0
        assert st.energy[0] == 97.5
        assert list(st.adjacency) == before

    def test_moving_a_ghost_raises(self):
        st = _fresh(3)
        with pytest.raises(TopologyError, match="not a member"):
            st.apply(Move(99, 1.0, 1.0))


class TestReplayPurity:
    def test_same_prefix_same_digest(self):
        updates = UpdateStream(seed=3, n_initial=8).take(60)
        a, b = _fresh(8), _fresh(8)
        for upd in updates:
            a.apply(upd)
            b.apply(upd)
        assert a.digest() == b.digest()
        assert a.seq == b.seq == 60

    def test_digest_distinguishes_prefixes(self):
        updates = UpdateStream(seed=3, n_initial=8).take(10)
        a, b = _fresh(8), _fresh(8)
        for upd in updates:
            a.apply(upd)
        for upd in updates[:-1]:
            b.apply(upd)
        assert a.digest() != b.digest()

    def test_snapshot_round_trip_is_bit_identical(self):
        st = _fresh(8)
        for upd in UpdateStream(seed=9, n_initial=8).take(30):
            st.apply(upd)
        back = TenantState.from_dict(st.to_dict())
        assert back.digest() == st.digest()
        assert back.adjacency == st.adjacency
        # and the restored state keeps evolving identically
        more = UpdateStream(seed=9, n_initial=8)
        more.skip(30)
        for upd in more.take(10):
            st.apply(upd)
            back.apply(upd)
        assert back.digest() == st.digest()


class TestValidation:
    def test_bad_radius_rejected(self):
        with pytest.raises(ConfigurationError, match="radius"):
            TenantState(radius=0.0)

    def test_double_seed_rejected(self):
        st = _fresh(3)
        with pytest.raises(ConfigurationError, match="already seeded"):
            st.seed_population(np.zeros((2, 2)))
