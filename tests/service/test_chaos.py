"""ChaosSchedule: replayable injections, attempt-awareness, file damage."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.service.chaos import (
    ChaosCrash,
    ChaosSchedule,
    corrupt_snapshot,
    tear_wal_tail,
)


def _collect_events(schedule: ChaosSchedule, seqs: int) -> list[tuple]:
    """Run a fixed call pattern against the hooks, swallowing crashes."""

    async def go():
        for k in range(1, seqs + 1):
            try:
                await schedule.before_apply("t", k)
                await schedule.after_apply("t", k)
            except ChaosCrash:
                continue
            schedule.recompute_delay_s("t", k)

    asyncio.run(go())
    return list(schedule.events)


class TestReplayability:
    def test_same_plan_same_injections(self):
        plan = FaultPlan(seed=77, loss=0.3, delay=0.2)
        a = _collect_events(ChaosSchedule(plan), 60)
        b = _collect_events(ChaosSchedule(plan), 60)
        assert a == b
        assert a, "a 30% loss rate over 60 updates must inject something"

    def test_different_seed_different_injections(self):
        a = _collect_events(ChaosSchedule(FaultPlan(seed=1, loss=0.3)), 60)
        b = _collect_events(ChaosSchedule(FaultPlan(seed=2, loss=0.3)), 60)
        assert a != b

    def test_zero_rates_inject_nothing(self):
        assert _collect_events(ChaosSchedule(FaultPlan(seed=1)), 40) == []


class TestAttemptAwareness:
    def test_pinned_crash_fires_exactly_once(self):
        async def go():
            schedule = ChaosSchedule(pinned={"t": 5})
            with pytest.raises(ChaosCrash, match="pinned"):
                await schedule.before_apply("t", 5)
            # the supervised retry of the same update sails through
            await schedule.before_apply("t", 5)
            assert schedule.counts() == {"pinned_crash": 1}

        asyncio.run(go())

    def test_retries_redraw_instead_of_looping(self):
        # with loss < 1 every (tenant, seq) must eventually pass: each
        # attempt gets a fresh coordinate, so a crash is never permanent
        async def go():
            schedule = ChaosSchedule(FaultPlan(seed=3, loss=0.9))
            for k in range(1, 21):
                for _ in range(200):  # absurdly generous retry budget
                    try:
                        await schedule.before_apply("t", k)
                        await schedule.after_apply("t", k)
                        break
                    except ChaosCrash:
                        continue
                else:
                    pytest.fail(f"update {k} crashed forever")

        asyncio.run(go())

    def test_delay_injection_scales_base_delay(self):
        schedule = ChaosSchedule(
            FaultPlan(seed=4, delay=0.99, delay_factor=8.0), base_delay_s=0.01
        )
        assert schedule.recompute_delay_s("t", 1) == pytest.approx(0.08)
        quiet = ChaosSchedule(FaultPlan(seed=4, delay=0.0), base_delay_s=0.01)
        assert quiet.recompute_delay_s("t", 1) == 0.0


class TestFileDamage:
    def test_corrupt_snapshot_flips_one_byte(self, tmp_path):
        path = tmp_path / "snapshot-000000000001.json"
        original = json.dumps({"checksum": "x", "state": "y"}).encode()
        path.write_bytes(original)
        corrupt_snapshot(path)
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        assert sum(a != b for a, b in zip(damaged, original)) == 1

    def test_tear_wal_tail_truncates(self, tmp_path):
        path = tmp_path / "wal-000000000000.jsonl"
        path.write_bytes(b'{"seq":1}\n{"seq":2}\n')
        tear_wal_tail(path, drop_bytes=5)
        assert path.read_bytes() == b'{"seq":1}\n{"seq'

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="snapshot_corruption"):
            ChaosSchedule(snapshot_corruption=1.5)
        with pytest.raises(ConfigurationError, match="base_delay_s"):
            ChaosSchedule(base_delay_s=-0.1)
