"""Batched sweep execution: ``SweepExecutor.run_batched`` (ISSUE 9).

The batched path runs one stacked :func:`run_lifespan_batch` engine pass
per sweep cell instead of one simulation per trial.  The contract is
strict: bit-identical metrics to the per-trial :meth:`SweepExecutor.run`
path, full checkpoint interoperability in BOTH directions (a per-trial
checkpoint restores into a batched run and vice versa), the same
retry/fault machinery at cell granularity, and no lost observability
(``vectorized.batch_intervals`` counters prove the batched kernels ran).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ConfigurationError, TrialExecutionError
from repro.exec.checkpoint import CheckpointStore
from repro.exec.executor import SweepExecutor
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_trials

VEC = SimulationConfig(
    n_hosts=12, scheme="nd", drain_model="linear", backend="vectorized"
)
SPARSE = SimulationConfig(
    n_hosts=12, scheme="el2", drain_model="linear", backend="sparse"
)
CELLS = [("vec-nd", VEC), ("sparse-el2", SPARSE)]


def _batched(executor: SweepExecutor, trials: int = 3, **kwargs):
    return executor.run_batched(CELLS, trials, root_seed=23, **kwargs)


def _per_trial(executor: SweepExecutor, trials: int = 3, **kwargs):
    return executor.run(CELLS, trials, root_seed=23, **kwargs)


class TestBitIdentity:
    def test_batched_equals_per_trial(self):
        assert (
            _batched(SweepExecutor(processes=1)).cells
            == _per_trial(SweepExecutor(processes=1)).cells
        )

    def test_pooled_equals_serial(self):
        assert (
            _batched(SweepExecutor(processes=2)).cells
            == _batched(SweepExecutor(processes=1)).cells
        )

    def test_cells_are_trial_ordered(self):
        out = _batched(SweepExecutor(processes=2), trials=4)
        assert out.cell("vec-nd") == run_trials(
            VEC, 4, root_seed=23, parallel=False
        )

    def test_scalar_algorithm_falls_back_inside_batch(self):
        # non-wu_li algorithms have no batched kernels;
        # run_lifespan_batch falls back to per-trial sims internally and
        # the executor contract must hold regardless
        cells = [
            (
                "greedy",
                SimulationConfig(
                    n_hosts=10, scheme="nd", algorithm="greedy_mcds"
                ),
            )
        ]
        a = SweepExecutor(processes=1).run_batched(cells, 2, root_seed=9)
        b = SweepExecutor(processes=1).run(cells, 2, root_seed=9)
        assert a.cells == b.cells


class TestCheckpointInterop:
    def test_batched_resumes_per_trial_checkpoint(self, tmp_path):
        ck = tmp_path / "ck"
        _per_trial(SweepExecutor(processes=1, checkpoint=ck), trials=2)
        resumed = _batched(
            SweepExecutor(processes=1, checkpoint=ck), trials=4
        )
        assert resumed.restored == 2 * len(CELLS)
        assert resumed.cells == _batched(SweepExecutor(processes=1), trials=4).cells

    def test_per_trial_resumes_batched_checkpoint(self, tmp_path):
        ck = tmp_path / "ck"
        _batched(SweepExecutor(processes=1, checkpoint=ck))
        resumed = _per_trial(SweepExecutor(processes=1, checkpoint=ck))
        assert resumed.executed == 0
        assert resumed.restored == 3 * len(CELLS)
        assert resumed.cells == _per_trial(SweepExecutor(processes=1)).cells

    def test_partial_cell_reexecutes_missing_trials_only(self, tmp_path):
        ck = tmp_path / "ck"
        _batched(SweepExecutor(processes=1, checkpoint=ck))
        shard_file = ck / "shards.jsonl"
        lines = shard_file.read_text().splitlines(keepends=True)
        assert len(lines) == 6
        shard_file.write_text("".join(lines[:2]))
        resumed = _batched(SweepExecutor(processes=1, checkpoint=ck))
        assert resumed.restored == 2
        assert resumed.cells == _batched(SweepExecutor(processes=1)).cells


class TestRetries:
    def test_transient_failure_heals(self, monkeypatch):
        clean = _batched(SweepExecutor(processes=1))
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:0:1")
        healed = _batched(SweepExecutor(processes=1))
        assert healed.cells == clean.cells
        assert healed.retried >= 1

    def test_pooled_transient_failure_heals(self, monkeypatch):
        clean = _batched(SweepExecutor(processes=2))
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:0:1")
        healed = _batched(SweepExecutor(processes=2))
        assert healed.cells == clean.cells

    def test_exhausted_budget_raises_with_attribution(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:0:99")
        with pytest.raises(TrialExecutionError) as err:
            _batched(SweepExecutor(processes=1, max_retries=1))
        assert err.value.attempts == 2
        assert "injected fault" in str(err.value)

    def test_terminal_failure_leaves_resumable_checkpoint(
        self, monkeypatch, tmp_path
    ):
        # batched fault injection keys on each cell's FIRST missing
        # trial id, so trial 0 kills every cell; the invariant is that a
        # terminal failure never corrupts the checkpoint — a clean rerun
        # finishes and stores everything
        ck = tmp_path / "ck"
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:0:99")
        with pytest.raises(TrialExecutionError):
            _batched(
                SweepExecutor(processes=1, max_retries=0, checkpoint=ck)
            )
        monkeypatch.delenv("REPRO_EXEC_FAULT")
        resumed = _batched(SweepExecutor(processes=1, checkpoint=ck))
        saved = CheckpointStore(ck).load()
        assert len(saved) == 6
        assert resumed.cells == _batched(SweepExecutor(processes=1)).cells


class TestObsCapture:
    def test_batched_kernels_show_in_counters(self):
        with obs.capture() as reg:
            _batched(SweepExecutor(processes=1))
        assert reg.counters.get("vectorized.batch_intervals", 0) > 0

    def test_pooled_capture_equals_serial_capture(self):
        with obs.capture() as serial:
            _batched(SweepExecutor(processes=1))
        with obs.capture() as pooled:
            _batched(SweepExecutor(processes=2))
        assert serial.counters != {}
        assert serial.counters == pooled.counters

    def test_resume_does_not_double_count_obs(self, tmp_path):
        with obs.capture() as uninterrupted:
            _batched(SweepExecutor(processes=1))
        ck = tmp_path / "ck"
        with obs.capture():
            _batched(SweepExecutor(processes=1, checkpoint=ck))
        with obs.capture() as resumed:
            _batched(SweepExecutor(processes=1, checkpoint=ck))
        assert resumed.counters == uninterrupted.counters


class TestValidation:
    def test_duplicate_cell_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate cell"):
            SweepExecutor(processes=1).run_batched(
                [("a", VEC), ("a", VEC)], 2, root_seed=1
            )

    def test_zero_trials_degenerate(self):
        out = SweepExecutor(processes=1).run_batched(CELLS, 0, root_seed=1)
        assert out.total_shards == 0


class TestProgress:
    def test_heartbeats_cover_all_cells(self):
        ticks = []
        ex = SweepExecutor(processes=1, progress=ticks.append)
        out = ex.run_batched(CELLS, 3, root_seed=23)
        assert out.total_shards == 6
        assert ticks[-1].done == 6
        assert {t.cell for t in ticks} == {"vec-nd", "sparse-el2"}
        assert all(t.source in ("run", "retry", "restored") for t in ticks)

    def test_restore_announces_once(self, tmp_path):
        ck = tmp_path / "ck"
        _batched(SweepExecutor(processes=1, checkpoint=ck))
        ticks = []
        _batched(
            SweepExecutor(processes=1, checkpoint=ck, progress=ticks.append)
        )
        assert [t.source for t in ticks] == ["restored"]
        assert ticks[0].restored == 6
