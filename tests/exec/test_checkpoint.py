"""Unit tests for the checkpoint store and shard identity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.exec.checkpoint import CheckpointStore, sweep_fingerprint
from repro.exec.shards import ShardSpec, config_fingerprint, shard_key
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import IntervalMetrics, TrialMetrics


def _metrics(**overrides) -> TrialMetrics:
    base = dict(
        lifespan=37,
        mean_cds_size=9.123456789012345,
        first_dead_host=np.int64(4),  # numpy scalars must be coerced
        total_gateway_drain=np.float64(123.45600000000013),
        total_non_gateway_drain=456.1,
        frozen_intervals=2,
        energy_std_at_death=0.1 + 0.2,  # classic non-representable sum
        gateway_duty_jain=0.87,
        gateway_duty=(0.25, 0.5, 1 / 3),
        intervals=(
            IntervalMetrics(1, 5, 2.5, 97.5, True, 1, 2),
            IntervalMetrics(2, 6, 2.0, 95.0, False, 0, 1),
        ),
    )
    base.update(overrides)
    return TrialMetrics(**base)


class TestMetricsRoundtrip:
    def test_json_roundtrip_is_exact(self):
        m = _metrics()
        doc = json.dumps(m.to_dict())
        back = TrialMetrics.from_dict(json.loads(doc))
        assert back == m
        # strict types, not just equal values
        assert isinstance(back.first_dead_host, int)
        assert isinstance(back.gateway_duty, tuple)
        assert isinstance(back.intervals[0], IntervalMetrics)

    def test_none_first_dead_host(self):
        m = _metrics(first_dead_host=None)
        back = TrialMetrics.from_dict(json.loads(json.dumps(m.to_dict())))
        assert back.first_dead_host is None

    def test_empty_optionals(self):
        m = _metrics(gateway_duty=(), intervals=())
        back = TrialMetrics.from_dict(json.loads(json.dumps(m.to_dict())))
        assert back == m


class TestShardIdentity:
    def test_fingerprint_stable_and_value_sensitive(self):
        a = SimulationConfig(n_hosts=20, scheme="id")
        b = SimulationConfig(n_hosts=20, scheme="id")
        c = SimulationConfig(n_hosts=21, scheme="id")
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(c)

    def test_shard_key_includes_seed_and_trial(self):
        fp = config_fingerprint(SimulationConfig(n_hosts=10))
        assert shard_key(fp, 7, 3) != shard_key(fp, 7, 4)
        assert shard_key(fp, 7, 3) != shard_key(fp, 8, 3)
        assert shard_key(fp, None, 3).split(":")[1] == "none"

    def test_spec_key_matches_helper(self):
        cfg = SimulationConfig(n_hosts=10)
        fp = config_fingerprint(cfg)
        spec = ShardSpec("cell", cfg, 5, 2, fp)
        assert spec.key == shard_key(fp, 5, 2)

    def test_sweep_fingerprint_order_invariant(self):
        assert sweep_fingerprint(["a", "b"], 1) == sweep_fingerprint(
            ["b", "a"], 1
        )
        assert sweep_fingerprint(["a", "b"], 1) != sweep_fingerprint(
            ["a", "b"], 2
        )


def _record(key: str, trial: int = 0) -> dict:
    return {
        "k": key,
        "cell": "c",
        "trial": trial,
        "attempts": 1,
        "dur_s": 0.1,
        "metrics": _metrics().to_dict(),
        "obs": None,
    }


class TestCheckpointStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.append(_record("k1"))
        store.append(_record("k2", trial=1))
        store.close()
        loaded = CheckpointStore(tmp_path / "ck").load()
        assert set(loaded) == {"k1", "k2"}
        assert TrialMetrics.from_dict(loaded["k1"]["metrics"]) == _metrics()

    def test_duplicate_keys_later_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append(_record("k1"))
        newer = _record("k1")
        newer["attempts"] = 2
        store.append(newer)
        store.close()
        assert CheckpointStore(tmp_path).load()["k1"]["attempts"] == 2

    def test_torn_trailing_line_tolerated(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append(_record("k1"))
        store.close()
        with (tmp_path / "shards.jsonl").open("a") as fh:
            fh.write('{"k": "k2", "metrics": {"trunc')  # SIGKILL mid-write
        loaded = CheckpointStore(tmp_path).load()
        assert set(loaded) == {"k1"}

    def test_corrupt_interior_line_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append(_record("k1"))
        store.close()
        path = tmp_path / "shards.jsonl"
        good = path.read_text()
        path.write_text("not json at all\n" + good)
        with pytest.raises(CheckpointError, match="edited, not torn"):
            CheckpointStore(tmp_path).load()

    def test_bind_fresh_then_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        resumed = store.bind(
            sweep_fp="abc", root_seed=1, trials=4, cells={"c": "fp"}
        )
        assert resumed is False
        again = CheckpointStore(tmp_path).bind(
            sweep_fp="abc", root_seed=1, trials=4, cells={"c": "fp"}
        )
        assert again is True

    def test_bind_rejects_foreign_sweep(self, tmp_path):
        CheckpointStore(tmp_path).bind(
            sweep_fp="abc", root_seed=1, trials=4, cells={"c": "fp"}
        )
        with pytest.raises(CheckpointError, match="different sweep"):
            CheckpointStore(tmp_path).bind(
                sweep_fp="zzz", root_seed=1, trials=4, cells={"c": "fp"}
            )

    def test_load_of_missing_store_is_empty(self, tmp_path):
        assert CheckpointStore(tmp_path / "nope").load() == {}


class TestManifestDurability:
    """The manifest write must be atomic and corruption must be loud."""

    _BIND = dict(sweep_fp="abc", root_seed=1, trials=4, cells={"c": "fp"})

    def test_bind_leaves_no_temp_file(self, tmp_path):
        CheckpointStore(tmp_path).bind(**self._BIND)
        assert (tmp_path / "manifest.json").exists()
        assert not list(tmp_path.glob("*.tmp"))
        # and the final file is complete, parseable JSON
        doc = json.loads((tmp_path / "manifest.json").read_text())
        assert doc["sweep_fp"] == "abc"

    def test_truncated_manifest_refuses_resume(self, tmp_path):
        """A torn manifest (the pre-hardening crash signature) must raise,
        never silently rebind the directory to a new sweep."""
        CheckpointStore(tmp_path).bind(**self._BIND)
        path = tmp_path / "manifest.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointStore(tmp_path).bind(**self._BIND)

    def test_garbage_manifest_refuses_resume(self, tmp_path):
        CheckpointStore(tmp_path).bind(**self._BIND)
        (tmp_path / "manifest.json").write_bytes(b"\x00\xff garbage \x00")
        with pytest.raises(CheckpointError, match="unreadable"):
            CheckpointStore(tmp_path).bind(**self._BIND)

    def test_byte_flipped_fingerprint_refuses_resume(self, tmp_path):
        """Valid JSON with a damaged fingerprint is a *foreign* sweep."""
        CheckpointStore(tmp_path).bind(**self._BIND)
        path = tmp_path / "manifest.json"
        doc = json.loads(path.read_text())
        doc["sweep_fp"] = "abd"
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="different sweep"):
            CheckpointStore(tmp_path).bind(**self._BIND)
