"""Sweep-executor tests: determinism, resume, retries, obs capture.

The acceptance bar from the executor's design: results are bit-identical
across process counts, shard submission order, and kill/resume — and
parallel runs lose no observability relative to serial ones.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ConfigurationError, TrialExecutionError
from repro.exec.checkpoint import CheckpointStore
from repro.exec.executor import SweepExecutor, SweepProgress
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_trials

CFG = SimulationConfig(n_hosts=8, scheme="id", drain_model="linear")
CELLS = [
    ("id", CFG),
    ("nd", SimulationConfig(n_hosts=8, scheme="nd", drain_model="linear")),
]


def _run(executor: SweepExecutor, trials: int = 3, **kwargs):
    return executor.run(CELLS, trials, root_seed=11, **kwargs)


class TestDeterminism:
    def test_parallel_equals_serial_bitwise(self):
        serial = _run(SweepExecutor(processes=1))
        parallel = _run(SweepExecutor(processes=4))
        assert serial.cells == parallel.cells

    def test_shuffle_order_is_irrelevant(self):
        a = _run(SweepExecutor(processes=2), shuffle_seed=1)
        b = _run(SweepExecutor(processes=2), shuffle_seed=99)
        c = _run(SweepExecutor(processes=2))
        assert a.cells == b.cells == c.cells

    def test_cells_are_trial_ordered(self):
        out = _run(SweepExecutor(processes=2), trials=4)
        assert len(out.cell("id")) == 4
        assert out.cell("id") == run_trials(
            CFG, 4, root_seed=11, parallel=False
        )


class TestValidation:
    def test_duplicate_cell_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate cell"):
            SweepExecutor(processes=1).run(
                [("a", CFG), ("a", CFG)], 2, root_seed=1
            )

    def test_bad_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="start method"):
            SweepExecutor(start_method="teleport")

    def test_negative_trials_rejected(self):
        # zero trials is a valid degenerate sweep (empty outcome, see
        # tests/exec/test_degenerate_sweep.py); only negatives are errors
        with pytest.raises(ConfigurationError, match="trials"):
            SweepExecutor(processes=1).run(CELLS, -1, root_seed=1)


class TestCheckpointResume:
    def test_resume_after_partial_checkpoint_is_bit_identical(self, tmp_path):
        full = _run(SweepExecutor(processes=2))
        ck = tmp_path / "ck"
        _run(SweepExecutor(processes=2, checkpoint=ck))
        # simulate a kill after 2 completed shards
        shard_file = ck / "shards.jsonl"
        lines = shard_file.read_text().splitlines(keepends=True)
        assert len(lines) == 6
        shard_file.write_text("".join(lines[:2]))
        resumed = _run(SweepExecutor(processes=2, checkpoint=ck))
        assert resumed.cells == full.cells
        assert resumed.restored == 2
        assert resumed.executed == 4

    def test_resume_tolerates_torn_final_line(self, tmp_path):
        full = _run(SweepExecutor(processes=1))
        ck = tmp_path / "ck"
        _run(SweepExecutor(processes=1, checkpoint=ck))
        shard_file = ck / "shards.jsonl"
        lines = shard_file.read_text().splitlines(keepends=True)
        shard_file.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])
        resumed = _run(SweepExecutor(processes=1, checkpoint=ck))
        assert resumed.cells == full.cells
        assert resumed.restored == 3

    def test_growing_trial_count_reuses_shards(self, tmp_path):
        ck = tmp_path / "ck"
        _run(SweepExecutor(processes=1, checkpoint=ck), trials=2)
        bigger = _run(SweepExecutor(processes=1, checkpoint=ck), trials=5)
        assert bigger.restored == 2 * len(CELLS)
        assert bigger.cells == _run(SweepExecutor(processes=1), trials=5).cells

    def test_completed_run_restores_everything(self, tmp_path):
        ck = tmp_path / "ck"
        first = _run(SweepExecutor(processes=2, checkpoint=ck))
        again = _run(SweepExecutor(processes=2, checkpoint=ck))
        assert again.cells == first.cells
        assert again.executed == 0
        assert again.restored == 6


class TestRetries:
    def test_transient_failure_heals_on_same_seed(self, monkeypatch):
        clean = _run(SweepExecutor(processes=2))
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:1:1")
        healed = _run(SweepExecutor(processes=2))
        assert healed.cells == clean.cells
        assert healed.retried >= 1

    def test_serial_path_retries_too(self, monkeypatch):
        clean = _run(SweepExecutor(processes=1))
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:0:2")
        healed = _run(SweepExecutor(processes=1, max_retries=2))
        assert healed.cells == clean.cells

    def test_exhausted_budget_carries_attribution(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:1:99")
        with pytest.raises(TrialExecutionError) as err:
            _run(SweepExecutor(processes=2, max_retries=1))
        assert err.value.trial == 1
        assert err.value.root_seed == 11
        assert err.value.attempts == 2
        assert "injected fault" in str(err.value)

    def test_completed_shards_survive_a_terminal_failure(
        self, monkeypatch, tmp_path
    ):
        ck = tmp_path / "ck"
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:2:99")
        with pytest.raises(TrialExecutionError):
            _run(SweepExecutor(processes=2, max_retries=0, checkpoint=ck))
        # every trial != 2 of both cells completed and was checkpointed
        saved = CheckpointStore(ck).load()
        assert len(saved) == 4
        monkeypatch.delenv("REPRO_EXEC_FAULT")
        resumed = _run(SweepExecutor(processes=2, checkpoint=ck))
        assert resumed.restored == 4
        assert resumed.cells == _run(SweepExecutor(processes=2)).cells

    def test_hard_worker_crash_recovers_via_timeout(self, monkeypatch):
        clean = _run(SweepExecutor(processes=2))
        monkeypatch.setenv("REPRO_EXEC_FAULT", "exit:2:1")
        healed = _run(SweepExecutor(processes=2, timeout_s=3.0))
        assert healed.cells == clean.cells


class TestObsCapture:
    def test_parallel_capture_equals_serial_capture(self):
        """Regression: worker-side obs used to be silently dropped."""
        with obs.capture() as serial_reg:
            _run(SweepExecutor(processes=1))
        with obs.capture() as parallel_reg:
            _run(SweepExecutor(processes=3))
        assert serial_reg.counters != {}
        assert serial_reg.counters == parallel_reg.counters
        assert set(serial_reg.spans) == set(parallel_reg.spans)
        for path, stats in serial_reg.spans.items():
            other = parallel_reg.spans[path]
            assert stats.count == other.count
            assert stats.counters == other.counters

    def test_resume_restores_checkpointed_obs(self, tmp_path):
        with obs.capture() as uninterrupted:
            _run(SweepExecutor(processes=2))
        ck = tmp_path / "ck"
        with obs.capture():
            _run(SweepExecutor(processes=2, checkpoint=ck))
        shard_file = ck / "shards.jsonl"
        lines = shard_file.read_text().splitlines(keepends=True)
        shard_file.write_text("".join(lines[:3]))
        with obs.capture() as resumed:
            _run(SweepExecutor(processes=2, checkpoint=ck))
        assert resumed.counters == uninterrupted.counters

    def test_capture_off_ships_no_snapshots(self):
        out = _run(SweepExecutor(processes=1, capture_obs=False))
        assert out.total_shards == 6
        assert obs.get_registry().counters == {}


class TestStartMethods:
    def test_spawn_smoke(self):
        """spawn workers build their own state instead of inheriting it."""
        spawn = SweepExecutor(processes=2, start_method="spawn").run(
            [("id", CFG)], 2, root_seed=11
        )
        serial = SweepExecutor(processes=1).run([("id", CFG)], 2, root_seed=11)
        assert spawn.cells == serial.cells


class TestProgress:
    def test_progress_ticks_cover_all_shards(self):
        events: list[SweepProgress] = []
        _run(SweepExecutor(processes=2, progress=events.append))
        assert events[-1].done == events[-1].total == 6
        assert {e.source for e in events} == {"run"}

    def test_progress_reports_restores(self, tmp_path):
        ck = tmp_path / "ck"
        _run(SweepExecutor(processes=1, checkpoint=ck))
        events: list[SweepProgress] = []
        _run(SweepExecutor(processes=1, checkpoint=ck, progress=events.append))
        assert events[0].source == "restored"
        assert events[0].restored == 6


class TestRetryBackoff:
    """Same-seed retries back off exponentially with deterministic jitter."""

    def test_delay_is_deterministic_bounded_and_growing(self):
        from repro.exec.shards import ShardSpec

        ex = SweepExecutor(retry_backoff_s=0.1, retry_backoff_max_s=1.0)
        spec = ShardSpec("cell", CFG, 11, 0, "fp")
        d1 = ex._retry_delay_s(spec, 1)
        d2 = ex._retry_delay_s(spec, 2)
        d5 = ex._retry_delay_s(spec, 5)
        # replayable: pure function of (shard, attempt)
        assert d1 == ex._retry_delay_s(spec, 1)
        # jitter keeps each delay inside [raw/2, raw)
        assert 0.05 <= d1 < 0.1
        assert 0.1 <= d2 < 0.2
        # capped by retry_backoff_max_s (raw would be 1.6)
        assert d5 < 1.0

    def test_different_shards_get_different_jitter(self):
        from repro.exec.shards import ShardSpec

        ex = SweepExecutor(retry_backoff_s=0.1)
        a = ex._retry_delay_s(ShardSpec("cell", CFG, 11, 0, "fp"), 1)
        b = ex._retry_delay_s(ShardSpec("cell", CFG, 11, 1, "fp"), 1)
        assert a != b

    def test_zero_disables_backoff(self):
        from repro.exec.shards import ShardSpec

        ex = SweepExecutor(retry_backoff_s=0.0)
        assert ex._retry_delay_s(ShardSpec("cell", CFG, 11, 0, "fp"), 3) == 0.0

    def test_negative_backoff_rejected(self):
        with pytest.raises(ConfigurationError, match="backoff"):
            SweepExecutor(retry_backoff_s=-0.1)

    def test_retries_are_counted_in_obs(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:1:2")
        with obs.capture() as reg:
            out = _run(
                SweepExecutor(
                    processes=1, max_retries=3, retry_backoff_s=0.001
                )
            )
        # trial 1 of BOTH cells hits the injected fault twice each
        assert out.retried == 4
        assert reg.counters["exec.retries"] == 4

    def test_backoff_does_not_change_results(self, monkeypatch):
        baseline = _run(SweepExecutor(processes=1))
        monkeypatch.setenv("REPRO_EXEC_FAULT", "raise:1:2")
        healed = _run(
            SweepExecutor(processes=1, max_retries=3, retry_backoff_s=0.001)
        )
        monkeypatch.delenv("REPRO_EXEC_FAULT")
        assert healed.cells == baseline.cells
