"""Regression: degenerate sweeps (zero trials / empty cell grid) return
an empty outcome cleanly instead of raising (ISSUE 7 bugfix)."""

from __future__ import annotations

import io

import pytest

from repro.errors import ConfigurationError
from repro.exec.executor import SweepExecutor, progress_printer
from repro.simulation.config import SimulationConfig


def _cfg() -> SimulationConfig:
    return SimulationConfig(n_hosts=5, scheme="id")


class TestDegenerateSweeps:
    def test_zero_trials_returns_empty_cells(self):
        out = SweepExecutor(processes=1).run(
            [("a", _cfg()), ("b", _cfg())], 0, root_seed=1
        )
        assert out.cells == {"a": [], "b": []}
        assert out.trials == 0
        assert out.executed == 0
        assert out.restored == 0
        assert out.retried == 0

    def test_empty_cell_grid_returns_empty_outcome(self):
        out = SweepExecutor(processes=1).run([], 5, root_seed=1)
        assert out.cells == {}
        assert out.executed == 0
        assert out.total_shards == 0

    def test_both_degenerate(self):
        out = SweepExecutor(processes=1).run([], 0)
        assert out.cells == {}

    def test_negative_trials_still_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(processes=1).run([("a", _cfg())], -1)

    def test_progress_printer_never_ticks_on_degenerate(self):
        # the degenerate path returns before any shard exists, so the
        # printer (which divides by total) must simply never be called
        stream = io.StringIO()
        ticks = []
        printer = progress_printer(stream)

        def spy(ev):
            ticks.append(ev)
            printer(ev)

        SweepExecutor(processes=1, progress=spy).run([("a", _cfg())], 0)
        SweepExecutor(processes=1, progress=spy).run([], 3)
        assert ticks == []
        assert stream.getvalue() == ""

    def test_zero_trials_skips_checkpoint_binding(self, tmp_path):
        # no shards -> nothing to checkpoint, and no store files created
        out = SweepExecutor(processes=1, checkpoint=tmp_path / "ckpt").run(
            [("a", _cfg())], 0
        )
        assert out.cells == {"a": []}
        assert not (tmp_path / "ckpt").exists()
