"""Displacement kernel tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.points import (
    COMPASS_NAMES,
    compass_unit_vectors,
    displace,
    random_points,
)
from repro.geometry.space import Region2D


class TestCompass:
    def test_eight_unit_vectors(self):
        vecs = compass_unit_vectors()
        assert vecs.shape == (8, 2)
        np.testing.assert_allclose(np.linalg.norm(vecs, axis=1), 1.0)

    def test_names_align_with_vectors(self):
        vecs = compass_unit_vectors()
        byname = dict(zip(COMPASS_NAMES, vecs))
        np.testing.assert_allclose(byname["E"], [1.0, 0.0])
        np.testing.assert_allclose(byname["N"], [0.0, 1.0])
        s = 1 / np.sqrt(2)
        np.testing.assert_allclose(byname["SW"], [-s, -s])

    def test_read_only(self):
        with pytest.raises(ValueError):
            compass_unit_vectors()[0, 0] = 9.0


class TestDisplace:
    def test_moves_by_length_along_direction(self):
        region = Region2D(side=100.0)
        pos = np.array([[50.0, 50.0]])
        displace(pos, np.array([0]), np.array([5.0]), region)  # E
        np.testing.assert_allclose(pos, [[55.0, 50.0]])

    def test_diagonal_step_has_euclidean_length(self):
        region = Region2D(side=100.0)
        pos = np.array([[50.0, 50.0]])
        displace(pos, np.array([5]), np.array([6.0]), region)  # NE
        assert np.hypot(pos[0, 0] - 50, pos[0, 1] - 50) == pytest.approx(6.0)

    def test_moving_mask_freezes_hosts(self):
        region = Region2D(side=100.0)
        pos = np.array([[10.0, 10.0], [20.0, 20.0]])
        displace(
            pos,
            np.array([0, 0]),
            np.array([5.0, 5.0]),
            region,
            moving=np.array([True, False]),
        )
        np.testing.assert_allclose(pos, [[15.0, 10.0], [20.0, 20.0]])

    def test_boundary_applied_after_move(self):
        region = Region2D(side=100.0)
        pos = np.array([[98.0, 50.0]])
        displace(pos, np.array([0]), np.array([6.0]), region)
        np.testing.assert_allclose(pos, [[100.0, 50.0]])  # clamped

    def test_invalid_direction_rejected(self):
        region = Region2D()
        pos = np.zeros((1, 2))
        with pytest.raises(ConfigurationError):
            displace(pos, np.array([8]), np.array([1.0]), region)


class TestRandomPoints:
    def test_shape_and_range(self, rng):
        region = Region2D(side=30.0)
        pts = random_points(50, region, rng)
        assert pts.shape == (50, 2)
        assert np.all((pts >= 0) & (pts <= 30.0))

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            random_points(-1, Region2D(), rng)
