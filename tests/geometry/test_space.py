"""Region and boundary-policy tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.space import BoundaryPolicy, Region2D


class TestConstruction:
    def test_defaults_match_paper(self):
        r = Region2D()
        assert r.side == 100.0
        assert r.policy is BoundaryPolicy.CLAMP

    @pytest.mark.parametrize("side", [0.0, -5.0, float("inf"), float("nan")])
    def test_bad_side_rejected(self, side):
        with pytest.raises(ConfigurationError):
            Region2D(side=side)


class TestContains:
    def test_inclusive_boundaries(self):
        r = Region2D(side=10.0)
        pts = np.array([[0.0, 0.0], [10.0, 10.0], [5.0, 5.0], [10.1, 5.0]])
        assert r.contains(pts).tolist() == [True, True, True, False]


class TestClamp:
    def test_overshoot_stops_at_wall(self):
        r = Region2D(side=10.0)
        pos = np.array([[-3.0, 4.0], [12.0, 15.0]])
        r.apply_boundary(pos)
        assert pos.tolist() == [[0.0, 4.0], [10.0, 10.0]]

    def test_in_place(self):
        r = Region2D(side=10.0)
        pos = np.array([[11.0, 5.0]])
        out = r.apply_boundary(pos)
        assert out is pos


class TestReflect:
    def test_single_bounce(self):
        r = Region2D(side=10.0, policy=BoundaryPolicy.REFLECT)
        pos = np.array([[12.0, -2.0]])
        r.apply_boundary(pos)
        assert pos.tolist() == [[8.0, 2.0]]

    def test_multiple_bounces(self):
        r = Region2D(side=10.0, policy=BoundaryPolicy.REFLECT)
        pos = np.array([[27.0, 0.0]])  # 27 -> fold by 20 -> 7
        r.apply_boundary(pos)
        assert pos.tolist() == [[7.0, 0.0]]

    def test_interior_untouched(self):
        r = Region2D(side=10.0, policy=BoundaryPolicy.REFLECT)
        pos = np.array([[3.0, 9.0]])
        r.apply_boundary(pos)
        assert pos.tolist() == [[3.0, 9.0]]


class TestTorus:
    def test_wraps_around(self):
        r = Region2D(side=10.0, policy=BoundaryPolicy.TORUS)
        pos = np.array([[12.0, -2.0]])
        r.apply_boundary(pos)
        assert pos.tolist() == [[2.0, 8.0]]

    def test_torus_distance_takes_short_way(self):
        r = Region2D(side=10.0, policy=BoundaryPolicy.TORUS)
        d = r.distances(np.array([1.0, 0.0]), np.array([9.0, 0.0]))
        assert d == pytest.approx(2.0)

    def test_euclidean_distance_otherwise(self):
        r = Region2D(side=10.0)
        d = r.distances(np.array([1.0, 0.0]), np.array([9.0, 0.0]))
        assert d == pytest.approx(8.0)


class TestSample:
    def test_sample_inside_region(self, rng):
        r = Region2D(side=42.0)
        pts = r.sample(200, rng)
        assert pts.shape == (200, 2)
        assert np.all(r.contains(pts))
