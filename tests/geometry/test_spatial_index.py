"""Uniform-grid spatial index tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.spatial_index import UniformGridIndex


class TestConstruction:
    def test_len(self, rng):
        idx = UniformGridIndex(rng.random((17, 2)), 1.0)
        assert len(idx) == 17

    @pytest.mark.parametrize("r", [0.0, -1.0, float("nan")])
    def test_bad_radius_rejected(self, r, rng):
        with pytest.raises(ConfigurationError):
            UniformGridIndex(rng.random((3, 2)), r)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformGridIndex(np.zeros((3, 3)), 1.0)


class TestQuery:
    def test_matches_brute_force(self, rng):
        pts = rng.random((80, 2)) * 50
        idx = UniformGridIndex(pts, 7.0)
        for q in pts[:10]:
            got = idx.query(q)
            want = [
                i for i in range(80) if np.hypot(*(pts[i] - q)) <= 7.0
            ]
            assert got == want

    def test_query_includes_self_point(self, rng):
        pts = rng.random((10, 2)) * 10
        idx = UniformGridIndex(pts, 3.0)
        assert 0 in idx.query(pts[0])

    def test_smaller_radius_allowed(self, rng):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [4.5, 0.0]])
        idx = UniformGridIndex(pts, 5.0)
        assert idx.query(np.array([0.0, 0.0]), radius=2.5) == [0, 1]

    def test_larger_radius_rejected(self, rng):
        idx = UniformGridIndex(rng.random((5, 2)), 1.0)
        with pytest.raises(ConfigurationError, match="exceeds"):
            idx.query(np.zeros(2), radius=2.0)

    def test_empty_region_query(self):
        pts = np.array([[0.0, 0.0]])
        idx = UniformGridIndex(pts, 1.0)
        assert idx.query(np.array([50.0, 50.0])) == []


class TestPairs:
    def test_pairs_match_brute_force(self, rng):
        pts = rng.random((40, 2)) * 30
        idx = UniformGridIndex(pts, 6.0)
        want = sorted(
            (i, j)
            for i in range(40)
            for j in range(i + 1, 40)
            if np.hypot(*(pts[i] - pts[j])) <= 6.0
        )
        assert idx.pairs_within() == want
