"""Directed backbone routing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.unidirectional import compute_directed_cds
from repro.errors import RoutingError
from repro.graphs import bitset
from repro.graphs.digraph import (
    from_arcs,
    random_strongly_connected_digraph,
)
from repro.routing.directed_routing import DirectedBackboneRouter


def ring_with_hub():
    """Directed 5-ring 0->1->2->3->4->0 with mutual arcs to hub 5."""
    ring = [(i, (i + 1) % 5) for i in range(5)]
    hub = [(i, 5) for i in range(5)] + [(5, i) for i in range(5)]
    return from_arcs(6, ring + hub)


class TestBasics:
    def test_direct_arc_bypasses_backbone(self):
        v = ring_with_hub()
        router = DirectedBackboneRouter(v, bitset.mask_from_ids({5}))
        r = router.route(0, 1)
        assert r.nodes == (0, 1)

    def test_one_way_pair_routes_differently_each_direction(self):
        v = ring_with_hub()
        router = DirectedBackboneRouter(v, bitset.mask_from_ids({5}))
        fwd = router.route(0, 1)      # direct ring arc
        back = router.route(1, 0)     # must detour via the hub
        assert fwd.length == 1
        assert back.length == 2
        assert back.nodes == (1, 5, 0)

    def test_self_route(self):
        v = ring_with_hub()
        router = DirectedBackboneRouter(v, bitset.mask_from_ids({5}))
        assert router.route(3, 3).length == 0

    def test_gateway_endpoints_skip_steps(self):
        v = ring_with_hub()
        router = DirectedBackboneRouter(v, bitset.mask_from_ids({5}))
        # hub is adjacent to everything: routes from it are direct
        assert router.route(5, 2).nodes == (5, 2)
        # non-adjacent ring pair goes up through the hub and down
        r = router.route(0, 3)
        assert r.nodes == (0, 5, 3)
        assert r.source_gateway == r.destination_gateway == 5

    def test_missing_egress_gateway_raises(self):
        # 0 -> 1 -> 2 -> 0 plus pendant 3 with only an incoming arc
        v = from_arcs(4, [(0, 1), (1, 2), (2, 0), (0, 3)])
        router = DirectedBackboneRouter(v, bitset.mask_from_ids({0, 1, 2}))
        with pytest.raises(RoutingError, match="absorbing"):
            router.route(3, 1)

    def test_missing_ingress_gateway_raises(self):
        # pendant 3 with only an outgoing arc: nobody can deliver to it
        v = from_arcs(4, [(0, 1), (1, 2), (2, 0), (3, 0)])
        router = DirectedBackboneRouter(v, bitset.mask_from_ids({0, 1, 2}))
        with pytest.raises(RoutingError, match="dominating"):
            router.route(1, 3)

    def test_out_of_range_endpoint(self):
        v = ring_with_hub()
        router = DirectedBackboneRouter(v, 0b100000)
        with pytest.raises(RoutingError):
            router.route(0, 9)


class TestOverComputedBackbones:
    def test_all_pairs_routable_on_random_digraphs(self):
        rng = np.random.default_rng(42)
        for _ in range(8):
            n = int(rng.integers(10, 25))
            view, _, _ = random_strongly_connected_digraph(n, rng=rng)
            gws = compute_directed_cds(view, "nd", use_rule_k=True)
            if not gws:
                continue
            router = DirectedBackboneRouter(
                view, bitset.mask_from_ids(gws)
            )
            for _ in range(20):
                s, t = rng.choice(n, size=2, replace=False)
                route = router.route(int(s), int(t))
                # every hop follows an arc
                for a, b in zip(route.nodes, route.nodes[1:]):
                    assert view.has_arc(a, b)
                # intermediates stay on the backbone
                assert all(router.is_gateway(v) for v in route.intermediates)

    def test_routes_near_shortest(self):
        rng = np.random.default_rng(7)
        view, _, _ = random_strongly_connected_digraph(20, rng=rng)
        gws = compute_directed_cds(view, "id")
        router = DirectedBackboneRouter(view, bitset.mask_from_ids(gws))
        from repro.routing.directed_routing import _directed_bfs

        full = (1 << 20) - 1
        for s in range(0, 20, 4):
            dist = _directed_bfs(view.out_adj, s, full, 20)
            for t in range(20):
                if t == s:
                    continue
                got = router.route(s, t).length
                assert dist[t] <= got <= dist[t] + 2


class TestGatewayAccessors:
    def test_egress_and_ingress_differ_on_one_way_links(self):
        # 0 -> 5 only; 5 -> 1 only; mutual 0 <-> 1
        v = from_arcs(6, [(0, 5), (5, 1), (0, 1), (1, 0), (5, 0), (2, 5),
                          (5, 2), (3, 5), (5, 3), (4, 5), (5, 4)])
        router = DirectedBackboneRouter(v, bitset.mask_from_ids({5}))
        assert router.egress_gateways(0) == [5]
        assert router.ingress_gateways(0) == [5]
        # host 1 can hear 5 but cannot transmit to it
        assert router.ingress_gateways(1) == [5]
        assert router.egress_gateways(1) == []
