"""Flooding / backbone-flooding tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.errors import RoutingError
from repro.graphs import bitset
from repro.graphs.generators import (
    clique,
    cycle_graph,
    from_edges,
    path_graph,
    random_connected_network,
)
from repro.routing.broadcast import backbone_flood, compare_flooding, flood


class TestBlindFlood:
    def test_reaches_everyone_on_connected_graph(self):
        g = cycle_graph(7)
        result = flood(g.adjacency, 0)
        assert result.reached_all(7)
        assert result.transmissions == 7  # everyone relays once

    def test_reaches_only_own_component(self):
        g = from_edges(5, [(0, 1), (2, 3), (3, 4)])
        result = flood(g.adjacency, 2)
        assert set(bitset.ids_from_mask(result.reached_mask)) == {2, 3, 4}

    def test_single_host(self):
        result = flood([0], 0)
        assert result.reached_all(1)
        assert result.transmissions == 1
        assert result.receptions == 0

    def test_source_out_of_range(self):
        with pytest.raises(RoutingError):
            flood(path_graph(3).adjacency, 5)

    def test_rounds_equal_eccentricity_plus_one(self):
        g = path_graph(5)
        result = flood(g.adjacency, 0)
        # hosts at distance d transmit in round d+1; last transmitter is
        # the far end
        assert result.rounds == 5


class TestBackboneFlood:
    def test_cds_backbone_reaches_everyone(self, small_network):
        r = compute_cds(small_network, "nd")
        out = backbone_flood(small_network.adjacency, 0, r.gateway_mask)
        assert out.reached_all(small_network.n)

    def test_non_gateway_source_still_transmits(self):
        g = path_graph(4)
        # backbone {1,2}; source 0 is a leaf
        out = backbone_flood(g.adjacency, 0, bitset.mask_from_ids({1, 2}))
        assert out.reached_all(4)
        assert out.transmissions == 3  # 0, 1, 2 transmit; 3 only listens

    def test_broken_backbone_detected(self):
        g = path_graph(5)
        with pytest.raises(RoutingError, match="not a CDS"):
            compare_flooding(g.adjacency, 0, bitset.mask_from_ids({1}))

    def test_fewer_transmissions_than_blind(self, small_network):
        r = compute_cds(small_network, "nd")
        cmp = compare_flooding(small_network.adjacency, 3, r.gateway_mask)
        assert cmp.backbone.transmissions < cmp.blind.transmissions
        assert cmp.transmission_saving > 0.0

    def test_savings_track_backbone_ratio(self, rng):
        for _ in range(5):
            net = random_connected_network(40, rng=rng)
            r = compute_cds(net, "nd")
            cmp = compare_flooding(net.adjacency, 0, r.gateway_mask)
            # backbone txs = gateways (+ source if non-gateway) at most
            assert cmp.backbone.transmissions <= r.size + 1

    def test_latency_cost_is_bounded(self, small_network):
        r = compute_cds(small_network, "id")
        cmp = compare_flooding(small_network.adjacency, 0, r.gateway_mask)
        # backbone detours can add rounds; blind flooding can also *end*
        # later (leaf hosts still retransmit after everyone has heard), so
        # the difference may be slightly negative — just bounded
        assert -small_network.n <= cmp.extra_rounds <= small_network.n

    def test_clique_needs_single_transmission(self):
        g = clique(6)
        out = backbone_flood(g.adjacency, 2, 0)  # empty backbone
        assert out.reached_all(6)
        assert out.transmissions == 1
