"""Dominating-set routing: the 3-step process and the Figure-2 tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.errors import RoutingError
from repro.graphs import bitset
from repro.graphs.generators import from_edges, path_graph
from repro.routing.dsr import DominatingSetRouter
from repro.routing.forwarding import ForwardingEngine
from repro.routing.shortest_path import bfs_distances
from repro.routing.tables import build_routing_tables


@pytest.fixture()
def routed_paper_example(paper_example):
    result = compute_cds(paper_example.graph, "id")
    router = DominatingSetRouter(paper_example.graph.adjacency, result.gateway_mask)
    return paper_example, result, router


class TestThreeStepProcess:
    def test_source_gateway_then_backbone_then_destination(self, routed_paper_example):
        ex, result, router = routed_paper_example
        route = router.route(ex.id_of_label(1), ex.id_of_label(27))
        labels = [v + 1 for v in route.nodes]
        assert labels[0] == 1 and labels[-1] == 27
        # every intermediate node is a gateway (step 2 stays on the backbone)
        assert all(router.is_gateway(v) for v in route.intermediates)
        assert route.source_gateway in result.gateways
        assert route.destination_gateway in result.gateways

    def test_gateway_source_skips_step_one(self, routed_paper_example):
        ex, result, router = routed_paper_example
        src = ex.id_of_label(4)  # a gateway
        route = router.route(src, ex.id_of_label(27))
        assert route.nodes[0] == src
        assert route.source_gateway == src

    def test_adjacent_hosts_bypass_backbone(self, routed_paper_example):
        ex, _, router = routed_paper_example
        route = router.route(ex.id_of_label(5), ex.id_of_label(2))
        assert route.length == 1
        assert route.source_gateway is None

    def test_self_route_is_trivial(self, routed_paper_example):
        ex, _, router = routed_paper_example
        route = router.route(3, 3)
        assert route.nodes == (3,) and route.length == 0

    def test_route_length_close_to_shortest(self, routed_paper_example):
        """Backbone routes of a CDS are near-shortest for all pairs."""
        ex, result, router = routed_paper_example
        adj = ex.graph.adjacency
        n = ex.graph.n
        for src in range(0, n, 3):
            true = bfs_distances(adj, src)
            for dst in range(n):
                if dst == src:
                    continue
                got = router.route(src, dst).length
                assert true[dst] <= got <= true[dst] + 2

    def test_missing_gateway_adjacency_raises(self):
        g = path_graph(4)
        # gateway set {2} does not dominate node 0
        router = DominatingSetRouter(g.adjacency, bitset.mask_from_ids({2}))
        with pytest.raises(RoutingError, match="no adjacent gateway"):
            router.route(0, 3)

    def test_endpoint_out_of_range_raises(self, routed_paper_example):
        _, _, router = routed_paper_example
        with pytest.raises(RoutingError):
            router.route(0, 999)


class TestRoutingTables:
    def test_membership_lists_partition_non_gateways(self, routed_paper_example):
        ex, result, _ = routed_paper_example
        tables = build_routing_tables(ex.graph.adjacency, result.gateways)
        non_gateways = set(range(ex.graph.n)) - set(result.gateways)
        covered = set()
        for t in tables.values():
            assert t.members <= non_gateways
            covered |= t.members
        assert covered == non_gateways  # dominating: everyone has a gateway

    def test_a_host_may_belong_to_several_domains(self, routed_paper_example):
        # the paper's example: host 3 belongs to gateways 4 and 8
        ex, result, _ = routed_paper_example
        tables = build_routing_tables(ex.graph.adjacency, result.gateways)
        counts = {}
        for t in tables.values():
            for m in t.members:
                counts[m] = counts.get(m, 0) + 1
        assert max(counts.values()) >= 2

    def test_every_table_has_entry_per_other_gateway(self, routed_paper_example):
        ex, result, _ = routed_paper_example
        tables = build_routing_tables(ex.graph.adjacency, result.gateways)
        for g, t in tables.items():
            assert set(t.membership_of) == set(result.gateways) - {g}
            assert t.entry_count() == len(result.gateways)

    def test_distances_and_next_hops_consistent(self, routed_paper_example):
        ex, result, _ = routed_paper_example
        tables = build_routing_tables(ex.graph.adjacency, result.gateways)
        for g, t in tables.items():
            for h, d in t.distance_to.items():
                assert d >= 1
                nxt = t.next_hop_to[h]
                assert nxt in result.gateways
                # stepping to the next hop reduces the distance by one
                assert tables[nxt].distance_to.get(h, 0) == d - 1

    def test_empty_gateway_set_rejected(self):
        g = path_graph(3)
        with pytest.raises(RoutingError, match="empty gateway set"):
            build_routing_tables(g.adjacency, set())

    def test_gateway_out_of_range_rejected(self):
        g = path_graph(3)
        with pytest.raises(RoutingError):
            build_routing_tables(g.adjacency, {7})


class TestForwarding:
    def test_counters_add_up(self, routed_paper_example):
        ex, _, router = routed_paper_example
        eng = ForwardingEngine(router)
        eng.send(0, 26)
        eng.send(26, 0)
        assert eng.packets == 2
        assert eng.originated.sum() == 2
        assert eng.delivered.sum() == 2
        assert eng.total_hops == eng.forwarded.sum() + 2  # hops = fwd + last

    def test_gateways_carry_all_bypass_traffic(self, routed_paper_example):
        ex, _, router = routed_paper_example
        eng = ForwardingEngine(router)
        eng.send_random_pairs(150, np.random.default_rng(1))
        assert eng.gateway_share_of_forwarding() == 1.0

    def test_mean_route_length(self, routed_paper_example):
        _, _, router = routed_paper_example
        eng = ForwardingEngine(router)
        assert eng.mean_route_length() == 0.0
        eng.send(0, 26)
        assert eng.mean_route_length() == eng.total_hops

    def test_single_host_network_rejected(self):
        router = DominatingSetRouter([0], 0)
        eng = ForwardingEngine(router)
        with pytest.raises(RoutingError):
            eng.send_random_pairs(1, np.random.default_rng(0))


class TestAccessorAPIs:
    def test_adjacent_gateways(self, routed_paper_example):
        ex, result, router = routed_paper_example
        host5 = ex.id_of_label(5)  # neighbors 2 and 9 (labels)
        gws = {v + 1 for v in router.adjacent_gateways(host5)}
        assert gws == {g for g in (2, 9) if (g - 1) in result.gateways}

    def test_gateways_serving(self, routed_paper_example):
        ex, result, _ = routed_paper_example
        tables = build_routing_tables(ex.graph.adjacency, result.gateways)
        some_gw = sorted(result.gateways)[0]
        t = tables[some_gw]
        for member in t.members:
            assert some_gw in t.gateways_serving(member)

    def test_is_gateway_matches_mask(self, routed_paper_example):
        ex, result, router = routed_paper_example
        for v in range(ex.graph.n):
            assert router.is_gateway(v) == (v in result.gateways)
