"""BFS path machinery tests."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.graphs import bitset
from repro.graphs.generators import cycle_graph, from_edges, path_graph
from repro.routing.shortest_path import (
    bfs_distances,
    bfs_path,
    induced_bfs_distances_nexthop,
    induced_path,
    path_stretch,
)


class TestDistances:
    def test_path_graph_distances(self):
        g = path_graph(5)
        assert bfs_distances(g.adjacency, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert bfs_distances(g.adjacency, 0)[2] == -1

    def test_allowed_mask_restricts_entry(self):
        g = cycle_graph(6)
        allowed = bitset.mask_from_ids({0, 1, 2, 3})
        d = bfs_distances(g.adjacency, 0, allowed)
        assert d[3] == 3  # forced the long way; node 5,4 blocked
        assert d[5] == -1


class TestPaths:
    def test_path_endpoints_inclusive(self):
        g = path_graph(4)
        assert bfs_path(g.adjacency, 0, 3) == [0, 1, 2, 3]

    def test_trivial_path(self):
        g = path_graph(3)
        assert bfs_path(g.adjacency, 1, 1) == [1]

    def test_no_path_raises(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(RoutingError, match="no path"):
            bfs_path(g.adjacency, 0, 3)

    def test_path_is_shortest_and_deterministic(self):
        g = cycle_graph(6)
        p = bfs_path(g.adjacency, 0, 3)
        assert len(p) == 4
        assert p == bfs_path(g.adjacency, 0, 3)

    def test_induced_path_respects_gateway_mask(self):
        g = cycle_graph(6)
        gw = bitset.mask_from_ids({0, 1, 2, 3})
        assert induced_path(g.adjacency, gw, 0, 3) == [0, 1, 2, 3]


class TestAllPairs:
    def test_next_hops_advance_toward_target(self):
        g = path_graph(5)
        gw = bitset.mask_from_ids({1, 2, 3})
        dist, nxt = induced_bfs_distances_nexthop(g.adjacency, gw)
        assert dist[1][3] == 2
        assert nxt[1][3] == 2
        assert nxt[3][1] == 2

    def test_distance_tables_symmetric(self):
        g = cycle_graph(8)
        gw = (1 << 8) - 1
        dist, _ = induced_bfs_distances_nexthop(g.adjacency, gw)
        for a in dist:
            for b in dist[a]:
                assert dist[a][b] == dist[b][a]


class TestStretch:
    def test_full_backbone_has_unit_stretch(self):
        g = cycle_graph(6)
        gw = (1 << 6) - 1
        assert path_stretch(g.adjacency, gw, 0, 3) == 1.0

    def test_pruned_backbone_can_stretch(self):
        # 4-cycle with backbone {0,1,2}: route 3 -> 1 goes via 0 or 2 (len 2
        # = shortest), but 0 -> 2 must take two hops through 1 vs direct? no
        # direct edge; construct an actual stretch case:
        # square 0-1-2-3-0 plus chord 0-2; backbone {0,1,2} ok; pair (3,1):
        # true dist 2 (3-0-1); backbone route 3-0-1 = 2 -> stretch 1.
        # Use a 5-cycle with backbone missing one side:
        g = cycle_graph(5)
        gw = bitset.mask_from_ids({0, 1, 2, 3})
        # true dist(4, 1): 4-0-1 = 2; backbone route from 4: adjacent
        # gateways {0, 3}; via 3: 4? 4 not gateway: route 4-3-2-1 len 3
        # via 0: 4-0-1 len 2 -> router picks 2 -> stretch 1.0
        assert path_stretch(g.adjacency, gw, 4, 1) == 1.0

    def test_disconnected_pair_raises(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(RoutingError):
            path_stretch(g.adjacency, 0b0011, 0, 3)

    def test_same_node_stretch_is_one(self):
        g = path_graph(3)
        assert path_stretch(g.adjacency, 0b010, 1, 1) == 1.0
