"""Routing-table maintenance tests."""

from __future__ import annotations

import numpy as np

from repro.core.cds import compute_cds
from repro.geometry.space import Region2D
from repro.graphs.generators import from_edges, random_connected_network
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk
from repro.routing.maintenance import TableMaintainer
from repro.routing.tables import build_routing_tables


def backbone_graph():
    """0-1-2 backbone with leaves 3 (on 0) and 4 (on 2)."""
    return from_edges(5, [(0, 1), (1, 2), (0, 3), (2, 4)])


class TestClassification:
    def test_first_update_is_backbone(self):
        g = backbone_graph()
        m = TableMaintainer()
        assert m.update(g.adjacency, {0, 1, 2}) == "backbone"
        assert m.stats.backbone == 1

    def test_identical_snapshot_is_unchanged(self):
        g = backbone_graph()
        m = TableMaintainer()
        m.update(g.adjacency, {0, 1, 2})
        assert m.update(g.adjacency, {0, 1, 2}) == "unchanged"
        assert m.stats.unchanged == 1

    def test_leaf_moving_between_domains_is_membership_only(self):
        g1 = backbone_graph()
        # leaf 4 detaches from gateway 2 and attaches to gateway 0
        g2 = from_edges(5, [(0, 1), (1, 2), (0, 3), (0, 4)])
        m = TableMaintainer()
        m.update(g1.adjacency, {0, 1, 2})
        old_tables = m.tables
        assert m.update(g2.adjacency, {0, 1, 2}) == "membership-only"
        # distances were reused, membership refreshed
        assert m.tables[0].distance_to == old_tables[0].distance_to
        assert 4 in m.tables[0].members
        assert 4 not in m.tables[2].members

    def test_gateway_set_change_is_backbone(self):
        g = backbone_graph()
        m = TableMaintainer()
        m.update(g.adjacency, {0, 1, 2})
        assert m.update(g.adjacency, {1, 2, 4}) == "backbone"

    def test_induced_edge_change_is_backbone(self):
        g1 = backbone_graph()
        # add a direct 0-2 link: gateway set unchanged, backbone edge added
        g2 = from_edges(5, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 4)])
        m = TableMaintainer()
        m.update(g1.adjacency, {0, 1, 2})
        assert m.update(g2.adjacency, {0, 1, 2}) == "backbone"

    def test_tables_always_match_fresh_build(self):
        g1 = backbone_graph()
        g2 = from_edges(5, [(0, 1), (1, 2), (0, 3), (0, 4)])
        m = TableMaintainer()
        for g in (g1, g2, g1):
            m.update(g.adjacency, {0, 1, 2})
            fresh = build_routing_tables(list(g.adjacency), {0, 1, 2})
            for gw in fresh:
                assert m.tables[gw].members == fresh[gw].members
                assert m.tables[gw].distance_to == fresh[gw].distance_to


class TestUnderMobility:
    def test_stats_accumulate_over_a_run(self, rng):
        net = random_connected_network(20, rng=rng)
        mgr = MobilityManager(
            net, PaperWalk(stability=0.9), Region2D(side=net.side), rng=rng
        )
        m = TableMaintainer()
        for _ in range(25):
            r = compute_cds(net, "id")
            m.update(net.adjacency, r.gateways)
            mgr.step()
        assert m.stats.total == 25
        assert m.stats.backbone >= 1
        # consistency at the end of the run
        r = compute_cds(net, "id")
        m.update(net.adjacency, r.gateways)
        fresh = build_routing_tables(list(net.adjacency), r.gateways)
        assert set(m.tables) == set(fresh)

    def test_recalculation_rate_bounds(self):
        m = TableMaintainer()
        assert m.stats.recalculation_rate() == 0.0
        g = backbone_graph()
        m.update(g.adjacency, {0, 1, 2})
        m.update(g.adjacency, {0, 1, 2})
        assert m.stats.recalculation_rate() == 0.5
