"""Unit tests for small shared utilities (types, errors, metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import errors
from repro.types import as_generator, node_labels
from repro.simulation.metrics import IntervalMetrics, TrialMetrics


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_value_error_compatibility(self):
        # config/topology/energy errors are ValueErrors so generic
        # validation code can catch them uniformly
        for exc in (
            errors.ConfigurationError,
            errors.TopologyError,
            errors.DisconnectedGraphError,
            errors.EnergyError,
        ):
            assert issubclass(exc, ValueError)

    def test_runtime_error_compatibility(self):
        for exc in (
            errors.ProtocolError,
            errors.RoutingError,
            errors.SimulationError,
        ):
            assert issubclass(exc, RuntimeError)

    def test_invariant_violation_is_assertion(self):
        assert issubclass(errors.InvariantViolation, AssertionError)

    def test_disconnected_is_topology_error(self):
        assert issubclass(errors.DisconnectedGraphError, errors.TopologyError)


class TestRngCoercion:
    def test_int_seed_gives_reproducible_stream(self):
        a = as_generator(7).random(4)
        b = as_generator(7).random(4)
        assert np.array_equal(a, b)

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_none_gives_fresh_stream(self):
        a = as_generator(None)
        b = as_generator(None)
        assert isinstance(a, np.random.Generator)
        assert a is not b


class TestNodeLabels:
    def test_identity_without_mapping(self):
        assert node_labels(None, [0, 2]) == [0, 2]

    def test_mapping_applied_with_fallback(self):
        assert node_labels({0: "a"}, [0, 1]) == ["a", 1]


class TestTrialMetricsSummarize:
    def _interval(self, i, size):
        return IntervalMetrics(
            interval=i, cds_size=size, gateway_drain=1.0,
            min_energy_after=50.0, topology_changed=True,
            removed_rule1=0, removed_rule2=0,
        )

    def test_summary_fields(self):
        records = [self._interval(1, 4), self._interval(2, 6)]
        m = TrialMetrics.summarize(
            records,
            first_dead_host=3,
            total_gateway_drain=10.0,
            total_non_gateway_drain=20.0,
            frozen_intervals=1,
            final_levels=np.array([1.0, 3.0]),
            keep_intervals=True,
        )
        assert m.lifespan == 2
        assert m.mean_cds_size == 5.0
        assert m.first_dead_host == 3
        assert m.energy_std_at_death == pytest.approx(1.0)
        assert len(m.intervals) == 2

    def test_intervals_dropped_when_not_kept(self):
        m = TrialMetrics.summarize(
            [self._interval(1, 4)],
            first_dead_host=None,
            total_gateway_drain=0.0,
            total_non_gateway_drain=0.0,
            frozen_intervals=0,
            final_levels=np.array([1.0]),
            keep_intervals=False,
        )
        assert m.intervals == ()

    def test_empty_records(self):
        m = TrialMetrics.summarize(
            [],
            first_dead_host=None,
            total_gateway_drain=0.0,
            total_non_gateway_drain=0.0,
            frozen_intervals=0,
            final_levels=np.array([]),
            keep_intervals=False,
        )
        assert m.lifespan == 0
        assert m.mean_cds_size == 0.0


class TestReductionGuards:
    def test_max_rounds_caps_fixed_point(self):
        from repro.core.priority import scheme_by_name
        from repro.core.reduction import prune
        from repro.core.marking import marked_mask
        from repro.graphs.generators import path_graph

        g = path_graph(12)
        marked = marked_mask(g.adjacency)
        out, stats = prune(
            g.adjacency, marked, scheme_by_name("id"),
            fixed_point=True, max_rounds=1,
        )
        assert stats.rounds == 1

    def test_prune_stats_final_size_property(self):
        from repro.core.reduction import PruneStats

        s = PruneStats(initial_marked=10, removed_rule1=3, removed_rule2=2, rounds=1)
        assert s.final_size == 5
