"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    paper_example_graph,
    random_connected_network,
    random_gnp_connected,
)


@pytest.fixture(scope="session")
def paper_example():
    """The reconstructed §3.3 worked example (27 nodes, Figures 5–9)."""
    return paper_example_graph()


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def random_graphs():
    """A pool of small random connected (graph, energy) pairs reused by
    invariants tests — generated once per session for speed."""
    gen = np.random.default_rng(20010905)
    pool = []
    for n in (5, 8, 12, 16, 24):
        for _ in range(4):
            g = random_gnp_connected(n, min(1.0, 2.5 / np.sqrt(n)), rng=gen)
            energy = gen.integers(1, 6, size=n).astype(float)
            pool.append((g, energy))
    return pool


@pytest.fixture(scope="session")
def small_network():
    """One 25-host geometric network with the paper's parameters."""
    return random_connected_network(25, rng=7)
