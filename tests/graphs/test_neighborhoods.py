"""Neighborhood view and predicate tests."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.graphs import bitset
from repro.graphs.neighborhoods import (
    NeighborhoodView,
    closed_covered_by,
    closed_mask,
    components,
    connected_within,
    degree_sequence,
    is_connected,
    open_covered_by_pair,
    validate_adjacency,
)
from repro.graphs.generators import cycle_graph, from_edges, path_graph


class TestViewBasics:
    def test_neighbors_and_degree(self):
        g = from_edges(4, [(0, 1), (0, 2), (2, 3)])
        assert g.neighbors(0) == [1, 2]
        assert g.degree(0) == 2
        assert g.degree(3) == 1

    def test_has_edge_symmetric(self):
        g = from_edges(3, [(0, 2)])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_edges_listing(self):
        g = from_edges(4, [(2, 3), (0, 1)])
        assert g.edges() == [(0, 1), (2, 3)]

    def test_equality_and_hash(self):
        a = from_edges(3, [(0, 1)])
        b = from_edges(3, [(0, 1)])
        c = from_edges(3, [(1, 2)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_degree_sequence(self):
        g = path_graph(4)
        assert degree_sequence(g.adjacency) == [1, 2, 2, 1]


class TestValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="self-loop"):
            NeighborhoodView([0b001, 0b000, 0b000])

    def test_asymmetric_edge_rejected(self):
        with pytest.raises(TopologyError, match="asymmetric"):
            NeighborhoodView([0b010, 0b000])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(TopologyError, match="outside"):
            NeighborhoodView([0b100])

    def test_valid_adjacency_passes(self):
        validate_adjacency([0b010, 0b001])


class TestCoveragePredicates:
    def test_closed_mask_includes_self(self):
        g = path_graph(3)
        assert closed_mask(g.adjacency, 1) == 0b111

    def test_closed_covered_by(self):
        # 0's closed nbhd {0,1} within 1's {0,1,2}
        g = path_graph(3)
        assert closed_covered_by(g.adjacency, 0, 1)
        assert not closed_covered_by(g.adjacency, 1, 0)

    def test_open_covered_by_pair_requires_uw_adjacent(self):
        # u=1, w=2 adjacent; v=0 between them
        g = from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert open_covered_by_pair(g.adjacency, 0, 1, 2)
        # drop the u-w edge: v's neighbor u is no longer in N(u) ∪ N(w)
        h = from_edges(3, [(0, 1), (0, 2)])
        assert not open_covered_by_pair(h.adjacency, 0, 1, 2)


class TestConnectivity:
    def test_path_connected(self):
        assert is_connected(path_graph(6).adjacency)

    def test_two_components_detected(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert not is_connected(g.adjacency)
        comps = components(g.adjacency)
        assert sorted(bitset.popcount(c) for c in comps) == [2, 2]

    def test_isolated_node_is_component(self):
        g = from_edges(3, [(0, 1)])
        assert len(components(g.adjacency)) == 2

    def test_connected_within_submask(self):
        g = cycle_graph(6)
        assert connected_within(g.adjacency, bitset.mask_from_ids({0, 1, 2}))
        assert not connected_within(g.adjacency, bitset.mask_from_ids({0, 3}))

    def test_connected_within_bad_start_raises(self):
        g = path_graph(3)
        with pytest.raises(TopologyError):
            connected_within(g.adjacency, 0b011, start=2)

    def test_empty_graph_is_connected(self):
        assert is_connected([])
