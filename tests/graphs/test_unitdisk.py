"""Unit-disk graph construction tests: dense vs grid strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs import bitset
from repro.graphs.unitdisk import (
    unit_disk_adjacency,
    unit_disk_adjacency_dense,
    unit_disk_adjacency_grid,
    unit_disk_edges,
)


class TestSmallCases:
    def test_two_points_within_radius(self):
        adj = unit_disk_adjacency(np.array([[0.0, 0.0], [3.0, 4.0]]), 5.0)
        assert adj == [0b10, 0b01]  # distance exactly 5: inclusive edge

    def test_two_points_beyond_radius(self):
        adj = unit_disk_adjacency(np.array([[0.0, 0.0], [3.0, 4.0]]), 4.999)
        assert adj == [0, 0]

    def test_no_self_loops(self):
        adj = unit_disk_adjacency(np.zeros((3, 2)), 1.0)
        for v, m in enumerate(adj):
            assert not m >> v & 1

    def test_coincident_points_are_adjacent(self):
        adj = unit_disk_adjacency(np.zeros((2, 2)), 0.0)
        assert adj == [0b10, 0b01]

    def test_empty_input(self):
        assert unit_disk_adjacency(np.zeros((0, 2)), 1.0) == []

    def test_zero_radius_grid_isolates_distinct_points(self):
        pos = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert unit_disk_adjacency_grid(pos, 0.0) == [0, 0]


class TestValidation:
    def test_bad_shape_rejected(self):
        with pytest.raises(TopologyError, match=r"\(n, 2\)"):
            unit_disk_adjacency(np.zeros((3, 3)), 1.0)

    def test_nan_rejected(self):
        pos = np.array([[0.0, np.nan]])
        with pytest.raises(TopologyError, match="NaN"):
            unit_disk_adjacency(pos, 1.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(TopologyError, match="non-negative"):
            unit_disk_adjacency(np.zeros((2, 2)), -1.0)


class TestStrategyEquivalence:
    @pytest.mark.parametrize("n,radius", [(10, 25.0), (60, 10.0), (120, 30.0)])
    def test_dense_equals_grid(self, rng, n, radius):
        pos = rng.random((n, 2)) * 100.0
        assert unit_disk_adjacency_dense(pos, radius) == unit_disk_adjacency_grid(
            pos, radius
        )

    def test_dispatch_uses_grid_above_cutoff(self, rng):
        pos = rng.random((600, 2)) * 100.0
        assert unit_disk_adjacency(pos, 15.0) == unit_disk_adjacency_grid(
            pos, 15.0
        )

    def test_matches_networkx_reference(self, rng):
        nx = pytest.importorskip("networkx")
        pos = rng.random((40, 2)) * 100.0
        adj = unit_disk_adjacency(pos, 25.0)
        ours = {frozenset(e) for e in unit_disk_edges(pos, 25.0)}
        g = nx.Graph()
        g.add_nodes_from(range(40))
        for i in range(40):
            for j in range(i + 1, 40):
                if np.hypot(*(pos[i] - pos[j])) <= 25.0:
                    g.add_edge(i, j)
        theirs = {frozenset(e) for e in g.edges()}
        assert ours == theirs
        # and adjacency masks agree with the edge list
        rebuilt = [0] * 40
        for u, v in unit_disk_edges(pos, 25.0):
            rebuilt[u] |= 1 << v
            rebuilt[v] |= 1 << u
        assert rebuilt == adj


class TestEdges:
    def test_edges_are_ordered_pairs(self, rng):
        pos = rng.random((30, 2)) * 50.0
        for u, v in unit_disk_edges(pos, 20.0):
            assert u < v

    def test_edge_count_matches_popcount(self, rng):
        pos = rng.random((25, 2)) * 50.0
        adj = unit_disk_adjacency(pos, 20.0)
        assert (
            len(unit_disk_edges(pos, 20.0))
            == sum(bitset.popcount(m) for m in adj) // 2
        )
