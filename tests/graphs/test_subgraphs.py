"""Active-subset (induced subgraph) tests."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.graphs import bitset
from repro.graphs.generators import cycle_graph, from_edges, path_graph
from repro.graphs.subgraphs import (
    active_components,
    is_dominating_over,
    largest_component,
    restrict_adjacency,
)


class TestRestrict:
    def test_inactive_nodes_are_isolated(self):
        g = path_graph(4)
        sub = restrict_adjacency(g.adjacency, bitset.mask_from_ids({0, 1, 3}))
        assert sub[2] == 0
        assert sub[1] == 0b0001  # edge to 2 dropped, edge to 0 kept
        assert sub[3] == 0       # its only neighbor 2 is off

    def test_full_mask_is_identity(self):
        g = cycle_graph(5)
        assert restrict_adjacency(g.adjacency, 0b11111) == list(g.adjacency)

    def test_mask_out_of_range_rejected(self):
        g = path_graph(3)
        with pytest.raises(TopologyError, match="outside"):
            restrict_adjacency(g.adjacency, 1 << 5)

    def test_result_is_symmetric(self):
        g = cycle_graph(6)
        sub = restrict_adjacency(g.adjacency, 0b101011)
        for u in range(6):
            for v in bitset.iter_bits(sub[u]):
                assert sub[v] >> u & 1


class TestComponents:
    def test_removing_a_cut_vertex_splits(self):
        g = path_graph(5)
        comps = active_components(g.adjacency, bitset.mask_from_ids({0, 1, 3, 4}))
        assert sorted(bitset.popcount(c) for c in comps) == [2, 2]

    def test_all_active_single_component(self):
        g = cycle_graph(5)
        comps = active_components(g.adjacency, 0b11111)
        assert len(comps) == 1

    def test_empty_mask_no_components(self):
        g = path_graph(3)
        assert active_components(g.adjacency, 0) == []

    def test_largest_component(self):
        g = path_graph(6)
        mask = bitset.mask_from_ids({0, 2, 3, 4})  # {0} and {2,3,4}
        assert largest_component(g.adjacency, mask) == bitset.mask_from_ids(
            {2, 3, 4}
        )
        assert largest_component(g.adjacency, 0) == 0


class TestDominationOver:
    def test_restricted_domination(self):
        g = path_graph(5)
        # {1} dominates {0,1,2} but not node 4
        assert is_dominating_over(g.adjacency, {1}, bitset.mask_from_ids({0, 1, 2}))
        assert not is_dominating_over(g.adjacency, {1}, bitset.mask_from_ids({4}))

    def test_off_hosts_impose_nothing(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        required = bitset.mask_from_ids({0, 1})
        assert is_dominating_over(g.adjacency, {0}, required)

    def test_empty_required_always_satisfied(self):
        g = path_graph(3)
        assert is_dominating_over(g.adjacency, set(), 0)
