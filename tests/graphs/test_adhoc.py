"""AdHocNetwork container tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs.adhoc import AdHocNetwork


def tiny_net():
    pos = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0], [90.0, 90.0]])
    return AdHocNetwork(pos, radius=12.0)


class TestConstruction:
    def test_basic_properties(self):
        net = tiny_net()
        assert net.n == 4
        assert net.radius == 12.0
        assert net.neighbors(1) == [0, 2]
        assert net.degree(3) == 0

    def test_positions_are_owned_copy(self):
        pos = np.zeros((2, 2))
        net = AdHocNetwork(pos, 1.0)
        pos[0, 0] = 99.0
        assert net.positions[0, 0] == 0.0

    def test_bad_positions_rejected(self):
        with pytest.raises(TopologyError):
            AdHocNetwork(np.zeros((2, 3)), 1.0)

    def test_bad_radius_rejected(self):
        with pytest.raises(TopologyError):
            AdHocNetwork(np.zeros((2, 2)), float("nan"))


class TestMutation:
    def test_invalidate_rebuilds_adjacency(self):
        net = tiny_net()
        assert not net.has_edge(2, 3)
        net.positions[3] = [25.0, 0.0]
        net.invalidate()
        assert net.has_edge(2, 3)

    def test_move_host_invalidates(self):
        net = tiny_net()
        net.move_host(3, (25.0, 0.0))
        assert net.has_edge(2, 3)

    def test_snapshot_is_immutable_copy(self):
        net = tiny_net()
        snap = net.snapshot()
        net.move_host(3, (25.0, 0.0))
        assert snap.adjacency != net.adjacency

    def test_changed_nodes_since(self):
        net = tiny_net()
        before = net.snapshot()
        net.move_host(3, (25.0, 0.0))
        assert net.changed_nodes_since(before) == [2, 3]

    def test_changed_nodes_size_mismatch_raises(self):
        net = tiny_net()
        other = AdHocNetwork(np.zeros((2, 2)), 1.0)
        with pytest.raises(TopologyError, match="mismatch"):
            net.changed_nodes_since(other.snapshot())


class TestQueries:
    def test_connectivity(self):
        net = tiny_net()
        assert not net.is_connected()
        net.move_host(3, (30.0, 0.0))
        assert net.is_connected()

    def test_copy_is_independent(self):
        net = tiny_net()
        dup = net.copy()
        dup.move_host(3, (25.0, 0.0))
        assert not net.has_edge(2, 3)
        assert dup.has_edge(2, 3)
