"""Bitmask set-algebra unit tests."""

from __future__ import annotations

from repro.graphs import bitset


class TestConstruction:
    def test_bit_singleton(self):
        assert bitset.bit(0) == 1
        assert bitset.bit(5) == 32

    def test_mask_round_trips_ids(self):
        ids = [0, 3, 7, 100]
        assert bitset.ids_from_mask(bitset.mask_from_ids(ids)) == ids

    def test_empty_mask(self):
        assert bitset.mask_from_ids([]) == 0
        assert bitset.ids_from_mask(0) == []

    def test_duplicate_ids_collapse(self):
        assert bitset.mask_from_ids([2, 2, 2]) == 4


class TestIteration:
    def test_iter_bits_ascending(self):
        assert list(bitset.iter_bits(0b101001)) == [0, 3, 5]

    def test_iter_bits_large_positions(self):
        m = bitset.bit(0) | bitset.bit(300)
        assert list(bitset.iter_bits(m)) == [0, 300]


class TestAlgebra:
    def test_subset_reflexive_and_monotone(self):
        a = bitset.mask_from_ids([1, 4])
        b = bitset.mask_from_ids([1, 2, 4])
        assert bitset.is_subset(a, a)
        assert bitset.is_subset(a, b)
        assert not bitset.is_subset(b, a)

    def test_empty_is_subset_of_everything(self):
        assert bitset.is_subset(0, 0)
        assert bitset.is_subset(0, 0b111)

    def test_popcount(self):
        assert bitset.popcount(0) == 0
        assert bitset.popcount(0b1011) == 3

    def test_without_removes_and_is_idempotent(self):
        m = bitset.mask_from_ids([1, 2, 3])
        assert bitset.ids_from_mask(bitset.without(m, 2)) == [1, 3]
        assert bitset.without(bitset.without(m, 2), 2) == bitset.without(m, 2)

    def test_union_all(self):
        masks = [0b001, 0b010, 0b100]
        assert bitset.union_all(masks) == 0b111
        assert bitset.union_all([]) == 0
