"""Topology generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.graphs.generators import (
    clique,
    cycle_graph,
    from_edges,
    grid_graph,
    paper_example_graph,
    path_graph,
    random_connected_network,
    random_gnp_connected,
    star_graph,
)
from repro.graphs.neighborhoods import is_connected


class TestStructured:
    def test_path(self):
        g = path_graph(4)
        assert g.edges() == [(0, 1), (1, 2), (2, 3)]

    def test_cycle(self):
        g = cycle_graph(4)
        assert len(g.edges()) == 4
        assert all(g.degree(v) == 2 for v in range(4))

    def test_cycle_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            cycle_graph(2)

    def test_clique(self):
        g = clique(5)
        assert len(g.edges()) == 10
        assert all(g.degree(v) == 4 for v in range(5))

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert all(g.degree(v) == 1 for v in range(1, 5))

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        # corners degree 2, edges 3, interior 4
        assert g.degree(0) == 2
        assert g.degree(5) == 4


class TestFromEdges:
    def test_rejects_out_of_range(self):
        with pytest.raises(TopologyError):
            from_edges(2, [(0, 2)])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            from_edges(2, [(1, 1)])

    def test_duplicate_edges_collapse(self):
        g = from_edges(2, [(0, 1), (1, 0), (0, 1)])
        assert g.edges() == [(0, 1)]


class TestRandom:
    def test_gnp_connected_is_connected(self, rng):
        for _ in range(5):
            g = random_gnp_connected(12, 0.3, rng=rng)
            assert is_connected(g.adjacency)

    def test_gnp_impossible_raises(self, rng):
        with pytest.raises(TopologyError, match="no connected"):
            random_gnp_connected(5, 0.0, rng=rng, max_tries=3)

    def test_network_uses_paper_parameters(self, rng):
        net = random_connected_network(15, rng=rng)
        assert net.side == 100.0
        assert net.radius == 25.0
        assert net.is_connected()
        assert np.all(net.positions >= 0) and np.all(net.positions <= 100)

    def test_network_seed_reproducibility(self):
        a = random_connected_network(10, rng=5)
        b = random_connected_network(10, rng=5)
        assert np.array_equal(a.positions, b.positions)

    def test_network_impossible_raises(self):
        with pytest.raises(TopologyError, match="no connected placement"):
            random_connected_network(50, radius=0.5, rng=1, max_tries=5)


class TestPaperExample:
    def test_dimensions(self):
        ex = paper_example_graph()
        assert ex.graph.n == 27
        assert len(ex.energy) == 27

    def test_connected(self):
        ex = paper_example_graph()
        assert is_connected(ex.graph.adjacency)

    def test_label_round_trip(self):
        ex = paper_example_graph()
        assert ex.id_of_label(1) == 0
        assert ex.labels({0, 26}) == {1, 27}


class TestClusteredNetwork:
    def test_connected_with_paper_radio(self, rng):
        from repro.graphs.generators import clustered_connected_network

        net = clustered_connected_network(30, clusters=3, rng=rng)
        assert net.n == 30
        assert net.is_connected()
        assert np.all((net.positions >= 0) & (net.positions <= 100))

    def test_single_cluster_is_a_tight_blob(self):
        from repro.graphs.generators import clustered_connected_network

        net = clustered_connected_network(
            20, clusters=1, cluster_std=5.0, rng=3
        )
        spread = net.positions.std(axis=0).max()
        assert spread < 15.0  # much tighter than a uniform placement

    def test_seed_reproducible(self):
        from repro.graphs.generators import clustered_connected_network

        a = clustered_connected_network(15, rng=9)
        b = clustered_connected_network(15, rng=9)
        assert np.array_equal(a.positions, b.positions)

    def test_bad_parameters_rejected(self):
        from repro.errors import ConfigurationError
        from repro.graphs.generators import clustered_connected_network

        with pytest.raises(ConfigurationError):
            clustered_connected_network(10, clusters=0)
        with pytest.raises(ConfigurationError):
            clustered_connected_network(10, cluster_std=0.0)

    def test_clustering_prunes_harder_than_uniform(self):
        """Dense cores are cliques-ish: the rules collapse them to a few
        gateways, so clustered backbones are far smaller."""
        from repro.core.cds import compute_cds
        from repro.graphs.generators import (
            clustered_connected_network,
            random_connected_network,
        )

        rng = np.random.default_rng(4)
        clustered = uniform = 0
        for _ in range(5):
            cn = clustered_connected_network(40, clusters=3, rng=rng)
            un = random_connected_network(40, rng=rng)
            clustered += compute_cds(cn, "nd").size
            uniform += compute_cds(un, "nd").size
        assert clustered < uniform
