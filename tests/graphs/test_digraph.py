"""Digraph substrate tests (unidirectional links)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs.digraph import (
    DirectedView,
    from_arcs,
    heterogeneous_disk_digraph,
    random_strongly_connected_digraph,
    strongly_connected,
)


class TestDirectedView:
    def test_in_adjacency_is_transpose(self):
        v = from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        assert v.out_neighbors(0) == [1]
        assert v.in_neighbors(0) == [2]
        assert v.has_arc(0, 1) and not v.has_arc(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="self-loop"):
            from_arcs(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            from_arcs(2, [(0, 5)])

    def test_symmetry_detection(self):
        sym = from_arcs(2, [(0, 1), (1, 0)])
        asym = from_arcs(2, [(0, 1)])
        assert sym.is_symmetric()
        assert not asym.is_symmetric()

    def test_underlying_and_core(self):
        v = from_arcs(3, [(0, 1), (1, 0), (1, 2)])
        assert v.underlying_undirected()[2] == 0b010  # 2 ~ 1
        assert v.bidirectional_core()[1] == 0b001     # only the 0<->1 pair

    def test_equality(self):
        a = from_arcs(2, [(0, 1)])
        b = from_arcs(2, [(0, 1)])
        assert a == b and hash(a) == hash(b)


class TestHeterogeneousDisk:
    def test_asymmetric_ranges_make_unidirectional_links(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0]])
        v = heterogeneous_disk_digraph(pos, [15.0, 5.0])
        assert v.has_arc(0, 1)      # 0's big radio reaches 1
        assert not v.has_arc(1, 0)  # 1's small radio does not reach back

    def test_equal_ranges_are_symmetric(self, rng):
        pos = rng.random((20, 2)) * 100
        v = heterogeneous_disk_digraph(pos, np.full(20, 25.0))
        assert v.is_symmetric()

    def test_matches_undirected_udg_when_symmetric(self, rng):
        from repro.graphs.unitdisk import unit_disk_adjacency

        pos = rng.random((15, 2)) * 100
        v = heterogeneous_disk_digraph(pos, np.full(15, 25.0))
        assert list(v.out_adj) == unit_disk_adjacency(pos, 25.0)

    def test_bad_inputs_rejected(self):
        with pytest.raises(TopologyError):
            heterogeneous_disk_digraph(np.zeros((2, 3)), [1.0, 1.0])
        with pytest.raises(TopologyError):
            heterogeneous_disk_digraph(np.zeros((2, 2)), [1.0])
        with pytest.raises(TopologyError):
            heterogeneous_disk_digraph(np.zeros((2, 2)), [1.0, -1.0])

    def test_empty(self):
        v = heterogeneous_disk_digraph(np.zeros((0, 2)), [])
        assert v.n == 0


class TestStrongConnectivity:
    def test_cycle_is_strong(self):
        v = from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        assert strongly_connected(v)

    def test_one_way_chain_is_not(self):
        v = from_arcs(3, [(0, 1), (1, 2)])
        assert not strongly_connected(v)

    def test_random_generator_delivers(self, rng):
        view, pos, ranges = random_strongly_connected_digraph(15, rng=rng)
        assert strongly_connected(view)
        assert len(pos) == len(ranges) == 15
        # heterogeneity should produce at least one one-way link usually
        assert not view.is_symmetric()

    def test_generator_seed_reproducible(self):
        a, pa, ra = random_strongly_connected_digraph(10, rng=3)
        b, pb, rb = random_strongly_connected_digraph(10, rng=3)
        assert a == b
        assert np.array_equal(pa, pb) and np.array_equal(ra, rb)

    def test_impossible_raises(self):
        with pytest.raises(TopologyError, match="no strongly connected"):
            random_strongly_connected_digraph(
                30, base_range=0.5, rng=1, max_tries=3
            )
