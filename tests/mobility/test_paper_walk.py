"""Paper mobility model tests (§4 parameters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.space import Region2D
from repro.mobility.paper_walk import PaperWalk


class TestConfiguration:
    def test_paper_defaults(self):
        w = PaperWalk()
        assert w.stability == 0.5
        assert (w.min_step, w.max_step) == (1.0, 6.0)

    @pytest.mark.parametrize("c", [-0.1, 1.1])
    def test_bad_stability_rejected(self, c):
        with pytest.raises(ConfigurationError):
            PaperWalk(stability=c)

    def test_bad_step_range_rejected(self):
        with pytest.raises(ConfigurationError):
            PaperWalk(min_step=5.0, max_step=1.0)


class TestStep:
    def test_stability_one_freezes_everyone(self, rng):
        w = PaperWalk(stability=1.0)
        pos = rng.random((20, 2)) * 100
        before = pos.copy()
        moving = w.step(pos, Region2D(), rng)
        assert not moving.any()
        np.testing.assert_array_equal(pos, before)

    def test_stability_zero_moves_everyone(self, rng):
        w = PaperWalk(stability=0.0)
        pos = rng.random((20, 2)) * 100
        before = pos.copy()
        moving = w.step(pos, Region2D(), rng)
        assert moving.all()
        assert np.any(pos != before)

    def test_step_lengths_in_range(self, rng):
        w = PaperWalk(stability=0.0)
        region = Region2D(side=1e9)  # no boundary interference
        pos = np.full((500, 2), 5e8)
        before = pos.copy()
        w.step(pos, region, rng)
        lengths = np.hypot(*(pos - before).T)
        assert np.all(lengths >= 1.0 - 1e-9)
        assert np.all(lengths <= 6.0 + 1e-9)

    def test_integer_steps_quantize_lengths(self, rng):
        w = PaperWalk(stability=0.0, integer_steps=True)
        region = Region2D(side=1e9)
        pos = np.full((500, 2), 5e8)
        before = pos.copy()
        w.step(pos, region, rng)
        lengths = np.hypot(*(pos - before).T)
        np.testing.assert_allclose(lengths, np.round(lengths))

    def test_moves_stay_in_region(self, rng):
        w = PaperWalk(stability=0.0)
        region = Region2D(side=10.0)
        pos = rng.random((100, 2)) * 10
        for _ in range(20):
            w.step(pos, region, rng)
        assert np.all((pos >= 0) & (pos <= 10))

    def test_half_stability_moves_about_half(self, rng):
        w = PaperWalk(stability=0.5)
        pos = rng.random((4000, 2)) * 100
        moving = w.step(pos, Region2D(), rng)
        assert 0.45 < moving.mean() < 0.55

    def test_eight_directions_all_occur(self, rng):
        w = PaperWalk(stability=0.0, min_step=1.0, max_step=1.0)
        region = Region2D(side=1e9)
        pos = np.full((2000, 2), 5e8)
        before = pos.copy()
        w.step(pos, region, rng)
        deltas = pos - before
        angles = np.round(np.degrees(np.arctan2(deltas[:, 1], deltas[:, 0]))) % 360
        assert set(angles) == {0.0, 45.0, 90.0, 135.0, 180.0, 225.0, 270.0, 315.0}
