"""Churn model tests (host switching on/off)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mobility.churn import ChurnModel


class TestConfiguration:
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_bad_probabilities_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ChurnModel(off_probability=bad)
        with pytest.raises(ConfigurationError):
            ChurnModel(on_probability=bad)


class TestStep:
    def test_zero_probabilities_freeze_state(self, rng):
        model = ChurnModel(0.0, 0.0)
        active = np.array([True, False, True])
        before = active.copy()
        model.step(active, rng)
        np.testing.assert_array_equal(active, before)

    def test_certain_off_switches_everyone_off(self, rng):
        model = ChurnModel(off_probability=1.0, on_probability=0.0)
        active = np.ones(10, dtype=bool)
        model.step(active, rng)
        assert not active.any()

    def test_certain_on_switches_everyone_on(self, rng):
        model = ChurnModel(off_probability=0.0, on_probability=1.0)
        active = np.zeros(10, dtype=bool)
        model.step(active, rng)
        assert active.all()

    def test_dead_hosts_stay_off(self, rng):
        model = ChurnModel(off_probability=0.0, on_probability=1.0)
        active = np.zeros(4, dtype=bool)
        eligible = np.array([True, False, True, False])
        model.step(active, rng, eligible=eligible)
        np.testing.assert_array_equal(active, eligible)

    def test_rates_are_roughly_respected(self, rng):
        model = ChurnModel(off_probability=0.2, on_probability=0.6)
        active = np.ones(20_000, dtype=bool)
        model.step(active, rng)
        off_rate = 1.0 - active.mean()
        assert 0.17 < off_rate < 0.23

    def test_mutates_in_place_and_returns_same_array(self, rng):
        model = ChurnModel(1.0, 0.0)
        active = np.ones(3, dtype=bool)
        out = model.step(active, rng)
        assert out is active
