"""RandomWalk, RandomWaypoint, and StationaryModel tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.space import Region2D
from repro.mobility.base import MobilityModel, StationaryModel
from repro.mobility.paper_walk import PaperWalk
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "model",
        [StationaryModel(), PaperWalk(), RandomWalk(), RandomWaypoint()],
    )
    def test_models_satisfy_protocol(self, model):
        assert isinstance(model, MobilityModel)


class TestStationary:
    def test_never_moves(self, rng):
        pos = rng.random((10, 2)) * 100
        before = pos.copy()
        StationaryModel().step(pos, Region2D(), rng)
        np.testing.assert_array_equal(pos, before)


class TestRandomWalk:
    def test_step_lengths_bounded(self, rng):
        w = RandomWalk(move_probability=1.0, min_step=2.0, max_step=3.0)
        region = Region2D(side=1e9)
        pos = np.full((300, 2), 5e8)
        before = pos.copy()
        w.step(pos, region, rng)
        lengths = np.hypot(*(pos - before).T)
        assert np.all((lengths >= 2.0 - 1e-9) & (lengths <= 3.0 + 1e-9))

    def test_zero_probability_freezes(self, rng):
        w = RandomWalk(move_probability=0.0)
        pos = rng.random((10, 2)) * 100
        before = pos.copy()
        assert not w.step(pos, Region2D(), rng).any()
        np.testing.assert_array_equal(pos, before)

    def test_angles_are_continuous(self, rng):
        w = RandomWalk(move_probability=1.0, min_step=1.0, max_step=1.0)
        region = Region2D(side=1e9)
        pos = np.full((500, 2), 5e8)
        before = pos.copy()
        w.step(pos, region, rng)
        deltas = pos - before
        angles = np.degrees(np.arctan2(deltas[:, 1], deltas[:, 0])) % 360
        # an 8-direction walk would produce <= 8 distinct angles
        assert len(np.unique(np.round(angles, 3))) > 50

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomWalk(move_probability=2.0)
        with pytest.raises(ConfigurationError):
            RandomWalk(min_step=4.0, max_step=1.0)


class TestRandomWaypoint:
    def test_hosts_progress_toward_destinations(self, rng):
        w = RandomWaypoint(min_speed=1.0, max_speed=1.0, max_pause=0)
        region = Region2D(side=100.0)
        pos = region.sample(20, rng)
        w.step(pos, region, rng)  # initializes destinations
        dest = w._dest.copy()
        before_dist = np.hypot(*(dest - pos).T)
        w.step(pos, region, rng)
        after_dist = np.hypot(*(w._dest - pos).T)
        # most hosts moved closer to their (unchanged) destination
        unchanged = np.all(w._dest == dest, axis=1)
        assert np.all(after_dist[unchanged] <= before_dist[unchanged] + 1e-9)

    def test_arrival_triggers_replan(self, rng):
        w = RandomWaypoint(min_speed=50.0, max_speed=50.0, max_pause=0)
        region = Region2D(side=10.0)  # speed >> region: arrive every step
        pos = region.sample(5, rng)
        w.step(pos, region, rng)
        first_dest = w._dest.copy()
        w.step(pos, region, rng)
        assert np.any(w._dest != first_dest)

    def test_pause_holds_position(self, rng):
        w = RandomWaypoint(min_speed=100.0, max_speed=100.0, max_pause=5)
        region = Region2D(side=10.0)
        pos = region.sample(8, rng)
        for _ in range(3):
            w.step(pos, region, rng)
        paused = w._pause > 0
        if paused.any():
            frozen = pos[paused].copy()
            w.step(pos, region, rng)
            np.testing.assert_array_equal(pos[paused], frozen)

    def test_reset_forgets_state(self, rng):
        w = RandomWaypoint()
        pos = Region2D().sample(4, rng)
        w.step(pos, Region2D(), rng)
        assert w._dest is not None
        w.reset()
        assert w._dest is None

    def test_population_resize_reinitializes(self, rng):
        w = RandomWaypoint()
        region = Region2D()
        w.step(region.sample(4, rng), region, rng)
        w.step(region.sample(9, rng), region, rng)  # no crash
        assert len(w._dest) == 9

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(min_speed=0.0)
        with pytest.raises(ConfigurationError):
            RandomWaypoint(max_pause=-1)
