"""MobilityManager tests: connectivity policies and bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.space import Region2D
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import random_connected_network
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk
from repro.mobility.base import StationaryModel


class TestConfiguration:
    def test_bad_policy_rejected(self, small_network):
        with pytest.raises(ConfigurationError):
            MobilityManager(small_network, PaperWalk(), on_disconnect="panic")

    def test_bad_retries_rejected(self, small_network):
        with pytest.raises(ConfigurationError):
            MobilityManager(small_network, PaperWalk(), max_retries=0)

    def test_region_defaults_to_network_side(self, small_network):
        mgr = MobilityManager(small_network, PaperWalk())
        assert mgr.region.side == small_network.side


class TestRetryPolicy:
    def test_network_stays_connected_under_retry(self, rng):
        net = random_connected_network(12, rng=rng)
        mgr = MobilityManager(
            net, PaperWalk(), on_disconnect="retry", rng=rng
        )
        for _ in range(30):
            mgr.step()
            assert net.is_connected()

    def test_stationary_model_reports_no_change(self, rng):
        net = random_connected_network(10, rng=rng)
        mgr = MobilityManager(net, StationaryModel(), rng=rng)
        assert mgr.step() is False

    def test_impossible_moves_freeze_hosts(self, rng):
        # two hosts barely in range; any move of >= min_step disconnects
        pos = np.array([[0.0, 0.0], [24.9, 0.0]])
        net = AdHocNetwork(pos, radius=25.0, side=100.0)
        walk = PaperWalk(stability=0.0, min_step=30.0, max_step=40.0)
        mgr = MobilityManager(
            net, walk, Region2D(side=100.0), on_disconnect="retry",
            max_retries=3, rng=rng,
        )
        changed = mgr.step()
        assert changed is False
        assert mgr.frozen_intervals == 1
        assert net.is_connected()
        np.testing.assert_array_equal(net.positions, pos)


class TestAcceptPolicy:
    def test_disconnection_allowed(self, rng):
        pos = np.array([[0.0, 0.0], [24.9, 0.0]])
        net = AdHocNetwork(pos, radius=25.0, side=1000.0)
        walk = PaperWalk(stability=0.0, min_step=50.0, max_step=60.0)
        mgr = MobilityManager(
            net, walk, Region2D(side=1000.0), on_disconnect="accept", rng=rng
        )
        mgr.step()
        assert mgr.frozen_intervals == 0
        # with a 50-unit minimum step from a 24.9-unit gap the two hosts
        # can remain connected only by coincidence; just assert no freeze
        assert not np.array_equal(net.positions, pos)
