"""Cross-validation against networkx reference implementations.

Our graph machinery is hand-rolled on bitmasks for speed; these tests
check it against networkx's battle-tested algorithms on random inputs —
an independent oracle the rest of the suite does not have.
"""

from __future__ import annotations

import numpy as np
import pytest

nx = pytest.importorskip("networkx")

from repro.core.properties import is_dominating
from repro.graphs import bitset
from repro.graphs.generators import random_gnp_connected
from repro.graphs.neighborhoods import components, is_connected
from repro.routing.shortest_path import bfs_distances, bfs_path


def _to_nx(adj):
    g = nx.Graph()
    g.add_nodes_from(range(len(adj)))
    for u, m in enumerate(adj):
        for v in bitset.iter_bits(m):
            if u < v:
                g.add_edge(u, v)
    return g


@pytest.fixture(scope="module")
def graph_pool():
    rng = np.random.default_rng(777)
    pool = []
    for _ in range(12):
        n = int(rng.integers(5, 30))
        p = float(rng.uniform(0.08, 0.5))
        # allow disconnected graphs too: build raw G(n, p)
        upper = rng.random((n, n)) < p
        within = np.triu(upper, k=1)
        within = within | within.T
        adj = [0] * n
        for u in range(n):
            for v in range(n):
                if within[u, v]:
                    adj[u] |= 1 << v
        pool.append(adj)
    return pool


class TestConnectivity:
    def test_is_connected_matches(self, graph_pool):
        for adj in graph_pool:
            assert is_connected(adj) == nx.is_connected(_to_nx(adj))

    def test_components_match(self, graph_pool):
        for adj in graph_pool:
            ours = sorted(
                tuple(sorted(bitset.ids_from_mask(c))) for c in components(adj)
            )
            theirs = sorted(
                tuple(sorted(c)) for c in nx.connected_components(_to_nx(adj))
            )
            assert ours == theirs


class TestDistances:
    def test_bfs_distances_match(self, graph_pool):
        for adj in graph_pool:
            g = _to_nx(adj)
            for src in range(0, len(adj), 3):
                theirs = nx.single_source_shortest_path_length(g, src)
                ours = bfs_distances(adj, src)
                for v in range(len(adj)):
                    assert ours[v] == theirs.get(v, -1)

    def test_bfs_path_lengths_match(self, graph_pool):
        rng = np.random.default_rng(3)
        for adj in graph_pool:
            g = _to_nx(adj)
            n = len(adj)
            for _ in range(5):
                s, t = rng.integers(0, n, 2)
                s, t = int(s), int(t)
                if nx.has_path(g, s, t):
                    ours = bfs_path(adj, s, t)
                    assert len(ours) - 1 == nx.shortest_path_length(g, s, t)


class TestDomination:
    def test_nx_dominating_set_passes_our_checker(self, graph_pool):
        for adj in graph_pool:
            ds = nx.dominating_set(_to_nx(adj))
            assert is_dominating(adj, set(ds))

    def test_our_cds_passes_nx_dominating_check(self):
        from repro.core.cds import compute_cds

        rng = np.random.default_rng(5)
        for _ in range(8):
            gview = random_gnp_connected(18, 0.3, rng=rng)
            r = compute_cds(gview, "nd")
            g = _to_nx(list(gview.adjacency))
            assert nx.is_dominating_set(g, set(r.gateways))
            assert nx.is_connected(g.subgraph(r.gateways))
