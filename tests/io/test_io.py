"""Serialization round-trip tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.experiments import run_figure10
from repro.errors import TopologyError
from repro.graphs.generators import paper_example_graph, random_connected_network
from repro.io.topology_io import load_network, load_view, save_network, save_view
from repro.io.traces import (
    experiment_to_csv,
    experiment_to_json,
    trials_to_csv,
    trials_to_json,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_trials


class TestTopologyRoundTrip:
    def test_network_round_trip(self, tmp_path, rng):
        net = random_connected_network(12, rng=rng)
        path = tmp_path / "net.json"
        save_network(net, path)
        loaded = load_network(path)
        assert np.allclose(loaded.positions, net.positions)
        assert loaded.radius == net.radius
        assert loaded.adjacency == net.adjacency

    def test_view_round_trip(self, tmp_path):
        view = paper_example_graph().graph
        path = tmp_path / "graph.json"
        save_view(view, path)
        assert load_view(path) == view

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(TopologyError, match="expected format"):
            load_network(path)
        with pytest.raises(TopologyError, match="expected format"):
            load_view(path)


@pytest.fixture(scope="module")
def some_trials():
    cfg = SimulationConfig(n_hosts=8, scheme="id", drain_model="linear")
    return run_trials(cfg, 3, root_seed=1, parallel=False)


class TestTraces:
    def test_trials_json(self, tmp_path, some_trials):
        path = tmp_path / "trials.json"
        trials_to_json(some_trials, path)
        doc = json.loads(path.read_text())
        assert len(doc) == 3
        assert doc[0]["lifespan"] == some_trials[0].lifespan

    def test_trials_csv(self, tmp_path, some_trials):
        path = tmp_path / "trials.csv"
        trials_to_csv(some_trials, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("lifespan,")
        assert len(lines) == 4

    def test_experiment_exports(self, tmp_path):
        result = run_figure10(
            n_values=[8], trials=2, schemes=["id", "nd"],
            root_seed=3, parallel=False,
        )
        jpath = tmp_path / "exp.json"
        cpath = tmp_path / "exp.csv"
        experiment_to_json(result, jpath)
        experiment_to_csv(result, cpath)
        doc = json.loads(jpath.read_text())
        assert doc["figure"] == "Figure 10"
        assert set(doc["series"]) == {"id", "nd"}
        rows = cpath.read_text().strip().splitlines()
        assert len(rows) == 1 + 2  # header + one row per (N, scheme)
