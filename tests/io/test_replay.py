"""Record/replay trace tests."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.io.replay import (
    SimulationTrace,
    TraceFrame,
    TraceRecorder,
    replay_trace,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator


@pytest.fixture(scope="module")
def recorded_run():
    cfg = SimulationConfig(n_hosts=12, scheme="el1", drain_model="fixed")
    sim = LifespanSimulator(cfg, rng=21)
    recorder = TraceRecorder(scheme="el1", radius=cfg.radius, side=cfg.side)
    result = sim.run(recorder=recorder)
    return result, recorder.finish()


class TestRecording:
    def test_one_frame_per_interval(self, recorded_run):
        result, trace = recorded_run
        assert len(trace.frames) == result.lifespan
        assert [f.interval for f in trace.frames] == list(
            range(1, result.lifespan + 1)
        )

    def test_frames_capture_population_state(self, recorded_run):
        _, trace = recorded_run
        first = trace.frames[0]
        assert len(first.positions) == 12
        assert len(first.energy) == 12
        assert all(e == 100.0 for e in first.energy)  # pre-drain snapshot
        assert len(first.gateways) >= 1

    def test_energy_declines_across_frames(self, recorded_run):
        _, trace = recorded_run
        totals = [sum(f.energy) for f in trace.frames]
        assert all(b < a for a, b in zip(totals, totals[1:]))


class TestReplay:
    def test_recorded_run_verifies(self, recorded_run):
        _, trace = recorded_run
        assert replay_trace(trace) == []

    def test_tampered_gateways_detected(self, recorded_run):
        _, trace = recorded_run
        f0 = trace.frames[0]
        bad_gws = tuple(g for g in f0.gateways[1:])  # drop one gateway
        tampered = dataclasses.replace(
            trace,
            frames=(dataclasses.replace(f0, gateways=bad_gws),)
            + trace.frames[1:],
        )
        assert 1 in replay_trace(tampered)

    def test_tampered_energy_detected_for_el_scheme(self, recorded_run):
        _, trace = recorded_run
        # flip the energies of a later frame where levels have diverged:
        # the EL1 key order changes, so the recomputed CDS differs
        mid = len(trace.frames) // 2
        f = trace.frames[mid]
        swapped = tuple(reversed(f.energy))
        frames = list(trace.frames)
        frames[mid] = dataclasses.replace(f, energy=swapped)
        tampered = dataclasses.replace(trace, frames=tuple(frames))
        assert replay_trace(tampered) != []


class TestSerialization:
    def test_round_trip(self, recorded_run, tmp_path):
        _, trace = recorded_run
        path = tmp_path / "run.trace.json"
        trace.save(path)
        loaded = SimulationTrace.load(path)
        assert loaded == trace
        assert replay_trace(loaded) == []

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(SimulationError, match="expected format"):
            SimulationTrace.load(path)

    def test_empty_trace_round_trip(self, tmp_path):
        trace = SimulationTrace(scheme="id", radius=25.0, side=100.0)
        path = tmp_path / "empty.json"
        trace.save(path)
        assert SimulationTrace.load(path).frames == ()
