"""Disabled-instrumentation overhead guard (acceptance: ≤ 2%).

Timing a 2% end-to-end delta directly is hopelessly noisy in CI, so the
guard is an *analytic budget*: measure (a) the per-call cost of the
disabled fast paths (no-op span, early-return counter, hoisted boolean
guard), (b) the number of instrumentation events one pipeline run emits
(from an enabled, traced run), and (c) the pipeline's disabled runtime —
then require  events × per-call-cost ≤ 2% × runtime  with the guard
volume bounded generously at four boolean checks per node.  If someone
moves a counter into an inner loop, (b) explodes and this fails.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import obs
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network

N_HOSTS = 100


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best


def _per_call_noop_span(iters: int = 20_000) -> float:
    def loop():
        span = obs.span
        for _ in range(iters):
            with span("x"):
                pass

    return _best_of(loop) / iters


def _per_call_noop_add(iters: int = 20_000) -> float:
    def loop():
        add = obs.add
        for _ in range(iters):
            add("x", 1)

    return _best_of(loop) / iters


def _per_call_guard(iters: int = 200_000) -> float:
    """Cost of one hoisted `if counting:` check on a false local bool."""

    def loop():
        counting = obs.enabled()
        acc = 0
        for _ in range(iters):
            if counting:
                acc += 1
        return acc

    return _best_of(loop) / iters


def test_disabled_overhead_budget_on_pipeline():
    net = random_connected_network(N_HOSTS, rng=42)
    snap = net.snapshot()
    energy = np.linspace(1.0, 100.0, N_HOSTS)

    # (b) instrumentation volume of one run, from a traced enabled run
    with obs.capture(trace=True) as reg:
        compute_cds(snap, "el2", energy=energy)
    n_events = len(reg.trace_events)
    n_spans = sum(s.count for s in reg.spans.values())
    assert n_events > 0 and n_spans > 0
    # the hoisted-guard volume: at most a few boolean checks per node
    n_guards = 4 * N_HOSTS

    # instrumentation must stay out of the inner loops: event count is
    # O(stages), never O(nodes) — this is the structural half of the guard
    assert n_events < 40, (
        f"{n_events} events for one compute_cds run; a counter has leaked "
        "into a hot loop"
    )

    # (a) disabled fast-path costs
    assert not obs.enabled()
    t_span = _per_call_noop_span()
    t_add = _per_call_noop_add()
    t_guard = _per_call_guard()

    # (c) disabled pipeline runtime
    t_run = _best_of(lambda: compute_cds(snap, "el2", energy=energy), repeats=7)

    budget = n_spans * t_span + n_events * t_add + n_guards * t_guard
    assert budget <= 0.02 * t_run, (
        f"disabled instrumentation budget {budget * 1e6:.1f}µs exceeds 2% of "
        f"pipeline runtime {t_run * 1e3:.3f}ms "
        f"(span {t_span * 1e9:.0f}ns, add {t_add * 1e9:.0f}ns, "
        f"guard {t_guard * 1e9:.0f}ns, {n_events} events)"
    )


def test_disabled_span_allocates_nothing():
    s1, s2 = obs.span("a"), obs.span("b")
    assert s1 is s2


def test_disabled_calls_leave_registry_untouched():
    obs.count("x")
    obs.add("y", 3)
    with obs.span("z"):
        pass
    reg = obs.get_registry()
    assert reg.counters == {} and reg.spans == {}
