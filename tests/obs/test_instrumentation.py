"""Integration: the instrumented layers publish coherent spans/counters.

These tests run real pipeline/protocol/simulation code under
``obs.capture()`` and check that the numbers the registry reports agree
with what the instrumented code returned — the counters must be *true*,
not merely present.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.cds import compute_cds
from repro.graphs.generators import random_connected_network
from repro.protocol.async_sim import run_async_cds
from repro.protocol.distributed_cds import distributed_cds
from repro.simulation.config import SimulationConfig
from repro.simulation.lifespan import LifespanSimulator


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def net():
    return random_connected_network(30, rng=17)


class TestPipelineCounters:
    def test_compute_cds_span_tree_and_counters(self, net):
        energy = np.linspace(1.0, 100.0, net.n)
        with obs.capture() as reg:
            result = compute_cds(net, "el2", energy=energy, verify=True)
        spans = reg.spans
        for path in ("cds", "cds/marking", "cds/rule1", "cds/rule2",
                     "cds/verify"):
            assert path in spans, f"missing span {path}"
        c = reg.counters
        assert c["marking.nodes_evaluated"] == net.n
        assert c["cds.size"] == result.size
        assert c["rule1.removed"] == result.stats.removed_rule1
        assert c["rule2.removed"] == result.stats.removed_rule2
        assert c["rule2.nodes_evaluated"] == (
            c["marking.marked"] - c["rule1.removed"]
        )
        # every candidate pair costs one primary coverage subset test
        assert c["rule2.coverage_tests"] >= c["rule2.firing_pairs"]
        if c["rule2.removed"]:
            assert c["rule2.candidate_rounds"] >= 1

    def test_nothing_recorded_when_disabled(self, net):
        energy = np.linspace(1.0, 100.0, net.n)
        obs.reset()
        compute_cds(net, "el2", energy=energy)
        reg = obs.get_registry()
        assert reg.counters == {} and reg.spans == {}

    def test_counters_scale_with_repetition(self, net):
        energy = np.linspace(1.0, 100.0, net.n)
        with obs.capture() as reg:
            compute_cds(net, "nd")
            compute_cds(net, "el1", energy=energy)
        assert reg.counters["cds.computed"] == 2
        assert reg.counters["marking.nodes_evaluated"] == 2 * net.n
        assert reg.spans["cds"].count == 2


class TestProtocolCounters:
    def test_sync_engine_matches_traffic_stats(self, net):
        with obs.capture() as reg:
            out = distributed_cds(net, "nd")
        c = reg.counters
        assert c["protocol.rounds"] == out.stats.rounds
        assert c["protocol.broadcasts"] == out.stats.broadcasts
        assert c["protocol.deliveries"] == out.stats.deliveries
        assert c["protocol.bytes_on_air"] == out.stats.bytes_on_air
        assert "protocol.retransmissions" not in c  # perfect channel

    def test_async_engine_matches_outcome(self, net):
        with obs.capture() as reg:
            out = run_async_cds(net, "nd", rng=3)
        c = reg.counters
        assert c["async.runs"] == 1
        assert c["async.messages_sent"] == out.messages_sent
        assert c["async.rule2_waves"] == out.rule2_waves
        assert reg.spans["async_cds"].count == 1

    def test_sync_async_agree_and_both_are_observable(self, net):
        with obs.capture() as reg:
            sync = distributed_cds(net, "nd")
            async_out = run_async_cds(net, "nd", rng=5)
        assert sync.gateways == async_out.gateways
        assert reg.counters["protocol.rounds"] > 0
        assert reg.counters["async.messages_sent"] > 0


class TestSimulationCounters:
    def test_lifespan_trial_spans_and_recompute_metrics(self):
        cfg = SimulationConfig(
            n_hosts=12, scheme="el1", drain_model="fixed", initial_energy=10.0
        )
        with obs.capture() as reg:
            result = LifespanSimulator(cfg, rng=5).run()
        c = reg.counters
        assert c["lifespan.trials"] == 1
        assert c["lifespan.intervals"] == result.lifespan
        assert c["interval.count"] == result.lifespan
        assert reg.spans["trial"].count == 1
        assert reg.spans["trial/interval"].count == result.lifespan
        assert "trial/interval/cds" in reg.spans
        assert "trial/interval/drain" in reg.spans
        # recompute-stability: changes can't exceed recomputations
        assert c.get("lifespan.cds_changed", 0) <= result.lifespan - 1
        assert c.get("interval.topology_changed", 0) <= result.lifespan
