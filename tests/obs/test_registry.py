"""Unit tests for the observability core (repro.obs.registry)."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import registry as reg_mod


@pytest.fixture(autouse=True)
def _clean_state():
    """Every test starts disabled with a fresh registry."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestEnableDisable:
    def test_disabled_by_default_in_suite(self):
        assert not obs.enabled()

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_counters_are_noops_when_disabled(self):
        obs.count("x")
        obs.add("y", 10)
        assert obs.get_registry().counters == {}

    def test_disabled_span_is_shared_noop(self):
        a = obs.span("a")
        b = obs.span("b")
        assert a is b  # no allocation on the fast path
        with a:
            obs.count("inside")
        assert obs.get_registry().spans == {}


class TestCounters:
    def test_count_and_add_accumulate(self):
        obs.enable()
        obs.count("hits")
        obs.count("hits", 4)
        obs.add("bytes", 2.5)
        c = obs.get_registry().counters
        assert c["hits"] == 5
        assert c["bytes"] == 2.5

    def test_counters_attributed_to_innermost_span(self):
        obs.enable()
        with obs.span("outer"):
            obs.count("a")
            with obs.span("inner"):
                obs.count("b", 3)
        spans = obs.get_registry().spans
        assert spans["outer"].counters == {"a": 1}
        assert spans["outer/inner"].counters == {"b": 3}


class TestSpans:
    def test_nesting_builds_paths(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
            with obs.span("b"):
                pass
        spans = obs.get_registry().spans
        assert spans["a"].count == 1
        assert spans["a/b"].count == 2
        assert spans["a/b"].total_s >= spans["a/b"].max_s > 0.0
        assert spans["a/b"].min_s <= spans["a/b"].mean_s <= spans["a/b"].max_s

    def test_span_pops_stack_on_exception(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                raise ValueError("boom")
        assert obs.current_path() == ""
        assert obs.get_registry().spans["outer"].count == 1

    def test_span_stack_is_thread_local(self):
        obs.enable()
        seen: list[str] = []

        def worker():
            with obs.span("w"):
                seen.append(obs.current_path())

        with obs.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert obs.current_path() == "main"
        assert seen == ["w"]

    def test_timed_decorator(self):
        obs.enable()

        @obs.timed("fn")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert obs.get_registry().spans["fn"].count == 1


class TestProcessSafety:
    def test_registry_is_per_pid(self, monkeypatch):
        obs.enable()
        obs.count("parent")
        parent = obs.get_registry()
        # simulate a forked worker: same module state, different pid
        monkeypatch.setattr(reg_mod.os, "getpid", lambda: 999_999_999)
        child = obs.get_registry()
        assert child is not parent
        assert child.counters == {}
        obs.count("child")
        assert parent.counters == {"parent": 1}

    def test_snapshot_merge_roundtrip(self):
        obs.enable()
        with obs.span("stage"):
            obs.count("n", 2)
        snap = obs.get_registry().snapshot()
        fresh = reg_mod.Registry()
        fresh.merge(snap)
        fresh.merge(snap)
        assert fresh.counters["n"] == 4
        assert fresh.spans["stage"].count == 2
        assert fresh.spans["stage"].counters["n"] == 4


class TestCapture:
    def test_capture_scopes_enablement_and_registry(self):
        assert not obs.enabled()
        with obs.capture() as reg:
            assert obs.enabled()
            obs.count("x")
            assert obs.get_registry() is reg
        assert not obs.enabled()
        # the captured registry stays readable; the live one is fresh
        assert reg.counters == {"x": 1}
        assert obs.get_registry() is not reg

    def test_capture_restores_prior_enabled_state(self):
        obs.enable()
        with obs.capture():
            pass
        assert obs.enabled()

    def test_capture_trace_buffers_events(self):
        with obs.capture(trace=True) as reg:
            with obs.span("s"):
                obs.count("c")
        assert reg.trace_events is not None
        kinds = [e["ev"] for e in reg.trace_events]
        assert kinds == ["count", "span"]


class TestIsolatedCapture:
    """isolated_capture: the executor's per-shard capture primitive."""

    def test_restores_outer_registry_object(self):
        with obs.capture() as outer:
            obs.count("outer")
            with obs.isolated_capture() as inner:
                obs.count("inner")
            assert obs.get_registry() is outer
            obs.count("outer")
        assert outer.counters == {"outer": 2}
        assert inner.counters == {"inner": 1}

    def test_restores_disabled_state(self):
        assert not obs.enabled()
        with obs.isolated_capture():
            assert obs.enabled()
        assert not obs.enabled()

    def test_span_paths_ignore_enclosing_spans(self):
        # a shard measured under an open caller span must record the same
        # paths as one measured in a worker (where the stack is empty)
        with obs.capture():
            with obs.span("outer"):
                with obs.isolated_capture() as inner:
                    with obs.span("trial"):
                        obs.count("c")
                assert reg_mod.current_path() == "outer"
        assert set(inner.spans) == {"trial"}
        assert inner.spans["trial"].counters == {"c": 1}

    def test_snapshot_merges_into_parent(self):
        with obs.capture() as outer:
            with obs.isolated_capture() as inner:
                obs.count("c", 3)
            obs.get_registry().merge(inner.snapshot())
        assert outer.counters == {"c": 3}
