"""Exporter tests: the profile table and the JSON-lines trace."""

from __future__ import annotations

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _sample_registry(trace: bool = False):
    with obs.capture(trace=trace) as reg:
        with obs.span("pipeline"):
            with obs.span("marking"):
                obs.add("marking.nodes", 40)
            with obs.span("rules"):
                obs.add("rules.tests", 123)
        obs.count("runs")
    return reg


class TestRenderProfile:
    def test_tree_indentation_and_counters(self):
        text = obs.render_profile(_sample_registry())
        lines = text.splitlines()
        assert any(line.startswith("pipeline") for line in lines)
        assert any(line.startswith("  marking") for line in lines)
        assert "· marking.nodes = 40" in text
        assert "· rules.tests = 123" in text
        assert "runs" in text

    def test_children_follow_parents(self):
        text = obs.render_profile(_sample_registry())
        assert text.index("pipeline") < text.index("marking") < text.index(
            "rules"
        )

    def test_accepts_snapshot_dict(self):
        reg = _sample_registry()
        assert obs.render_profile(reg.snapshot()) == obs.render_profile(reg)

    def test_empty_registry_renders(self):
        with obs.capture() as reg:
            pass
        text = obs.render_profile(reg)
        assert "no spans" in text

    def test_profile_dict_is_json_serializable(self):
        d = obs.profile_dict(_sample_registry())
        json.dumps(d)
        assert d["counters"]["runs"] == 1
        assert d["spans"]["pipeline/marking"]["count"] == 1


class TestJsonlTrace:
    def test_writes_one_json_object_per_line(self, tmp_path):
        reg = _sample_registry(trace=True)
        out = tmp_path / "trace.jsonl"
        n = obs.write_jsonl_trace(reg, out)
        lines = out.read_text().splitlines()
        assert len(lines) == n > 0
        events = [json.loads(line) for line in lines]
        span_paths = {e["path"] for e in events if e["ev"] == "span"}
        assert {"pipeline", "pipeline/marking", "pipeline/rules"} <= span_paths
        count_events = [e for e in events if e["ev"] == "count"]
        assert {e["name"] for e in count_events} == {
            "marking.nodes", "rules.tests", "runs",
        }
        # timestamps are monotonic non-negative offsets from registry birth
        assert all(e["t"] >= 0.0 for e in events)

    def test_untrace_registry_refuses(self, tmp_path):
        reg = _sample_registry(trace=False)
        with pytest.raises(ValueError, match="no trace buffer"):
            obs.write_jsonl_trace(reg, tmp_path / "x.jsonl")
