"""Rule-k generalization tests (Dai–Wu extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.marking import marked_mask
from repro.core.priority import scheme_by_name
from repro.core.properties import is_cds
from repro.core.rule_k import compute_cds_rule_k, rule_k_pass
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.generators import (
    from_edges,
    path_graph,
    random_gnp_connected,
    star_graph,
)


class TestMechanics:
    def test_singleton_coverage_matches_rule1(self):
        # figure3a shape: N[0] within N[1], both marked, key(0) < key(1)
        g = from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (1, 4)])
        marked = marked_mask(g.adjacency)
        after = rule_k_pass(g.adjacency, marked, scheme_by_name("id"))
        assert bitset.ids_from_mask(after) == [1]

    def test_three_node_coverage_beyond_rule2(self):
        # hub 0 surrounded by a 6-cycle 1..6: no pair of neighbors covers
        # N(0) (each pair's neighborhoods miss the opposite side), but the
        # full ring does, and every ring node outranks 0 by id
        ring = [(i, i % 6 + 1) for i in range(1, 7)]
        spokes = [(0, i) for i in range(1, 7)]
        g = from_edges(7, ring + spokes)
        marked = marked_mask(g.adjacency)
        assert marked >> 0 & 1  # hub is marked
        after_pairs = compute_cds(g, "id").gateway_mask
        after_k = rule_k_pass(g.adjacency, marked, scheme_by_name("id"))
        assert after_pairs >> 0 & 1  # pair rules keep the hub
        assert not after_k >> 0 & 1  # rule-k removes it
        assert is_cds(g.adjacency, after_k)

    def test_requires_strictly_higher_priority(self):
        # same hub topology but give the hub the HIGHEST id: nothing
        # outranks it, so rule-k keeps it
        ring = [(i, (i + 1) % 6) for i in range(6)]  # 0..5 cycle
        spokes = [(6, i) for i in range(6)]
        g = from_edges(7, ring + spokes)
        marked = marked_mask(g.adjacency)
        after = rule_k_pass(g.adjacency, marked, scheme_by_name("id"))
        assert after >> 6 & 1

    def test_energy_key_supported(self):
        g = star_graph(5)
        out = compute_cds_rule_k(g, "el1", energy=[5.0] * 5)
        assert out == {0}

    def test_missing_energy_rejected(self):
        g = path_graph(4)
        with pytest.raises(ConfigurationError):
            compute_cds_rule_k(g, "el2")

    def test_nr_scheme_returns_marking(self):
        g = path_graph(6)
        assert compute_cds_rule_k(g, "nr") == frozenset({1, 2, 3, 4})


class TestInvariants:
    @pytest.mark.parametrize("scheme", ["id", "nd", "el1", "el2"])
    def test_cds_preserved_on_random_graphs(self, scheme):
        rng = np.random.default_rng(hash(scheme) % 2**32)
        for _ in range(40):
            n = int(rng.integers(4, 24))
            g = random_gnp_connected(n, float(rng.uniform(0.15, 0.6)), rng=rng)
            energy = rng.integers(1, 6, n).astype(float)
            out = compute_cds_rule_k(g, scheme, energy=energy)
            if out:
                assert is_cds(g.adjacency, out), scheme

    def test_subset_of_marked(self, random_graphs):
        for g, energy in random_graphs:
            marked = marked_mask(g.adjacency)
            out = compute_cds_rule_k(g, "nd", energy=energy)
            assert bitset.mask_from_ids(out) & ~marked == 0

    def test_often_not_larger_than_pair_rules(self, random_graphs):
        wins = losses = 0
        for g, energy in random_graphs:
            rk = len(compute_cds_rule_k(g, "id", energy=energy))
            r2 = compute_cds(g, "id", energy=energy).size
            if rk < r2:
                wins += 1
            elif rk > r2:
                losses += 1
        # arbitrary-size coverage usually prunes at least as much under ID
        assert wins >= losses
