"""Memory-budget plumbing and peak-memory regression tests (ISSUE 9).

Two satellite contracts live here:

* the chunk budgets (``chunk_words``/``chunk_bits``, historically the
  hardcoded ``_CHUNK_WORDS``/``_CHUNK_BITS``) are configurable through
  an explicit ``memory_budget_mb``, the ``REPRO_MEMORY_BUDGET_MB``
  environment variable, and :class:`SimulationConfig` — with explicit >
  env > default precedence — and NO budget value may ever change
  results, only peak memory and speed;
* a ``tracemalloc`` regression test pins the peak-memory model at
  N=4096: one interval's worth of CDS work on both the vectorized and
  sparse engines must stay under ``PEAK_LIMIT_X`` times
  ``max(csr_bytes, budget_bytes)``.  The streamed kernels materialize
  roughly 7-8 budget-sized temporaries per chunk, so the honest peak is
  ~8-10x the budget; 16x (matching ``PEAK_OVER_BUDGET_LIMIT`` in
  ``benchmarks/bench_sparse.py``) leaves headroom for allocator noise
  without letting an accidental full densification (O(n^2) bytes,
  hundreds of times the budget at this size) slip through.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.sparse import CSRBatch, SparseCDSEngine
from repro.core.vectorized import (
    DEFAULT_MEMORY_BUDGET_MB,
    MEMORY_BUDGET_ENV,
    BatchCDSEngine,
    chunk_bits,
    chunk_words,
    compute_cds_batch,
    pack_batch,
    resolve_memory_budget_mb,
)
from repro.errors import ConfigurationError
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import scaled_side
from repro.simulation.config import SimulationConfig

RADIUS = 25.0

#: documented multiple of max(CSR bytes, budget bytes) the N=4096 peak
#: must stay under (see module docstring for the 7-8x temporaries model).
PEAK_LIMIT_X = 16.0


class TestBudgetResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(MEMORY_BUDGET_ENV, raising=False)
        assert resolve_memory_budget_mb() == DEFAULT_MEMORY_BUDGET_MB

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "12.5")
        assert resolve_memory_budget_mb() == 12.5

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "12.5")
        assert resolve_memory_budget_mb(3.0) == 3.0

    @pytest.mark.parametrize("bad", ["-1", "0", "not-a-number"])
    def test_bad_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(MEMORY_BUDGET_ENV, bad)
        with pytest.raises(ConfigurationError):
            resolve_memory_budget_mb()

    def test_bad_explicit_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_memory_budget_mb(0.0)

    def test_defaults_reproduce_historical_constants(self, monkeypatch):
        monkeypatch.delenv(MEMORY_BUDGET_ENV, raising=False)
        assert chunk_words() == 1 << 22
        assert chunk_bits() == 1 << 26

    def test_chunks_scale_and_floor(self):
        assert chunk_words(128.0) == 2 * (1 << 22)
        assert chunk_bits(32.0) == 1 << 25
        assert chunk_words(0.001) == 1 << 12  # floor
        assert chunk_bits(0.001) == 1 << 15  # floor

    def test_config_accepts_and_validates_budget(self):
        cfg = SimulationConfig(n_hosts=20, memory_budget_mb=8.0)
        assert cfg.memory_budget_mb == 8.0
        with pytest.raises(ConfigurationError):
            SimulationConfig(n_hosts=20, memory_budget_mb=-1.0)


class TestBudgetNeverChangesResults:
    def test_env_budget_bit_identity(self, monkeypatch):
        n = 120
        side = scaled_side(n)
        rng = np.random.default_rng(17)
        net = AdHocNetwork(rng.uniform(0, side, size=(n, 2)), RADIUS, side=side)
        adj = [list(net.adjacency)]
        energies = rng.uniform(50, 150, size=(1, n))

        monkeypatch.delenv(MEMORY_BUDGET_ENV, raising=False)
        want = compute_cds_batch(adj, "el2", energies=energies)
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "0.01")
        got = compute_cds_batch(adj, "el2", energies=energies)
        assert [r.gateway_mask for r in got] == [r.gateway_mask for r in want]
        assert [r.stats for r in got] == [r.stats for r in want]


def _n4096_instance(seed: int = 123):
    n = 4096
    side = scaled_side(n)
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, side, size=(n, 2))
    energy = rng.uniform(50, 150, size=(1, n))
    return pos, energy


def _peak_of(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


@pytest.mark.slow
class TestPeakMemoryRegression:
    """Peak memory at N=4096 under an 8 MB budget stays within the
    documented model.  Measured 2026-08: sparse ~9.3x, dense ~10.2x."""

    BUDGET_MB = 8.0

    def test_sparse_interval_peak(self):
        pos, energy = _n4096_instance()
        limit = None

        def run():
            nonlocal limit
            csr = CSRBatch.from_positions(
                pos, RADIUS, memory_budget_mb=self.BUDGET_MB
            )
            limit = PEAK_LIMIT_X * max(
                csr.nbytes, self.BUDGET_MB * 2**20
            )
            SparseCDSEngine(
                "el2", memory_budget_mb=self.BUDGET_MB
            ).run(csr, energy)

        peak = _peak_of(run)
        assert peak < limit, f"sparse peak {peak/2**20:.1f} MB over model"

    def test_vectorized_interval_peak(self):
        pos, energy = _n4096_instance()
        net = AdHocNetwork(pos.copy(), RADIUS, side=scaled_side(4096))
        packed = pack_batch([list(net.adjacency)])
        csr_bytes = CSRBatch.from_adjacency([list(net.adjacency)]).nbytes
        limit = PEAK_LIMIT_X * max(csr_bytes, self.BUDGET_MB * 2**20)
        peak = _peak_of(
            lambda: BatchCDSEngine(
                "el2", memory_budget_mb=self.BUDGET_MB
            ).run(packed, energy)
        )
        assert peak < limit, f"dense peak {peak/2**20:.1f} MB over model"
