"""Priority scheme unit tests."""

from __future__ import annotations

import pytest

from repro.core.priority import (
    PAPER_SERIES_ORDER,
    SCHEMES,
    scheme_by_name,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_all_paper_series_registered(self):
        assert set(PAPER_SERIES_ORDER) == set(SCHEMES)

    def test_paper_series_order_is_public(self):
        # plotting/CLI code star-imports the series order; keep it exported
        import repro.core.priority as mod

        assert "PAPER_SERIES_ORDER" in mod.__all__

    def test_lookup_is_case_insensitive(self):
        assert scheme_by_name("EL1") is SCHEMES["el1"]
        assert scheme_by_name("Nd") is SCHEMES["nd"]

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigurationError, match="unknown priority scheme"):
            scheme_by_name("power")

    def test_nr_disables_rules(self):
        assert not SCHEMES["nr"].uses_rules
        assert all(SCHEMES[s].uses_rules for s in ("id", "nd", "el1", "el2"))

    def test_only_original_id_skips_coverage_cases(self):
        assert not SCHEMES["id"].uses_coverage_cases
        assert all(
            SCHEMES[s].uses_coverage_cases for s in ("nd", "el1", "el2")
        )

    def test_energy_requirement_flags(self):
        assert SCHEMES["el1"].needs_energy and SCHEMES["el2"].needs_energy
        assert not SCHEMES["id"].needs_energy and not SCHEMES["nd"].needs_energy


class TestKeyOrdering:
    DEGREES = [3, 5, 5, 2]
    ENERGY = [4.0, 4.0, 2.0, 9.0]

    def _key(self, scheme, v):
        return scheme_by_name(scheme).key(v, self.DEGREES, self.ENERGY)

    def test_id_key_is_pure_id(self):
        keys = [self._key("id", v) for v in range(4)]
        assert keys == sorted(keys)

    def test_nd_breaks_ties_by_id(self):
        # nodes 1 and 2 share degree 5; id orders them
        assert self._key("nd", 1) < self._key("nd", 2)
        # node 3 (degree 2) ranks below everyone
        assert self._key("nd", 3) < self._key("nd", 0)

    def test_el1_orders_by_energy_then_id(self):
        assert self._key("el1", 2) < self._key("el1", 0)  # 2.0 < 4.0
        assert self._key("el1", 0) < self._key("el1", 1)  # tie -> id
        assert max(range(4), key=lambda v: self._key("el1", v)) == 3

    def test_el2_inserts_degree_between_energy_and_id(self):
        # 0 and 1 tie on energy 4.0; degree 3 < 5 ranks 0 lower
        assert self._key("el2", 0) < self._key("el2", 1)

    def test_keys_are_distinct_total_order(self):
        for name in SCHEMES:
            keys = [self._key(name, v) for v in range(4)]
            assert len(set(keys)) == 4


class TestQuantization:
    def test_float_noise_is_absorbed(self):
        sch = scheme_by_name("el1")
        a = sch.key(0, [1, 1], [5.0, 5.0 + 1e-12])
        b = sch.key(1, [1, 1], [5.0, 5.0 + 1e-12])
        # energies quantize equal, so id decides
        assert a[0] == b[0] and a < b

    def test_exact_mode_preserves_tiny_differences(self):
        from dataclasses import replace

        sch = replace(scheme_by_name("el1"), quantum=None)
        a = sch.key(0, [1, 1], [5.0, 5.0 + 1e-12])
        b = sch.key(1, [1, 1], [5.0, 5.0 + 1e-12])
        assert a[0] < b[0]

    def test_energy_defaults_to_zero_without_levels(self):
        sch = scheme_by_name("el1")
        assert sch.key(1, [2, 2], None)[0] == 0.0

    @pytest.mark.parametrize("name", ["el1", "el2"])
    def test_1e15_apart_energies_compare_equal_under_el_keys(self, name):
        # Two batteries whose float representations differ by 1e-15 are
        # physically identical; the EL orders must treat them as a tie and
        # fall through to the deterministic tie-breakers, or the pruning
        # order (and hence the CDS) would depend on accumulation noise.
        sch = scheme_by_name(name)
        energy = [3.0, 3.0 + 1e-15]
        assert energy[0] != energy[1]  # the raw floats do differ
        a = sch.key(0, [4, 2], energy)
        b = sch.key(1, [4, 2], energy)
        assert a[0] == b[0], "energy component must quantize equal"
        assert a != b, "tie-breakers must still produce a total order"
        if name == "el2":
            # el2 breaks the energy tie on degree before id
            assert a[1] == 4 and b[1] == 2 and b < a

    @pytest.mark.parametrize("name", ["el1", "el2"])
    def test_el_keys_order_by_keys_list_too(self, name):
        # same tie observed through the bulk keys() path the engines use
        sch = scheme_by_name(name)
        keys = sch.keys([1, 1], [7.0 + 1e-15, 7.0])
        assert keys[0][0] == keys[1][0]
        assert keys[0] < keys[1]  # id 0 loses the tie-break
