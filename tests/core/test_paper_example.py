"""The paper's §3.3 worked example, executed.

Every claim the paper makes about Figures 6–9 is asserted here against the
reconstructed 27-node topology.  Labels are 1-based (paper figures);
``ex.labels`` converts dense ids back.
"""

from __future__ import annotations

import pytest

from repro.core.cds import compute_cds
from repro.core.marking import marked_set, node_is_marked
from repro.core.properties import is_cds, shortest_paths_use_gateways
from repro.core.rules import apply_rule1, apply_rule2
from repro.core.priority import scheme_by_name
from repro.graphs import bitset

# expected outcomes, all 1-based labels, derived by hand from the paper
MARKED = {2, 4, 9, 10, 11, 13, 15, 18, 20, 21, 22, 27}
FINAL = {
    "nr": MARKED,
    "id": {4, 9, 10, 11, 13, 15, 18, 20, 22, 27},
    "nd": {2, 4, 11, 15, 20, 22},
    "el1": {4, 9, 11, 15, 20, 22, 27},
    "el2": {2, 4, 11, 15, 20, 22},
}


def _ids(labels):
    return {x - 1 for x in labels}


class TestReconstructionMatchesPaperText:
    """The stated neighbor sets of §3.3 hold in the reconstruction."""

    def test_neighbor_sets_of_named_nodes(self, paper_example):
        g = paper_example.graph
        nb = lambda label: {u + 1 for u in g.neighbors(label - 1)}
        assert nb(1) == {2, 4}
        assert nb(2) == {1, 3, 4, 5, 6, 7, 8, 9}
        assert nb(4) == {1, 2, 3, 9, 10, 11}
        assert nb(9) == {2, 4, 5, 6, 7, 8, 10}
        assert nb(21) == {22, 23, 24}
        assert nb(22) == {20, 21, 23, 24, 25, 26, 27}
        assert nb(27) == {22, 25, 26}

    def test_stated_coverage_relations(self, paper_example):
        adj = paper_example.graph.adjacency

        def open_set(label):
            return adj[label - 1]

        def closed(label):
            return adj[label - 1] | (1 << (label - 1))

        # Rule 1 examples: N[21] ⊆ N[22], N[27] ⊆ N[22]
        assert bitset.is_subset(closed(21), closed(22))
        assert bitset.is_subset(closed(27), closed(22))
        # Rule 2 examples around nodes 2, 4, 9
        assert bitset.is_subset(open_set(2), open_set(4) | open_set(9))
        assert bitset.is_subset(open_set(9), open_set(2) | open_set(4))
        assert not bitset.is_subset(open_set(4), open_set(2) | open_set(9))
        # around 11, 13, 15
        assert bitset.is_subset(open_set(13), open_set(11) | open_set(15))
        assert bitset.is_subset(open_set(15), open_set(11) | open_set(13))
        assert not bitset.is_subset(open_set(11), open_set(13) | open_set(15))
        # around 11, 18, 20
        assert bitset.is_subset(open_set(18), open_set(11) | open_set(20))
        assert not bitset.is_subset(open_set(11), open_set(18) | open_set(20))
        assert not bitset.is_subset(open_set(20), open_set(11) | open_set(18))

    def test_energy_relations(self, paper_example):
        el = lambda label: paper_example.energy[label - 1]
        assert el(21) < el(22)           # Rule 1b removes 21
        assert el(22) == el(27)          # Rule 1b keeps 27; 1b' removes it
        assert el(2) == el(9)            # Rule 2b: ID breaks the tie
        assert el(13) == el(15)          # Rule 2b: ID breaks the tie
        assert el(18) == min(el(11), el(18), el(20))  # paper's remark


class TestMarkingProcess:
    def test_marked_set_matches_figure(self, paper_example):
        got = paper_example.labels(marked_set(paper_example.graph))
        assert got == MARKED

    def test_node_1_unmarked_node_4_marked(self, paper_example):
        # the paper's §3.3 walkthrough of the marking step
        adj = paper_example.graph.adjacency
        assert not node_is_marked(adj, 0)   # node 1: neighbors 2,4 connected
        assert node_is_marked(adj, 3)       # node 4: 3 and 9 unconnected

    def test_marked_set_is_cds_with_property3(self, paper_example):
        adj = paper_example.graph.adjacency
        mask = bitset.mask_from_ids(_ids(MARKED))
        assert is_cds(adj, mask)
        assert shortest_paths_use_gateways(adj, mask)


class TestRule1Variants:
    def test_rule1_id_removes_only_21(self, paper_example):
        after = apply_rule1(
            paper_example.graph.adjacency, _ids(MARKED), scheme_by_name("id")
        )
        assert paper_example.labels(after) == MARKED - {21}

    def test_rule1a_removes_21_and_27(self, paper_example):
        after = apply_rule1(
            paper_example.graph.adjacency, _ids(MARKED), scheme_by_name("nd")
        )
        removed = MARKED - paper_example.labels(after)
        assert {21, 27} <= removed
        # 10 is additionally covered by 4 with smaller degree — a removal
        # the paper's partial figure neither shows nor contradicts
        assert removed <= {10, 21, 27}

    def test_rule1b_removes_21_not_27(self, paper_example):
        after = apply_rule1(
            paper_example.graph.adjacency,
            _ids(MARKED),
            scheme_by_name("el1"),
            energy=paper_example.energy,
        )
        removed = MARKED - paper_example.labels(after)
        assert 21 in removed
        assert 27 not in removed  # EL tie with 22, larger id keeps it

    def test_rule1b_prime_removes_21_and_27(self, paper_example):
        after = apply_rule1(
            paper_example.graph.adjacency,
            _ids(MARKED),
            scheme_by_name("el2"),
            energy=paper_example.energy,
        )
        removed = MARKED - paper_example.labels(after)
        assert {21, 27} <= removed


class TestRule2Variants:
    def test_rule2_id_removes_2(self, paper_example):
        after = apply_rule2(
            paper_example.graph.adjacency, _ids(MARKED), scheme_by_name("id")
        )
        assert 2 in MARKED - paper_example.labels(after)

    def test_rule2a_removes_9_13_18(self, paper_example):
        after = apply_rule2(
            paper_example.graph.adjacency, _ids(MARKED), scheme_by_name("nd")
        )
        removed = MARKED - paper_example.labels(after)
        assert {9, 13, 18} <= removed
        assert 2 not in removed  # nd(2)=8 > nd(9)=7: 2 survives under ND

    def test_rule2b_removes_2_13_18(self, paper_example):
        after = apply_rule2(
            paper_example.graph.adjacency,
            _ids(MARKED),
            scheme_by_name("el1"),
            energy=paper_example.energy,
        )
        removed = MARKED - paper_example.labels(after)
        assert {2, 13, 18} <= removed
        assert 9 not in removed  # EL tie with 2; id(2) < id(9) removes 2

    def test_rule2b_prime_removes_9_13_18(self, paper_example):
        after = apply_rule2(
            paper_example.graph.adjacency,
            _ids(MARKED),
            scheme_by_name("el2"),
            energy=paper_example.energy,
        )
        removed = MARKED - paper_example.labels(after)
        assert {9, 13, 18} <= removed
        assert 2 not in removed  # EL tie, but nd(9) < nd(2) removes 9


class TestFullPipeline:
    @pytest.mark.parametrize("scheme", sorted(FINAL))
    def test_final_gateway_sets(self, paper_example, scheme):
        result = compute_cds(
            paper_example.graph,
            scheme,
            energy=paper_example.energy,
            verify=True,
        )
        assert paper_example.labels(result.gateways) == FINAL[scheme]

    @pytest.mark.parametrize("scheme", sorted(FINAL))
    def test_every_final_set_is_cds(self, paper_example, scheme):
        result = compute_cds(
            paper_example.graph, scheme, energy=paper_example.energy
        )
        assert is_cds(paper_example.graph.adjacency, result.gateway_mask)

    def test_nd_and_el2_give_smallest_sets(self, paper_example):
        """The paper's Figure 10 claim, on the worked example."""
        sizes = {
            s: compute_cds(
                paper_example.graph, s, energy=paper_example.energy
            ).size
            for s in FINAL
        }
        assert sizes["nd"] == min(sizes.values())
        assert sizes["el2"] == min(sizes.values())
        assert sizes["nr"] == max(sizes.values())

    def test_stats_account_for_all_removals(self, paper_example):
        r = compute_cds(paper_example.graph, "id")
        assert r.stats.initial_marked == len(MARKED)
        assert r.stats.final_size == r.size
        assert r.stats.removed_rule1 == 1   # node 21
        assert r.stats.removed_rule2 == 1   # node 2
