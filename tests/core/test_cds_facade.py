"""compute_cds facade and reduction pipeline tests."""

from __future__ import annotations

import pytest

from repro.core.cds import compute_cds
from repro.core.priority import scheme_by_name
from repro.core.properties import is_cds
from repro.core.reduction import prune
from repro.core.marking import marked_mask
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.generators import (
    clique,
    from_edges,
    path_graph,
    random_gnp_connected,
)


class TestFacade:
    def test_accepts_view_network_and_raw_adjacency(self, small_network):
        by_net = compute_cds(small_network, "id")
        by_view = compute_cds(small_network.snapshot(), "id")
        by_raw = compute_cds(list(small_network.adjacency), "id")
        assert by_net.gateways == by_view.gateways == by_raw.gateways

    def test_scheme_object_and_name_agree(self, small_network):
        a = compute_cds(small_network, "nd")
        b = compute_cds(small_network, scheme_by_name("nd"))
        assert a.gateways == b.gateways

    def test_el_scheme_without_energy_raises(self, small_network):
        with pytest.raises(ConfigurationError, match="energy"):
            compute_cds(small_network, "el1")

    def test_energy_length_mismatch_raises(self, small_network):
        with pytest.raises(ConfigurationError, match="entries"):
            compute_cds(small_network, "el1", energy=[1.0, 2.0])

    def test_result_accessors_agree(self, small_network):
        r = compute_cds(small_network, "id")
        assert r.size == len(r.gateways)
        assert r.gateways == set(bitset.ids_from_mask(r.gateway_mask))
        vec = r.status_vector()
        assert all(vec[v] == r.is_gateway(v) for v in range(r.n))
        assert r.n == small_network.n

    def test_clique_yields_empty_set(self):
        r = compute_cds(clique(5), "id", verify=True)  # verify skips empty
        assert r.size == 0

    def test_verify_flag_checks_invariants(self, small_network):
        r = compute_cds(small_network, "nd", verify=True)
        assert is_cds(small_network.adjacency, r.gateway_mask)


class TestReduction:
    def test_nr_scheme_is_identity(self, small_network):
        adj = list(small_network.adjacency)
        marked = marked_mask(adj)
        out, stats = prune(adj, marked, scheme_by_name("nr"))
        assert out == marked
        assert stats.rounds == 0
        assert stats.removed_rule1 == stats.removed_rule2 == 0

    def test_stats_are_consistent(self, small_network):
        r = compute_cds(small_network, "nd")
        s = r.stats
        assert s.initial_marked - s.removed_rule1 - s.removed_rule2 == r.size
        assert s.rounds == 1  # paper mode: single pass

    def test_fixed_point_never_larger_and_still_cds(self, random_graphs):
        for g, energy in random_graphs:
            single = compute_cds(g, "nd")
            fp = compute_cds(g, "nd", fixed_point=True)
            assert fp.size <= single.size
            if fp.size:
                assert is_cds(g.adjacency, fp.gateway_mask)

    def test_fixed_point_terminates_and_reports_rounds(self):
        g = path_graph(30)
        r = compute_cds(g, "id", fixed_point=True)
        assert r.stats.rounds >= 1
        assert is_cds(g.adjacency, r.gateway_mask)

    def test_pruned_set_is_subset_of_marked(self, random_graphs):
        for g, energy in random_graphs:
            marked = marked_mask(g.adjacency)
            for scheme in ("id", "nd", "el1", "el2"):
                r = compute_cds(g, scheme, energy=energy)
                assert bitset.is_subset(r.gateway_mask, marked)


class TestDeterminism:
    def test_same_input_same_output(self, random_graphs):
        g, energy = random_graphs[0]
        a = compute_cds(g, "el2", energy=energy)
        b = compute_cds(g, "el2", energy=energy)
        assert a.gateway_mask == b.gateway_mask

    def test_energy_perturbation_below_quantum_is_ignored(self):
        g = from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (1, 4)])
        base = [3.0, 3.0, 1.0, 1.0, 1.0]
        bumped = [3.0 + 1e-13, 3.0, 1.0, 1.0, 1.0]
        assert (
            compute_cds(g, "el1", energy=base).gateways
            == compute_cds(g, "el1", energy=bumped).gateways
        )
