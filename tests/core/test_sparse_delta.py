"""Unit tests for the incremental sparse pipeline (ISSUE 10).

The hypothesis equivalence grid lives in
``tests/property/test_sparse_delta_properties.py``; this file pins the
mechanics with deterministic cases: CSR patching equals a from-scratch
build, the short-circuit returns the cached result, component split/merge
churn stays bit-identical to the scalar oracle, cold restarts trigger on
shape changes, and the mobility manager's lazy path never materializes
the Python adjacency for position-native consumers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.sparse import CSRBatch, SparseCDSPipeline
from repro.core.sparse_delta import IncrementalSparseCDSPipeline, sub_csr
from repro.errors import ConfigurationError
from repro.geometry.space import Region2D
from repro.graphs.generators import random_connected_network
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk


def _assert_matches_scratch(net, result, scheme, energy):
    want = compute_cds(net.snapshot(), scheme, energy=energy)
    assert result.gateway_mask == want.gateway_mask
    assert result.stats == want.stats


class TestCSRPatching:
    def test_patched_csr_equals_full_rebuild(self, rng):
        net = random_connected_network(70, side=100.0, radius=25.0, rng=rng)
        pipe = IncrementalSparseCDSPipeline("id")
        pipe.compute(net)
        walk = PaperWalk(stability=0.4)
        region = Region2D(side=100.0)
        for _ in range(6):
            walk.step(net.positions, region, rng)
            net.invalidate()
            pipe.compute(net)
            want = CSRBatch.from_positions(net.positions, net.radius)
            got = pipe._csr
            assert np.array_equal(got.indptr, want.indptr)
            assert np.array_equal(got.dst, want.dst)

    def test_sub_csr_restriction(self):
        # two triangles 0-1-2 and 3-4-5; restrict to the second
        adj = [0b110, 0b101, 0b011, 0, 0, 0]
        adj[3] |= (1 << 4) | (1 << 5)
        adj[4] |= (1 << 3) | (1 << 5)
        adj[5] |= (1 << 3) | (1 << 4)
        csr = CSRBatch.from_adjacency([adj])
        sub = sub_csr(csr, np.array([3, 4, 5], dtype=np.int64))
        want = CSRBatch.from_adjacency([[0b110, 0b101, 0b011]])
        assert np.array_equal(sub.indptr, want.indptr)
        assert np.array_equal(sub.dst, want.dst)


class TestShortCircuit:
    def test_incremental_returns_cached_result_object(self, rng):
        net = random_connected_network(40, side=100.0, radius=25.0, rng=rng)
        energy = [100.0] * 40
        pipe = IncrementalSparseCDSPipeline("el2")
        first = pipe.compute(net, energy=energy)
        again = pipe.compute(net, energy=list(energy))
        assert again is first  # nothing changed: cached object comes back

    def test_stateless_pipeline_short_circuits_too(self, rng):
        """Satellite: ``SparseCDSPipeline`` gained the same fingerprint
        short-circuit ``DeltaCDSPipeline`` has."""
        net = random_connected_network(40, side=100.0, radius=25.0, rng=rng)
        adj = list(net.adjacency)
        energy = [100.0] * 40
        pipe = SparseCDSPipeline("el2")
        first = pipe.compute(adj, energy=energy)
        again = pipe.compute(list(adj), energy=list(energy))
        assert again is first

    def test_quantum_sub_threshold_drain_still_short_circuits(self, rng):
        """Energy deltas below the scheme quantum cannot change any key,
        so the fingerprint (which quantizes) must not dirty anything."""
        net = random_connected_network(40, side=100.0, radius=25.0, rng=rng)
        energy = np.full(40, 100.0)
        pipe = IncrementalSparseCDSPipeline("el1")
        first = pipe.compute(net, energy=energy)
        again = pipe.compute(net, energy=energy + 1e-12)
        assert again is first

    def test_drain_recomputes_and_matches_scratch(self, rng):
        net = random_connected_network(50, side=100.0, radius=25.0, rng=rng)
        energy = np.full(50, 100.0)
        pipe = IncrementalSparseCDSPipeline("el2")
        for _ in range(8):
            res = pipe.compute(net, energy=list(energy))
            _assert_matches_scratch(net, res, "el2", list(energy))
            mask = res.gateway_mask
            for v in range(50):
                energy[v] -= 3.0 if (mask >> v) & 1 else 1.0


class TestChurnAndRestart:
    def test_split_then_merge_matches_scratch(self):
        rng = np.random.default_rng(5)
        net = random_connected_network(48, side=100.0, radius=25.0, rng=rng)
        pipe = IncrementalSparseCDSPipeline("nd", shadow_check=True)
        pipe.compute(net)
        home = net.positions[0].copy()
        # teleport host 0 far away: its component splits (or it isolates)
        net.move_host(0, (home + 400.0) % 100.0)
        res = pipe.compute(net)
        _assert_matches_scratch(net, res, "nd", None)
        # teleport it back: components merge again
        net.move_host(0, home)
        res = pipe.compute(net)
        _assert_matches_scratch(net, res, "nd", None)

    def test_cold_restart_on_host_count_change(self, rng):
        a = random_connected_network(30, side=100.0, radius=25.0, rng=rng)
        b = random_connected_network(31, side=100.0, radius=25.0, rng=rng)
        pipe = IncrementalSparseCDSPipeline("id")
        pipe.compute(a)
        res = pipe.compute(b)  # different n: must not try to patch
        _assert_matches_scratch(b, res, "id", None)

    def test_cold_restart_on_radius_change(self, rng):
        net = random_connected_network(30, side=100.0, radius=25.0, rng=rng)
        pipe = IncrementalSparseCDSPipeline("id")
        pipe.compute(net)
        shrunk = random_connected_network(
            30, side=100.0, radius=18.0, rng=rng
        )
        res = pipe.compute(shrunk)
        _assert_matches_scratch(shrunk, res, "id", None)

    def test_adjacency_fallback_mode(self, rng):
        """Raw bitmask-row inputs take the rebuild-CSR path but still
        reuse untouched components."""
        net = random_connected_network(40, side=100.0, radius=25.0, rng=rng)
        rows = [int(r) for r in net.adjacency]
        pipe = IncrementalSparseCDSPipeline("nr", shadow_check=True)
        res = pipe.compute(rows)
        want = compute_cds(rows, "nr")
        assert res.gateway_mask == want.gateway_mask
        assert res.stats == want.stats
        # drop one edge and recompute
        u = 0
        v = max(b for b in range(40) if (rows[u] >> b) & 1)
        rows2 = list(rows)
        rows2[u] = int(rows2[u]) & ~(1 << v)
        rows2[v] = int(rows2[v]) & ~(1 << u)
        res = pipe.compute(rows2)
        want = compute_cds(rows2, "nr")
        assert res.gateway_mask == want.gateway_mask
        assert res.stats == want.stats

    def test_empty_graph(self):
        pipe = IncrementalSparseCDSPipeline("id")
        res = pipe.compute([])
        assert res.gateway_mask == 0 and res.n == 0

    def test_energy_scheme_requires_energy(self, rng):
        net = random_connected_network(10, side=100.0, radius=40.0, rng=rng)
        pipe = IncrementalSparseCDSPipeline("el1")
        with pytest.raises(ConfigurationError, match="energy"):
            pipe.compute(net)


class TestLazyMobility:
    def test_accept_policy_skips_adjacency_build(self, rng):
        net = random_connected_network(30, side=100.0, radius=25.0, rng=rng)
        net.invalidate()
        assert not net.has_adjacency_cache
        mgr = MobilityManager(
            net, PaperWalk(stability=0.0), on_disconnect="accept", rng=rng
        )
        changed = mgr.step()
        assert changed  # stability 0: everyone moves
        # the lazy path must not have materialized the Python rows
        assert not net.has_adjacency_cache

    def test_retry_policy_still_builds_cache(self, rng):
        net = random_connected_network(30, side=100.0, radius=25.0, rng=rng)
        net.invalidate()
        mgr = MobilityManager(
            net, PaperWalk(stability=0.5), on_disconnect="retry", rng=rng
        )
        mgr.step()
        assert net.has_adjacency_cache  # connectivity checks need it
