"""Rule engine unit tests on hand-built micro-topologies.

Each scenario is small enough to verify by inspection; together they pin
down every branch of the Rule 1 / Rule 2 case analysis.
"""

from __future__ import annotations

import pytest

from repro.core.marking import marked_set
from repro.core.priority import scheme_by_name
from repro.core.rules import RuleEngine, apply_rule1, apply_rule2
from repro.graphs import bitset
from repro.graphs.generators import from_edges


def figure3a():
    """Paper Figure 3(a) analogue: N[v] ⊂ N[u] strictly, both marked.

    v=0 and u=1 share neighbors 2, 3 (which are non-adjacent, so both v
    and u are marked); u additionally owns leaf 4, making the coverage
    strict: N[0] = {0,1,2,3} ⊂ N[1] = {0,1,2,3,4}.
    """
    return from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (1, 4)])


class TestRule1:
    def test_covered_lower_id_is_removed(self):
        g = figure3a()
        marked = marked_set(g)
        assert marked == {0, 1}
        after = apply_rule1(g.adjacency, marked, scheme_by_name("id"))
        assert after == {1}

    def test_covered_higher_id_survives_under_id(self):
        # figure3a relabeled by i -> 4-i: the covered node now has id 4
        g = from_edges(5, [(4, 3), (4, 2), (4, 1), (3, 2), (3, 1), (3, 0)])
        marked = marked_set(g)
        assert marked == {3, 4}
        after = apply_rule1(g.adjacency, marked, scheme_by_name("id"))
        assert after == {3, 4}  # 4 is covered by 3 but has the bigger id

    def test_equal_closed_neighborhoods_remove_exactly_one(self):
        # Figure 3(b): N[v] == N[u]; the smaller id goes
        g = from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        # nodes 0 and 1 both adjacent to {2,3} and each other
        marked = marked_set(g)
        assert marked == {0, 1}
        after = apply_rule1(g.adjacency, marked, scheme_by_name("id"))
        assert after == {1}

    def test_degree_key_overrides_id(self):
        g = figure3a()
        after = apply_rule1(g.adjacency, {0, 1}, scheme_by_name("nd"))
        assert after == {1}  # nd(0)=3 < nd(1)=4

    def test_energy_key_can_flip_the_removal(self):
        g = figure3a()
        # give the coverer less energy: now u=1 has the smaller key but
        # coverage is asymmetric (N[1] not within N[0]), so nobody goes
        after = apply_rule1(
            g.adjacency, {0, 1}, scheme_by_name("el1"),
            energy=[5.0, 1.0, 3.0, 3.0, 3.0],
        )
        assert after == {0, 1}
        # and with v=0 weaker it is removed
        after = apply_rule1(
            g.adjacency, {0, 1}, scheme_by_name("el1"),
            energy=[1.0, 5.0, 3.0, 3.0, 3.0],
        )
        assert after == {1}

    def test_unmarked_coverer_cannot_remove(self):
        # v marked, u unmarked (not in the marked set passed in)
        g = figure3a()
        after = apply_rule1(g.adjacency, {0}, scheme_by_name("id"))
        assert after == {0}


def kite():
    """v=0 covered by marked neighbors u=1, w=2 (pendants keep all marked).

    0 sees {1, 2, 5} with 2 and 5 non-adjacent (so 0 is marked); 1 and 2
    each own a private pendant (3, 4) that keeps them marked and
    *uncovered* by the other two.
    """
    return from_edges(
        6, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (0, 5), (1, 5)]
    )


def kite_reversed():
    """kite() relabeled by i -> 5-i: the covered node becomes id 5."""
    return from_edges(
        6, [(5, 4), (5, 3), (4, 3), (4, 2), (3, 1), (5, 0), (4, 0)]
    )


class TestRule2OriginalID:
    def test_minimum_id_in_triple_is_removed(self):
        g = kite()
        marked = marked_set(g)
        assert marked == {0, 1, 2}
        after = apply_rule2(g.adjacency, marked, scheme_by_name("id"))
        assert 0 not in after
        assert {1, 2} <= after

    def test_non_minimum_id_survives(self):
        g = kite_reversed()
        marked = marked_set(g)
        assert marked == {3, 4, 5}
        after = apply_rule2(g.adjacency, marked, scheme_by_name("id"))
        assert 5 in after  # covered but has the largest id: ID rules keep it

    def test_pair_must_both_be_marked(self):
        g = kite()
        after = apply_rule2(g.adjacency, {0, 1}, scheme_by_name("id"))
        assert after == {0, 1}  # only one marked neighbor


class TestRule2CoverageCases:
    def test_case1_unconditional_removal(self):
        # v covered by u,w; u,w themselves uncovered -> v removed even
        # with the *largest* id (which the original ID rule would keep)
        g = kite_reversed()
        marked = marked_set(g)
        after = apply_rule2(g.adjacency, marked, scheme_by_name("nd"))
        assert 5 not in after  # id rules kept it; case 1 removes it

    def test_case3_all_covered_minimum_key_goes(self):
        # triangle with one pendant each? make all three mutually covering:
        # 0,1,2 triangle, each with a private leaf attached to the OTHER two
        # Simplest: pure triangle + shared leaves
        g = from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 0), (3, 1), (4, 1), (4, 2)])
        # N(0)={1,2,3}, N(1)={0,2,3,4}, N(2)={0,1,4}
        # cov(0): {1,2,3} within N(1)|N(2) = {0,1,2,3,4} yes
        # cov(2): {0,1,4} within N(0)|N(1) yes; cov(1): {0,2,3,4} within
        # N(0)|N(2)={0,1,2,3,4} yes -> all covered
        marked = marked_set(g)
        assert {0, 1, 2} <= marked
        after = apply_rule2(g.adjacency, marked, scheme_by_name("nd"))
        # nd: 0 -> (3,0), 2 -> (3,2), 1 -> (4,1): node 0 is the strict min
        assert 0 not in after
        assert 2 in after  # not the minimum: survives simultaneously

    def test_case2_two_covered_key_decides(self, paper_example):
        # nodes 2 and 9 of the worked example are the canonical case-2 pair
        adj = paper_example.graph.adjacency
        marked = {x - 1 for x in {2, 4, 9}}
        after_nd = apply_rule2(adj, marked, scheme_by_name("nd"))
        assert {x + 1 for x in after_nd} == {2, 4}  # 9 has smaller degree
        after_id = apply_rule2(adj, marked, scheme_by_name("id"))
        assert {x + 1 for x in after_id} == {4, 9}  # 2 has smaller id


class TestEngineMechanics:
    def test_rule_passes_are_simultaneous(self):
        # two nodes each covered by the other (equal closed neighborhoods):
        # only the smaller key may leave, not both
        g = from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        engine = RuleEngine(g.adjacency, scheme_by_name("id"))
        out = engine.rule1_pass(bitset.mask_from_ids({0, 1}))
        assert bitset.ids_from_mask(out) == [1]

    def test_empty_marked_mask_is_noop(self):
        g = kite()
        engine = RuleEngine(g.adjacency, scheme_by_name("nd"))
        assert engine.rule1_pass(0) == 0
        assert engine.rule2_pass(0) == 0

    def test_wrappers_round_trip_sets(self):
        g = kite()
        marked = marked_set(g)
        assert apply_rule1(g.adjacency, marked, scheme_by_name("id")) <= marked
        assert apply_rule2(g.adjacency, marked, scheme_by_name("id")) <= marked
