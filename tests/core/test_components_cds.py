"""Per-component CDS tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.components_cds import compute_cds_per_component
from repro.core.properties import induced_connected
from repro.graphs import bitset
from repro.graphs.generators import from_edges, path_graph, random_gnp_connected
from repro.graphs.subgraphs import active_components, is_dominating_over


def two_islands():
    """Two 4-paths with no inter-island edges."""
    return from_edges(
        8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]
    )


class TestDisconnectedGraphs:
    def test_union_of_island_backbones(self):
        g = two_islands()
        mask = compute_cds_per_component(g, "id")
        assert set(bitset.ids_from_mask(mask)) == {1, 2, 5, 6}

    def test_connected_graph_matches_plain_pipeline(self, random_graphs):
        for g, energy in random_graphs[:8]:
            per_comp = compute_cds_per_component(g, "nd", energy=energy)
            plain = compute_cds(g, "nd", energy=energy).gateway_mask
            assert per_comp == plain

    def test_singletons_and_pairs_need_no_gateway(self):
        g = from_edges(4, [(0, 1)])  # a pair plus two isolated hosts
        assert compute_cds_per_component(g, "id") == 0

    def test_each_component_backbone_is_connected_and_dominating(self):
        rng = np.random.default_rng(9)
        for _ in range(10):
            a = random_gnp_connected(6, 0.4, rng=rng)
            b = random_gnp_connected(7, 0.4, rng=rng)
            # merge disjointly: island b shifted by 6 ids
            adj = list(a.adjacency) + [m << 6 for m in b.adjacency]
            mask = compute_cds_per_component(adj, "id")
            for comp in active_components(adj, (1 << 13) - 1):
                comp_gw = mask & comp
                if bitset.popcount(comp) <= 2:
                    assert comp_gw == 0
                    continue
                assert is_dominating_over(adj, comp_gw, comp)
                assert induced_connected(adj, comp_gw)


class TestActiveMask:
    def test_off_hosts_are_ignored(self):
        g = path_graph(5)
        # switching off host 2 splits the path into two pairs
        mask = compute_cds_per_component(
            g, "id", active_mask=bitset.mask_from_ids({0, 1, 3, 4})
        )
        assert mask == 0  # pairs need no gateway

    def test_active_component_gets_backbone(self):
        g = path_graph(6)
        active = bitset.mask_from_ids({0, 1, 2, 3})
        mask = compute_cds_per_component(g, "id", active_mask=active)
        assert set(bitset.ids_from_mask(mask)) == {1, 2}

    def test_energy_keys_respected(self):
        g = two_islands()
        # equal-shape islands; energies decide which end survives pruning
        energy = [1.0, 5.0, 2.0, 1.0, 1.0, 5.0, 2.0, 1.0]
        mask = compute_cds_per_component(g, "el1", energy=energy)
        assert set(bitset.ids_from_mask(mask)) == {1, 2, 5, 6}
