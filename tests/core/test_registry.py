"""The CDS algorithm registry: catalog, bit-identity pin, new constructions.

The load-bearing test here is the regression pin: routing Wu–Li through
the registry must be *bit-identical* — gateway mask and PruneStats — to
calling ``compute_cds`` directly, across all five schemes and all three
execution backends (scalar scratch, delta pipeline, vectorized kernels).
The refactor adds a dispatch layer; it must not add a behavior.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.delta import DeltaCDSPipeline
from repro.core.priority import PAPER_SERIES_ORDER
from repro.core.properties import verify_cds
from repro.core.registry import (
    ALGORITHMS,
    AlgorithmPipeline,
    EXECUTION_BACKENDS,
    algorithm_by_name,
    algorithm_names,
    register_algorithm,
)
from repro.core.vectorized import VectorizedCDSPipeline
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.generators import (
    clique,
    from_edges,
    path_graph,
    random_connected_network,
)


def _nets(count=4, lo=10, hi=60):
    rng = np.random.default_rng(1234)
    for i in range(count):
        n = int(rng.integers(lo, hi))
        net = random_connected_network(n, side=80, radius=25, rng=2000 + i)
        energy = list(rng.uniform(50.0, 150.0, size=n))
        yield net, energy


class TestCatalog:
    def test_at_least_eight_algorithms(self):
        assert len(ALGORITHMS) >= 8
        for required in (
            "wu_li", "greedy_mcds", "pieces_mcds", "mis_cds",
            "connected_greedy", "energy_greedy", "aneja_2conn", "zhou_mwcds",
        ):
            assert required in ALGORITHMS

    def test_capability_flags(self):
        wu = ALGORITHMS["wu_li"]
        assert wu.supports_delta and wu.supports_vectorized and wu.uses_scheme
        assert ALGORITHMS["aneja_2conn"].connectivity == 2
        assert ALGORITHMS["zhou_mwcds"].uses_energy
        for name, algo in ALGORITHMS.items():
            assert algo.name == name
            assert algo.description
            if name != "wu_li":
                assert not algo.supports_delta
                assert not algo.supports_vectorized
                assert not algo.supports_sparse

    def test_execution_backends_are_not_algorithms(self):
        assert set(EXECUTION_BACKENDS) == {
            "scalar", "delta", "vectorized", "sparse",
        }
        assert not set(EXECUTION_BACKENDS) & set(ALGORITHMS)

    def test_lookup_and_names(self):
        assert algorithm_names() == sorted(ALGORITHMS)
        assert algorithm_by_name("WU_LI") is ALGORITHMS["wu_li"]
        assert algorithm_by_name(ALGORITHMS["mis_cds"]) is ALGORITHMS["mis_cds"]

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(ConfigurationError) as exc:
            algorithm_by_name("dijkstra")
        for name in ALGORITHMS:
            assert name in str(exc.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_algorithm(name="wu_li")(lambda a, s, e, f: (0, None))


class TestWuLiBitIdentity:
    """Wu–Li via the registry ≡ pre-refactor compute_cds, all backends."""

    @pytest.mark.parametrize("scheme", PAPER_SERIES_ORDER)
    @pytest.mark.parametrize("fixed_point", [False, True])
    def test_scalar_mask_and_stats(self, scheme, fixed_point):
        algo = ALGORITHMS["wu_li"]
        for net, energy in _nets():
            ref = compute_cds(
                net, scheme, energy=energy, fixed_point=fixed_point
            )
            got = algo.compute(
                net, scheme, energy, fixed_point=fixed_point, verify=True
            )
            assert got.gateway_mask == ref.gateway_mask
            assert got.stats == ref.stats
            assert got.scheme == ref.scheme and got.n == ref.n

    @pytest.mark.parametrize("scheme", PAPER_SERIES_ORDER)
    def test_delta_backend_matches(self, scheme):
        algo = ALGORITHMS["wu_li"]
        for net, energy in _nets(count=3):
            ref = algo.compute(net, scheme, energy)
            pipe = DeltaCDSPipeline(scheme)
            got = pipe.compute(list(net.adjacency), energy)
            assert got.gateway_mask == ref.gateway_mask

    @pytest.mark.parametrize("scheme", PAPER_SERIES_ORDER)
    def test_vectorized_backend_matches(self, scheme):
        algo = ALGORITHMS["wu_li"]
        for net, energy in _nets(count=3):
            ref = algo.compute(net, scheme, energy)
            pipe = VectorizedCDSPipeline(algo_scheme(scheme))
            got = pipe.compute(net, energy=energy)
            assert got.gateway_mask == ref.gateway_mask
            assert got.stats == ref.stats


def algo_scheme(name):
    from repro.core.priority import scheme_by_name

    return scheme_by_name(name)


class TestAllAlgorithmsShareInvariants:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_verify_on_random_geometric(self, name):
        algo = ALGORITHMS[name]
        for net, energy in _nets(count=3):
            # verify=True raises InvariantViolation on any failure
            result = algo.compute(net, "el2", energy, verify=True)
            assert result.n == net.n
            assert result.gateway_mask >> net.n == 0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_disconnected_components_each_dominated(self, name):
        # two triangles + a pendant pair + an isolated node
        g = from_edges(
            9, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7)]
        )
        result = ALGORITHMS[name].compute(g, "nd", None, verify=True)
        # no gateway may land in the <=2-host fragments
        assert result.gateway_mask & bitset.mask_from_ids([6, 7, 8]) == 0


class TestAlgorithmPipeline:
    def test_duck_types_delta_pipeline(self):
        pipe = AlgorithmPipeline("greedy_mcds", "id")
        net, energy = next(_nets(count=1))
        direct = ALGORITHMS["greedy_mcds"].compute(net, "id", energy)
        via = pipe.compute(net, energy)
        assert via.gateway_mask == direct.gateway_mask
        pipe.reset()  # stateless; must not raise
        assert pipe.compute(net, energy).gateway_mask == direct.gateway_mask


class TestAnejaTwoConnected:
    def test_survives_any_single_non_cut_gateway_loss(self):
        from repro.baselines.two_connected import non_cut_vertices, survives_loss

        for net, energy in _nets(count=4, lo=8, hi=40):
            adj = list(net.adjacency)
            mask = ALGORITHMS["aneja_2conn"].compute(net, "id", energy).gateway_mask
            ncv = non_cut_vertices(adj)
            for g in bitset.iter_bits(mask & ncv):
                assert survives_loss(adj, mask, g), (
                    f"backbone dies with gateway {g}"
                )

    def test_outside_hosts_get_two_dominators(self):
        for net, energy in _nets(count=3, lo=8, hi=40):
            adj = list(net.adjacency)
            mask = ALGORITHMS["aneja_2conn"].compute(net, "id", energy).gateway_mask
            for v in range(net.n):
                if mask >> v & 1:
                    continue
                want = min(2, bitset.popcount(adj[v]))
                assert bitset.popcount(adj[v] & mask) >= want

    def test_degenerate_pair_keeps_both(self):
        assert ALGORITHMS["aneja_2conn"].compute(
            [0b10, 0b01], "id", None
        ).gateway_mask == 0b11


class TestZhouWeighted:
    def test_prefers_fresh_batteries(self):
        # star-of-stars: centers 0 and 1 both dominate everything, but 0
        # is nearly drained — the weighted greedy must pick 1
        g = from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5),
                           (1, 2), (1, 3), (1, 4), (1, 5)])
        energy = [1.0, 100.0, 50.0, 50.0, 50.0, 50.0]
        mask = ALGORITHMS["zhou_mwcds"].compute(g, "el1", energy).gateway_mask
        assert mask >> 1 & 1 == 1
        assert mask >> 0 & 1 == 0

    def test_multi_domination_m2(self):
        from repro.baselines.weighted_mcds import zhou_min_weight_cds

        for net, energy in _nets(count=3, lo=8, hi=30):
            adj = list(net.adjacency)
            mask = zhou_min_weight_cds(adj, energy, m=2)
            verify_cds(adj, mask, context="zhou m=2")
            for v in range(net.n):
                if mask >> v & 1:
                    continue
                want = min(2, bitset.popcount(adj[v]))
                assert bitset.popcount(adj[v] & mask) >= want

    def test_uniform_weights_without_energy(self):
        g = path_graph(7)
        result = ALGORITHMS["zhou_mwcds"].compute(g, "id", None)
        verify_cds(list(g.adjacency), result.gateway_mask, context="zhou uniform")


class TestTrivialTopologies:
    """Cliques and tiny graphs: marking legitimately returns empty; the
    greedy family returns a small non-empty set.  Both verify."""

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_clique_and_tiny(self, name):
        algo = ALGORITHMS[name]
        for g in ([], [0], [0b10, 0b01], clique(5)):
            result = algo.compute(g, "id", None, verify=True)
            assert result.gateway_mask >> result.n == 0
