"""Directed (unidirectional-link) CDS tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.marking import marked_mask
from repro.core.priority import scheme_by_name
from repro.core.unidirectional import (
    compute_directed_cds,
    directed_marking,
    directed_rule1_pass,
    directed_rule_k_pass,
    is_dominating_and_absorbing,
    strongly_connected_within,
)
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.digraph import (
    from_arcs,
    heterogeneous_disk_digraph,
    random_strongly_connected_digraph,
)


class TestDirectedMarking:
    def test_directed_cycle_marks_everyone(self):
        # every node relays: its in-neighbor cannot reach its out-neighbor
        v = from_arcs(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert directed_marking(v) == 0b1111

    def test_complete_digraph_marks_nobody(self):
        arcs = [(u, w) for u in range(4) for w in range(4) if u != w]
        v = from_arcs(4, arcs)
        assert directed_marking(v) == 0

    def test_symmetric_digraph_matches_wu_li(self, rng):
        pos = rng.random((25, 2)) * 100
        v = heterogeneous_disk_digraph(pos, np.full(25, 25.0))
        assert directed_marking(v) == marked_mask(v.underlying_undirected())

    def test_relay_of_a_one_way_shortcut(self):
        # 0 -> 1 -> 2 with a one-way return 2 -> 0:
        # 1 relays (0 can't reach 2); with arc 0->2 added 1 stops relaying
        v = from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        assert directed_marking(v) >> 1 & 1
        v2 = from_arcs(3, [(0, 1), (1, 2), (2, 0), (0, 2)])
        assert not directed_marking(v2) >> 1 & 1


class TestDirectedInvariants:
    @pytest.mark.parametrize("scheme", ["id", "nd", "el1", "el2"])
    @pytest.mark.parametrize("use_rule_k", [False, True])
    def test_result_dominates_absorbs_and_connects(self, scheme, use_rule_k):
        rng = np.random.default_rng(hash((scheme, use_rule_k)) % 2**32)
        for _ in range(15):
            n = int(rng.integers(8, 30))
            view, _, _ = random_strongly_connected_digraph(n, rng=rng)
            energy = rng.integers(1, 6, n).astype(float)
            out = compute_directed_cds(
                view, scheme, energy=energy, use_rule_k=use_rule_k
            )
            if not out:
                continue  # complete-like digraph
            assert is_dominating_and_absorbing(view, out)
            assert strongly_connected_within(view, bitset.mask_from_ids(out))

    def test_rules_only_shrink(self, rng):
        view, _, _ = random_strongly_connected_digraph(25, rng=rng)
        marked = directed_marking(view)
        sch = scheme_by_name("nd")
        after1 = directed_rule1_pass(view, marked, sch)
        afterk = directed_rule_k_pass(view, after1, sch)
        assert bitset.is_subset(after1, marked)
        assert bitset.is_subset(afterk, after1)

    def test_el_scheme_requires_energy(self, rng):
        view, _, _ = random_strongly_connected_digraph(10, rng=rng)
        with pytest.raises(ConfigurationError):
            compute_directed_cds(view, "el1")

    def test_nr_scheme_returns_marking(self, rng):
        view, _, _ = random_strongly_connected_digraph(12, rng=rng)
        out = compute_directed_cds(view, "nr")
        assert bitset.mask_from_ids(out) == directed_marking(view)


class TestDirectedVerifiers:
    def test_dominating_and_absorbing_checks_both_directions(self):
        # star where the center only transmits: dominates but nothing
        # can reach it back except host 1
        v = from_arcs(3, [(0, 1), (0, 2), (1, 0)])
        assert is_dominating_and_absorbing(v, {0, 2})
        # {0} dominates (reaches 1, 2) but host 2 cannot transmit to it
        assert not is_dominating_and_absorbing(v, {0})

    def test_strong_connectivity_of_subset(self):
        v = from_arcs(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)])
        assert strongly_connected_within(v, {0, 1})
        assert strongly_connected_within(v, {1, 2, 3})
        assert not strongly_connected_within(v, {0, 2})

    def test_trivial_subsets_connected(self):
        v = from_arcs(3, [(0, 1), (1, 2), (2, 0)])
        assert strongly_connected_within(v, set())
        assert strongly_connected_within(v, {2})
