"""Invariant checker unit tests."""

from __future__ import annotations

import pytest

from repro.core.properties import (
    induced_connected,
    is_cds,
    is_dominating,
    shortest_paths_use_gateways,
    verify_cds,
)
from repro.errors import InvariantViolation
from repro.graphs import bitset
from repro.graphs.generators import cycle_graph, from_edges, path_graph, star_graph


class TestDomination:
    def test_full_set_always_dominates(self):
        g = path_graph(5)
        assert is_dominating(g.adjacency, range(5))

    def test_center_dominates_star(self):
        g = star_graph(6)
        assert is_dominating(g.adjacency, {0})
        assert not is_dominating(g.adjacency, {1})

    def test_interior_dominates_path(self):
        g = path_graph(4)
        assert is_dominating(g.adjacency, {1, 2})
        assert not is_dominating(g.adjacency, {1})

    def test_accepts_mask_or_iterable(self):
        g = star_graph(4)
        assert is_dominating(g.adjacency, 1) == is_dominating(g.adjacency, {0})

    def test_empty_set_dominates_nothing(self):
        g = path_graph(3)
        assert not is_dominating(g.adjacency, set())


class TestInducedConnectivity:
    def test_adjacent_pair_connected(self):
        g = path_graph(4)
        assert induced_connected(g.adjacency, {1, 2})

    def test_separated_pair_disconnected(self):
        g = path_graph(5)
        assert not induced_connected(g.adjacency, {0, 4})

    def test_empty_and_singleton_connected(self):
        g = path_graph(3)
        assert induced_connected(g.adjacency, set())
        assert induced_connected(g.adjacency, {2})


class TestVerify:
    def test_verify_passes_on_valid_cds(self):
        g = path_graph(5)
        verify_cds(g.adjacency, {1, 2, 3})

    def test_verify_raises_on_non_dominating(self):
        g = path_graph(5)
        with pytest.raises(InvariantViolation, match="not dominating"):
            verify_cds(g.adjacency, {1, 2})

    def test_verify_raises_on_disconnected(self):
        g = cycle_graph(6)
        with pytest.raises(InvariantViolation, match="not connected"):
            verify_cds(g.adjacency, {0, 2, 4})

    def test_context_appears_in_message(self):
        g = path_graph(5)
        with pytest.raises(InvariantViolation, match="scheme=test"):
            verify_cds(g.adjacency, {1}, context="scheme=test")


class TestProperty3:
    def test_holds_for_marked_set_on_path(self):
        g = path_graph(6)
        marked = bitset.mask_from_ids({1, 2, 3, 4})
        assert shortest_paths_use_gateways(g.adjacency, marked)

    def test_fails_when_a_shortcut_is_dropped(self):
        # 0-1-2 and 0-3-2: keeping only {1} forces pairs through 1, fine;
        # but on a 4-cycle keeping one node breaks opposite-corner paths
        g = cycle_graph(4)
        assert not shortest_paths_use_gateways(
            g.adjacency, bitset.mask_from_ids({0})
        )
        assert shortest_paths_use_gateways(
            g.adjacency, bitset.mask_from_ids({0, 1, 2, 3})
        )

    def test_is_cds_combines_both_checks(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert is_cds(g.adjacency, {1, 2})
        assert not is_cds(g.adjacency, {0, 3})  # dominating but disconnected
        assert not is_cds(g.adjacency, {1})     # connected but not dominating
