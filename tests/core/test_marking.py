"""Marking process unit tests on structured topologies."""

from __future__ import annotations

import pytest

from repro.core.marking import marked_set, marking_process, node_is_marked
from repro.graphs.generators import (
    clique,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


class TestPathsAndCycles:
    def test_path_marks_all_interior_nodes(self):
        g = path_graph(6)
        assert marked_set(g) == {1, 2, 3, 4}

    def test_two_node_path_marks_nobody(self):
        # adjacent hosts talk directly; no gateway needed
        assert marked_set(path_graph(2)) == set()

    def test_single_node_marks_nobody(self):
        assert marked_set(path_graph(1)) == set()

    def test_cycle_marks_everyone(self):
        # every node has two non-adjacent neighbors on a >= 4 cycle
        assert marked_set(cycle_graph(5)) == {0, 1, 2, 3, 4}

    def test_triangle_marks_nobody(self):
        # a 3-cycle is complete: all neighbor pairs connected
        assert marked_set(cycle_graph(3)) == set()


class TestCliquesAndStars:
    @pytest.mark.parametrize("n", [3, 4, 7])
    def test_clique_marks_nobody(self, n):
        assert marked_set(clique(n)) == set()

    def test_star_marks_only_center(self):
        assert marked_set(star_graph(6)) == {0}

    def test_star_of_two_is_an_edge(self):
        assert marked_set(star_graph(2)) == set()


class TestGrid:
    def test_grid_corner_not_marked_when_diagonal_missing(self):
        # 2x2 grid = 4-cycle: everyone marked
        assert marked_set(grid_graph(2, 2)) == {0, 1, 2, 3}

    def test_grid_3x3_marks_everything(self):
        # all 4-neighborhoods on a grid contain non-adjacent pairs
        assert marked_set(grid_graph(3, 3)) == set(range(9))


class TestVectorAPI:
    def test_marking_process_returns_aligned_vector(self):
        g = path_graph(4)
        vec = marking_process(g)
        assert vec == [False, True, True, False]

    def test_accepts_raw_adjacency(self):
        g = path_graph(4)
        assert marking_process(list(g.adjacency)) == marking_process(g)

    def test_node_is_marked_matches_vector(self):
        g = grid_graph(2, 3)
        vec = marking_process(g)
        assert [node_is_marked(g.adjacency, v) for v in range(g.n)] == vec

    def test_empty_graph(self):
        assert marking_process([]) == []
