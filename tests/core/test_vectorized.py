"""Equivalence and tail-word tests for the batched vectorized CDS engine.

Every test pins the batch engine against the scalar oracle
(:func:`repro.core.cds.compute_cds` / ``compute_cds_rule_k``) — masks AND
:class:`PruneStats` must be bit-identical.  The n grid deliberately
straddles the uint64 word boundary (63/64/65/127/128) so stray tail bits
in any packed path would surface as a mask mismatch.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.priority import SCHEMES
from repro.core.rule_k import compute_cds_rule_k
from repro.core.vectorized import (
    BatchCDSEngine,
    VectorizedCDSPipeline,
    compute_cds_batch,
    compute_cds_rule_k_batch,
    flags_to_masks,
    pack_adjacency,
    pack_batch,
    pack_rows,
    pair_index_arrays,
    popcount_rows,
    tail_mask,
    words_for,
)
from repro.errors import ConfigurationError, InvariantViolation
from repro.graphs.generators import (
    clique,
    path_graph,
    random_gnp_connected,
    star_graph,
)

WORD_BOUNDARY_NS = [63, 64, 65, 127, 128]


def rand_adj(n: int, p: float, rng: random.Random) -> list[int]:
    adj = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                adj[i] |= 1 << j
                adj[j] |= 1 << i
    return adj


def assert_batch_matches_scalar(batch, scheme, energies=None, fixed_point=False):
    res = compute_cds_batch(
        batch, scheme, energies, fixed_point=fixed_point
    )
    for b, adj in enumerate(batch):
        e = energies[b] if energies is not None else None
        want = compute_cds(adj, scheme, energy=e, fixed_point=fixed_point)
        assert res[b].gateway_mask == want.gateway_mask, (scheme, b)
        assert res[b].stats == want.stats, (scheme, b)


class TestPackedTailWords:
    @pytest.mark.parametrize("n", WORD_BOUNDARY_NS)
    def test_pack_rows_strips_stray_high_bits(self, n):
        # rows polluted above bit n-1 must come back tail-clean
        W = words_for(n)
        dirty = [((1 << (W * 64)) - 1) for _ in range(n)]
        packed = pack_rows(dirty, W, n)
        assert int(packed[0, -1]) == int(tail_mask(n))
        # popcounts see exactly n bits per row, never the padding
        assert popcount_rows(packed).tolist() == [n] * n

    def test_tail_mask_values(self):
        assert int(tail_mask(64)) == (1 << 64) - 1
        assert int(tail_mask(63)) == (1 << 63) - 1
        assert int(tail_mask(65)) == 1
        assert int(tail_mask(1)) == 1

    @pytest.mark.parametrize("n", WORD_BOUNDARY_NS)
    def test_equivalence_at_word_boundaries(self, n):
        rng = random.Random(n)
        batch = [rand_adj(n, 0.12, rng) for _ in range(3)]
        energies = [[rng.uniform(1.0, 100.0) for _ in range(n)] for _ in batch]
        for scheme in sorted(SCHEMES):
            assert_batch_matches_scalar(batch, scheme, energies)


class TestBatchEquivalence:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("fixed_point", [False, True])
    def test_mixed_density_batch(self, scheme, fixed_point):
        rng = random.Random(7)
        n = 40
        batch = [rand_adj(n, p, rng) for p in (0.05, 0.2, 0.5, 0.9)]
        energies = [[rng.uniform(1.0, 100.0) for _ in range(n)] for _ in batch]
        assert_batch_matches_scalar(
            batch, scheme, energies, fixed_point=fixed_point
        )

    def test_structured_graphs(self):
        for view in (
            path_graph(65),
            clique(64),
            star_graph(33),
            random_gnp_connected(70, 0.1, rng=3),
        ):
            assert_batch_matches_scalar([list(view.adjacency)], "nd")

    def test_degenerate_inputs(self):
        assert compute_cds_batch([], "id") == []
        res = compute_cds_batch([[0] * 9], "id")
        assert res[0].gateway_mask == 0
        # n == 0 element: rounds bookkeeping matches prune() (1 with rules)
        res = compute_cds_batch([[]], "nd")
        assert res[0].gateway_mask == 0
        assert res[0].stats.rounds == 1
        res = compute_cds_batch([[]], "nr")
        assert res[0].stats.rounds == 0

    def test_inhomogeneous_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_batch([[0, 0], [0, 0, 0]])

    def test_el_scheme_requires_energy(self):
        with pytest.raises(ConfigurationError):
            compute_cds_batch([[2, 1]], "el1")

    def test_energy_shape_validated(self):
        with pytest.raises(ConfigurationError):
            compute_cds_batch([[2, 1]], "el1", [[1.0, 2.0, 3.0]])

    def test_run_rejects_bad_shapes(self):
        eng = BatchCDSEngine("id")
        with pytest.raises(ConfigurationError):
            eng.run(np.zeros((2, 3), dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            eng.run(np.zeros((1, 65, 1), dtype=np.uint64))


class TestRuleKBatch:
    @pytest.mark.parametrize("n", [17, 63, 65])
    def test_matches_scalar_rule_k(self, n):
        rng = random.Random(n * 31)
        batch = [rand_adj(n, 0.15, rng) for _ in range(3)]
        energies = [[rng.uniform(1.0, 100.0) for _ in range(n)] for _ in batch]
        for scheme in sorted(SCHEMES):
            got = compute_cds_rule_k_batch(batch, scheme, energies)
            for b, adj in enumerate(batch):
                want = compute_cds_rule_k(adj, scheme, energy=energies[b])
                assert got[b] == want, (scheme, b)

    def test_empty(self):
        assert compute_cds_rule_k_batch([], "id") == []
        assert compute_cds_rule_k_batch([[]], "id") == [frozenset()]


class TestVectorizedPipeline:
    def test_pipeline_matches_scratch_with_shadow_and_verify(self):
        view = random_gnp_connected(65, 0.08, rng=11)
        pipe = VectorizedCDSPipeline("nd", shadow_check=True, verify=True)
        got = pipe.compute(view)
        want = compute_cds(view, "nd")
        assert got.gateway_mask == want.gateway_mask
        assert got.stats == want.stats

    def test_shadow_check_catches_divergence(self):
        # corrupting the engine output must trip the shadow oracle
        view = random_gnp_connected(30, 0.2, rng=5)
        pipe = VectorizedCDSPipeline("id", shadow_check=True)

        real_run = pipe.engine.run

        def bad_run(packed, energy=None):
            flags, stats = real_run(packed, energy)
            flags = flags.copy()
            flags[0, 0] = ~flags[0, 0]
            return flags, stats

        pipe.engine.run = bad_run
        with pytest.raises(InvariantViolation):
            pipe.compute(view)


class TestHelpers:
    def test_pair_index_arrays_enumerates_all_pairs(self):
        counts = np.array([0, 1, 2, 3, 5])
        i, j = pair_index_arrays(counts)
        assert len(i) == 0 + 0 + 1 + 3 + 10
        # per-group pairs are exactly {(a,b): a<b<c}
        off = 0
        for c in counts:
            k = c * (c - 1) // 2
            got = {(int(a), int(b)) for a, b in zip(i[off:off + k], j[off:off + k])}
            want = {(a, b) for b in range(c) for a in range(b)}
            assert got == want
            off += k

    def test_flags_to_masks_roundtrip(self):
        flags = np.zeros((2, 70), dtype=bool)
        flags[0, 0] = flags[0, 69] = flags[1, 64] = True
        masks = flags_to_masks(flags)
        assert masks == [(1 << 0) | (1 << 69), 1 << 64]

    def test_pack_adjacency_matches_pack_batch(self):
        adj = [2, 1, 0]
        assert np.array_equal(pack_adjacency(adj), pack_batch([adj])[0])
