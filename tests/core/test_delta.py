"""Unit tests for the incremental delta-CDS pipeline (repro.core.delta).

The equivalence *properties* (delta == scratch over random move
sequences) live in ``tests/property/test_incremental_properties.py``;
this file covers the machinery: cold starts, short-circuiting, cache
invalidation, reset, shadow checking, and input validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.cds import compute_cds
from repro.core.delta import CachedRuleEngine, DeltaCDSPipeline
from repro.errors import ConfigurationError, InvariantViolation
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import random_connected_network


@pytest.fixture()
def net():
    return random_connected_network(30, rng=42)


class TestShortCircuit:
    def test_unchanged_interval_returns_previous_result(self, net):
        pipe = DeltaCDSPipeline("nd")
        first = pipe.compute(net)
        second = pipe.compute(net)
        assert second is first  # not merely equal: no stage re-ran

    def test_short_circuit_counter(self, net):
        pipe = DeltaCDSPipeline("nd")
        with obs.capture() as reg:
            pipe.compute(net)
            pipe.compute(net)
            pipe.compute(net)
        assert reg.counters["delta.intervals"] == 3
        assert reg.counters["delta.short_circuit"] == 2

    def test_sub_quantum_energy_change_short_circuits(self, net):
        # el1 quantizes energy; a change far below the quantum leaves the
        # key vector bit-identical, so the whole interval short-circuits
        pipe = DeltaCDSPipeline("el1")
        energy = np.full(net.n, 50.0)
        first = pipe.compute(net, energy=energy)
        second = pipe.compute(net, energy=energy + 1e-13)
        assert second is first

    def test_key_change_recomputes(self, net):
        pipe = DeltaCDSPipeline("el1")
        energy = np.linspace(10.0, 90.0, net.n)
        first = pipe.compute(net, energy=energy)
        flipped = pipe.compute(net, energy=energy[::-1].copy())
        assert flipped is not first
        want = compute_cds(net.snapshot(), "el1", energy=energy[::-1])
        assert flipped.gateway_mask == want.gateway_mask

    def test_topology_change_recomputes(self, net):
        pipe = DeltaCDSPipeline("nd")
        first = pipe.compute(net)
        net.positions[0] += 40.0
        net.apply_moves([0])
        second = pipe.compute(net)
        assert second is not first
        want = compute_cds(net.snapshot(), "nd")
        assert second.gateway_mask == want.gateway_mask


class TestLifecycle:
    def test_reset_forces_cold_start(self, net):
        pipe = DeltaCDSPipeline("nd")
        first = pipe.compute(net)
        pipe.reset()
        with obs.capture() as reg:
            again = pipe.compute(net)
        assert again is not first
        assert again.gateway_mask == first.gateway_mask
        # a cold start diffs nothing: every row counts as changed
        assert reg.counters["delta.changed_rows"] == net.n

    def test_size_change_forces_cold_start(self, net):
        pipe = DeltaCDSPipeline("nd")
        pipe.compute(net)
        smaller = random_connected_network(12, rng=7)
        got = pipe.compute(smaller)
        want = compute_cds(smaller.snapshot(), "nd")
        assert got.gateway_mask == want.gateway_mask

    def test_accepts_raw_adjacency_list(self, net):
        pipe = DeltaCDSPipeline("nd")
        got = pipe.compute(list(net.adjacency))
        want = compute_cds(net.snapshot(), "nd")
        assert got.gateway_mask == want.gateway_mask

    def test_single_host(self):
        single = AdHocNetwork(np.zeros((1, 2)), 25.0)
        pipe = DeltaCDSPipeline("nd")
        assert pipe.compute(single).gateway_mask == 0


class TestValidation:
    def test_energy_scheme_requires_energy(self, net):
        pipe = DeltaCDSPipeline("el2")
        with pytest.raises(ConfigurationError, match="energy"):
            pipe.compute(net)

    def test_energy_length_mismatch(self, net):
        pipe = DeltaCDSPipeline("el2")
        with pytest.raises(ConfigurationError, match="entries"):
            pipe.compute(net, energy=np.ones(net.n + 1))

    def test_verify_mode_accepts_valid_results(self, net):
        pipe = DeltaCDSPipeline("nd", verify=True)
        net.positions[3] += 10.0
        net.apply_moves([3])
        assert pipe.compute(net).size >= 1


class TestShadowCheck:
    def test_shadow_check_passes_silently(self, net):
        pipe = DeltaCDSPipeline("nd", shadow_check=True)
        with obs.capture() as reg:
            pipe.compute(net)
            net.positions[5] += 15.0
            net.apply_moves([5])
            pipe.compute(net)
        assert reg.counters["delta.shadow_checks"] == 2

    def test_shadow_check_raises_on_divergence(self, net, monkeypatch):
        pipe = DeltaCDSPipeline("nd", shadow_check=True)
        reference = pipe.compute(net)  # first call: genuine agreement

        import repro.core.delta as delta_mod

        def corrupted(adj, scheme, **kwargs):
            out = compute_cds(adj, scheme, **kwargs)
            object.__setattr__(
                out, "gateway_mask", out.gateway_mask ^ 1
            )
            return out

        monkeypatch.setattr(delta_mod, "compute_cds", corrupted)
        net.positions[5] += 15.0
        net.apply_moves([5])
        with pytest.raises(InvariantViolation, match="diverged"):
            pipe.compute(net)
        assert reference.gateway_mask  # untouched by the failed interval


class TestCachedRuleEngine:
    def test_run_matches_scratch_prune(self, net):
        from repro.core.marking import marked_mask
        from repro.core.priority import scheme_by_name

        adj = list(net.adjacency)
        energy = np.linspace(5.0, 95.0, net.n)
        for name in ("nr", "id", "nd", "el1", "el2"):
            scheme = scheme_by_name(name)
            engine = CachedRuleEngine(scheme)
            e = energy if scheme.needs_energy else None
            engine.update(adj, (1 << net.n) - 1, e)
            marked = marked_mask(adj)
            final, stats = engine.run(marked)
            want = compute_cds(adj, scheme, energy=e)
            assert final == want.gateway_mask
            assert stats == want.stats

    def test_patch_only_touches_changed_rows(self, net):
        from repro.core.priority import scheme_by_name

        scheme_adj = list(net.adjacency)
        engine = CachedRuleEngine(scheme_by_name("nd"))
        engine.update(scheme_adj, (1 << net.n) - 1, None)
        # flip one edge symmetrically and patch just those two rows
        u, v = 0, next(iter(range(1, net.n)))
        scheme_adj[u] ^= 1 << v
        scheme_adj[v] ^= 1 << u
        engine.update(scheme_adj, (1 << u) | (1 << v), None)
        assert engine.adjacency == scheme_adj


class TestWordBoundarySizes:
    """Tail-word regression (ISSUE 7): the packed uint64 paths must be
    exact when n is not a multiple of 64 — stray bits in the last word
    would corrupt coverage verdicts and firing tables."""

    @pytest.mark.parametrize("n", [63, 64, 65, 127])
    def test_delta_pipeline_matches_scratch_across_moves(self, n):
        import math

        rng = np.random.default_rng(n)
        side = 100.0 * math.sqrt(n / 100)
        net = AdHocNetwork(
            rng.uniform(0.0, side, size=(n, 2)), 25.0, side=side
        )
        net.adjacency
        pipe = DeltaCDSPipeline("nd")
        for _ in range(4):
            got = pipe.compute(net)
            want = compute_cds(net.snapshot(), "nd")
            assert got.gateway_mask == want.gateway_mask
            assert got.stats == want.stats
            ids = rng.choice(n, size=max(1, n // 8), replace=False)
            net.positions[ids] += rng.uniform(-8.0, 8.0, size=(len(ids), 2))
            net.positions[:] = np.clip(net.positions, 0.0, side)
            net.apply_moves(list(ids))

    @pytest.mark.parametrize("n", [63, 64, 65, 127])
    def test_changed_row_detection_at_boundary(self, n):
        # the object-array row compare must see a single flipped edge on
        # the highest row (the one living in the tail word)
        adj = [0] * n
        for i in range(n - 1):
            adj[i] |= 1 << (i + 1)
            adj[i + 1] |= 1 << i
        pipe = DeltaCDSPipeline("id")
        pipe.compute(adj)
        adj2 = list(adj)
        adj2[n - 1] ^= 1 << 0
        adj2[0] ^= 1 << (n - 1)
        got = pipe.compute(adj2)
        want = compute_cds(adj2, "id")
        assert got.gateway_mask == want.gateway_mask
        assert got.stats == want.stats
