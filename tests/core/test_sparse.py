"""Sparse streaming CDS engine: oracle suite (ISSUE 9).

The contract is total bit-identity with the scalar oracle
:func:`repro.core.cds.compute_cds` — gateway masks AND
:class:`~repro.core.reduction.PruneStats` — across every scheme, both
rule modes, both execution tiers (dense per-component sub-batches and
the streamed CSR kernels), any chunk budget, and topologies the dense
engines never see: disconnected multi-component fields at word-boundary
sizes.  The hypothesis twin lives in
``tests/property/test_sparse_properties.py``; this file pins the named
corners.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.priority import PAPER_SERIES_ORDER
from repro.core.sparse import (
    CSRBatch,
    SparseCDSEngine,
    SparseCDSPipeline,
    compute_cds_sparse,
    connected_labels,
)
from repro.core.vectorized import (
    VectorizedCDSPipeline,
    compute_cds_batch,
    edge_table,
    pack_batch,
)
from repro.errors import ConfigurationError, InvariantViolation
from repro.graphs.adhoc import AdHocNetwork
from repro.graphs.generators import (
    clique,
    from_edges,
    path_graph,
    random_connected_network,
    scaled_side,
    star_graph,
)

RADIUS = 25.0


def _scattered(n: int, seed: int, spread: float = 2.0):
    """A usually-disconnected uniform field (components are the point)."""
    side = spread * scaled_side(n)
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0.0, side, size=(n, 2))
    return AdHocNetwork(pos, RADIUS, side=side)


def _energies(n: int, b: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(50.0, 150.0, size=(b, n))


def _assert_matches_oracle(adjacencies, energies, **sparse_kwargs):
    for scheme in PAPER_SERIES_ORDER:
        for fixed_point in (False, True):
            got = compute_cds_sparse(
                adjacencies, scheme, energies=energies,
                fixed_point=fixed_point, **sparse_kwargs,
            )
            for b, adj in enumerate(adjacencies):
                want = compute_cds(
                    adj, scheme, energy=list(energies[b]),
                    fixed_point=fixed_point,
                )
                assert got[b].gateway_mask == want.gateway_mask, (
                    f"scheme={scheme} fp={fixed_point} b={b}"
                )
                assert got[b].stats == want.stats, (
                    f"scheme={scheme} fp={fixed_point} b={b}"
                )


class TestOracleEquivalence:
    @pytest.mark.parametrize("n", [63, 64, 65, 127, 128])
    def test_word_boundaries_connected(self, n):
        net = random_connected_network(
            n, side=scaled_side(n), radius=RADIUS, rng=1000 + n
        )
        _assert_matches_oracle([list(net.adjacency)], _energies(n, 1, n))

    @pytest.mark.parametrize("n", [64, 130])
    def test_disconnected_fields(self, n):
        adj = [list(_scattered(n, 2000 + n).adjacency)]
        _assert_matches_oracle(adj, _energies(n, 1, n))

    @pytest.mark.parametrize("dense_cutoff", [0, 2, 8, 10**6])
    def test_tier_forcing(self, dense_cutoff):
        # cutoff 0/2 pushes every component >2 through the streamed CSR
        # kernels; 10**6 forces the dense sub-batch tier; 8 mixes tiers
        # within one batch
        n = 90
        adj = [list(_scattered(n, 31).adjacency)]
        _assert_matches_oracle(
            adj, _energies(n, 1, 7), dense_cutoff=dense_cutoff
        )

    def test_multi_element_batch(self):
        n = 70
        adj = [
            list(_scattered(n, 40 + k, spread=1.0 + 0.7 * k).adjacency)
            for k in range(3)
        ]
        _assert_matches_oracle(adj, _energies(n, 3, 5))

    def test_named_small_topologies(self):
        for g in (path_graph(7), star_graph(6), clique(5),
                  from_edges(9, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5),
                                 (3, 5), (6, 7)])):
            adj = [list(g.adjacency)]
            _assert_matches_oracle(adj, _energies(g.n, 1, g.n))

    def test_degenerate_inputs(self):
        assert compute_cds_sparse([], "id") == []
        for adj in ([0], [0b10, 0b01], [0, 0, 0]):
            _assert_matches_oracle([adj], _energies(len(adj), 1, 3))

    def test_tiny_budget_bit_identity(self):
        n = 80
        adj = [list(_scattered(n, 55).adjacency)]
        _assert_matches_oracle(
            adj, _energies(n, 1, 9), memory_budget_mb=0.001
        )

    def test_guard_against_key_overflow(self):
        # B*n*n must stay under 2**62 for the flat searchsorted keys
        with pytest.raises(ConfigurationError, match="overflow int64"):
            SparseCDSEngine("id").run(
                CSRBatch(
                    np.zeros(2, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    1, 2**31 + 1,
                ),
                None,
            )


class TestCSRBatch:
    def test_from_adjacency_matches_edge_table(self):
        n = 50
        net = _scattered(n, 77)
        adj = [list(net.adjacency)]
        csr = CSRBatch.from_adjacency(adj)
        packed = pack_batch(adj)
        rows = packed.reshape(-1, packed.shape[-1])
        src, dst, _ = edge_table(rows, n)
        assert np.array_equal(csr.dst, dst)
        assert np.array_equal(np.repeat(np.arange(n), np.diff(csr.indptr)), src)
        assert csr.nnz == len(dst)

    @pytest.mark.parametrize("n", [1, 17, 300])
    def test_from_positions_matches_adjacency(self, n):
        net = _scattered(n, 88 + n, spread=1.5)
        a = CSRBatch.from_positions(net.positions, RADIUS)
        b = CSRBatch.from_adjacency([list(net.adjacency)])
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.dst, b.dst)

    def test_from_positions_tiny_budget_identical(self):
        net = _scattered(200, 91)
        a = CSRBatch.from_positions(net.positions, RADIUS)
        b = CSRBatch.from_positions(
            net.positions, RADIUS, memory_budget_mb=0.001
        )
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.dst, b.dst)

    def test_empty(self):
        csr = CSRBatch.from_positions(np.empty((0, 2)), RADIUS)
        assert csr.n == 0 and csr.nnz == 0


def _flat_labels(csr: CSRBatch) -> np.ndarray:
    # connected_labels works on FLAT destination rows (eDf), which is
    # what keeps batch elements separate; mirror the engine's prep
    deg = np.diff(csr.indptr)
    eS = np.repeat(np.arange(csr.B * csr.n, dtype=np.int64), deg)
    eDf = eS - eS % csr.n + csr.dst
    return connected_labels(csr.indptr, eDf)


class TestConnectedLabels:
    def test_two_triangles_and_isolates(self):
        g = from_edges(
            9, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7)]
        )
        labels = _flat_labels(CSRBatch.from_adjacency([list(g.adjacency)]))
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == labels[5] == 3
        assert labels[6] == labels[7] == 6
        assert labels[8] == 8

    def test_path_is_one_component(self):
        g = path_graph(200)
        labels = _flat_labels(CSRBatch.from_adjacency([list(g.adjacency)]))
        assert len(set(labels.tolist())) == 1

    def test_batch_elements_stay_separate(self):
        g = clique(5)
        labels = _flat_labels(CSRBatch.from_adjacency([list(g.adjacency)] * 2))
        assert set(labels[:5].tolist()) == {0}
        assert set(labels[5:].tolist()) == {5}


class TestSparsePipeline:
    def test_matches_vectorized_pipeline(self):
        net = random_connected_network(40, side=80, radius=25, rng=5)
        energy = list(np.random.default_rng(5).uniform(50, 150, size=40))
        a = SparseCDSPipeline("el2").compute(net, energy=energy)
        b = VectorizedCDSPipeline("el2").compute(net, energy=energy)
        assert a.gateway_mask == b.gateway_mask
        assert a.stats == b.stats

    def test_shadow_check_clean(self):
        net = random_connected_network(30, side=80, radius=25, rng=6)
        pipe = SparseCDSPipeline("nd", shadow_check=True)
        assert pipe.compute(net).gateway_mask

    def test_verify_raises_on_corrupt_engine(self, monkeypatch):
        net = random_connected_network(30, side=80, radius=25, rng=7)
        pipe = SparseCDSPipeline("nd", verify=True)

        def corrupt(csr, energy):
            flags, stats = SparseCDSEngine("nd").run(csr, energy)
            flags[:1] = ~flags[:1]  # flip one node's gateway bit
            return flags, stats

        monkeypatch.setattr(pipe.engine, "run", corrupt)
        with pytest.raises(InvariantViolation):
            pipe.compute(net)
