"""Locality tests: localized marker updates equal full recomputation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.marking import marked_mask
from repro.graphs import bitset
from repro.graphs.generators import random_connected_network
from repro.geometry.space import Region2D
from repro.mobility.manager import MobilityManager
from repro.mobility.paper_walk import PaperWalk
from repro.protocol.locality import (
    affected_by_change,
    changed_endpoints,
    localized_recompute,
)


class TestChangedEndpoints:
    def test_no_change_detected(self, small_network):
        adj = list(small_network.adjacency)
        assert changed_endpoints(adj, adj) == []

    def test_size_change_rejected(self, small_network):
        adj = list(small_network.adjacency)
        with pytest.raises(ValueError):
            changed_endpoints(adj, adj[:-1])

    def test_single_move_touches_both_endpoints(self, rng):
        net = random_connected_network(10, rng=rng)
        before = list(net.adjacency)
        # find an adjacent pair and drop the edge by teleporting one host
        u = next(v for v in range(10) if net.degree(v) >= 2)
        w = net.neighbors(u)[0]
        net.move_host(w, (net.positions[w] + 200.0))
        changed = changed_endpoints(before, list(net.adjacency))
        assert w in changed and u in changed


class TestAffectedBall:
    def test_zero_hops_is_identity(self, small_network):
        adj = list(small_network.adjacency)
        ball = affected_by_change(adj, [3], hops=0)
        assert bitset.ids_from_mask(ball) == [3]

    def test_one_hop_includes_neighbors(self, small_network):
        adj = list(small_network.adjacency)
        ball = affected_by_change(adj, [0], hops=1)
        expect = {0} | set(bitset.ids_from_mask(adj[0]))
        assert set(bitset.ids_from_mask(ball)) == expect

    def test_balls_grow_monotonically(self, small_network):
        adj = list(small_network.adjacency)
        b1 = affected_by_change(adj, [0], hops=1)
        b2 = affected_by_change(adj, [0], hops=2)
        assert bitset.is_subset(b1, b2)


class TestLocalizedRecompute:
    def _roam_once(self, rng, n=20):
        net = random_connected_network(n, rng=rng)
        old_adj = list(net.adjacency)
        old_marked = marked_mask(old_adj)
        mgr = MobilityManager(
            net, PaperWalk(), Region2D(side=net.side), rng=rng
        )
        mgr.step()
        return old_adj, old_marked, list(net.adjacency)

    def test_matches_full_recomputation(self, rng):
        for _ in range(15):
            old_adj, old_marked, new_adj = self._roam_once(rng)
            local, _ = localized_recompute(old_adj, new_adj, old_marked)
            assert local == marked_mask(new_adj)

    def test_no_change_recomputes_nothing(self, small_network):
        adj = list(small_network.adjacency)
        marked = marked_mask(adj)
        out, n_recomputed = localized_recompute(adj, adj, marked)
        assert out == marked
        assert n_recomputed == 0

    def test_recomputation_is_actually_local(self, rng):
        # with the paper's mobility, the ball is usually a strict subset
        strict = 0
        for _ in range(10):
            old_adj, old_marked, new_adj = self._roam_once(rng, n=30)
            _, n_recomputed = localized_recompute(old_adj, new_adj, old_marked)
            if n_recomputed < 30:
                strict += 1
        assert strict >= 1  # locality saves work at least sometimes
