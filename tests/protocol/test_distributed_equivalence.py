"""The distributed protocol computes exactly the centralized CDS.

This is the executable form of the paper's decentralization claim: the
4-round (plus Rule-2 sub-rounds) message-passing protocol, where every
host uses only information received from direct neighbors, must produce
the same gateway set as the omniscient pipeline for every scheme.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.priority import SCHEMES
from repro.errors import ConfigurationError
from repro.graphs.generators import (
    paper_example_graph,
    random_gnp_connected,
)
from repro.protocol.distributed_cds import distributed_cds


class TestEquivalenceOnPaperExample:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_same_gateways(self, paper_example, scheme):
        d = distributed_cds(paper_example.graph, scheme, energy=paper_example.energy)
        c = compute_cds(paper_example.graph, scheme, energy=paper_example.energy)
        assert d.gateways == c.gateways


class TestEquivalenceOnRandomGraphs:
    @pytest.mark.parametrize("scheme", ["id", "nd", "el1", "el2"])
    def test_many_random_graphs(self, scheme):
        rng = np.random.default_rng(hash(scheme) % 2**32)
        for _ in range(25):
            n = int(rng.integers(4, 28))
            g = random_gnp_connected(n, float(rng.uniform(0.15, 0.6)), rng=rng)
            energy = rng.integers(1, 5, size=n).astype(float)
            d = distributed_cds(g, scheme, energy=energy)
            c = compute_cds(g, scheme, energy=energy)
            assert d.gateways == c.gateways


class TestProtocolBehaviour:
    def test_el_scheme_requires_energy(self, paper_example):
        with pytest.raises(ConfigurationError, match="energy"):
            distributed_cds(paper_example.graph, "el1")

    def test_energy_length_checked(self, paper_example):
        with pytest.raises(ConfigurationError, match="entries"):
            distributed_cds(paper_example.graph, "el2", energy=[1.0])

    def test_traffic_is_counted(self, paper_example):
        d = distributed_cds(paper_example.graph, "id")
        s = d.stats
        assert s.rounds >= 3  # 3 base rounds + rule-2 sub-rounds
        assert s.broadcasts >= 3 * paper_example.graph.n
        assert s.bytes_delivered >= s.bytes_on_air

    def test_rule2_subrounds_terminate_quickly(self, paper_example):
        d = distributed_cds(paper_example.graph, "nd")
        # 3 base rounds + 2 deliveries per sub-round; should be single digits
        assert d.stats.rounds <= 3 + 2 * 6

    def test_agents_expose_final_state(self, paper_example):
        d = distributed_cds(paper_example.graph, "id")
        assert {a.node for a in d.agents if a.final_marked} == set(d.gateways)
        assert all(a.final_marked is not None for a in d.agents)

    def test_nr_scheme_skips_pruning(self, paper_example):
        from repro.core.marking import marked_set

        d = distributed_cds(paper_example.graph, "nr")
        assert d.gateways == frozenset(marked_set(paper_example.graph))
