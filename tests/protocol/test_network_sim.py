"""Synchronous network engine and message tests."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.graphs.generators import path_graph
from repro.protocol.messages import CandidacyMsg, MarkerMsg, NeighborSetMsg
from repro.protocol.network_sim import SyncNetwork


class TestMessages:
    def test_neighbor_set_size_grows_with_degree(self):
        small = NeighborSetMsg(sender=0, neighbors=frozenset({1}))
        big = NeighborSetMsg(sender=0, neighbors=frozenset({1, 2, 3}))
        assert big.wire_size > small.wire_size

    def test_marker_and_candidacy_fixed_size(self):
        assert MarkerMsg(sender=0, marked=True).wire_size == MarkerMsg(
            sender=5, marked=False, stage="rule1"
        ).wire_size
        assert CandidacyMsg(sender=1, candidate=True).wire_size > 0


class TestDelivery:
    def test_broadcast_reaches_exactly_neighbors(self):
        g = path_graph(4)
        net = SyncNetwork(list(g.adjacency))
        net.broadcast(1, MarkerMsg(sender=1, marked=True))
        inboxes = net.deliver_round()
        assert [len(b) for b in inboxes] == [1, 0, 1, 0]
        assert inboxes[0][0].sender == 1

    def test_double_broadcast_same_round_rejected(self):
        g = path_graph(3)
        net = SyncNetwork(list(g.adjacency))
        net.broadcast(0, MarkerMsg(sender=0, marked=True))
        with pytest.raises(ProtocolError, match="already broadcast"):
            net.broadcast(0, MarkerMsg(sender=0, marked=False))

    def test_sender_field_must_match(self):
        g = path_graph(3)
        net = SyncNetwork(list(g.adjacency))
        with pytest.raises(ProtocolError, match="sender"):
            net.broadcast(0, MarkerMsg(sender=1, marked=True))

    def test_outbox_clears_between_rounds(self):
        g = path_graph(3)
        net = SyncNetwork(list(g.adjacency))
        net.broadcast(0, MarkerMsg(sender=0, marked=True))
        net.deliver_round()
        second = net.deliver_round()
        assert all(len(b) == 0 for b in second)

    def test_inbox_accessor_matches_last_round(self):
        g = path_graph(3)
        net = SyncNetwork(list(g.adjacency))
        net.broadcast(2, MarkerMsg(sender=2, marked=True))
        net.deliver_round()
        assert len(net.inbox(1)) == 1
        assert net.inbox(0) == []


class TestTrafficStats:
    def test_counters_accumulate(self):
        g = path_graph(3)
        net = SyncNetwork(list(g.adjacency))
        msg = MarkerMsg(sender=1, marked=True)
        net.broadcast(1, msg)
        net.deliver_round()
        assert net.stats.rounds == 1
        assert net.stats.broadcasts == 1
        assert net.stats.deliveries == 2  # node 1 has two neighbors
        assert net.stats.bytes_on_air == msg.wire_size
        assert net.stats.bytes_delivered == 2 * msg.wire_size
