"""Direct unit tests of the NodeAgent state machine.

The protocol integration tests prove end-to-end equivalence; these pin
the per-agent behaviours (message construction, table building, error
handling) at the unit level.
"""

from __future__ import annotations

import pytest

from repro.core.priority import scheme_by_name
from repro.errors import ProtocolError
from repro.protocol.messages import MarkerMsg, NeighborSetMsg
from repro.protocol.node_agent import NodeAgent


def agent(node=0, neighbors=(1, 2), scheme="id", energy=5.0):
    return NodeAgent(node, frozenset(neighbors), scheme_by_name(scheme), energy)


def nbr_msg(sender, neighbors, energy=1.0):
    return NeighborSetMsg(sender=sender, neighbors=frozenset(neighbors), energy=energy)


class TestNeighborSetExchange:
    def test_outgoing_message_carries_own_state(self):
        a = agent(3, (1, 7), energy=9.0)
        msg = a.make_neighbor_set_msg()
        assert msg.sender == 3
        assert msg.neighbors == {1, 7}
        assert msg.energy == 9.0

    def test_tables_built_from_inbox(self):
        a = agent(0, (1, 2))
        a.receive_neighbor_sets([
            nbr_msg(1, {0, 2}, 4.0), nbr_msg(2, {0, 1}, 6.0)
        ])
        assert a.nbr_sets[1] == {0, 2}
        assert a.nbr_energy[2] == 6.0

    def test_non_neighbor_sender_rejected(self):
        a = agent(0, (1,))
        with pytest.raises(ProtocolError, match="non-neighbor"):
            a.receive_neighbor_sets([nbr_msg(5, {0})])

    def test_missing_neighbor_detected(self):
        a = agent(0, (1, 2))
        with pytest.raises(ProtocolError, match="missing"):
            a.receive_neighbor_sets([nbr_msg(1, {0, 2})])


class TestMarkingDecision:
    def test_unconnected_neighbors_mark(self):
        a = agent(0, (1, 2))
        a.receive_neighbor_sets([nbr_msg(1, {0}), nbr_msg(2, {0})])
        msg = a.decide_marker()
        assert a.marked is True
        assert msg.marked and msg.stage == "marking"

    def test_clique_neighborhood_does_not_mark(self):
        a = agent(0, (1, 2))
        a.receive_neighbor_sets([nbr_msg(1, {0, 2}), nbr_msg(2, {0, 1})])
        a.decide_marker()
        assert a.marked is False

    def test_rule1_requires_marking_first(self):
        a = agent()
        with pytest.raises(ProtocolError, match="before marking"):
            a.decide_rule1()

    def test_rule2_requires_rule1_first(self):
        a = agent()
        with pytest.raises(ProtocolError, match="before rule1"):
            a.begin_rule2()


class TestRule1Decision:
    def _covered_agent(self):
        # agent 0 with N(0) = {1, 2}; neighbor 1 covers N[0] and is marked
        a = agent(0, (1, 2))
        a.receive_neighbor_sets([
            nbr_msg(1, {0, 2, 3}), nbr_msg(2, {0, 1}),
        ])
        a.decide_marker()  # 0 marked? 1-2 adjacent -> not marked actually
        return a

    def test_unmarked_agent_stays_unmarked_through_rule1(self):
        a = self._covered_agent()
        assert a.marked is False
        msg = a.decide_rule1()
        assert msg.marked is False and msg.stage == "rule1"

    def test_marked_agent_defers_to_covering_higher_id(self):
        # agent 0 marked via the unconnected pair (2, 3); neighbor 1 is
        # adjacent to all of N[0] = {0,1,2,3}, so Rule 1 unmarks 0
        a = agent(0, (1, 2, 3))
        a.receive_neighbor_sets([
            nbr_msg(1, {0, 2, 3}),
            nbr_msg(2, {0, 1}),
            nbr_msg(3, {0, 1}),
        ])
        a.decide_marker()
        assert a.marked is True
        a.receive_markers([MarkerMsg(sender=1, marked=True)])
        msg = a.decide_rule1()
        assert a.marked_post_rule1 is False
        assert msg.marked is False

    def test_unmarked_coverer_cannot_unmark(self):
        a = agent(0, (1, 2, 3))
        a.receive_neighbor_sets([
            nbr_msg(1, {0, 2, 3}),
            nbr_msg(2, {0, 1}),
            nbr_msg(3, {0, 1}),
        ])
        a.decide_marker()
        a.receive_markers([MarkerMsg(sender=1, marked=False)])
        a.decide_rule1()
        assert a.marked_post_rule1 is True


class TestRule2Tables:
    def test_candidacy_reflects_current_view(self, paper_example):
        from repro.protocol.distributed_cds import distributed_cds

        out = distributed_cds(paper_example.graph, "nd")
        # every agent's final candidacy must be False (quiescence)
        for a in out.agents:
            if a.neighbors:
                assert a.rule2_fires() is False

    def test_finalize_reports_rule2_state(self):
        a = agent(0, (1, 2))
        a.receive_neighbor_sets([nbr_msg(1, {0}), nbr_msg(2, {0})])
        a.decide_marker()
        a.receive_markers([])
        a.decide_rule1()
        a.begin_rule2()
        assert a.finalize() is True  # marked, nothing removed it
        assert a.final_marked is True
