"""Async engine crash edge cases: crash *during* a broadcast, and
quiescence detection when the silence cascades.

These paths are the hardest to hit from the random fault sweeps, so they
get handcrafted topologies with crashes pinned to exact protocol stages
(see :func:`repro.protocol.async_sim._stage_index` for the stage order:
nbrsets=0, marking=1, rule1=2, m:0=3, c:0=4, done follows last-sent).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NodeCrashError
from repro.faults import FaultPlan, evaluate_surviving
from repro.graphs import bitset
from repro.graphs.generators import from_edges, path_graph, random_gnp_connected
from repro.protocol.async_sim import run_async_cds

_DETECT_WINDOW_KW = dict(max_retries=2, retx_timeout=3.0)


def _star(leaves: int):
    return from_edges(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


class TestCrashDuringBroadcast:
    """The sender dies at transmit time: that stage frame reaches nobody."""

    def test_articulation_crash_mid_marking_degrades(self):
        # P5: node 2 is the articulation point.  It transmits nbrsets
        # (stage 0) and then crashes while broadcasting marking (stage 1):
        # both sides of the path lose it and must time the silence out.
        g = path_graph(5)
        out = run_async_cds(
            g, "id", rng=7,
            fault_plan=FaultPlan(seed=1, crashes={2: 1}),
            failure_policy="degrade", **_DETECT_WINDOW_KW,
        )
        assert out.crashed == frozenset({2})
        assert 2 not in out.gateways
        # the crashed host's silence is attributed to the crash, never to
        # channel loss (live-but-blocked peers may still be suspected —
        # degrade drops every correspondent a blocked host is waiting on)
        assert 2 not in out.suspected
        check = evaluate_surviving(
            list(g.adjacency),
            bitset.mask_from_ids(out.crashed),
            bitset.mask_from_ids(out.gateways),
        )
        assert check.coverage_gap == 0

    def test_articulation_crash_mid_marking_strict_raises(self):
        with pytest.raises(NodeCrashError, match="crash"):
            run_async_cds(
                path_graph(5), "id", rng=7,
                fault_plan=FaultPlan(seed=1, crashes={2: 1}),
                failure_policy="strict", **_DETECT_WINDOW_KW,
            )

    def test_crash_on_the_done_frame_is_harmless(self):
        # Star: every host finishes at wave 0, so the last stage anyone
        # transmits is c:0 (index 4) and the done frame carries index 5.
        # A leaf that crashes exactly there completed the whole protocol —
        # nobody was waiting on its done frame, so the outcome matches the
        # fault-free run while still reporting the crash.
        g = _star(3)
        clean = run_async_cds(g, "id", rng=11)
        out = run_async_cds(
            g, "id", rng=11,
            fault_plan=FaultPlan(seed=2, crashes={1: 5}),
            failure_policy="degrade", **_DETECT_WINDOW_KW,
        )
        assert out.crashed == frozenset({1})
        assert out.gateways == clean.gateways == frozenset({0})
        # the suppressed done frame is the only traffic difference, so the
        # faulted run sends strictly fewer frames
        assert out.messages_sent < clean.messages_sent

    def test_crash_detection_charges_the_timeout_window(self):
        # P3 with host 0 silent from rule1 (stage 2) on: host 1 must wait
        # a full detection window before declaring it gone, and that
        # window is charged to the makespan.
        out = run_async_cds(
            path_graph(3), "id", rng=3,
            fault_plan=FaultPlan(seed=3, crashes={0: 2}),
            failure_policy="degrade", **_DETECT_WINDOW_KW,
        )
        window = (_DETECT_WINDOW_KW["max_retries"] + 1) * \
            _DETECT_WINDOW_KW["retx_timeout"]
        assert out.crashed == frozenset({0})
        assert out.makespan >= window


class TestQuiescenceDetection:
    """Blocked-forever resolution when the crash silence cascades."""

    def test_cascaded_blockage_resolves_in_degrade(self):
        # P3: host 0 crashes at rule1.  Host 1 blocks on 0 directly; host
        # 2 blocks on *live* host 1 (a cascade).  Resolution must converge
        # anyway, attributing 0's silence to the crash (not suspicion)
        # while the stalled live link 1<->2 may be dropped as suspected.
        out = run_async_cds(
            path_graph(3), "id", rng=5,
            fault_plan=FaultPlan(seed=4, crashes={0: 2}),
            failure_policy="degrade", **_DETECT_WINDOW_KW,
        )
        assert out.crashed == frozenset({0})
        assert 0 not in out.suspected
        assert out.suspected <= frozenset({1, 2})

    def test_cascaded_blockage_strict_names_the_crash_victim(self):
        # Host 2 itself has no crashed neighbor — strict must still
        # attribute the deadlock to host 0's crash, not to channel loss.
        with pytest.raises(NodeCrashError, match=r"\[0\]"):
            run_async_cds(
                path_graph(3), "id", rng=5,
                fault_plan=FaultPlan(seed=4, crashes={0: 2}),
                failure_policy="strict", **_DETECT_WINDOW_KW,
            )

    def test_last_unfinished_host_loses_every_neighbor(self):
        # P3 where BOTH endpoints crash while broadcasting c:0: the middle
        # host is the last unfinished one, blocked with zero live
        # correspondents.  It must freeze its own decision locally instead
        # of waiting forever.
        out = run_async_cds(
            path_graph(3), "id", rng=9,
            fault_plan=FaultPlan(seed=5, crashes={0: 4, 2: 4}),
            failure_policy="degrade", **_DETECT_WINDOW_KW,
        )
        assert out.crashed == frozenset({0, 2})
        assert out.gateways <= frozenset({1})

    def test_crash_replay_is_deterministic(self):
        # same plan + same rng seed => bit-identical outcome, including
        # the degraded-resolution bookkeeping
        kw = dict(
            fault_plan=FaultPlan(seed=6, crashes={2: 1}),
            failure_policy="degrade", **_DETECT_WINDOW_KW,
        )
        a = run_async_cds(path_graph(5), "nd", rng=13, **kw)
        b = run_async_cds(path_graph(5), "nd", rng=13, **kw)
        assert a == b

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_pinned_crashes_converge_and_cover(self, seed):
        """Seeded sweep: random graphs + random pinned crashes always
        terminate, exclude the victims, and keep survivors covered."""
        rng = np.random.default_rng(seed)
        g = random_gnp_connected(int(rng.integers(6, 16)), 0.35, rng=rng)
        n = len(list(g.adjacency))
        plan = FaultPlan.random(
            n, seed=seed + 100, n_crashes=2, max_stage=6
        )
        out = run_async_cds(
            g, "nd", rng=seed,
            fault_plan=plan, failure_policy="degrade", **_DETECT_WINDOW_KW,
        )
        assert out.crashed == frozenset(plan.crashes)
        assert not out.crashed & out.gateways
        check = evaluate_surviving(
            list(g.adjacency),
            bitset.mask_from_ids(out.crashed),
            bitset.mask_from_ids(out.gateways),
        )
        assert check.coverage_gap == 0
