"""Asynchronous protocol engine tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.properties import is_cds
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.generators import (
    from_edges,
    paper_example_graph,
    path_graph,
    random_gnp_connected,
)
from repro.protocol.async_sim import run_async_cds
from repro.protocol.distributed_cds import distributed_cds


class TestEquivalence:
    @pytest.mark.parametrize("scheme", ["id", "nd", "el1", "el2"])
    def test_paper_example_matches_synchronous(self, paper_example, scheme):
        a = run_async_cds(
            paper_example.graph, scheme, energy=paper_example.energy, rng=1
        )
        d = distributed_cds(
            paper_example.graph, scheme, energy=paper_example.energy
        )
        assert a.gateways == d.gateways

    @pytest.mark.parametrize("scheme", ["id", "nd", "el1", "el2"])
    def test_random_graphs_random_latencies(self, scheme):
        rng = np.random.default_rng(hash(scheme) % 2**32)
        for _ in range(20):
            n = int(rng.integers(4, 22))
            g = random_gnp_connected(n, float(rng.uniform(0.15, 0.6)), rng=rng)
            energy = rng.integers(1, 5, n).astype(float)
            a = run_async_cds(g, scheme, energy=energy, rng=rng)
            d = distributed_cds(g, scheme, energy=energy)
            assert a.gateways == d.gateways
            if a.gateways:
                assert is_cds(g.adjacency, bitset.mask_from_ids(a.gateways))

    def test_result_is_latency_schedule_independent(self, paper_example):
        outs = {
            run_async_cds(
                paper_example.graph, "nd", rng=seed,
                min_latency=0.1, max_latency=5.0,
            ).gateways
            for seed in range(5)
        }
        assert len(outs) == 1  # same set under five different schedules


class TestMetrics:
    def test_makespan_positive_and_bounded(self, paper_example):
        out = run_async_cds(
            paper_example.graph, "id", rng=3,
            min_latency=1.0, max_latency=1.0,
        )
        # fixed unit latency: makespan = number of sequential stages
        assert out.makespan >= 4.0  # at least nbrsets/marking/rule1/m:0...
        assert out.makespan <= 60.0

    def test_message_count_scales_with_stages(self):
        g = path_graph(6)
        out = run_async_cds(g, "id", rng=0)
        # 6 hosts x (nbrsets + marking + rule1 + >=1 m/c wave + done)
        assert out.messages_sent >= 6 * 5

    def test_deterministic_for_fixed_seed(self, paper_example):
        a = run_async_cds(paper_example.graph, "el1",
                          energy=paper_example.energy, rng=11)
        b = run_async_cds(paper_example.graph, "el1",
                          energy=paper_example.energy, rng=11)
        assert (a.gateways, a.makespan, a.messages_sent) == (
            b.gateways, b.makespan, b.messages_sent
        )

    def test_isolated_hosts_handled(self):
        g = from_edges(4, [(0, 1), (1, 2)])  # host 3 isolated
        out = run_async_cds(g, "id", rng=0)
        assert 3 not in out.gateways
        assert out.gateways == {1}


class TestValidation:
    def test_bad_latency_range_rejected(self, paper_example):
        with pytest.raises(ConfigurationError):
            run_async_cds(paper_example.graph, "id", min_latency=0.0)
        with pytest.raises(ConfigurationError):
            run_async_cds(
                paper_example.graph, "id", min_latency=3.0, max_latency=1.0
            )

    def test_el_scheme_needs_energy(self, paper_example):
        with pytest.raises(ConfigurationError, match="energy"):
            run_async_cds(paper_example.graph, "el1")


class TestLossyChannels:
    def test_outcome_unchanged_under_loss(self, paper_example):
        clean = run_async_cds(paper_example.graph, "nd", rng=5)
        lossy = run_async_cds(
            paper_example.graph, "nd", rng=5, loss_probability=0.3
        )
        assert clean.gateways == lossy.gateways

    def test_loss_inflates_time_and_traffic(self, paper_example):
        import numpy as np

        clean_ms, lossy_ms = [], []
        clean_tx, lossy_tx = [], []
        for seed in range(5):
            c = run_async_cds(paper_example.graph, "id", rng=seed)
            l = run_async_cds(
                paper_example.graph, "id", rng=seed,
                loss_probability=0.4, retx_timeout=3.0,
            )
            assert c.gateways == l.gateways
            clean_ms.append(c.makespan)
            lossy_ms.append(l.makespan)
            clean_tx.append(c.messages_sent)
            lossy_tx.append(l.messages_sent)
        assert np.mean(lossy_ms) > np.mean(clean_ms)
        assert np.mean(lossy_tx) > np.mean(clean_tx)

    def test_bad_loss_parameters_rejected(self, paper_example):
        with pytest.raises(ConfigurationError):
            run_async_cds(paper_example.graph, "id", loss_probability=1.0)
        with pytest.raises(ConfigurationError):
            run_async_cds(paper_example.graph, "id", retx_timeout=0.0)
