"""Fault-injection layer + fault-tolerant protocol execution.

Covers the :mod:`repro.faults` subsystem and its integration into both
protocol engines: seeded replay, typed channel/crash errors under the
strict policy, traffic accounting of drops and retransmissions, degrade
semantics, localized repair, and the zero-fault equivalence guard (a
null plan must change *nothing* relative to the happy-path engines and
the centralized pipeline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cds import compute_cds
from repro.core.priority import PAPER_SERIES_ORDER
from repro.errors import (
    ChannelError,
    ConfigurationError,
    DuplicateBroadcastError,
    NodeCrashError,
    ProtocolError,
)
from repro.faults import (
    FaultOutcome,
    FaultPlan,
    GilbertElliott,
    evaluate_surviving,
    full_recompute,
    localized_repair,
    repair_ball,
    surviving_adjacency,
)
from repro.graphs import bitset
from repro.graphs.generators import random_connected_network
from repro.protocol.async_sim import run_async_cds
from repro.protocol.fault_tolerant import run_fault_tolerant_cds
from repro.protocol.messages import MarkerMsg
from repro.protocol.network_sim import SyncNetwork
from repro.protocol.node_agent import FailurePolicy


@pytest.fixture(scope="module")
def net50():
    return random_connected_network(50, rng=4242)


@pytest.fixture(scope="module")
def energy50():
    return np.linspace(1, 100, 50)


# -- fault plan ---------------------------------------------------------------


class TestFaultPlan:
    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not FaultPlan(loss=0.1).is_null
        assert not FaultPlan(crashes={3: 1}).is_null
        assert not FaultPlan(delay=0.2).is_null
        assert not FaultPlan(burst=GilbertElliott()).is_null

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(loss=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(crashes={-1: 2})
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_factor=0.5)
        with pytest.raises(ConfigurationError):
            GilbertElliott(p_bad=1.5)

    def test_replay_is_bit_identical(self):
        """Same seed => same decisions, independent of query order."""
        plan = FaultPlan(seed=99, loss=0.3, delay=0.1)
        a, b = plan.realize(), plan.realize()
        queries = [(r, s, d) for r in range(6) for s in range(5) for d in range(5) if s != d]
        fwd = [a.link_event(*q) for q in queries]
        rev = [b.link_event(*q) for q in reversed(queries)]
        assert fwd == list(reversed(rev))

    def test_replay_differs_across_seeds(self):
        q = [(r, s, d) for r in range(8) for s in range(6) for d in range(6) if s != d]
        a = [FaultPlan(seed=1, loss=0.5).realize().link_event(*x) for x in q]
        b = [FaultPlan(seed=2, loss=0.5).realize().link_event(*x) for x in q]
        assert a != b

    def test_async_replay(self):
        plan = FaultPlan(seed=5, loss=0.4, delay=0.2)
        a, b = plan.realize(), plan.realize()
        for s, r, k in [(0, 1, 0), (0, 1, 1), (1, 0, 0), (2, 3, 0), (0, 1, 0)]:
            assert a.async_attempt(s, r, k) == b.async_attempt(s, r, k)

    def test_loss_rate_is_roughly_honoured(self):
        real = FaultPlan(seed=0, loss=0.2).realize()
        events = [
            real.link_event(r, s, d)
            for r in range(40) for s in range(10) for d in range(10) if s != d
        ]
        rate = events.count("drop") / len(events)
        assert 0.15 < rate < 0.25

    def test_gilbert_elliott_bursts(self):
        """With loss_good=0 every drop happens inside a bad-state burst."""
        ge = GilbertElliott(p_bad=0.2, p_good=0.5, loss_good=0.0, loss_bad=1.0)
        real = FaultPlan(seed=3, burst=ge).realize()
        events = [real.link_event(r, 0, 1) for r in range(200)]
        assert "drop" in events and "ok" in events
        # out-of-order query replays the chain identically
        real2 = FaultPlan(seed=3, burst=ge).realize()
        assert real2.link_event(150, 0, 1) == events[150]
        assert real2.link_event(10, 0, 1) == events[10]

    def test_random_plan_draws_distinct_victims(self):
        plan = FaultPlan.random(20, seed=11, loss=0.1, n_crashes=3)
        assert len(plan.crashes) == 3
        assert all(1 <= s < 8 for s in plan.crashes.values())
        assert plan == FaultPlan.random(20, seed=11, loss=0.1, n_crashes=3)
        with pytest.raises(ConfigurationError):
            FaultPlan.random(2, seed=0, n_crashes=3)

    def test_crash_stage_lookup(self):
        real = FaultPlan(crashes={4: 2}).realize()
        assert real.crash_stage(4) == 2
        assert real.crash_stage(5) is None


# -- network sim: drops, delays, duplicate broadcast --------------------------


class TestSyncNetworkFaults:
    def test_duplicate_broadcast_is_typed_with_round_and_sender(self):
        net = SyncNetwork([0b10, 0b01])
        net.broadcast(0, MarkerMsg(sender=0, marked=True))
        with pytest.raises(DuplicateBroadcastError) as ei:
            net.broadcast(0, MarkerMsg(sender=0, marked=False))
        assert isinstance(ei.value, ProtocolError)  # existing handlers still catch
        assert "host 0" in str(ei.value)
        assert "round 0" in str(ei.value)

    def test_drop_and_retransmission_accounting(self):
        drop_all = lambda r, s, d: "drop"  # noqa: E731
        net = SyncNetwork([0b10, 0b01], link_filter=drop_all)
        net.broadcast(0, MarkerMsg(sender=0, marked=True))
        assert net.deliver_round() == [[], []]
        net.broadcast(0, MarkerMsg(sender=0, marked=True), retransmission=True)
        net.deliver_round()
        assert net.stats.dropped == 2
        assert net.stats.retransmissions == 1
        assert net.stats.broadcasts == 2

    def test_delay_slips_exactly_one_round(self):
        fate = iter(["delay"])
        net = SyncNetwork(
            [0b10, 0b01], link_filter=lambda r, s, d: next(fate, "ok")
        )
        msg = MarkerMsg(sender=0, marked=True)
        net.broadcast(0, msg)
        assert net.deliver_round() == [[], []]
        assert net.has_delayed
        inboxes = net.deliver_round()
        assert inboxes[1] == [msg]
        assert net.stats.delayed == 1


# -- strict policy raises typed errors ----------------------------------------


class TestStrictPolicy:
    def test_sync_crash_raises_node_crash_error(self, net50, energy50):
        plan = FaultPlan(seed=1, crashes={7: 1})
        with pytest.raises(NodeCrashError):
            run_fault_tolerant_cds(
                net50, "nd", energy=energy50, plan=plan, policy="strict"
            )

    def test_sync_heavy_loss_raises_channel_error(self, net50, energy50):
        plan = FaultPlan(seed=1, loss=0.9)
        with pytest.raises(ChannelError):
            run_fault_tolerant_cds(
                net50, "nd", energy=energy50, plan=plan,
                policy="strict", max_retries=1,
            )

    def test_async_crash_raises_node_crash_error(self, net50, energy50):
        plan = FaultPlan(seed=1, crashes={7: 1})
        with pytest.raises(NodeCrashError):
            run_async_cds(
                net50, "nd", energy=energy50, rng=0,
                fault_plan=plan, failure_policy="strict",
            )

    def test_async_heavy_loss_raises_channel_error(self, net50, energy50):
        plan = FaultPlan(seed=1, loss=0.9)
        with pytest.raises(ChannelError):
            run_async_cds(
                net50, "nd", energy=energy50, rng=0,
                fault_plan=plan, failure_policy="strict", max_retries=1,
            )

    def test_policy_resolve_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            FailurePolicy.resolve("lenient")


# -- zero-fault equivalence guard ---------------------------------------------


class TestZeroFaultEquivalence:
    """A null plan must be invisible: both engines reproduce the
    centralized result exactly, for every scheme."""

    @pytest.mark.parametrize("scheme", PAPER_SERIES_ORDER)
    def test_sync_engine_matches_centralized(self, net50, energy50, scheme):
        central = compute_cds(net50, scheme, energy=energy50)
        out = run_fault_tolerant_cds(
            net50, scheme, energy=energy50, plan=FaultPlan()
        )
        assert out.gateways == central.gateways
        assert out.converged and out.completed
        assert not out.crashed and not out.suspected
        assert out.retransmissions == 0 and out.dropped == 0
        assert not out.repair_applied

    @pytest.mark.parametrize("scheme", PAPER_SERIES_ORDER)
    def test_async_engine_matches_centralized(self, net50, energy50, scheme):
        central = compute_cds(net50, scheme, energy=energy50)
        out = run_async_cds(
            net50, scheme, energy=energy50, rng=9, fault_plan=FaultPlan()
        )
        assert out.gateways == central.gateways
        assert out.dropped_frames == 0
        assert not out.crashed and not out.suspected

    def test_async_null_plan_matches_no_plan_exactly(self, net50, energy50):
        a = run_async_cds(net50, "el2", energy=energy50, rng=31)
        b = run_async_cds(
            net50, "el2", energy=energy50, rng=31, fault_plan=FaultPlan()
        )
        assert a.gateways == b.gateways
        assert a.makespan == b.makespan
        assert a.messages_sent == b.messages_sent


# -- degrade policy -----------------------------------------------------------


class TestDegradePolicy:
    def test_sync_run_replays_identically(self, net50, energy50):
        plan = FaultPlan(seed=77, loss=0.2, crashes={5: 3})
        a = run_fault_tolerant_cds(net50, "nd", energy=energy50, plan=plan)
        b = run_fault_tolerant_cds(net50, "nd", energy=energy50, plan=plan)
        assert a == b

    def test_sync_gateway_crash_converges(self, net50, energy50):
        central = compute_cds(net50, "nd", energy=energy50)
        victim = sorted(central.gateways)[0]
        plan = FaultPlan(seed=13, loss=0.2, crashes={victim: 2})
        out = run_fault_tolerant_cds(net50, "nd", energy=energy50, plan=plan)
        assert out.converged
        assert victim in out.crashed
        assert victim not in out.gateways
        assert out.retransmissions > 0

    def test_async_degrade_crash_excludes_victim(self, net50, energy50):
        plan = FaultPlan(seed=21, loss=0.1, crashes={3: 2})
        out = run_async_cds(
            net50, "nd", energy=energy50, rng=4, fault_plan=plan
        )
        assert 3 in out.crashed
        assert 3 not in out.gateways
        mask = bitset.mask_from_ids(out.gateways)
        assert evaluate_surviving(
            list(net50.adjacency), 1 << 3, mask
        ).coverage_gap == 0

    def test_burst_loss_converges(self, net50, energy50):
        plan = FaultPlan(seed=8, burst=GilbertElliott())
        out = run_fault_tolerant_cds(net50, "nd", energy=energy50, plan=plan)
        assert out.converged

    def test_delay_only_plan_converges_without_drops(self, net50, energy50):
        plan = FaultPlan(seed=4, delay=0.3)
        out = run_fault_tolerant_cds(net50, "nd", energy=energy50, plan=plan)
        assert out.converged
        assert out.dropped == 0

    def test_outcome_extra_rounds(self, net50, energy50):
        out = run_fault_tolerant_cds(
            net50, "nd", energy=energy50, plan=FaultPlan(seed=2, loss=0.2)
        )
        assert out.extra_rounds == out.rounds - out.baseline_rounds
        assert out.extra_rounds > 0


# -- repair -------------------------------------------------------------------


class TestRepair:
    def test_repair_ball_is_two_hops_on_precrash_adjacency(self):
        # path 0-1-2-3-4-5: crash 2 -> ball reaches {0,1,3,4} minus crashed
        adj = [0b10, 0b101, 0b1010, 0b10100, 0b101000, 0b10000]
        ball = repair_ball(adj, 1 << 2, hops=2)
        assert ball == bitset.mask_from_ids([0, 1, 3, 4])

    def test_localized_repair_restores_domination(self, net50, energy50):
        central = compute_cds(net50, "nd", energy=energy50)
        victim = sorted(central.gateways)[1]
        adj = list(net50.adjacency)
        crashed = 1 << victim
        broken = central.gateway_mask & ~crashed
        fixed, ball = localized_repair(adj, crashed, broken, "nd", energy50)
        assert ball != 0
        check = evaluate_surviving(adj, crashed, fixed)
        assert check.ok
        # statuses outside the ball are untouched
        assert fixed & ~ball == broken & ~ball

    def test_full_recompute_covers_split_components(self):
        # two clusters joined through cut vertex 2; crashing 2 splits them
        adj = [0] * 7
        edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (4, 5), (2, 6), (6, 3)]
        for u, v in edges:
            adj[u] |= 1 << v
            adj[v] |= 1 << u
        gw = full_recompute(adj, 1 << 2, "id", [0.0] * 7)
        assert evaluate_surviving(adj, 1 << 2, gw).ok

    def test_surviving_adjacency_zeroes_crashed(self):
        adj = [0b110, 0b101, 0b011]
        sub = surviving_adjacency(adj, 1 << 1)
        assert sub[1] == 0
        assert not sub[0] >> 1 & 1 and not sub[2] >> 1 & 1


# -- outcome oracle -----------------------------------------------------------


class TestEvaluateSurviving:
    def test_trivial_components_exempt(self):
        # crash splits off a single isolated survivor: still ok
        adj = [0b10, 0b101, 0b010]
        check = evaluate_surviving(adj, 1 << 1, 0)
        assert check.ok and check.n_components == 2

    def test_gap_counted(self):
        # star on 5, no gateways at all, not a clique -> everyone uncovered
        adj = [0b11110, 0b1, 0b1, 0b1, 0b1]
        check = evaluate_surviving(adj, 0, 0)
        assert not check.dominates
        assert check.coverage_gap == 5

    def test_disconnected_backbone_flagged(self):
        # path 0-1-2-3-4, gateways {0, 4} dominate nothing in the middle
        adj = [0] * 5
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            adj[u] |= 1 << v
            adj[v] |= 1 << u
        check = evaluate_surviving(adj, 0, 0b10001)
        assert not check.backbone_connected

    def test_outcome_converged_requires_both(self):
        ok = evaluate_surviving([0b110, 0b101, 0b011], 0, 0b001)
        base = dict(
            gateways=frozenset([0]), crashed=frozenset(), suspected=frozenset(),
            completed=True, check=ok, rounds=5, baseline_rounds=5,
            broadcasts=10, retransmissions=0, dropped=0,
        )
        assert FaultOutcome(**base).converged
        assert not FaultOutcome(**{**base, "completed": False}).converged
