"""Per-host state machine of the distributed CDS protocol.

An agent knows only:

* its own id, energy level, and open neighbor set ``N(v)`` (the radio
  layer gives it that — hello beacons, not modelled further),
* whatever arrives in its inbox.

From round-1 ``NeighborSetMsg`` frames it builds distance-2 knowledge and
decides its marker; from ``MarkerMsg`` frames it learns which neighbors
are gateways and applies Rule 1 and then Rule 2 *locally*.  The decision
logic mirrors :mod:`repro.core.rules` exactly, but computed from the
agent's local tables — the equivalence test in the suite is the proof
that the paper's algorithm truly needs only local information.
"""

from __future__ import annotations

from enum import Enum

from repro.core.priority import PriorityScheme
from repro.errors import ChannelError, ConfigurationError, ProtocolError
from repro.protocol.messages import CandidacyMsg, MarkerMsg, Message, NeighborSetMsg

__all__ = ["NodeAgent", "FailurePolicy"]


class FailurePolicy(str, Enum):
    """What an agent does about a neighbor that stays silent.

    ``STRICT`` preserves the original happy-path contract: a missing
    neighbor frame raises :class:`~repro.errors.ChannelError`.  ``DEGRADE``
    treats the silent neighbor as departed — it is dropped from the local
    view and every later decision is taken from the surviving neighborhood
    (the fault-tolerant engines pair this with bounded retransmission and
    post-hoc verification / localized repair).
    """

    STRICT = "strict"
    DEGRADE = "degrade"

    @staticmethod
    def resolve(value: "FailurePolicy | str") -> "FailurePolicy":
        if isinstance(value, FailurePolicy):
            return value
        try:
            return FailurePolicy(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown failure policy {value!r}; "
                f"expected one of {[p.value for p in FailurePolicy]}"
            ) from None


class NodeAgent:
    """One wireless host participating in the CDS protocol."""

    def __init__(
        self,
        node: int,
        neighbors: frozenset[int],
        scheme: PriorityScheme,
        energy: float = 0.0,
        policy: FailurePolicy | str = FailurePolicy.STRICT,
    ):
        self.node = node
        self.neighbors = neighbors
        self.scheme = scheme
        self.policy = FailurePolicy.resolve(policy)
        self.energy = float(energy)
        #: neighbor id -> that neighbor's open neighbor set.
        self.nbr_sets: dict[int, frozenset[int]] = {}
        #: neighbor id -> that neighbor's energy level.
        self.nbr_energy: dict[int, float] = {}
        #: neighbor id -> marker after the marking step / after Rule 1.
        self.nbr_marked: dict[int, bool] = {}
        self.nbr_marked_post_rule1: dict[int, bool] = {}
        self.marked: bool | None = None
        self.marked_post_rule1: bool | None = None
        self.final_marked: bool | None = None

    # -- round 1: neighbor-set exchange -------------------------------------

    def make_neighbor_set_msg(self) -> NeighborSetMsg:
        return NeighborSetMsg(
            sender=self.node, neighbors=self.neighbors, energy=self.energy
        )

    def receive_neighbor_sets(self, inbox: list[Message]) -> None:
        for msg in inbox:
            if not isinstance(msg, NeighborSetMsg):
                continue
            if msg.sender not in self.neighbors:
                raise ProtocolError(
                    f"host {self.node} heard non-neighbor {msg.sender}"
                )
            self.nbr_sets[msg.sender] = msg.neighbors
            self.nbr_energy[msg.sender] = msg.energy
        missing = self.neighbors - self.nbr_sets.keys()
        if missing:
            if self.policy is FailurePolicy.STRICT:
                raise ChannelError(
                    f"host {self.node} missing neighbor sets from {sorted(missing)}"
                )
            for u in sorted(missing):
                self.drop_neighbor(u)

    def drop_neighbor(self, u: int) -> None:
        """Remove a departed neighbor from the local view (degrade path).

        Every table forgets ``u``; later decisions run on the surviving
        neighborhood.  Distance-2 staleness (``u`` still listed inside
        *other* neighbors' sets) is deliberate — a real host cannot patch
        frames it already received; the localized repair pass is what
        reconciles the 2-hop ball afterwards.
        """
        self.neighbors = self.neighbors - {u}
        self.nbr_sets.pop(u, None)
        self.nbr_energy.pop(u, None)
        self.nbr_marked.pop(u, None)
        self.nbr_marked_post_rule1.pop(u, None)
        for attr in ("nbr_rule2_marked", "nbr_candidate"):
            table = getattr(self, attr, None)
            if table is not None:
                table.pop(u, None)

    # -- round 2: marking ----------------------------------------------------

    def decide_marker(self) -> MarkerMsg:
        """Step 3 of the marking process, from local tables only."""
        nbrs = sorted(self.neighbors)
        self.marked = any(
            v not in self.nbr_sets[u]
            for i, u in enumerate(nbrs)
            for v in nbrs[i + 1 :]
        )
        return MarkerMsg(sender=self.node, marked=self.marked, stage="marking")

    def receive_markers(self, inbox: list[Message]) -> None:
        for msg in inbox:
            if isinstance(msg, MarkerMsg) and msg.stage == "marking":
                self.nbr_marked[msg.sender] = msg.marked

    # -- keys ----------------------------------------------------------------

    def _key(self, who: int) -> tuple:
        """Priority key of self or a neighbor, from local knowledge."""
        if who == self.node:
            degree, energy = len(self.neighbors), self.energy
        else:
            degree = len(self.nbr_sets[who])
            energy = self.nbr_energy[who]
        if self.scheme.quantum is not None:
            energy = round(energy / self.scheme.quantum) * self.scheme.quantum
        from repro.core.priority import NodeAttrs

        return self.scheme.key_fn(NodeAttrs(node=who, degree=degree, energy=energy))

    # -- round 3: Rule 1 -----------------------------------------------------

    def decide_rule1(self) -> MarkerMsg:
        """Unmark if some marked neighbor closed-covers me with higher key."""
        if self.marked is None:
            raise ProtocolError("decide_rule1 before marking")
        keep = self.marked
        if self.scheme.uses_rules and self.marked:
            closed_v = self.neighbors | {self.node}
            my_key = self._key(self.node)
            for u in self.neighbors:
                if not self.nbr_marked.get(u, False):
                    continue
                closed_u = self.nbr_sets[u] | {u}
                if closed_v <= closed_u and my_key < self._key(u):
                    keep = False
                    break
        self.marked_post_rule1 = keep
        return MarkerMsg(sender=self.node, marked=keep, stage="rule1")

    def receive_rule1_markers(self, inbox: list[Message]) -> None:
        for msg in inbox:
            if isinstance(msg, MarkerMsg) and msg.stage == "rule1":
                self.nbr_marked_post_rule1[msg.sender] = msg.marked

    # -- rounds 4+: Rule 2 sub-rounds ----------------------------------------
    #
    # Rule 2 is a small iterated sub-protocol (see repro.core.rules): each
    # sub-round every firing node announces candidacy; a candidate unmarks
    # only when no candidate neighbor has a smaller key.  The agent keeps a
    # live view of which neighbors are still marked / still candidates.

    def begin_rule2(self) -> None:
        """Initialize the Rule-2 working state from the post-Rule-1 view."""
        if self.marked_post_rule1 is None:
            raise ProtocolError("begin_rule2 before rule1")
        self.rule2_marked = self.marked_post_rule1
        self.nbr_rule2_marked = dict(self.nbr_marked_post_rule1)
        self.nbr_candidate: dict[int, bool] = {}

    def rule2_fires(self) -> bool:
        """Does the rule fire for me against my current local view?"""
        if not (self.scheme.uses_rules and self.rule2_marked):
            return False
        marked_nbrs = sorted(
            u for u in self.neighbors if self.nbr_rule2_marked.get(u, False)
        )
        return len(marked_nbrs) >= 2 and self._rule2_unmarks(marked_nbrs)

    def make_rule2_marker_msg(self) -> MarkerMsg:
        """Status refresh opening a sub-round (propagates prior commits)."""
        return MarkerMsg(
            sender=self.node, marked=bool(self.rule2_marked), stage="rule2"
        )

    def receive_rule2_markers(self, inbox: list[Message]) -> None:
        for msg in inbox:
            if isinstance(msg, MarkerMsg) and msg.stage == "rule2":
                self.nbr_rule2_marked[msg.sender] = msg.marked

    def make_candidacy_msg(self) -> CandidacyMsg:
        """Announce whether my rule fires against the refreshed view."""
        return CandidacyMsg(sender=self.node, candidate=self.rule2_fires())

    def receive_candidacies(self, inbox: list[Message]) -> None:
        self.nbr_candidate = {}
        for msg in inbox:
            if isinstance(msg, CandidacyMsg):
                self.nbr_candidate[msg.sender] = msg.candidate

    def decide_rule2_subround(self) -> bool:
        """Commit (unmark) iff I fire and no candidate neighbor is weaker.

        Returns True when this agent unmarked in this sub-round.
        """
        if not self.rule2_fires():
            return False
        my_key = self._key(self.node)
        for u in self.neighbors:
            if self.nbr_candidate.get(u, False) and self._key(u) < my_key:
                return False
        self.rule2_marked = False
        return True

    def finalize(self) -> bool:
        """Final gateway status once the Rule-2 sub-rounds have converged."""
        self.final_marked = bool(self.rule2_marked)
        return self.final_marked

    def _rule2_unmarks(self, marked_nbrs: list[int]) -> bool:
        nv = self.neighbors
        kv = self._key(self.node)
        cases = self.scheme.uses_coverage_cases
        for i, u in enumerate(marked_nbrs):
            nu = self.nbr_sets[u]
            for w in marked_nbrs[i + 1 :]:
                nw = self.nbr_sets[w]
                if not nv <= (nu | nw):
                    continue
                if not cases:
                    if kv < self._key(u) and kv < self._key(w):
                        return True
                    continue
                cov_u = nu <= (nv | nw)
                cov_w = nw <= (nu | nv)
                if not cov_u and not cov_w:
                    return True
                if cov_u and not cov_w:
                    if kv < self._key(u):
                        return True
                elif cov_w and not cov_u:
                    if kv < self._key(w):
                        return True
                else:
                    if kv < self._key(u) and kv < self._key(w):
                        return True
        return False
