"""Fault-tolerant execution of the distributed CDS protocol.

:func:`run_fault_tolerant_cds` runs the same per-host state machines as
:func:`repro.protocol.distributed_cds.distributed_cds`, but over a radio
layer scripted by a :class:`repro.faults.plan.FaultPlan`: frames drop or
slip rounds, and hosts crash silent at a given protocol stage.  The
engine adds the two ingredients the happy-path protocol lacks:

**Bounded retransmission.**  Each protocol stage becomes a mini ARQ
exchange: every participant transmits its stage frame, then retransmits
(up to ``max_retries`` extra rounds) while some neighbor in its local
view still lacks it — an implicit-NACK abstraction of link-layer acks.
Receivers deduplicate by sender.  Stage indices follow the async engine's
total order: 0 = neighbor sets, 1 = marking, 2 = Rule 1, then pairs
(3+2k, 4+2k) for the Rule-2 sub-rounds.

**Failure policy.**  After the retry budget, a receiver still missing a
neighbor's frame either raises (``strict`` — :class:`ChannelError`, or
:class:`NodeCrashError` when the sender really crashed) or declares the
neighbor departed and continues on the surviving local view
(``degrade``).  Degraded views can diverge between hosts — that is the
nature of the beast — so after quiescence the engine verifies Properties
1–2 on the surviving component(s), applies localized 2-hop repair around
detected crashes, and (optionally) escalates to a per-component full
recomputation.  The returned :class:`~repro.faults.outcome.FaultOutcome`
reports convergence, residual coverage gap, and the retransmission bill.
"""

from __future__ import annotations

import itertools

from repro.core.priority import PriorityScheme, scheme_by_name
from repro.errors import ChannelError, ConfigurationError, NodeCrashError
from repro.faults.outcome import FaultOutcome, evaluate_surviving
from repro.faults.plan import FaultPlan
from repro.faults.repair import full_recompute, localized_repair
from repro.graphs import bitset
from repro.protocol.messages import Message
from repro.protocol.network_sim import SyncNetwork
from repro.protocol.node_agent import FailurePolicy, NodeAgent
from repro.types import SupportsNeighborhoods

__all__ = ["run_fault_tolerant_cds"]


def run_fault_tolerant_cds(
    graph: SupportsNeighborhoods,
    scheme: str | PriorityScheme = "id",
    energy=None,
    *,
    plan: FaultPlan | None = None,
    policy: FailurePolicy | str = FailurePolicy.DEGRADE,
    max_retries: int = 6,
    repair: bool = True,
    fallback_full: bool = False,
    max_subrounds: int | None = None,
) -> FaultOutcome:
    """Run the CDS protocol under ``plan`` with retransmission + repair.

    With a null plan and any policy this computes exactly the happy-path
    result (the equivalence guard in the suite asserts it).  Under
    ``degrade`` the call never raises for channel trouble; the outcome
    records whether the surviving component is still dominated.
    """
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    pol = FailurePolicy.resolve(policy)
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    adj = list(graph.adjacency)
    n = len(adj)
    if sch.needs_energy and energy is None:
        raise ConfigurationError(f"scheme {sch.name!r} needs energy levels")
    levels = [0.0] * n if energy is None else [float(e) for e in energy]
    if len(levels) != n:
        raise ConfigurationError(f"energy has {len(levels)} entries for {n} nodes")

    realization = (plan or FaultPlan()).realize()
    net = SyncNetwork(adj, link_filter=realization.link_event)
    agents = [
        NodeAgent(
            v,
            frozenset(bitset.ids_from_mask(adj[v])),
            sch,
            energy=levels[v],
            policy=pol,
        )
        for v in range(n)
    ]

    alive = [True] * n
    crashed: set[int] = set()
    #: last marker a crashed host was known to carry (None: crashed before
    #: deciding — treated as a potential gateway for repair purposes)
    crash_markers: dict[int, bool | None] = {}
    suspected: set[int] = set()

    def update_crashes(stage_idx: int) -> None:
        for v in range(n):
            cs = realization.crash_stage(v)
            if cs is not None and cs <= stage_idx and alive[v]:
                alive[v] = False
                crashed.add(v)
                a = agents[v]
                marker = a.rule2_marked if hasattr(a, "rule2_marked") else (
                    a.marked_post_rule1 if a.marked_post_rule1 is not None else a.marked
                )
                crash_markers[v] = marker

    def exchange(stage_label: str, frames: dict[int, Message]) -> dict[int, list[Message]]:
        """One ARQ stage: transmit, retry, then apply the failure policy."""
        #: receiver -> {sender: frame}
        acc: dict[int, dict[int, Message]] = {v: {} for v in range(n)}
        # a sender keeps retransmitting while some neighbor in its *local
        # view* lacks the frame (implicit NACK); departed neighbors were
        # already dropped from that view, so no bandwidth is wasted on them
        pending = {v: set(agents[v].neighbors) for v in frames}
        for attempt in range(max_retries + 1):
            senders = [v for v in frames if pending[v]] if attempt else list(frames)
            if not senders and not net.has_delayed:
                break
            for v in senders:
                net.broadcast(v, frames[v], retransmission=attempt > 0)
            inboxes = net.deliver_round()
            for r, box in enumerate(inboxes):
                for msg in box:
                    acc[r].setdefault(msg.sender, msg)
                    if msg.sender in pending:
                        pending[msg.sender].discard(r)
        while net.has_delayed:  # late frames still count
            for r, box in enumerate(net.deliver_round()):
                for msg in box:
                    acc[r].setdefault(msg.sender, msg)
        out: dict[int, list[Message]] = {}
        for r in range(n):
            if not alive[r]:
                continue
            ag = agents[r]
            missing = [u for u in sorted(ag.neighbors) if u not in acc[r]]
            if missing:
                if pol is FailurePolicy.STRICT:
                    dead = [u for u in missing if u in crashed]
                    if dead:
                        raise NodeCrashError(
                            f"host {r} lost neighbor(s) {dead} to a crash "
                            f"during stage {stage_label}"
                        )
                    raise ChannelError(
                        f"host {r} missing stage {stage_label} frames from "
                        f"{missing} after {max_retries} retries"
                    )
                for u in missing:
                    ag.drop_neighbor(u)
                    if u not in crashed:
                        suspected.add(u)
            out[r] = [m for u, m in acc[r].items() if u in ag.neighbors]
        return out

    stage = itertools.count()

    def participates(v: int) -> bool:
        # a host keeps transmitting on its radio even if its *logical*
        # view emptied through drops; only crashed or physically isolated
        # hosts are out of the protocol
        return alive[v] and adj[v] != 0

    def run_stage(label: str, make, receive) -> None:
        idx = next(stage)
        update_crashes(idx)
        frames = {a.node: make(a) for a in agents if participates(a.node)}
        inboxes = exchange(label, frames)
        for v, box in inboxes.items():
            receive(agents[v], box)

    # isolated hosts (no radio neighbors) never participate
    for a in agents:
        if not a.neighbors:
            a.marked = a.marked_post_rule1 = a.final_marked = False

    run_stage("nbrsets", NodeAgent.make_neighbor_set_msg, NodeAgent.receive_neighbor_sets)
    run_stage("marking", NodeAgent.decide_marker, NodeAgent.receive_markers)
    run_stage("rule1", NodeAgent.decide_rule1, NodeAgent.receive_rule1_markers)

    for a in agents:
        if participates(a.node):
            a.begin_rule2()

    completed = True
    subrounds = 0
    cap = max_subrounds if max_subrounds is not None else n + 5
    while True:
        run_stage(
            f"m:{subrounds}",
            NodeAgent.make_rule2_marker_msg,
            NodeAgent.receive_rule2_markers,
        )
        run_stage(
            f"c:{subrounds}",
            NodeAgent.make_candidacy_msg,
            NodeAgent.receive_candidacies,
        )
        subrounds += 1
        committed = [
            a.decide_rule2_subround() for a in agents if participates(a.node)
        ]
        if not any(committed):
            break
        if subrounds >= cap:
            completed = False  # degraded views refused to quiesce
            break

    gw_mask = 0
    for a in agents:
        if participates(a.node) and a.finalize():
            gw_mask |= 1 << a.node
    crashed_mask = bitset.mask_from_ids(crashed)
    check = evaluate_surviving(adj, crashed_mask, gw_mask)

    repair_applied = False
    ball = 0
    used_full = False
    gateway_crash = any(marker is not False for marker in crash_markers.values())
    if repair and crashed and (gateway_crash or not check.ok):
        gw_mask, ball = localized_repair(
            adj, crashed_mask, gw_mask, sch, levels
        )
        repair_applied = True
        check = evaluate_surviving(adj, crashed_mask, gw_mask)
    if fallback_full and completed and not check.ok:
        gw_mask = full_recompute(adj, crashed_mask, sch, levels)
        used_full = True
        check = evaluate_surviving(adj, crashed_mask, gw_mask)

    stats = net.stats
    return FaultOutcome(
        gateways=frozenset(bitset.ids_from_mask(gw_mask)),
        crashed=frozenset(crashed),
        suspected=frozenset(suspected),
        completed=completed,
        check=check,
        rounds=stats.rounds,
        baseline_rounds=3 + 2 * subrounds,
        broadcasts=stats.broadcasts,
        retransmissions=stats.retransmissions,
        dropped=stats.dropped,
        repair_applied=repair_applied,
        repair_ball=ball,
        used_full_recompute=used_full,
    )
