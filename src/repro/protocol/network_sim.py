"""Synchronous round-based radio network.

Agents hand the engine broadcasts; the engine delivers each broadcast to
the sender's current radio neighbors at the **next** round boundary
(synchronous model: all round-r messages arrive before any round-r+1
computation).  The engine never leaks non-local information — an agent
only sees frames from adjacent hosts, which is what makes the protocol's
equivalence with the centralized algorithm a meaningful result.

The radio layer is pluggable: a ``link_filter`` callback (see
:class:`repro.faults.plan.FaultRealization.link_event`) rules on every
directed frame delivery — ``"ok"`` delivers this round, ``"drop"`` loses
the frame, ``"delay"`` slips it one round.  Without a filter the channel
is perfect and behaves exactly as before.

Traffic accounting (message, byte, drop, and retransmission counts) feeds
the protocol-overhead and fault-tolerance benches, quantifying both the
paper's "information collection is expensive" motivation and the price of
surviving a lossy channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.errors import DuplicateBroadcastError, ProtocolError
from repro.graphs import bitset
from repro.protocol.messages import Message

__all__ = ["SyncNetwork", "TrafficStats", "LinkFilter"]

#: (round_index, sender, receiver) -> "ok" | "drop" | "delay"
LinkFilter = Callable[[int, int, int], str]


@dataclass
class TrafficStats:
    """Cumulative protocol traffic."""

    rounds: int = 0
    broadcasts: int = 0
    deliveries: int = 0
    bytes_on_air: int = 0
    bytes_delivered: int = 0
    #: frames lost by the channel (per directed link)
    dropped: int = 0
    #: frames the channel slipped by one round (per directed link)
    delayed: int = 0
    #: broadcasts that were retransmissions of an earlier frame
    retransmissions: int = 0

    def record_broadcast(self, msg: Message, n_receivers: int) -> None:
        self.broadcasts += 1
        self.deliveries += n_receivers
        self.bytes_on_air += msg.wire_size
        self.bytes_delivered += msg.wire_size * n_receivers


class SyncNetwork:
    """Delivers broadcasts along the adjacency, one synchronous round at a
    time."""

    def __init__(self, adjacency: list[int], *, link_filter: LinkFilter | None = None):
        self.adjacency = list(adjacency)
        self.n = len(self.adjacency)
        self.stats = TrafficStats()
        self.link_filter = link_filter
        #: index of the round currently being assembled (0-based)
        self.round_index = 0
        self._outbox: list[Message | None] = [None] * self.n
        self._inboxes: list[list[Message]] = [[] for _ in range(self.n)]
        self._delayed: list[tuple[int, Message]] = []

    def broadcast(
        self, sender: int, msg: Message, *, retransmission: bool = False
    ) -> None:
        """Queue one broadcast for delivery at the next round boundary.

        One broadcast per host per round (radio semantics); a second call
        in the same round is a protocol bug and raises
        :class:`~repro.errors.DuplicateBroadcastError`.  ``retransmission``
        marks repeat frames so :class:`TrafficStats` can separate ARQ
        overhead from first transmissions.
        """
        if msg.sender != sender:
            raise ProtocolError(
                f"message sender field {msg.sender} != broadcasting host {sender}"
            )
        if self._outbox[sender] is not None:
            raise DuplicateBroadcastError(
                f"host {sender} already broadcast in round {self.round_index} "
                f"(queued {type(self._outbox[sender]).__name__}, "
                f"rejected {type(msg).__name__})"
            )
        if retransmission:
            self.stats.retransmissions += 1
            obs.count("protocol.retransmissions")
        self._outbox[sender] = msg

    @property
    def has_delayed(self) -> bool:
        """True when delayed frames are still queued for the next round."""
        return bool(self._delayed)

    def deliver_round(self) -> list[list[Message]]:
        """Flush all queued broadcasts to their senders' neighbors.

        Returns the per-host inbox for the round just completed.  Frames
        the filter delays land at the *next* boundary (a delayed frame is
        not re-filtered: one slip per frame).

        Observability counters mirror :class:`TrafficStats` (and thereby
        the :class:`~repro.faults.outcome.FaultOutcome` traffic fields)
        under the ``protocol.*`` namespace; deltas are flushed once per
        round, so the per-frame loop stays untouched.
        """
        counting = obs.enabled()
        if counting:
            before = (
                self.stats.broadcasts,
                self.stats.deliveries,
                self.stats.dropped,
                self.stats.delayed,
                self.stats.bytes_on_air,
            )
        self.stats.rounds += 1
        inboxes: list[list[Message]] = [[] for _ in range(self.n)]
        for r, msg in self._delayed:
            inboxes[r].append(msg)
            self.stats.deliveries += 1
            self.stats.bytes_delivered += msg.wire_size
        self._delayed = []
        for sender, msg in enumerate(self._outbox):
            if msg is None:
                continue
            receivers = bitset.ids_from_mask(self.adjacency[sender])
            delivered = 0
            for r in receivers:
                verdict = (
                    self.link_filter(self.round_index, sender, r)
                    if self.link_filter is not None
                    else "ok"
                )
                if verdict == "drop":
                    self.stats.dropped += 1
                elif verdict == "delay":
                    self.stats.delayed += 1
                    self._delayed.append((r, msg))
                else:
                    inboxes[r].append(msg)
                    delivered += 1
            self.stats.broadcasts += 1
            self.stats.deliveries += delivered
            self.stats.bytes_on_air += msg.wire_size
            self.stats.bytes_delivered += msg.wire_size * delivered
        self._outbox = [None] * self.n
        self._inboxes = inboxes
        self.round_index += 1
        if counting:
            obs.count("protocol.rounds")
            obs.add("protocol.broadcasts", self.stats.broadcasts - before[0])
            obs.add("protocol.deliveries", self.stats.deliveries - before[1])
            obs.add("protocol.dropped", self.stats.dropped - before[2])
            obs.add("protocol.delayed", self.stats.delayed - before[3])
            obs.add("protocol.bytes_on_air", self.stats.bytes_on_air - before[4])
        return inboxes

    def inbox(self, v: int) -> list[Message]:
        """Messages host ``v`` received in the last completed round."""
        return self._inboxes[v]
