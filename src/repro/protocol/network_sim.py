"""Synchronous round-based radio network.

Agents hand the engine broadcasts; the engine delivers each broadcast to
the sender's current radio neighbors at the **next** round boundary
(synchronous model: all round-r messages arrive before any round-r+1
computation).  The engine never leaks non-local information — an agent
only sees frames from adjacent hosts, which is what makes the protocol's
equivalence with the centralized algorithm a meaningful result.

Traffic accounting (message and byte counts) feeds the protocol-overhead
bench, quantifying the paper's "information collection is expensive"
motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.graphs import bitset
from repro.protocol.messages import Message

__all__ = ["SyncNetwork", "TrafficStats"]


@dataclass
class TrafficStats:
    """Cumulative protocol traffic."""

    rounds: int = 0
    broadcasts: int = 0
    deliveries: int = 0
    bytes_on_air: int = 0
    bytes_delivered: int = 0

    def record_broadcast(self, msg: Message, n_receivers: int) -> None:
        self.broadcasts += 1
        self.deliveries += n_receivers
        self.bytes_on_air += msg.wire_size
        self.bytes_delivered += msg.wire_size * n_receivers


class SyncNetwork:
    """Delivers broadcasts along the adjacency, one synchronous round at a
    time."""

    def __init__(self, adjacency: list[int]):
        self.adjacency = list(adjacency)
        self.n = len(self.adjacency)
        self.stats = TrafficStats()
        self._outbox: list[Message | None] = [None] * self.n
        self._inboxes: list[list[Message]] = [[] for _ in range(self.n)]

    def broadcast(self, sender: int, msg: Message) -> None:
        """Queue one broadcast for delivery at the next round boundary.

        One broadcast per host per round (radio semantics); a second call
        in the same round is a protocol bug.
        """
        if msg.sender != sender:
            raise ProtocolError(
                f"message sender field {msg.sender} != broadcasting host {sender}"
            )
        if self._outbox[sender] is not None:
            raise ProtocolError(f"host {sender} already broadcast this round")
        self._outbox[sender] = msg

    def deliver_round(self) -> list[list[Message]]:
        """Flush all queued broadcasts to their senders' neighbors.

        Returns the per-host inbox for the round just completed.
        """
        self.stats.rounds += 1
        inboxes: list[list[Message]] = [[] for _ in range(self.n)]
        for sender, msg in enumerate(self._outbox):
            if msg is None:
                continue
            receivers = bitset.ids_from_mask(self.adjacency[sender])
            self.stats.record_broadcast(msg, len(receivers))
            for r in receivers:
                inboxes[r].append(msg)
        self._outbox = [None] * self.n
        self._inboxes = inboxes
        return inboxes

    def inbox(self, v: int) -> list[Message]:
        """Messages host ``v`` received in the last completed round."""
        return self._inboxes[v]
