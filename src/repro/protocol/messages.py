"""Wire messages of the distributed CDS protocol.

Every message is a frozen dataclass with a ``sender`` and an estimated
``wire_size`` (bytes) so the network simulator can account for traffic the
way the paper's "low bandwidth" motivation cares about.  Sizes assume
4-byte node ids, 8-byte energy, 1-byte flags — a reasonable compact
encoding, used consistently so relative comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Message", "NeighborSetMsg", "MarkerMsg"]

_ID_BYTES = 4
_ENERGY_BYTES = 8
_FLAG_BYTES = 1


@dataclass(frozen=True)
class Message:
    """Base message: every frame carries its sender id."""

    sender: int

    @property
    def wire_size(self) -> int:
        return _ID_BYTES


@dataclass(frozen=True)
class NeighborSetMsg(Message):
    """Round-1 broadcast: "here is my open neighbor set N(v)".

    Receiving these from all neighbors gives each host distance-2
    knowledge — all the marking process and the rules ever need.  The
    sender's energy level rides along so the EL schemes need no extra
    round (degree is implied by the set length).
    """

    neighbors: frozenset[int]
    energy: float = 0.0

    @property
    def wire_size(self) -> int:
        return _ID_BYTES + _ENERGY_BYTES + _ID_BYTES * len(self.neighbors)


@dataclass(frozen=True)
class MarkerMsg(Message):
    """Status broadcast: "I am (still) a gateway / I just unmarked".

    Sent after the marking step and again after the Rule-1 step (the
    paper's "additional step": Rule 2 needs to know which neighbors are
    still marked).  ``stage`` distinguishes the two broadcasts.
    """

    marked: bool
    stage: str = "marking"  # "marking" | "rule1"

    @property
    def wire_size(self) -> int:
        return _ID_BYTES + 2 * _FLAG_BYTES


@dataclass(frozen=True)
class CandidacyMsg(Message):
    """Rule-2 sub-round broadcast: "my rule fires; I intend to unmark".

    A candidate commits only when no *candidate* neighbor has a smaller
    key (see :mod:`repro.core.rules` for why this yield-to-the-weakest
    protocol is the sound batch semantics).  ``committed`` carries the
    outcome of the previous sub-round so neighbors update their marked
    tables in the same frame.
    """

    candidate: bool
    committed: bool = False

    @property
    def wire_size(self) -> int:
        return _ID_BYTES + 2 * _FLAG_BYTES
