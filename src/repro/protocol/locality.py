"""Wu–Li's locality result, made executable.

The paper (end of §2.2): when hosts move, switch on, or switch off, "only
the neighbors of changing hosts need to update their gateway/non-gateway
status."  This module computes which hosts can possibly change status
after a topology delta and recomputes *only those*, reusing everyone
else's previous status.

Scope of the result: a host's **marker** depends on its distance-2
neighborhood, so markers can change only within distance 1 of an endpoint
of a changed edge.  The pruning rules consult neighbors' markers and
neighbor sets, pushing status dependence to distance 2.  Hence
``affected_by_change`` returns the distance-2 ball around changed hosts;
the equivalence test verifies that recomputing inside the ball while
freezing the outside reproduces the full recomputation **for the marking
process**, and the simulator uses full recomputation for the rule-pruned
set (whose priority keys — energy in particular — change globally every
interval anyway).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.marking import node_is_marked
from repro.graphs import bitset

__all__ = ["changed_endpoints", "affected_by_change", "localized_recompute"]


def changed_endpoints(old_adj: Sequence[int], new_adj: Sequence[int]) -> list[int]:
    """Hosts whose open neighbor set differs between the two topologies."""
    if len(old_adj) != len(new_adj):
        raise ValueError("topology size changed; locality update not applicable")
    return [v for v in range(len(new_adj)) if old_adj[v] != new_adj[v]]


def affected_by_change(
    new_adj: Sequence[int], changed: Iterable[int], hops: int = 1
) -> int:
    """Bitmask of hosts within ``hops`` of any changed host (inclusive).

    ``hops=1`` is the marker-dependence ball (the paper's statement);
    ``hops=2`` covers rule decisions too.
    """
    ball = bitset.mask_from_ids(changed)
    for _ in range(hops):
        grow = ball
        m = ball
        while m:
            low = m & -m
            grow |= new_adj[low.bit_length() - 1]
            m ^= low
        ball = grow
    return ball


def localized_recompute(
    old_adj: Sequence[int],
    new_adj: Sequence[int],
    old_marked: int,
) -> tuple[int, int]:
    """Update the marking-process output after a topology delta.

    Returns ``(new_marked_mask, n_recomputed)``: statuses outside the
    distance-1 ball around changed hosts are carried over unchanged;
    inside the ball the marking predicate is re-evaluated.  The count
    quantifies the locality saving (the locality bench plots it against
    full recomputation).
    """
    changed = changed_endpoints(old_adj, new_adj)
    if not changed:
        return old_marked, 0
    ball = affected_by_change(new_adj, changed, hops=1)
    # hosts that *lost* edges also matter even if isolated in new_adj:
    # their old neighbors' markers may change; include the old ball too.
    ball |= affected_by_change(old_adj, changed, hops=1)
    new_marked = old_marked & ~ball
    m = ball
    while m:
        low = m & -m
        v = low.bit_length() - 1
        m ^= low
        if node_is_marked(new_adj, v):
            new_marked |= low
    return new_marked, bitset.popcount(ball)
