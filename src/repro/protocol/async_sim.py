"""Asynchronous (event-driven) execution of the CDS protocol.

The synchronous engine (:mod:`repro.protocol.network_sim`) assumes a
global round clock.  Real radios have none: messages arrive whenever they
arrive.  This module re-runs the same per-host state machines under an
event-driven simulator where every delivery carries an independent random
latency, using the classic *asynchronous rounds* discipline: a host
consumes protocol stages strictly in order, and consumes a stage only
once it has heard that stage from all of its **still-participating**
neighbors (pure message counting — no clock; channels are not FIFO).

Termination is fully local.  After each Rule-2 wave a host checks whether
it or any live neighbor is still a candidate; if not, its state can never
change again (Rule-2 candidacy never arises anew once lost), so it
broadcasts a final ``done`` frame — carrying its frozen marker and the
index of the last stage it transmitted — and leaves the protocol.
Neighbors cache the frozen state and stop counting the departed host in
the barriers of every stage it never sent.  Each wave still commits at
least the globally weakest candidate, so the wave count is finite.

Every decision is taken on the same neighbor information as in the
synchronous execution (fresh frames, or a departed host's final state —
which is exactly what it would have kept broadcasting), so the computed
gateway set matches the synchronous protocol; the test suite asserts this
across random graphs, schemes, and latency draws.  What the async engine
adds is the *time* axis: the makespan under latency jitter.

Events are processed from a heap keyed by (time, sequence), so execution
is deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.priority import PriorityScheme, scheme_by_name
from repro.errors import (
    ChannelError,
    ConfigurationError,
    NodeCrashError,
    ProtocolError,
)
from repro.faults.plan import FaultPlan
from repro.graphs import bitset
from repro.protocol.messages import MarkerMsg, Message
from repro.protocol.node_agent import FailurePolicy, NodeAgent
from repro.types import SupportsNeighborhoods

__all__ = ["AsyncOutcome", "run_async_cds"]


@dataclass(frozen=True)
class AsyncOutcome:
    """Result of one asynchronous protocol execution."""

    gateways: frozenset[int]
    makespan: float
    messages_sent: int
    rule2_waves: int
    #: hosts that crashed mid-protocol (fault plans only)
    crashed: frozenset[int] = frozenset()
    #: live hosts a peer declared departed after the retry budget
    suspected: frozenset[int] = frozenset()
    #: transmission attempts the channel lost (fault plans only)
    dropped_frames: int = 0

    @property
    def size(self) -> int:
        return len(self.gateways)


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    receiver: int = field(compare=False)
    stage: str = field(compare=False)
    message: Message = field(compare=False)
    #: for done frames: index of the last stage the sender transmitted
    done_last_sent: int | None = field(compare=False, default=None)


def _stage_index(stage: str) -> int:
    """Total order of protocol stages: nbrsets, marking, rule1, m:0, c:0,
    m:1, c:1, ..."""
    if stage == "nbrsets":
        return 0
    if stage == "marking":
        return 1
    if stage == "rule1":
        return 2
    if stage.startswith("m:"):
        return 3 + 2 * int(stage[2:])
    if stage.startswith("c:"):
        return 4 + 2 * int(stage[2:])
    raise ProtocolError(f"unknown stage {stage}")  # pragma: no cover


def _stage_after(stage: str) -> str:
    if stage == "nbrsets":
        return "marking"
    if stage == "marking":
        return "rule1"
    if stage == "rule1":
        return "m:0"
    if stage.startswith("m:"):
        return f"c:{stage[2:]}"
    if stage.startswith("c:"):
        return f"m:{int(stage[2:]) + 1}"
    raise ProtocolError(f"unknown stage {stage}")  # pragma: no cover


class _AsyncHost:
    """A NodeAgent plus asynchronous-rounds bookkeeping."""

    def __init__(self, agent: NodeAgent):
        self.agent = agent
        self.stage_inbox: dict[str, list[Message]] = {}
        #: departed neighbor -> index of the last stage it transmitted
        self.done_neighbors: dict[int, int] = {}
        #: frozen final markers of departed neighbors, applied lazily once
        #: the Rule-2 tables exist
        self.frozen_markers: dict[int, bool] = {}
        self.is_done = False
        self.crashed = False
        #: the only stage this host may consume next (strict order)
        self.next_stage = "nbrsets"

    def expected(self, stage: str) -> int:
        """Barrier size for ``stage``: live neighbors plus departed ones
        that did transmit this stage before leaving."""
        idx = _stage_index(stage)
        skipped = sum(1 for last in self.done_neighbors.values() if last < idx)
        return len(self.agent.neighbors) - skipped

    def next_ready(self) -> bool:
        box = self.stage_inbox.get(self.next_stage, [])
        return len(box) >= self.expected(self.next_stage)


def _run_async_cds_impl(
    graph: SupportsNeighborhoods,
    scheme: str | PriorityScheme = "id",
    energy=None,
    *,
    rng: np.random.Generator | int | None = None,
    min_latency: float = 0.5,
    max_latency: float = 2.0,
    loss_probability: float = 0.0,
    retx_timeout: float = 3.0,
    fault_plan: FaultPlan | None = None,
    max_retries: int = 6,
    failure_policy: FailurePolicy | str = FailurePolicy.DEGRADE,
) -> AsyncOutcome:
    """Execute the CDS protocol under random per-delivery latencies.

    Each (sender → receiver) delivery draws an independent latency uniform
    on ``[min_latency, max_latency]``.  Lossy channels are modelled by an
    ARQ discipline: each transmission attempt is lost independently with
    ``loss_probability`` and retried after ``retx_timeout``, so a delivery
    needing ``k`` attempts lands ``(k-1) * retx_timeout`` later and costs
    ``k-1`` extra frames.  The *outcome* is loss-independent (the barrier
    discipline just waits); only time and traffic grow — which is exactly
    what the protocol-overhead bench measures.

    ``fault_plan`` switches the channel to the fault-injection model:
    per-attempt losses come from the plan (Bernoulli or Gilbert–Elliott),
    retries are **bounded** by ``max_retries`` (a frame can be lost for
    good), latency spikes multiply a delivery's latency, and hosts crash
    silent at their planned stage.  A host blocked forever on a silent
    correspondent resolves the wait through ``failure_policy``: ``strict``
    raises :class:`~repro.errors.NodeCrashError` /
    :class:`~repro.errors.ChannelError`; ``degrade`` drops the silent
    neighbor from the local view (charging one detection timeout of
    ``(max_retries + 1) * retx_timeout`` to the makespan) and continues on
    the survivors.  With a null plan the execution is identical to not
    passing one.

    Returns the gateway set plus the makespan (time the last host left
    the protocol), the number of frames transmitted (including
    retransmissions), and the number of Rule-2 waves used.
    """
    if not 0 < min_latency <= max_latency:
        raise ConfigurationError(
            f"need 0 < min_latency <= max_latency, got "
            f"[{min_latency}, {max_latency}]"
        )
    if not 0.0 <= loss_probability < 1.0:
        raise ConfigurationError(
            f"loss_probability must be in [0, 1), got {loss_probability}"
        )
    if retx_timeout <= 0:
        raise ConfigurationError(
            f"retx_timeout must be positive, got {retx_timeout}"
        )
    if max_retries < 0:
        raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    pol = FailurePolicy.resolve(failure_policy)
    realization = fault_plan.realize() if fault_plan is not None else None
    adj = list(graph.adjacency)
    n = len(adj)
    if sch.needs_energy and energy is None:
        raise ConfigurationError(f"scheme {sch.name!r} needs energy levels")
    levels = [0.0] * n if energy is None else [float(e) for e in energy]

    hosts = [
        _AsyncHost(
            NodeAgent(
                v,
                frozenset(bitset.ids_from_mask(adj[v])),
                sch,
                energy=levels[v],
                policy=pol,
            )
        )
        for v in range(n)
    ]

    heap: list[_Event] = []
    seq = itertools.count()
    sent = 0
    dropped_frames = 0
    makespan = 0.0
    max_wave = 0
    crashed: set[int] = set()
    suspected: set[int] = set()

    def crash(v: int) -> None:
        h = hosts[v]
        h.is_done = True
        h.crashed = True
        h.agent.final_marked = False
        crashed.add(v)

    def broadcast(
        sender: int,
        stage: str,
        msg: Message,
        at: float,
        *,
        done_last_sent: int | None = None,
    ) -> None:
        nonlocal sent, dropped_frames
        if realization is not None:
            cs = realization.crash_stage(sender)
            if cs is not None:
                # "done" carries no stage of its own: it follows the last
                # stage the host transmitted
                idx = (
                    done_last_sent + 1 if stage == "done" else _stage_index(stage)
                )
                if idx >= cs:
                    crash(sender)
                    return
        sent += 1
        for r in bitset.ids_from_mask(adj[sender]):
            latency = float(gen.uniform(min_latency, max_latency))
            if realization is not None:
                # bounded ARQ against the scripted channel: a frame that
                # loses all its attempts is gone for good
                delay_acc = 0.0
                for attempt in range(max_retries + 1):
                    lost, spike = realization.async_attempt(sender, r, attempt)
                    lat = latency if attempt == 0 else float(
                        gen.uniform(min_latency, max_latency)
                    )
                    if spike:
                        lat *= fault_plan.delay_factor
                    if not lost:
                        heapq.heappush(
                            heap,
                            _Event(
                                at + delay_acc + lat,
                                next(seq),
                                r,
                                stage,
                                msg,
                                done_last_sent,
                            ),
                        )
                        break
                    dropped_frames += 1
                    sent += 1
                    delay_acc += retx_timeout
                continue
            if loss_probability > 0.0:
                # geometric number of attempts; each failure adds one
                # retransmission timeout and one extra frame on the air
                attempts = int(gen.geometric(1.0 - loss_probability))
                if attempts > 1:
                    sent += attempts - 1
                    latency += (attempts - 1) * retx_timeout
            heapq.heappush(
                heap,
                _Event(at + latency, next(seq), r, stage, msg, done_last_sent),
            )

    def finish(v: int, at: float, last_sent: int) -> None:
        nonlocal makespan
        h = hosts[v]
        h.agent.finalize()
        h.is_done = True
        makespan = max(makespan, at)
        broadcast(
            v,
            "done",
            MarkerMsg(sender=v, marked=bool(h.agent.rule2_marked), stage="rule2"),
            at,
            done_last_sent=last_sent,
        )

    # hosts with no neighbors never participate: unmarked immediately
    for v, h in enumerate(hosts):
        if not h.agent.neighbors:
            h.agent.marked = False
            h.agent.marked_post_rule1 = False
            h.agent.final_marked = False
            h.is_done = True

    # t = 0: everyone transmits its neighbor set
    for v, h in enumerate(hosts):
        if not h.is_done:
            broadcast(v, "nbrsets", h.agent.make_neighbor_set_msg(), 0.0)

    def advance(v: int, at: float) -> None:
        """Consume the host's next stage (barrier known complete)."""
        nonlocal max_wave
        h = hosts[v]
        a = h.agent
        stage = h.next_stage
        inbox = h.stage_inbox.pop(stage, [])
        h.next_stage = _stage_after(stage)
        if stage == "nbrsets":
            a.receive_neighbor_sets(inbox)
            broadcast(v, "marking", a.decide_marker(), at)
        elif stage == "marking":
            a.receive_markers(inbox)
            broadcast(v, "rule1", a.decide_rule1(), at)
        elif stage == "rule1":
            a.receive_rule1_markers(inbox)
            a.begin_rule2()
            for u, marked in h.frozen_markers.items():
                a.nbr_rule2_marked[u] = marked
            broadcast(v, "m:0", a.make_rule2_marker_msg(), at)
        elif stage.startswith("m:"):
            a.receive_rule2_markers(inbox)
            for u, marked in h.frozen_markers.items():
                a.nbr_rule2_marked[u] = marked
            broadcast(v, f"c:{stage[2:]}", a.make_candidacy_msg(), at)
        elif stage.startswith("c:"):
            wave = int(stage[2:])
            a.receive_candidacies(inbox)
            for u in h.frozen_markers:
                a.nbr_candidate[u] = False
            a.decide_rule2_subround()
            # local termination: if neither I nor any live neighbor is a
            # candidate, nothing in my closed neighborhood can ever change
            locally_active = a.rule2_fires() or any(
                a.nbr_candidate.get(u, False)
                for u in a.neighbors
                if u not in h.done_neighbors
            )
            if locally_active:
                max_wave = max(max_wave, wave + 1)
                broadcast(v, f"m:{wave + 1}", a.make_rule2_marker_msg(), at)
            else:
                finish(v, at, last_sent=_stage_index(f"c:{wave}"))
        else:  # pragma: no cover - internal stage strings
            raise ProtocolError(f"unknown stage {stage}")

    def drain(v: int, at: float) -> None:
        h = hosts[v]
        while not h.is_done and h.next_ready():
            advance(v, at)
        # all remaining correspondents departed mid-wave: freeze now
        if (
            not h.is_done
            and h.agent.marked_post_rule1 is not None
            and len(h.done_neighbors) == len(h.agent.neighbors)
        ):
            # with every neighbor's final state known, my own decision is
            # immediate: no candidate rivals remain, so if my rule fires I
            # commit, and either way nothing can change afterwards
            a = h.agent
            for u, marked in h.frozen_markers.items():
                a.nbr_rule2_marked[u] = marked
                a.nbr_candidate[u] = False
            a.decide_rule2_subround()
            finish(v, at, last_sent=_stage_index(h.next_stage))

    last_time = 0.0

    def pump() -> None:
        nonlocal last_time
        while heap:
            ev = heapq.heappop(heap)
            last_time = max(last_time, ev.time)
            h = hosts[ev.receiver]
            if h.is_done:
                continue
            sender = ev.message.sender
            if realization is not None and sender not in h.agent.neighbors:
                continue  # frame from a correspondent this host already dropped
            if ev.done_last_sent is not None:
                h.done_neighbors[sender] = ev.done_last_sent
                assert isinstance(ev.message, MarkerMsg)
                h.frozen_markers[sender] = ev.message.marked
                # apply eagerly once the Rule-2 tables exist; before that
                # the rule1-consumption step applies frozen_markers lazily
                if hasattr(h.agent, "nbr_rule2_marked"):
                    h.agent.nbr_rule2_marked[sender] = ev.message.marked
                    h.agent.nbr_candidate[sender] = False
            else:
                h.stage_inbox.setdefault(ev.stage, []).append(ev.message)
            drain(ev.receiver, ev.time)

    pump()

    # With bounded retries and crashes, a host can block forever on a
    # correspondent that will never speak again (crashed, or every attempt
    # lost).  Resolve quiescent deadlocks the way a real node would — by
    # timing the silence out: each sweep charges one detection window and
    # applies the failure policy to the hosts still waiting.
    while realization is not None:
        blocked = [v for v, h in enumerate(hosts) if not h.is_done]
        if not blocked:
            break
        t_detect = last_time + (max_retries + 1) * retx_timeout
        if pol is FailurePolicy.STRICT:
            # diagnose the root cause across ALL blocked hosts: a crash
            # victim's silence cascades, so a host can block on live peers
            # that are themselves blocked on the crashed node
            for v in blocked:
                h = hosts[v]
                stg = h.next_stage
                got = {m.sender for m in h.stage_inbox.get(stg, [])}
                dead = sorted(
                    u for u in h.agent.neighbors if u in crashed and u not in got
                )
                if dead:
                    raise NodeCrashError(
                        f"host {v} lost neighbor(s) {dead} to a crash while "
                        f"waiting on stage {stg}"
                    )
            v = blocked[0]
            h = hosts[v]
            raise ChannelError(
                f"host {v} is missing stage {h.next_stage} frames "
                f"after {max_retries} retries"
            )
        progress = False
        for v in blocked:
            h = hosts[v]
            a = h.agent
            if h.is_done:
                continue
            stg = h.next_stage
            idx = _stage_index(stg)
            got = {m.sender for m in h.stage_inbox.get(stg, [])}
            waiting = [
                u
                for u in sorted(a.neighbors)
                if u not in got
                and not (u in h.done_neighbors and h.done_neighbors[u] < idx)
            ]
            if not waiting:
                drain(v, t_detect)
                progress = progress or h.is_done
                continue
            for u in waiting:
                a.drop_neighbor(u)
                h.done_neighbors.pop(u, None)
                h.frozen_markers.pop(u, None)
                for box in h.stage_inbox.values():
                    box[:] = [m for m in box if m.sender != u]
                if u not in crashed:
                    suspected.add(u)
                progress = True
            drain(v, t_detect)
        last_time = t_detect
        pump()
        if not progress:  # pragma: no cover - safety net
            raise ProtocolError("fault resolution made no progress")

    for h in hosts:
        if h.agent.final_marked is None:  # pragma: no cover - safety net
            h.agent.finalize()

    gateways = frozenset(
        v for v, h in enumerate(hosts) if h.agent.final_marked and not h.crashed
    )
    return AsyncOutcome(
        gateways=gateways,
        makespan=makespan,
        messages_sent=sent,
        rule2_waves=max_wave,
        crashed=frozenset(crashed),
        suspected=frozenset(suspected),
        dropped_frames=dropped_frames,
    )


def run_async_cds(
    graph: SupportsNeighborhoods,
    scheme: str | PriorityScheme = "id",
    energy=None,
    **kwargs,
) -> AsyncOutcome:
    """Instrumented front door for :func:`_run_async_cds_impl`.

    Same signature and semantics (see the impl docstring for the full
    parameter reference); additionally wraps the execution in an
    ``async_cds`` observability span and publishes the outcome's traffic
    numbers as ``async.*`` counters — named after the
    :class:`~repro.faults.outcome.FaultOutcome` fields they correspond
    to, so sync and async runs read the same way in a profile.
    """
    with obs.span("async_cds"):
        out = _run_async_cds_impl(graph, scheme, energy, **kwargs)
        if obs.enabled():
            obs.count("async.runs")
            obs.add("async.messages_sent", out.messages_sent)
            obs.add("async.rule2_waves", out.rule2_waves)
            obs.add("async.dropped_frames", out.dropped_frames)
            obs.add("async.crashed", len(out.crashed))
            obs.add("async.suspected", len(out.suspected))
    return out
