"""The full distributed CDS protocol, end to end.

Synchronous rounds:

1. every host broadcasts ``NeighborSetMsg`` (its N(v) + energy) —
   afterwards every host holds distance-2 knowledge;
2. every host decides its marker locally and broadcasts it;
3. every marked host applies Rule 1 locally and broadcasts its
   (possibly changed) status — the paper's "additional step" that Rule 2
   requires;
4+. Rule-2 *sub-rounds* until quiescence: marker refresh, candidacy
   announcement, then each firing host unmarks iff no firing neighbor has
   a smaller priority key.  The sub-round structure is what makes batch
   Rule 2 sound (see :mod:`repro.core.rules`); the surviving markers are
   the connected dominating set.

``distributed_cds`` returns the gateway set plus traffic statistics.  The
test suite asserts bit-for-bit equality with the centralized
:func:`repro.core.cds.compute_cds` for every scheme on random graphs —
the executable form of the paper's claim that the algorithm is fully
decentralized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.priority import PriorityScheme, scheme_by_name
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.protocol.network_sim import SyncNetwork, TrafficStats
from repro.protocol.node_agent import NodeAgent
from repro.types import SupportsNeighborhoods

__all__ = ["DistributedCDS", "distributed_cds"]


@dataclass(frozen=True)
class DistributedCDS:
    """Protocol outcome: the gateway set and what it cost on the air."""

    gateways: frozenset[int]
    stats: TrafficStats
    agents: tuple[NodeAgent, ...]

    @property
    def size(self) -> int:
        return len(self.gateways)


def distributed_cds(
    graph: SupportsNeighborhoods,
    scheme: str | PriorityScheme = "id",
    energy=None,
) -> DistributedCDS:
    """Run the 4-round protocol on ``graph`` under ``scheme``."""
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    adj = list(graph.adjacency)
    n = len(adj)
    if sch.needs_energy and energy is None:
        raise ConfigurationError(f"scheme {sch.name!r} needs energy levels")
    levels = [0.0] * n if energy is None else [float(e) for e in energy]
    if len(levels) != n:
        raise ConfigurationError(f"energy has {len(levels)} entries for {n} nodes")

    net = SyncNetwork(adj)
    agents = [
        NodeAgent(
            v,
            frozenset(bitset.ids_from_mask(adj[v])),
            sch,
            energy=levels[v],
        )
        for v in range(n)
    ]

    # round 1: neighbor-set exchange
    for a in agents:
        net.broadcast(a.node, a.make_neighbor_set_msg())
    inboxes = net.deliver_round()
    for a in agents:
        a.receive_neighbor_sets(inboxes[a.node])

    # round 2: marking
    for a in agents:
        net.broadcast(a.node, a.decide_marker())
    inboxes = net.deliver_round()
    for a in agents:
        a.receive_markers(inboxes[a.node])

    # round 3: Rule 1
    for a in agents:
        net.broadcast(a.node, a.decide_rule1())
    inboxes = net.deliver_round()
    for a in agents:
        a.receive_rule1_markers(inboxes[a.node])

    # rounds 4+: Rule 2 sub-rounds (marker refresh, then candidacy; a
    # candidate unmarks iff no candidate neighbor has a smaller key).
    # Convergence: each sub-round with any candidate commits at least the
    # globally weakest one, so at most n sub-rounds run; in practice a
    # handful.  See repro.core.rules for the soundness discussion.
    for a in agents:
        a.begin_rule2()
    while True:
        for a in agents:
            net.broadcast(a.node, a.make_rule2_marker_msg())
        inboxes = net.deliver_round()
        for a in agents:
            a.receive_rule2_markers(inboxes[a.node])

        for a in agents:
            net.broadcast(a.node, a.make_candidacy_msg())
        inboxes = net.deliver_round()
        for a in agents:
            a.receive_candidacies(inboxes[a.node])

        committed = [a.decide_rule2_subround() for a in agents]
        if not any(committed):
            break

    gateways = frozenset(a.node for a in agents if a.finalize())
    return DistributedCDS(gateways=gateways, stats=net.stats, agents=tuple(agents))
