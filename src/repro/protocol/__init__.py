"""Distributed protocol substrate.

The paper's algorithms are *distributed*: every host decides its own
gateway status from information it can learn by exchanging messages with
direct neighbors.  This package makes that explicit:

* :mod:`repro.protocol.messages` — the wire messages,
* :mod:`repro.protocol.node_agent` — the per-host state machine,
* :mod:`repro.protocol.network_sim` — a synchronous round engine that
  delivers messages only along radio edges and counts traffic,
* :mod:`repro.protocol.distributed_cds` — the full 4-round protocol
  (neighbor-set exchange → marking → Rule 1 → Rule 2), proven equivalent
  to the centralized pipeline by the test suite,
* :mod:`repro.protocol.locality` — Wu–Li's locality result: after a
  topology change only hosts near the change re-decide,
* :mod:`repro.protocol.fault_tolerant` — the same state machines over a
  faulty radio (see :mod:`repro.faults`): bounded retransmission, a
  strict/degrade failure policy, and localized post-crash repair.
"""

from repro.protocol.messages import MarkerMsg, Message, NeighborSetMsg
from repro.protocol.network_sim import SyncNetwork, TrafficStats
from repro.protocol.node_agent import FailurePolicy, NodeAgent
from repro.protocol.distributed_cds import DistributedCDS, distributed_cds
from repro.protocol.locality import affected_by_change, localized_recompute
from repro.protocol.async_sim import AsyncOutcome, run_async_cds
from repro.protocol.fault_tolerant import run_fault_tolerant_cds

__all__ = [
    "AsyncOutcome",
    "run_async_cds",
    "run_fault_tolerant_cds",
    "FailurePolicy",
    "MarkerMsg",
    "Message",
    "NeighborSetMsg",
    "SyncNetwork",
    "TrafficStats",
    "NodeAgent",
    "DistributedCDS",
    "distributed_cds",
    "affected_by_change",
    "localized_recompute",
]
