"""Priority schemes: the keys that decide which gateway survives a tie.

Every pruning rule in the paper removes a node ``v`` in favor of a coverer
``u`` when ``v`` ranks *lower* in some total order.  The four orders are:

========  =======================================  ===============
name      key(v) (lexicographic, compared low→high)  paper rules
========  =======================================  ===============
``id``    ``(id,)``                                 Rule 1, Rule 2
``nd``    ``(nd, id)``                              Rule 1a, Rule 2a
``el1``   ``(el, id)``                              Rule 1b, Rule 2b
``el2``   ``(el, nd, id)``                          Rule 1b', Rule 2b'
========  =======================================  ===============

Because ids are distinct, every key is a strict total order; the node with
the **smallest** key is the one removed.  Keeping high-degree nodes shrinks
the CDS (they cover more); keeping high-energy nodes rotates gateway duty
onto fresh batteries, which is the power-aware idea of the paper.

``nr`` (no rules) is also registered so experiment code can sweep all five
series of the paper's figures uniformly.

Energy quantization
-------------------
The paper treats energy as "multiple discrete levels".  Simulated energies
are floats; after different drain histories two hosts meant to be "at the
same level" may differ by 1e-15.  ``PriorityScheme.quantize`` (default 1e-9
grid) absorbs that noise so EL ties behave like the paper's discrete levels.
Pass ``quantum=None`` for exact comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "PriorityScheme",
    "SCHEMES",
    "PAPER_SERIES_ORDER",
    "scheme_by_name",
    "NodeAttrs",
]


@dataclass(frozen=True)
class NodeAttrs:
    """Per-node attributes a key may consult.

    ``degree`` is ``nd(v)`` in the *current* topology G (not G'); ``energy``
    is the remaining energy level ``el(v)``.
    """

    node: int
    degree: int
    energy: float


KeyFn = Callable[[NodeAttrs], tuple]


@dataclass(frozen=True)
class PriorityScheme:
    """A named total order over nodes.

    ``uses_rules`` is False only for the ``nr`` baseline (marking process
    output taken as-is).  ``uses_coverage_cases`` selects Rule-2 semantics:
    the original ID rules use the simple "minimum id among the triple" test,
    while the a/b/b' variants add the mutual-coverage case analysis of the
    paper's §3 (see :mod:`repro.core.rules`).
    """

    name: str
    key_fn: KeyFn
    uses_rules: bool = True
    uses_coverage_cases: bool = True
    quantum: float | None = 1e-9
    description: str = ""

    def key(self, v: int, degrees: Sequence[int], energy: Sequence[float] | None) -> tuple:
        """The sort key of node ``v`` (smaller key = pruned first)."""
        e = 0.0
        if energy is not None:
            e = float(energy[v])
            if self.quantum is not None:
                e = round(e / self.quantum) * self.quantum
        return self.key_fn(NodeAttrs(node=v, degree=degrees[v], energy=e))

    def keys(self, degrees: Sequence[int], energy: Sequence[float] | None) -> list[tuple]:
        """All node keys at once (used by the rule engines)."""
        return [self.key(v, degrees, energy) for v in range(len(degrees))]

    @property
    def needs_energy(self) -> bool:
        """True if the key consults energy (callers must supply levels)."""
        return self.name in ("el1", "el2")


def _key_id(a: NodeAttrs) -> tuple:
    return (a.node,)


def _key_nd(a: NodeAttrs) -> tuple:
    return (a.degree, a.node)


def _key_el1(a: NodeAttrs) -> tuple:
    return (a.energy, a.node)


def _key_el2(a: NodeAttrs) -> tuple:
    return (a.energy, a.degree, a.node)


SCHEMES: dict[str, PriorityScheme] = {
    "nr": PriorityScheme(
        name="nr",
        key_fn=_key_id,
        uses_rules=False,
        description="marking process only, no pruning (paper series NR)",
    ),
    "id": PriorityScheme(
        name="id",
        key_fn=_key_id,
        uses_coverage_cases=False,
        description="Wu-Li Rule 1 / Rule 2 keyed on node ID (paper series ID)",
    ),
    "nd": PriorityScheme(
        name="nd",
        key_fn=_key_nd,
        description="Rule 1a / Rule 2a keyed on (node degree, ID) (paper series ND)",
    ),
    "el1": PriorityScheme(
        name="el1",
        key_fn=_key_el1,
        description="Rule 1b / Rule 2b keyed on (energy, ID) (paper series EL1)",
    ),
    "el2": PriorityScheme(
        name="el2",
        key_fn=_key_el2,
        description="Rule 1b' / Rule 2b' keyed on (energy, degree, ID) (paper series EL2)",
    ),
}

#: Order in which the paper's figures plot the series.
PAPER_SERIES_ORDER: tuple[str, ...] = ("nr", "id", "nd", "el1", "el2")


def scheme_by_name(name: str) -> PriorityScheme:
    """Look up a scheme, accepting any case; raises ConfigurationError."""
    try:
        return SCHEMES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown priority scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
