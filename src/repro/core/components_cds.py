"""Per-component CDS for disconnected (or churned) topologies.

The marking process assumes a connected graph; a mobile network with
switching on/off regularly fragments.  ``compute_cds_per_component`` runs
the standard pipeline inside every connected component of the (optionally
active-restricted) graph and unions the results, handling the degenerate
component shapes explicitly:

* singleton component — no gateway needed (nothing to relay);
* two-host component  — no gateway needed (they talk directly);
* complete component  — the marking process marks nobody; any host can
  relay but none must, so the union stays empty for it too (consistent
  with ``compute_cds`` on a clique).

The result dominates every host that has at least one neighbor, and its
induced subgraph is connected *within each component* — the strongest
guarantee a disconnected graph admits.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cds import CDSResult, compute_cds
from repro.core.priority import PriorityScheme, scheme_by_name
from repro.graphs import bitset
from repro.graphs.neighborhoods import components
from repro.graphs.subgraphs import restrict_adjacency
from repro.types import SupportsNeighborhoods

__all__ = ["compute_cds_per_component"]


def compute_cds_per_component(
    graph: SupportsNeighborhoods | Sequence[int],
    scheme: str | PriorityScheme = "id",
    energy: Sequence[float] | None = None,
    *,
    active_mask: int | None = None,
    fixed_point: bool = False,
) -> int:
    """Union of per-component gateway sets, as a bitmask.

    ``active_mask`` restricts the computation to switched-on hosts
    (others are isolated first).  Marking, rules, and keys all operate on
    the full id space, so no remapping is needed — a component's nodes
    simply see empty neighborhoods outside it.
    """
    adj = graph.adjacency if hasattr(graph, "adjacency") else graph
    adj = list(adj)
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    if active_mask is not None:
        adj = restrict_adjacency(adj, active_mask)

    result = 0
    for comp in components(adj):
        if bitset.popcount(comp) <= 2:
            continue  # singletons and pairs need no gateway
        if active_mask is not None and comp & ~active_mask:
            # a component of inactive isolated nodes
            continue
        # the pipeline runs on the full adjacency; nodes outside this
        # component are isolated there, so they contribute nothing, and
        # we keep only this component's marks
        sub = [adj[v] if comp >> v & 1 else 0 for v in range(len(adj))]
        r: CDSResult = compute_cds(
            sub, sch, energy=energy, fixed_point=fixed_point
        )
        result |= r.gateway_mask & comp
    return result
