"""The paper's contribution: Wu–Li marking + power-aware pruning rules.

Public surface:

* :func:`repro.core.marking.marking_process` — the gateway marking process,
* :class:`repro.core.priority.PriorityScheme` and the ``SCHEMES`` registry
  (``"nr"``, ``"id"``, ``"nd"``, ``"el1"``, ``"el2"``),
* :func:`repro.core.rules.apply_rule1` / :func:`repro.core.rules.apply_rule2`
  — the generic Rule 1 / Rule 2 engines all eight paper rules instantiate,
* :func:`repro.core.cds.compute_cds` — one-call facade returning a
  :class:`repro.core.cds.CDSResult`,
* :mod:`repro.core.properties` — domination/connectivity/Property-3 checks,
* :mod:`repro.core.reduction` — single-pass vs fixed-point pipelines.
"""

from repro.core.priority import (
    SCHEMES,
    PriorityScheme,
    scheme_by_name,
)
from repro.core.marking import marking_process, marked_set
from repro.core.rules import RuleEngine, apply_rule1, apply_rule2
from repro.core.cds import CDSResult, compute_cds
from repro.core.properties import (
    is_cds,
    is_dominating,
    verify_cds,
    shortest_paths_use_gateways,
)
from repro.core.reduction import prune, PruneStats
from repro.core.rule_k import compute_cds_rule_k, rule_k_pass
from repro.core.components_cds import compute_cds_per_component
from repro.core.vectorized import (
    BatchCDSEngine,
    VectorizedCDSPipeline,
    compute_cds_batch,
    compute_cds_rule_k_batch,
)
from repro.core.sparse import (
    CSRBatch,
    SparseCDSEngine,
    SparseCDSPipeline,
    compute_cds_sparse,
)
from repro.core.unidirectional import (
    compute_directed_cds,
    directed_marking,
    is_dominating_and_absorbing,
)
from repro.core.registry import (
    ALGORITHMS,
    EXECUTION_BACKENDS,
    AlgorithmPipeline,
    CDSAlgorithm,
    algorithm_by_name,
    algorithm_names,
    register_algorithm,
)

__all__ = [
    "ALGORITHMS",
    "EXECUTION_BACKENDS",
    "AlgorithmPipeline",
    "CDSAlgorithm",
    "algorithm_by_name",
    "algorithm_names",
    "register_algorithm",
    "compute_directed_cds",
    "directed_marking",
    "is_dominating_and_absorbing",
    "compute_cds_rule_k",
    "rule_k_pass",
    "compute_cds_per_component",
    "SCHEMES",
    "PriorityScheme",
    "scheme_by_name",
    "marking_process",
    "marked_set",
    "RuleEngine",
    "apply_rule1",
    "apply_rule2",
    "CDSResult",
    "compute_cds",
    "is_cds",
    "is_dominating",
    "verify_cds",
    "shortest_paths_use_gateways",
    "prune",
    "PruneStats",
    "BatchCDSEngine",
    "CSRBatch",
    "SparseCDSEngine",
    "SparseCDSPipeline",
    "VectorizedCDSPipeline",
    "compute_cds_sparse",
    "compute_cds_batch",
    "compute_cds_rule_k_batch",
]
