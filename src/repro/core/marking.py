"""The Wu–Li marking process (§2.2 of the paper).

A node marks itself a gateway iff it has **two neighbors that are not
directly connected**.  The process needs only 2-hop information (each node
learns its neighbors' neighbor sets in one exchange round), which is why it
is fully distributed and local; :mod:`repro.protocol.distributed_cds`
re-derives the same result through explicit message passing, and the test
suite asserts equivalence with this centralized reference.

Properties proved in Wu–Li [11] (verified empirically by our property
tests): on a connected, non-complete graph the marked set is a dominating
set (Property 1), its induced subgraph is connected (Property 2), and every
shortest path routes through gateways only (Property 3).
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.graphs import bitset
from repro.types import SupportsNeighborhoods

__all__ = [
    "marking_process",
    "marked_set",
    "marked_mask",
    "marked_mask_delta",
    "marking_trivially_empty",
    "node_is_marked",
]


def node_is_marked(adj: Sequence[int], v: int) -> bool:
    """Step 3 of the marking process for a single node.

    ``v`` is marked iff some pair of its neighbors is non-adjacent, i.e.
    iff the neighborhood of ``v`` is *not* a clique.  Using bitmasks:
    neighbor ``u`` certifies marking iff ``N(v) \\ (N(u) ∪ {u})`` is
    non-empty — some other neighbor of ``v`` is unreachable from ``u``
    in one hop.
    """
    nv = adj[v]
    remaining = nv
    while remaining:
        low = remaining & -remaining
        u = low.bit_length() - 1
        remaining ^= low
        # neighbors of v other than u that u is NOT adjacent to
        if nv & ~(adj[u] | low):
            return True
    return False


def marking_process(graph: SupportsNeighborhoods | Sequence[int]) -> list[bool]:
    """Run the marking process; returns the marker vector ``m(v)``.

    Accepts either a graph object exposing ``adjacency`` or a raw bitmask
    adjacency list.
    """
    adj = graph.adjacency if hasattr(graph, "adjacency") else graph
    return [node_is_marked(adj, v) for v in range(len(adj))]


def marked_set(graph: SupportsNeighborhoods | Sequence[int]) -> set[int]:
    """The gateway set V' produced by the marking process."""
    adj = graph.adjacency if hasattr(graph, "adjacency") else graph
    return {v for v in range(len(adj)) if node_is_marked(adj, v)}


def marked_mask(graph: SupportsNeighborhoods | Sequence[int]) -> int:
    """The gateway set as a bitmask (fast path for the rule engines)."""
    adj = graph.adjacency if hasattr(graph, "adjacency") else graph
    with obs.span("marking"):
        mask = bitset.mask_from_ids(
            v for v in range(len(adj)) if node_is_marked(adj, v)
        )
        if obs.enabled():
            obs.add("marking.nodes_evaluated", len(adj))
            obs.add("marking.marked", bitset.popcount(mask))
    return mask


def marked_mask_delta(adj: Sequence[int], previous: int, dirty: int) -> int:
    """Re-mark only the ``dirty`` nodes, reusing ``previous`` elsewhere.

    ``m(v)`` depends on ``N(v)`` and on edges *within* ``N(v)`` — strictly
    2-hop-local information.  If an edge ``{u, w}`` flipped, the only nodes
    whose marker can change are ``u``, ``w``, and nodes adjacent to one of
    them (before or after): any other ``x`` keeps both its neighbor set and
    the adjacency among its neighbors.  Callers therefore pass
    ``dirty = C ∪ N_old(C) ∪ N_new(C)`` where ``C`` is the set of nodes
    whose adjacency row changed; the result is then bit-identical to a
    full :func:`marked_mask` pass.
    """
    with obs.span("marking"):
        mask = previous
        n_dirty = 0
        m = dirty
        while m:
            low = m & -m
            m ^= low
            if node_is_marked(adj, low.bit_length() - 1):
                mask |= low
            else:
                mask &= ~low
            n_dirty += 1
        if obs.enabled():
            obs.add("marking.nodes_evaluated", n_dirty)
            obs.add("marking.reused", len(adj) - n_dirty)
            obs.add("marking.marked", bitset.popcount(mask))
    return mask


def marking_trivially_empty(adj: Sequence[int]) -> bool:
    """True iff the marking process returns the empty set *by design*.

    That happens exactly for complete graphs and for n <= 2 (where no node
    can have two non-adjacent neighbors).  :func:`repro.core.cds.compute_cds`
    uses this to decide whether an empty gateway mask is legitimate or an
    invariant violation.
    """
    n = len(adj)
    if n <= 2:
        return True
    universe = (1 << n) - 1
    return all(m == universe ^ (1 << v) for v, m in enumerate(adj))
