"""Sparse streaming CDS engine: CSR adjacency + per-component execution.

The dense batch engine (:mod:`repro.core.vectorized`) stores every element
as packed ``(n, W)`` uint64 rows, so one topology costs ``n²/8`` bytes of
adjacency before any kernel runs — 1.25 GB at n = 100k, which is where the
10k-proven path tops out (ROADMAP item 1).  The construction itself is
purely local (2-hop marking + Rules 1/2), so its *information* cost is
``O(E)``: this module re-expresses the whole computation over a CSR edge
list and never materializes a dense row.

Layout
------
A :class:`CSRBatch` stacks ``B`` same-``n`` topologies as one flat CSR:
``indptr`` has ``B·n + 1`` entries over flat rows ``b·n + v`` and ``dst``
holds *local* destination ids sorted ascending within each row — exactly
the ``(eS, eD)`` order the dense edge table produces, so the reverse-edge
lexsort trick and the sorted-key membership probe both carry over.

Execution is two-tier, decided per connected component:

* **tiny** (≤ 2 nodes): nothing can be marked — skipped outright;
* **small** (3 ≤ size ≤ ``dense_cutoff``): components are grouped by size
  and re-packed into dense ``(k, size, W)`` sub-batches for
  :class:`BatchCDSEngine` — each component is an independent dense
  sub-problem bounded by its *own* size, not ``n``.  The node remap is
  ascending-flat-id, which preserves the relative id order every scheme
  tiebreak uses (the same argument ``repro.core.registry`` makes for its
  baseline decomposition);
* **big** (> cutoff): streamed CSR kernels.  Adjacency membership
  ``x ∈ N(u)`` becomes a binary search of the globally sorted edge-key
  array ``eS·n + eD`` (clamped ``searchsorted``; a miss at the clamp
  boundary compares unequal by construction), and the edge/miss/triple
  tables are built in chunks bounded by the engine's memory budget —
  generator-of-blocks, never a materialized ``(E, W)`` table.

Equivalence contract
--------------------
Per element, gateway flags and :class:`PruneStats` are **bit-identical**
to :func:`repro.core.cds.compute_cds` (which handles disconnected input
by the same local rules):

* marking, Rule 1, Rule 2 and the key ranks are the dense engine's exact
  formulas restricted to one component's edges — components never
  interact, and component degrees equal whole-graph degrees;
* removal counts add across components; ``rounds`` is the *max* over
  components (a stabilized component's extra passes are no-ops in the
  per-element reference loop), floored at one round for rule-running
  schemes exactly like the dense engine's degenerate path;
* per-component ``active`` freezing mirrors the dense per-element
  ``done_b`` freezing, so ``max_rounds`` caps behave identically.

Scale
-----
``CSRBatch.from_positions`` builds the CSR straight from point positions
with the same grid hashing (and bit-identical distance arithmetic) as
:func:`repro.graphs.unitdisk.unit_disk_adjacency_grid`, skipping the
Python-int adjacency entirely — at N = 100k the CSR is ~18 MB where dense
rows would be 1.25 GB.  All expansions honour ``memory_budget_mb``
(see :func:`repro.core.vectorized.resolve_memory_budget_mb`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.cds import CDSResult
from repro.core.marking import marking_trivially_empty
from repro.core.priority import PriorityScheme, scheme_by_name
from repro.core.properties import verify_cds
from repro.core.reduction import PruneStats
from repro.core.vectorized import (
    BatchCDSEngine,
    _I32MAX,
    _scatter_any,
    _validate_energy,
    chunk_bits,
    chunk_words,
    edge_table,
    flags_to_masks,
    pack_batch,
    pair_index_arrays,
    resolve_memory_budget_mb,
    words_for,
)
from repro.errors import ConfigurationError, InvariantViolation

__all__ = [
    "DENSE_COMPONENT_CUTOFF",
    "CSRBatch",
    "SparseRunDetail",
    "connected_labels",
    "unit_disk_edge_lists",
    "SparseCDSEngine",
    "compute_cds_sparse",
    "SparseCDSPipeline",
]

#: components at or below this size run as dense sub-batches; above it the
#: streamed CSR kernels take over.  2048 keeps a single dense component
#: under ~8 MB of packed words while the crossover favors dense kernels.
DENSE_COMPONENT_CUTOFF = 2048


@dataclass(frozen=True)
class CSRBatch:
    """``B`` same-``n`` topologies as one flat CSR edge list.

    ``indptr`` is ``(B·n + 1,)`` int64; ``dst`` holds local destination
    node ids, ascending within each flat row ``b·n + v`` — the global
    ``(source, destination)`` sort order every kernel relies on.
    """

    indptr: np.ndarray
    dst: np.ndarray
    B: int
    n: int

    @property
    def nnz(self) -> int:
        """Directed edge count across the whole batch."""
        return len(self.dst)

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (the memory-test yardstick)."""
        return int(self.indptr.nbytes + self.dst.nbytes)

    @classmethod
    def from_adjacency(
        cls,
        adjacencies: Sequence[Sequence[int]],
        *,
        memory_budget_mb: float | None = None,
    ) -> "CSRBatch":
        """Stack bitmask adjacency lists (all the same ``n``) into a CSR."""
        adjs = [
            list(a.adjacency) if hasattr(a, "adjacency") else list(a)
            for a in adjacencies
        ]
        B = len(adjs)
        if B == 0:
            return cls(
                np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64), 0, 0
            )
        n = len(adjs[0])
        packed = pack_batch(adjs)
        W = packed.shape[2]
        rows_flat = packed.reshape(B * n, W)
        eS, eD, _ = edge_table(rows_flat, n, chunk_bits(memory_budget_mb))
        deg = np.bincount(eS, minlength=B * n)
        indptr = np.zeros(B * n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        return cls(indptr, eD, B, n)

    @classmethod
    def from_positions(
        cls,
        positions: np.ndarray,
        radius: float,
        *,
        memory_budget_mb: float | None = None,
    ) -> "CSRBatch":
        """Unit-disk CSR straight from ``(n, 2)`` positions (batch of 1).

        Grid hashing with cell = radius and 3×3 candidate probes, chunked
        by the memory budget.  The distance arithmetic is bit-identical to
        :func:`repro.graphs.unitdisk.unit_disk_adjacency_grid`
        (``Σ (Δ)²`` in float64, inclusive ``d² ≤ r²``), so the edge set
        matches the dense builders exactly — without ever allocating an
        ``n``-bit row.
        """
        pos = np.ascontiguousarray(positions, dtype=np.float64)
        n = len(pos)
        empty = np.empty(0, dtype=np.int64)
        if n == 0:
            return cls(np.zeros(1, dtype=np.int64), empty, 1, 0)
        src, dst = unit_disk_edge_lists(
            pos,
            radius,
            np.arange(n, dtype=np.int64),
            chunk_words(memory_budget_mb),
        )
        if len(src) == 0:
            return cls(np.zeros(n + 1, dtype=np.int64), empty, 1, n)
        perm = np.lexsort((dst, src))
        src, dst = src[perm], dst[perm]
        deg = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        return cls(indptr, dst, 1, n)


def unit_disk_edge_lists(
    pos: np.ndarray,
    radius: float,
    srcs: np.ndarray,
    budget_words: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Unit-disk ``(src, dst)`` directed edge lists for a source subset.

    Candidates come from the 3×3 grid-cell block around each source (cell
    size = radius), expanded in chunks bounded by ``budget_words``.  The
    distance arithmetic (``Σ (Δ)²`` in float64, inclusive ``d² ≤ r²``)
    matches :func:`repro.graphs.unitdisk.unit_disk_adjacency_grid` bit for
    bit, so calling this for *all* nodes reproduces
    :meth:`CSRBatch.from_positions` and calling it for just the movers
    yields rows bit-identical to a full rebuild — the property the
    incremental pipeline's CSR patching rests on.  Edges are returned
    unsorted (grouped by chunk); callers lexsort.
    """
    empty = np.empty(0, dtype=np.int64)
    k = len(srcs)
    if k == 0:
        return empty, empty
    n = len(pos)
    r2 = radius * radius
    keys = np.floor(pos / radius).astype(np.int64)
    kx = keys[:, 0] - keys[:, 0].min()
    ky = keys[:, 1] - keys[:, 1].min()
    # +1 shift and a +3 stride make every ±1 cell offset a distinct
    # code with no wraparound, so the 9 probes never double-count
    stride = int(ky.max()) + 3
    code = (kx + 1) * stride + (ky + 1)
    order = np.argsort(code, kind="stable")
    sorted_codes = code[order]
    ucodes, ustarts = np.unique(sorted_codes, return_index=True)
    ucounts = np.diff(np.append(ustarts, n))
    starts9 = np.empty((9, k), dtype=np.int64)
    counts9 = np.zeros((9, k), dtype=np.int64)
    scode = code[srcs]
    j = 0
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            target = scode + dx * stride + dy
            ci = np.searchsorted(ucodes, target)
            ci = np.minimum(ci, len(ucodes) - 1)
            ok = ucodes[ci] == target
            starts9[j] = np.where(ok, ustarts[ci], 0)
            counts9[j] = np.where(ok, ucounts[ci], 0)
            j += 1
    per_node = counts9.sum(axis=0)
    avg = max(1.0, float(per_node.mean()))
    step = max(1, int(budget_words / avg))
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for lo in range(0, k, step):
        hi = min(k, lo + step)
        cnt = counts9[:, lo:hi].ravel()
        total = int(cnt.sum())
        if total == 0:
            continue
        owner = np.repeat(np.arange(len(cnt), dtype=np.int64), cnt)
        first = np.cumsum(cnt) - cnt
        within = np.arange(total, dtype=np.int64) - first[owner]
        cand = order[starts9[:, lo:hi].ravel()[owner] + within]
        ss = np.tile(srcs[lo:hi], 9)[owner]
        d = pos[cand] - pos[ss]
        dsq = d * d
        d2 = dsq[:, 0] + dsq[:, 1]
        keep = (d2 <= r2) & (cand != ss)
        src_parts.append(ss[keep])
        dst_parts.append(cand[keep])
    if not src_parts:
        return empty, empty
    return np.concatenate(src_parts), np.concatenate(dst_parts)


def connected_labels(indptr: np.ndarray, dst_flat: np.ndarray) -> np.ndarray:
    """Per-flat-row component labels (the min flat id of each component).

    Min-label propagation with full pointer-jumping compression between
    hooking rounds — O(log diameter) numpy passes, no Python per-node
    loop.  ``dst_flat`` holds *flat* destination rows aligned with the
    CSR ``indptr`` segments; isolated rows keep their own label.
    """
    R = len(indptr) - 1
    labels = np.arange(R, dtype=np.int64)
    deg = np.diff(indptr)
    nonempty = np.flatnonzero(deg > 0)
    if len(nonempty) == 0:
        return labels
    starts = indptr[nonempty]
    while True:
        nmin = np.minimum.reduceat(labels[dst_flat], starts)
        hooked = np.minimum(labels[nonempty], nmin)
        if np.array_equal(hooked, labels[nonempty]):
            break
        labels[nonempty] = hooked
        while True:
            nxt = labels[labels]
            if np.array_equal(nxt, labels):
                break
            labels = nxt
    return labels


def _member(
    keys: np.ndarray, rows: np.ndarray, cols: np.ndarray, n: int
) -> np.ndarray:
    """Is ``(rows[k], cols[k])`` a directed edge?  Binary-search probe.

    ``keys`` is the sorted ``eS·n + eD`` array of the (sub)graph's edges.
    ``searchsorted`` returning ``len(keys)`` means the query exceeds every
    key, so clamping to the last slot compares unequal — no branch needed.
    """
    if len(keys) == 0:
        return np.zeros(len(rows), dtype=bool)
    q = rows * n + cols
    idx = np.searchsorted(keys, q)
    idx = np.minimum(idx, len(keys) - 1)
    return keys[idx] == q


@dataclass(frozen=True)
class SparseRunDetail:
    """Per-component results of one :meth:`SparseCDSEngine.run_detailed`.

    All arrays are flat (batch-major, ``R = B·n`` rows).  ``roots`` holds
    each component's min flat-row id — the stable label the incremental
    pipeline keys its caches on; ``comp_of[r]`` indexes into the
    per-component arrays.  ``rounds_c`` is raw (not floored): the
    at-least-one-rule-round floor is an aggregation-time rule.
    """

    flags: np.ndarray
    comp_of: np.ndarray
    roots: np.ndarray
    initial_c: np.ndarray
    rem1_c: np.ndarray
    rem2_c: np.ndarray
    rounds_c: np.ndarray


class SparseCDSEngine:
    """Streaming per-component engine, bit-identical to ``compute_cds``.

    Components at or below ``dense_cutoff`` nodes are delegated to a
    held :class:`BatchCDSEngine` as same-size dense sub-batches; bigger
    ones run the CSR kernels.  One instance is bound to a scheme, the
    fixed-point mode, and a memory budget; ``run`` is stateless across
    calls.
    """

    def __init__(
        self,
        scheme: str | PriorityScheme = "id",
        *,
        fixed_point: bool = False,
        max_rounds: int = 1_000,
        memory_budget_mb: float | None = None,
        dense_cutoff: int = DENSE_COMPONENT_CUTOFF,
    ):
        self.scheme = (
            scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        )
        self.fixed_point = fixed_point
        self.max_rounds = max_rounds
        self.memory_budget_mb = resolve_memory_budget_mb(memory_budget_mb)
        self.dense_cutoff = int(dense_cutoff)
        self._chunk_words = chunk_words(self.memory_budget_mb)
        self._dense = BatchCDSEngine(
            self.scheme,
            fixed_point=fixed_point,
            max_rounds=max_rounds,
            memory_budget_mb=self.memory_budget_mb,
        )

    # -- dense tier --------------------------------------------------------

    def _run_dense_groups(
        self,
        comps: np.ndarray,
        sizes: np.ndarray,
        comp_of: np.ndarray,
        comp_starts: np.ndarray,
        order_nodes: np.ndarray,
        local_of: np.ndarray,
        eS: np.ndarray,
        eDf: np.ndarray,
        energy_flat: np.ndarray | None,
        flags: np.ndarray,
        initial_c: np.ndarray,
        rem1_c: np.ndarray,
        rem2_c: np.ndarray,
        rounds_c: np.ndarray,
    ) -> None:
        """Run small components as same-size dense sub-batches (in place).

        Nodes are remapped ascending by flat id, so every id tiebreak
        keeps its relative order and the dense result transplants back
        bit-identically.
        """
        C = len(sizes)
        slot = np.full(C, -1, dtype=np.int64)
        budget_bytes = max(1 << 20, int(self.memory_budget_mb * (1 << 20)))
        for nc in np.unique(sizes[comps]):
            nc = int(nc)
            group = comps[sizes[comps] == nc]
            Wc = words_for(nc)
            ncols = Wc * 64
            # k components of nc nodes cost k·nc·ncols unpacked bools
            kper = max(1, budget_bytes // (nc * ncols))
            for glo in range(0, len(group), kper):
                gsel = group[glo : glo + kper]
                kc = len(gsel)
                slot[gsel] = np.arange(kc)
                nodes = (
                    comp_starts[gsel][:, None]
                    + np.arange(nc, dtype=np.int64)[None, :]
                )
                nodes = order_nodes[nodes]  # (kc, nc) flat ids, ascending
                in_group = np.zeros(C, dtype=bool)
                in_group[gsel] = True
                esel = in_group[comp_of[eS]]
                es, ed = eS[esel], eDf[esel]
                bits = np.zeros((kc, nc, ncols), dtype=bool)
                bits[slot[comp_of[es]], local_of[es], local_of[ed]] = True
                packed = np.packbits(bits, axis=2, bitorder="little")
                packed = packed.view(np.uint64)
                sub_energy = None
                if energy_flat is not None:
                    sub_energy = energy_flat[nodes]
                sub_flags, sub_stats = self._dense.run(packed, sub_energy)
                flags[nodes.ravel()] = sub_flags.ravel()
                for i, c in enumerate(gsel.tolist()):
                    st = sub_stats[i]
                    initial_c[c] = st.initial_marked
                    rem1_c[c] = st.removed_rule1
                    rem2_c[c] = st.removed_rule2
                    rounds_c[c] = st.rounds
                slot[gsel] = -1

    # -- CSR kernels (big components) --------------------------------------

    def _edge_miss_csr(self, keys, beS, beD, beDf, bdeg, boff):
        """Per-edge miss lists ``miss(v→u) = N(v) \\ N(u)`` over big edges.

        The CSR twin of ``BatchCDSEngine._edge_miss``: same chunked
        expansion, with the word gather replaced by the sorted-key
        membership probe.  Returns ``(misscnt, missoff, misslist)``
        indexed by *big-edge* id.
        """
        E = len(beS)
        n = self._n
        if E == 0:
            z = np.empty(0, dtype=np.int64)
            return z, z, z
        counts_all = bdeg[beS]
        avg = max(1.0, float(counts_all.mean()))
        step = max(1, int(self._chunk_words / avg))
        list_parts: list[np.ndarray] = []
        owner_parts: list[np.ndarray] = []
        for lo in range(0, E, step):
            hi = min(E, lo + step)
            cnt = counts_all[lo:hi]
            total = int(cnt.sum())
            if total == 0:
                continue
            owner = np.repeat(np.arange(hi - lo, dtype=np.int64), cnt)
            first = np.cumsum(cnt) - cnt
            within = np.arange(total, dtype=np.int64) - first[owner]
            xs = beD[boff[beS[lo:hi]][owner] + within]  # neighbors of v
            hit = _member(keys, beDf[lo:hi][owner], xs, n)
            miss = ~hit
            list_parts.append(xs[miss])
            owner_parts.append(owner[miss] + lo)
        misslist = np.concatenate(list_parts)
        misscnt = np.bincount(np.concatenate(owner_parts), minlength=E)
        missoff = np.cumsum(misscnt) - misscnt
        return misscnt, missoff, misslist

    def _covered_csr(self, lists, offs, counts, qkeys, keys, probe_rows):
        """Chunked subset probe: list ``qkeys[k]`` ⊆ N(probe_rows[k])?"""
        K = len(qkeys)
        n = self._n
        out = np.empty(K, dtype=bool)
        if K == 0:
            return out
        counts_all = counts[qkeys]
        avg = max(1.0, float(counts_all.mean()))
        step = max(1, int(self._chunk_words / avg))
        for lo in range(0, K, step):
            hi = min(K, lo + step)
            cnt = counts_all[lo:hi]
            total = int(cnt.sum())
            if total == 0:
                out[lo:hi] = True
                continue
            owner = np.repeat(np.arange(hi - lo, dtype=np.int64), cnt)
            first = np.cumsum(cnt) - cnt
            within = np.arange(total, dtype=np.int64) - first[owner]
            xs = lists[offs[qkeys[lo:hi]][owner] + within]
            hit = _member(keys, probe_rows[lo:hi][owner], xs, n)
            nmiss = np.bincount(owner[~hit], minlength=hi - lo)
            out[lo:hi] = nmiss == 0
        return out

    def _rule1_csr(self, beS, beDf, misscnt, marked, rank):
        """Simultaneous Rule-1 pass over the big-component edges."""
        sel = (
            marked[beS]
            & marked[beDf]
            & (rank[beS] < rank[beDf])
            & (misscnt == 1)
        )
        removed = _scatter_any(beS[sel], len(marked))
        return marked & ~removed

    def _firing_triples_csr(
        self, keys, miss, brev, beS, beD, beDf, marked, rank
    ):
        """Firing triples of the current marked set, streamed in blocks.

        Semantically ``BatchCDSEngine._firing_triples`` with membership
        probes for the adjacency prefilter; the pair expansion walks
        source rows in blocks of ~``chunk_words`` triples so the triple
        table is never materialized whole.
        """
        R = len(marked)
        misscnt, missoff, misslist = miss
        empty = np.empty(0, dtype=np.int64)
        sel = marked[beS] & marked[beDf]
        sel_idx = np.flatnonzero(sel)
        mdeg = np.bincount(beS[sel_idx], minlength=R)
        pcs = mdeg * (mdeg - 1) >> 1
        cum = np.cumsum(pcs)
        total = int(cum[-1]) if R else 0
        if total == 0:
            return empty, empty, empty
        offs = np.cumsum(mdeg) - mdeg  # per-row offset into sel_idx
        cuts = np.searchsorted(
            cum, np.arange(self._chunk_words, total, self._chunk_words)
        )
        row_bounds = np.unique(np.concatenate(([0], cuts + 1, [R])))
        v_parts: list[np.ndarray] = []
        u_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        for bi in range(len(row_bounds) - 1):
            r0, r1 = int(row_bounds[bi]), int(row_bounds[bi + 1])
            sub_mdeg = mdeg[r0:r1]
            i, j = pair_index_arrays(sub_mdeg)
            if len(i) == 0:
                continue
            sub_pcs = sub_mdeg * (sub_mdeg - 1) >> 1
            tV = np.repeat(np.arange(r0, r1, dtype=np.int64), sub_pcs)
            base = np.repeat(offs[r0:r1], sub_pcs)
            gU = sel_idx[base + i]  # big-edge id of (v, u)
            gW = sel_idx[base + j]  # big-edge id of (v, w)
            tW = beD[gW]
            tUf = beDf[gU]
            tWf = beDf[gW]
            # prefilter: u and w must be adjacent (see the dense twin)
            keep = _member(keys, tUf, tW, self._n)
            tV, tUf, tWf = tV[keep], tUf[keep], tWf[keep]
            gU, gW = gU[keep], gW[keep]
            if len(tV) == 0:
                continue
            # primary coverage: N(v) ⊆ N(u) ∪ N(w) ⟺ miss(v→u) ⊆ N(w)
            cov = self._covered_csr(
                misslist, missoff, misscnt, gU, keys, tWf
            )
            cV, cUf, cWf = tV[cov], tUf[cov], tWf[cov]
            if len(cV) == 0:
                continue
            gU, gW = gU[cov], gW[cov]
            rv = rank[cV]
            lu = rv < rank[cUf]
            lw = rv < rank[cWf]
            if self.scheme.uses_coverage_cases:
                # mutual-coverage case flags through the reverse edges
                ccu = self._covered_csr(
                    misslist, missoff, misscnt, brev[gU], keys, cWf
                )
                ccw = self._covered_csr(
                    misslist, missoff, misscnt, brev[gW], keys, cUf
                )
                lu |= ~ccu
                lw |= ~ccw
            fire = lu & lw
            v_parts.append(cV[fire])
            u_parts.append(cUf[fire])
            w_parts.append(cWf[fire])
        if not v_parts:
            return empty, empty, empty
        return (
            np.concatenate(v_parts),
            np.concatenate(u_parts),
            np.concatenate(w_parts),
        )

    def _rule2_csr(self, keys, miss, brev, beS, beD, beDf, marked, rank):
        """One Rule-2 pass (iterated local-minimum rounds) over big comps."""
        R = len(marked)
        fV, fUf, fWf = self._firing_triples_csr(
            keys, miss, brev, beS, beD, beDf, marked, rank
        )
        if len(fV) == 0:
            return marked
        current = marked.copy()
        cand = _scatter_any(fV, R)
        ce = cand[beS] & cand[beDf]
        ceS, ceD = beS[ce], beDf[ce]
        while cand.any():
            live = cand[ceS] & cand[ceD]
            minr = np.full(R, _I32MAX, dtype=np.int32)
            ls, ld = ceS[live], ceD[live]
            if len(ls):
                np.minimum.at(minr, ls, rank[ld])
            commit = cand & (rank < minr)
            if not commit.any():  # pragma: no cover - a global min commits
                break
            current &= ~commit
            cand &= ~commit
            alive = current[fUf] & current[fWf]
            cand &= _scatter_any(fV[alive], R)
        return current

    # -- driver ------------------------------------------------------------

    def run(
        self, csr: CSRBatch, energy: np.ndarray | None = None
    ) -> tuple[np.ndarray, list[PruneStats]]:
        """Marking + pruning for every batch element.

        Returns ``(B, n)`` gateway flags and one :class:`PruneStats` per
        element, bit-identical to ``compute_cds`` per element (and hence
        to :meth:`BatchCDSEngine.run` on the packed batch).
        """
        B, n = csr.B, csr.n
        uses_rules = self.scheme.uses_rules
        if B == 0 or n == 0:
            rounds = 1 if uses_rules else 0
            return (
                np.zeros((B, n), dtype=bool),
                [PruneStats(0, 0, 0, rounds)] * B,
            )
        d = self.run_detailed(csr, energy)
        comp_elem = d.roots // n
        initial_b = np.zeros(B, dtype=np.int64)
        rem1_b = np.zeros(B, dtype=np.int64)
        rem2_b = np.zeros(B, dtype=np.int64)
        rounds_b = np.zeros(B, dtype=np.int64)
        np.add.at(initial_b, comp_elem, d.initial_c)
        np.add.at(rem1_b, comp_elem, d.rem1_c)
        np.add.at(rem2_b, comp_elem, d.rem2_c)
        np.maximum.at(rounds_b, comp_elem, d.rounds_c)
        if uses_rules:
            # the reference engine always runs at least one rule round
            rounds_b = np.maximum(rounds_b, 1)
        else:
            rounds_b[:] = 0

        stats = [
            PruneStats(
                int(initial_b[b]),
                int(rem1_b[b]),
                int(rem2_b[b]),
                int(rounds_b[b]),
            )
            for b in range(B)
        ]
        if obs.enabled():
            obs.add("scds.marked", int(initial_b.sum()))
            obs.add("scds.final", int(d.flags.sum()))
            obs.add("scds.rounds", int(rounds_b.sum()))
        return d.flags.reshape(B, n), stats

    def run_detailed(
        self, csr: CSRBatch, energy: np.ndarray | None = None
    ) -> "SparseRunDetail":
        """One engine pass returning *per-component* results.

        The per-element aggregation :meth:`run` performs (sum removals,
        max rounds, floor at one rule round) is left to the caller, which
        is what lets :class:`repro.core.sparse_delta.
        IncrementalSparseCDSPipeline` recompute a dirty subset of
        components and splice cached stats for the rest.  Requires a
        non-degenerate batch (``B ≥ 1`` and ``n ≥ 1``).
        """
        B, n = csr.B, csr.n
        if B * n * n >= 1 << 62:
            raise ConfigurationError(
                f"edge keys for B={B}, n={n} overflow int64; split the batch"
            )
        self._n = n
        R = B * n
        indptr, dst = csr.indptr, csr.dst
        deg = np.diff(indptr)
        eS = np.repeat(np.arange(R, dtype=np.int64), deg)
        eDf = eS - eS % n + dst

        with obs.span("cds_sparse"):
            labels = connected_labels(indptr, eDf)
            roots, comp_of = np.unique(labels, return_inverse=True)
            sizes = np.bincount(comp_of)
            comp_elem = roots // n
            C = len(roots)
            # nodes grouped by component, ascending flat id within each
            order_nodes = np.argsort(comp_of, kind="stable")
            comp_starts = np.cumsum(sizes) - sizes
            local_of = np.empty(R, dtype=np.int64)
            local_of[order_nodes] = (
                np.arange(R, dtype=np.int64) - comp_starts[comp_of[order_nodes]]
            )

            energy_flat = None
            if energy is not None:
                energy_flat = np.asarray(energy, dtype=np.float64).reshape(R)

            flags = np.zeros(R, dtype=bool)
            initial_c = np.zeros(C, dtype=np.int64)
            rem1_c = np.zeros(C, dtype=np.int64)
            rem2_c = np.zeros(C, dtype=np.int64)
            rounds_c = np.zeros(C, dtype=np.int64)

            small = (sizes >= 3) & (sizes <= self.dense_cutoff)
            small_ids = np.flatnonzero(small)
            big = sizes > self.dense_cutoff

            if obs.enabled():
                obs.count("scds.batches")
                obs.add("scds.elements", B)
                obs.add("scds.components", C)
                obs.add("scds.edges", len(eS))
                obs.add("scds.dense_nodes", int(sizes[small].sum()))
                obs.add("scds.csr_nodes", int(sizes[big].sum()))

            if len(small_ids):
                self._run_dense_groups(
                    small_ids, sizes, comp_of, comp_starts, order_nodes,
                    local_of, eS, eDf, energy_flat, flags,
                    initial_c, rem1_c, rem2_c, rounds_c,
                )

            if big.any():
                self._run_big(
                    big, comp_of, comp_elem, deg, eS, eDf, dst,
                    energy_flat, B, n, flags,
                    initial_c, rem1_c, rem2_c, rounds_c,
                )

            return SparseRunDetail(
                flags=flags,
                comp_of=comp_of,
                roots=roots,
                initial_c=initial_c,
                rem1_c=rem1_c,
                rem2_c=rem2_c,
                rounds_c=rounds_c,
            )

    def _run_big(
        self, big, comp_of, comp_elem, deg, eS, eDf, dst,
        energy_flat, B, n, flags,
        initial_c, rem1_c, rem2_c, rounds_c,
    ) -> None:
        """Streamed CSR path for components above the dense cutoff.

        The outer convergence loop mirrors the dense engine's per-element
        ``done_b`` loop with per-*component* activity flags: rounds count
        while active, removals and state updates freeze once a component
        stabilizes (or ``max_rounds`` caps it), so the aggregate stats
        match the reference loop exactly.
        """
        C = len(initial_c)
        bignode = big[comp_of]
        besel = bignode[eS]
        beS, beDf, beD = eS[besel], eDf[besel], dst[besel]
        keys = beS * n + beD  # globally sorted: (src, dst) ascending
        bdeg = np.where(bignode, deg, 0)
        boff = np.cumsum(bdeg) - bdeg
        miss = self._edge_miss_csr(keys, beS, beD, beDf, bdeg, boff)
        misscnt = miss[0]

        marked0 = _scatter_any(beS[misscnt >= 2], B * n)
        mcomps = comp_of[np.flatnonzero(marked0)]
        if len(mcomps):
            initial_c += np.bincount(mcomps, minlength=C)

        if not self.scheme.uses_rules:
            flags |= marked0
            return

        energy_arr = None
        if energy_flat is not None:
            energy_arr = energy_flat.reshape(B, n)
        rank = self._dense._ranks(deg, energy_arr, B, n)
        # reverse-edge permutation within the big-edge table: components
        # are closed, so every reverse edge is itself a big edge
        brev = np.lexsort((beS, beDf))

        current = marked0.copy()
        active_c = big.copy()
        rounds_big = np.zeros(C, dtype=np.int64)
        while active_c.any():
            rounds_big += active_c
            after1 = self._rule1_csr(beS, beDf, misscnt, current, rank)
            after2 = self._rule2_csr(
                keys, miss, brev, beS, beD, beDf, after1, rank
            )
            d1 = np.bincount(
                comp_of[np.flatnonzero(current & ~after1)], minlength=C
            )
            d2 = np.bincount(
                comp_of[np.flatnonzero(after1 & ~after2)], minlength=C
            )
            rem1_c += np.where(active_c, d1, 0)
            rem2_c += np.where(active_c, d2, 0)
            changed_c = np.zeros(C, dtype=bool)
            diff = np.flatnonzero(current ^ after2)
            changed_c[comp_of[diff]] = True
            # frozen components keep their state (relevant once
            # max_rounds caps one that has not stabilized)
            upd = active_c[comp_of]
            current = np.where(upd, after2, current)
            active_c &= changed_c
            if not self.fixed_point:
                active_c[:] = False
            active_c &= rounds_big < self.max_rounds
        rounds_c[big] = rounds_big[big]
        flags |= current


def compute_cds_sparse(
    adjacencies: Sequence[Sequence[int]],
    scheme: str | PriorityScheme = "id",
    energies=None,
    *,
    fixed_point: bool = False,
    verify: bool = False,
    memory_budget_mb: float | None = None,
    dense_cutoff: int = DENSE_COMPONENT_CUTOFF,
) -> list[CDSResult]:
    """Sparse batched :func:`repro.core.cds.compute_cds` (same contract as
    :func:`repro.core.vectorized.compute_cds_batch`, different substrate).
    """
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    adjs = [
        list(a.adjacency) if hasattr(a, "adjacency") else list(a)
        for a in adjacencies
    ]
    B = len(adjs)
    if B == 0:
        return []
    n = len(adjs[0])
    energy_arr = _validate_energy(sch, energies, B, n)
    csr = CSRBatch.from_adjacency(adjs, memory_budget_mb=memory_budget_mb)
    engine = SparseCDSEngine(
        sch,
        fixed_point=fixed_point,
        memory_budget_mb=memory_budget_mb,
        dense_cutoff=dense_cutoff,
    )
    flags, stats = engine.run(csr, energy_arr)
    masks = flags_to_masks(flags)
    results = []
    for b in range(B):
        result = CDSResult(
            scheme=sch.name, gateway_mask=masks[b], n=n, stats=stats[b]
        )
        if verify and (masks[b] or not marking_trivially_empty(adjs[b])):
            verify_cds(adjs[b], masks[b], context=f"sparse scheme={sch.name}")
        results.append(result)
    return results


class SparseCDSPipeline:
    """Per-interval pipeline on the sparse engine (batch width 1).

    Duck-type compatible with the delta/vectorized pipelines
    (``compute(graph, energy=...)`` / ``reset()``) so ``run_interval``
    swaps it in through the same socket.  Recomputes from scratch every
    interval, except that an interval whose adjacency rows *and*
    quantized-energy fingerprint both match the previous one
    short-circuits to the cached result (the same fingerprint pair
    :class:`repro.core.delta.DeltaCDSPipeline` checks) — quantization
    follows ``scheme.quantum``, exactly what ``PriorityScheme.key``
    applies, so an unchanged fingerprint implies unchanged keys for any
    scheme.  For incremental recomputation of *changed* intervals see
    :class:`repro.core.sparse_delta.IncrementalSparseCDSPipeline`.
    """

    def __init__(
        self,
        scheme: str | PriorityScheme,
        *,
        fixed_point: bool = False,
        verify: bool = False,
        shadow_check: bool = False,
        memory_budget_mb: float | None = None,
    ):
        self.scheme = (
            scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        )
        self.fixed_point = fixed_point
        self.verify = verify
        self.shadow_check = shadow_check
        self.engine = SparseCDSEngine(
            self.scheme,
            fixed_point=fixed_point,
            memory_budget_mb=memory_budget_mb,
        )
        self._prev_adj: list[int] | None = None
        self._prev_ekey: bytes | None = None
        self._prev_result: CDSResult | None = None

    def reset(self) -> None:
        """Drop the short-circuit fingerprints (next compute runs fully)."""
        self._prev_adj = None
        self._prev_ekey = None
        self._prev_result = None

    def _energy_fingerprint(self, energy) -> bytes | None:
        if energy is None:
            return None
        e = np.asarray(energy, dtype=np.float64)
        q = self.scheme.quantum
        qe = np.rint(e / q) * q if q is not None else e
        return qe.tobytes()

    def compute(
        self, graph, energy: Sequence[float] | None = None
    ) -> CDSResult:
        """The sparse equivalent of :func:`compute_cds` (one element)."""
        adj_src = graph.adjacency if hasattr(graph, "adjacency") else graph
        n = len(adj_src)
        sch = self.scheme
        if sch.needs_energy and energy is None:
            raise ConfigurationError(
                f"scheme {sch.name!r} ranks by energy level; pass energy="
            )
        if energy is not None and len(energy) != n:
            raise ConfigurationError(
                f"energy has {len(energy)} entries for {n} nodes"
            )
        ekey = self._energy_fingerprint(energy)
        if (
            self._prev_result is not None
            and len(self._prev_adj) == n
            and self._prev_ekey == ekey
            and not np.not_equal(
                np.asarray(adj_src, dtype=object),
                np.asarray(self._prev_adj, dtype=object),
            ).any()
        ):
            # unchanged rows + unchanged quantized energies: the rebuild
            # would reproduce the previous interval bit for bit, and the
            # defensive row copy below is skipped along with it
            if obs.enabled():
                obs.count("scds.short_circuit")
                obs.count("cds.computed")
                obs.add("cds.size", self._prev_result.size)
            return self._prev_result
        adj = list(adj_src)
        with obs.span("cds"):
            csr = CSRBatch.from_adjacency(
                [adj], memory_budget_mb=self.engine.memory_budget_mb
            )
            energy_arr = None
            if energy is not None:
                energy_arr = np.asarray(energy, dtype=np.float64)[None, :]
            flags, stats = self.engine.run(csr, energy_arr)
            mask = flags_to_masks(flags)[0]
            result = CDSResult(
                scheme=sch.name, gateway_mask=mask, n=n, stats=stats[0]
            )
            if self.verify and (mask or not marking_trivially_empty(adj)):
                with obs.span("verify"):
                    verify_cds(
                        adj, mask, context=f"sparse scheme={sch.name}"
                    )
            if self.shadow_check:
                self._shadow_check(adj, result, energy)
            if obs.enabled():
                obs.count("cds.computed")
                obs.add("cds.size", result.size)
        self._prev_adj = adj
        self._prev_ekey = ekey
        self._prev_result = result
        return result

    def _shadow_check(self, adj, result: CDSResult, energy) -> None:
        from repro.core.cds import compute_cds

        with obs.span("shadow"):
            reference = compute_cds(
                adj, self.scheme, energy=energy, fixed_point=self.fixed_point
            )
        if reference.gateway_mask != result.gateway_mask:
            raise InvariantViolation(
                "sparse pipeline diverged from scratch pipeline "
                f"(scheme={self.scheme.name}): sparse mask "
                f"{result.gateway_mask:#x} != scratch mask "
                f"{reference.gateway_mask:#x}"
            )
