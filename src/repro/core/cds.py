"""One-call facade: :func:`compute_cds`.

This is the API most users and all experiment code go through::

    from repro import compute_cds
    result = compute_cds(network, scheme="el1", energy=levels)
    result.gateways          # set of gateway node ids
    result.size              # |G'|
    result.stats             # what each rule removed

The facade runs the marking process, applies the scheme's rule pair
(single-pass by default, as the paper does), and optionally verifies the
invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.core.marking import marked_mask, marking_trivially_empty
from repro.core.priority import PriorityScheme, scheme_by_name
from repro.core.properties import verify_cds
from repro.core.reduction import PruneStats, prune
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.types import SupportsNeighborhoods

__all__ = ["CDSResult", "compute_cds"]


@dataclass(frozen=True)
class CDSResult:
    """Output of :func:`compute_cds`.

    ``gateway_mask`` is the bitmask form (cheap set algebra); ``gateways``
    materializes the id set on first access.
    """

    scheme: str
    gateway_mask: int
    n: int
    stats: PruneStats
    _gateways: frozenset[int] | None = field(init=False, repr=False, default=None)

    @property
    def gateways(self) -> frozenset[int]:
        """Gateway (dominating-set member) node ids (built on first access).

        The simulator produces one ``CDSResult`` per interval and touches
        only ``gateway_mask``; deferring the frozenset keeps the hot loop
        allocation-free.
        """
        if self._gateways is None:
            object.__setattr__(
                self, "_gateways", frozenset(bitset.ids_from_mask(self.gateway_mask))
            )
        assert self._gateways is not None
        return self._gateways

    @property
    def size(self) -> int:
        """``|G'|`` — the quantity Figure 10 plots."""
        return bitset.popcount(self.gateway_mask)

    def is_gateway(self, v: int) -> bool:
        return bool(self.gateway_mask >> v & 1)

    def status_vector(self) -> list[bool]:
        """Per-node gateway flags, index-aligned with node ids."""
        return [bool(self.gateway_mask >> v & 1) for v in range(self.n)]


def compute_cds(
    graph: SupportsNeighborhoods | Sequence[int],
    scheme: str | PriorityScheme = "id",
    energy: Sequence[float] | None = None,
    *,
    fixed_point: bool = False,
    verify: bool = False,
) -> CDSResult:
    """Compute the connected dominating set under a priority scheme.

    Parameters
    ----------
    graph:
        Anything exposing bitmask ``adjacency`` (AdHocNetwork,
        NeighborhoodView) or a raw bitmask list.
    scheme:
        ``"nr" | "id" | "nd" | "el1" | "el2"`` or a
        :class:`~repro.core.priority.PriorityScheme`.
    energy:
        Per-node energy levels; required for the EL schemes.
    fixed_point:
        Iterate the rule passes to a fixed point instead of the paper's
        single pass.
    verify:
        Assert Properties 1–2 on the result (raises
        :class:`~repro.errors.InvariantViolation`); skipped for graphs
        where the marking process legitimately returns the empty set
        (complete graphs and n <= 2).
    """
    adj = graph.adjacency if hasattr(graph, "adjacency") else graph
    adj = list(adj)
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    if sch.needs_energy and energy is None:
        raise ConfigurationError(
            f"scheme {sch.name!r} ranks by energy level; pass energy="
        )
    if energy is not None and len(energy) != len(adj):
        raise ConfigurationError(
            f"energy has {len(energy)} entries for {len(adj)} nodes"
        )

    with obs.span("cds"):
        marked = marked_mask(adj)
        final, stats = prune(adj, marked, sch, energy, fixed_point=fixed_point)
        result = CDSResult(
            scheme=sch.name, gateway_mask=final, n=len(adj), stats=stats
        )
        # An empty mask is legitimate only where the marking process is
        # *defined* to return nothing (complete graphs, n <= 2).  Anywhere
        # else an empty result is a pipeline bug that verify_cds must flag —
        # gating on `final` alone silently accepted every empty mask.
        if verify and (final or not marking_trivially_empty(adj)):
            with obs.span("verify"):
                verify_cds(adj, final, context=f"scheme={sch.name}")
        if obs.enabled():
            obs.count("cds.computed")
            obs.add("cds.size", result.size)
    return result
