"""Vectorized batch CDS engine over stacked ``(trials, nodes, words)`` arrays.

The scratch pipeline (:func:`repro.core.cds.compute_cds`) and the delta
pipeline (:mod:`repro.core.delta`) both walk Python-int bitmasks node by
node somewhere on their hot path, which caps them near N≈1000.  This module
re-expresses the whole per-interval computation — marking process, Rule 1,
Rule 2 rounds, and the Rule-k generalization — as numpy kernels over packed
``uint64`` word matrices, with an explicit *batch* axis so many independent
topologies (trials of a sweep cell, cells of a figure) evaluate in one
array pass.

Layout
------
A batch of ``B`` topologies on ``n`` nodes is a ``(B, n, W)`` ``uint64``
array with ``W = max(1, ceil(n / 64))`` little-endian words per row and
**all padding bits zero** (the pack helpers enforce this; see
:func:`tail_mask`).  Kernels flatten it to ``(B*n, W)`` and address node
``v`` of element ``b`` as flat row ``b*n + v`` — edges never cross
elements, so one edge table drives every element at once.  Memory is
``B·n·W·8`` bytes: a hundred 1k-node trials is ~13 MB; at n = 10k the
batch width is chosen by the caller (a single element is ~1.3 MB).

Equivalence contract
--------------------
For every element the gateway mask and :class:`PruneStats` are
**bit-identical** to ``compute_cds`` under the same scheme:

* marking: ``v`` is marked iff some neighbor ``u`` leaves
  ``N(v) \\ N[u]`` non-empty (per-directed-edge witness test);
* Rule 1: simultaneous pass against a snapshot — ``v`` unmarks iff a
  *marked* neighbor ``u`` has ``N[v] ⊆ N[u]`` and ``key(v) < key(u)``;
* Rule 2: iterated local-minimum rounds exactly as
  :meth:`repro.core.rules.RuleEngine.rule2_pass` — candidates are marked
  nodes with a live firing pair, a candidate commits iff it outranks every
  candidate neighbor, rounds repeat until no commits;
* keys compare as dense integer ranks built by ``np.lexsort`` over the
  exact quantized components the tuple keys contain (the same construction
  :class:`repro.core.delta.CachedRuleEngine` uses), so every comparison
  equals the scratch engine's tuple comparison.

Scale tricks (what makes n = 10k feasible)
------------------------------------------
The raw Rule-2 triple table is ``Σ_v deg(v)·(deg(v)-1)/2`` entries (~1.9M
at n = 10k constant-density).  Two observations cut its cost by ~10×
(profiled on exactly that workload):

* **adjacency prefilter**: a firing pair must have ``w ∈ N(u)`` —
  ``w ∈ N(v)`` needs covering, ``w ∉ N(w)``, so only ``N(u)`` can supply
  it; one single-word gather per triple kills ~40% of them;
* **per-edge miss lists**: one expansion pass over the directed-edge
  table (:meth:`BatchCDSEngine._edge_miss`) records, for every edge
  ``(v, u)``, the set ``miss(v→u) = N(v) \\ N(u)`` (``u`` itself always
  belongs).  Then *marking* is ``|miss| ≥ 2`` (some neighbor besides u is
  unreachable from u), *Rule-1 coverage* ``N[v] ⊆ N[u]`` is ``|miss| ==
  1``, and *Rule-2 coverage* ``N(v) ⊆ N(u) ∪ N(w)`` probes only
  ``miss(v→u)`` against ``N(w)`` (:func:`_covered_expand`) — ~3× fewer
  word probes than expanding all of ``N(v)``, and ~25× less traffic than
  sweeping all ``W`` row words per triple.  The mutual-coverage case
  flags reuse the same lists through the reverse-edge permutation
  (``N(u) \\ N(v) = miss(u→v)``).

All expansions are chunked so peak temporary memory stays bounded
regardless of n; the Python loops that remain iterate over *chunks*,
never over nodes.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.cds import CDSResult
from repro.core.marking import marking_trivially_empty
from repro.core.priority import SCHEMES, PriorityScheme, scheme_by_name
from repro.core.properties import verify_cds
from repro.core.reduction import PruneStats
from repro.errors import ConfigurationError, InvariantViolation

__all__ = [
    "words_for",
    "tail_mask",
    "pack_rows",
    "pack_adjacency",
    "pack_batch",
    "popcount_rows",
    "pair_index_arrays",
    "flags_to_masks",
    "edge_table",
    "resolve_memory_budget_mb",
    "chunk_words",
    "chunk_bits",
    "MEMORY_BUDGET_ENV",
    "DEFAULT_MEMORY_BUDGET_MB",
    "BatchCDSEngine",
    "compute_cds_batch",
    "compute_cds_rule_k_batch",
    "VectorizedCDSPipeline",
]

_U64_1 = np.uint64(1)
_U64_63 = np.uint64(63)
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_I32MAX = np.int32(np.iinfo(np.int32).max)

#: env var overriding the per-engine chunking budget (megabytes, float).
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET_MB"
#: default budget.  ``chunk_words``/``chunk_bits`` at this value reproduce
#: the historical hardcoded constants exactly (32 MiB of gathered uint64
#: words per sweep chunk, 64 Mib of unpacked bits per edge-table chunk).
DEFAULT_MEMORY_BUDGET_MB = 64.0


def resolve_memory_budget_mb(explicit: float | None = None) -> float:
    """Chunking budget in MB: explicit arg > env var > default."""
    if explicit is None:
        raw = os.environ.get(MEMORY_BUDGET_ENV)
        if raw is not None:
            try:
                explicit = float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{MEMORY_BUDGET_ENV}={raw!r} is not a number"
                ) from None
    if explicit is None:
        return DEFAULT_MEMORY_BUDGET_MB
    if not explicit > 0:
        raise ConfigurationError(
            f"memory_budget_mb must be positive, got {explicit!r}"
        )
    return float(explicit)


def chunk_words(budget_mb: float | None = None) -> int:
    """Gathered-word budget per chunked sweep (the old ``_CHUNK_WORDS``).

    Scales linearly with the budget; floored so degenerate budgets still
    make progress (tiny chunks change only speed, never results).
    """
    mb = resolve_memory_budget_mb(budget_mb)
    return max(1 << 12, int(mb * (1 << 22) / DEFAULT_MEMORY_BUDGET_MB))


def chunk_bits(budget_mb: float | None = None) -> int:
    """Unpacked-bit budget per edge-table chunk (the old ``_CHUNK_BITS``)."""
    mb = resolve_memory_budget_mb(budget_mb)
    return max(1 << 15, int(mb * (1 << 26) / DEFAULT_MEMORY_BUDGET_MB))


#: word budget per gathered operand in a chunked sweep (32 MiB of uint64).
_CHUNK_WORDS = chunk_words(DEFAULT_MEMORY_BUDGET_MB)
#: unpacked-bit budget per chunk of the edge-table builder (64 MiB).
_CHUNK_BITS = chunk_bits(DEFAULT_MEMORY_BUDGET_MB)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def words_for(n: int) -> int:
    """Words per packed row for an ``n``-node graph (min 1, like delta)."""
    return max(1, (n + 63) >> 6)


def tail_mask(n: int) -> np.uint64:
    """Mask of the *valid* bits in the last word of an ``n``-bit row.

    For ``n`` a multiple of 64 (and for n = 0, where the single word is
    all padding but always zero) the whole word is valid.  Every pack
    helper ANDs the last word with this so stray high bits can never leak
    into popcounts, degree sums, or coverage verdicts — the tail-word
    hygiene the bitset edge-case sweep pins at n ∈ {63, 64, 65, 127}.
    """
    r = n & 63
    if r == 0:
        return _ALL_ONES
    return np.uint64((1 << r) - 1)


def pack_rows(rows: Sequence[int], W: int, n: int | None = None) -> np.ndarray:
    """Bitmask ints -> ``(len(rows), W)`` little-endian uint64 matrix.

    A writable array (unlike ``np.frombuffer``).  When ``n`` is given the
    last word is masked to the valid ``n``-bit range; ``int.to_bytes``
    already rejects masks with bits at or beyond ``64·W``.
    """
    if not len(rows):
        return np.zeros((0, W), dtype=np.uint64)
    raw = b"".join(m.to_bytes(W * 8, "little") for m in rows)
    out = np.frombuffer(raw, dtype=np.uint64).reshape(len(rows), W).copy()
    if n is not None:
        out[:, -1] &= tail_mask(n)
    return out


def pack_adjacency(adj: Sequence[int]) -> np.ndarray:
    """One adjacency (list of bitmask ints) -> tail-clean ``(n, W)`` words."""
    n = len(adj)
    return pack_rows(adj, words_for(n), n)


def pack_batch(adjacencies: Sequence[Sequence[int]]) -> np.ndarray:
    """Stack ``B`` same-size adjacencies into a ``(B, n, W)`` batch."""
    B = len(adjacencies)
    if B == 0:
        return np.zeros((0, 0, 1), dtype=np.uint64)
    n = len(adjacencies[0])
    W = words_for(n)
    for k, adj in enumerate(adjacencies):
        if len(adj) != n:
            raise ConfigurationError(
                f"batch element {k} has {len(adj)} nodes, element 0 has {n}; "
                "batches must be homogeneous in n"
            )
    out = np.empty((B, n, W), dtype=np.uint64)
    for k, adj in enumerate(adjacencies):
        out[k] = pack_rows(adj, W, n)
    return out


def popcount_rows(rows: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(..., W)`` word matrix -> ``(...,)`` int64."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(rows).sum(axis=-1, dtype=np.int64)
    bits = np.unpackbits(
        np.ascontiguousarray(rows).view(np.uint8), axis=-1, bitorder="little"
    )
    return bits.sum(axis=-1, dtype=np.int64)


def flags_to_masks(flags: np.ndarray) -> list[int]:
    """``(B, n)`` boolean flags -> per-element bitmask ints."""
    if flags.shape[1] == 0:
        return [0] * flags.shape[0]
    packed = np.packbits(flags, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed]


def pair_index_arrays(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)``, ``i < j``, per group, concatenated.

    For each group size ``c`` in ``counts`` this emits its ``c·(c-1)/2``
    pairs grouped by ascending ``j`` — a closed-form decode of the pair
    ordinal ``t = j·(j-1)/2 + i`` (float sqrt estimate plus an exact
    integer correction), so no per-group Python loop and no memoized
    triangle templates.  Pair order *within* a group differs from
    ``np.triu_indices`` (by-j vs row-major) but every consumer treats the
    pair list as a set.
    """
    counts = np.asarray(counts, dtype=np.int64)
    pcs = counts * (counts - 1) >> 1
    total = int(pcs.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    starts = np.repeat(np.cumsum(pcs) - pcs, pcs)
    t = np.arange(total, dtype=np.int64) - starts
    j = ((1.0 + np.sqrt(8.0 * t.astype(np.float64) + 1.0)) * 0.5).astype(
        np.int64
    )
    for _ in range(2):  # exact integer correction of the float estimate
        j -= j * (j - 1) >> 1 > t
        j += (j + 1) * j >> 1 <= t
    i = t - (j * (j - 1) >> 1)
    return i, j


def _covered_expand(
    lists: np.ndarray,
    offs: np.ndarray,
    counts: np.ndarray,
    keys: np.ndarray,
    table: np.ndarray,
    probe_a: np.ndarray,
    probe_b: np.ndarray | None = None,
    chunk: int | None = None,
) -> np.ndarray:
    """Batched subset test: is every member of CSR list ``keys[k]`` a set
    bit of ``table[a[k]]`` (∪ ``table[b[k]]``)?

    ``lists`` holds concatenated local node ids, CSR-indexed by ``offs`` /
    ``counts``; query ``k`` expands into one single-word probe per member
    of list ``keys[k]``.  The work is ``Σ counts[keys]`` word gathers
    instead of a ``W``-word sweep per query — at constant density the
    lists are ~20 entries (or ~7 for the miss lists) against ``W = 157``
    words at n = 10k.  Empty lists are vacuously covered.  Chunked so the
    expansion never materializes more than ``_CHUNK_WORDS`` elements.
    """
    K = len(keys)
    out = np.empty(K, dtype=bool)
    if K == 0:
        return out
    if chunk is None:
        chunk = _CHUNK_WORDS
    counts_all = counts[keys]
    avg = max(1.0, float(counts_all.mean()))
    step = max(1, int(chunk / avg))
    for lo in range(0, K, step):
        hi = min(K, lo + step)
        cnt = counts_all[lo:hi]
        total = int(cnt.sum())
        if total == 0:
            out[lo:hi] = True
            continue
        owner = np.repeat(np.arange(hi - lo, dtype=np.int64), cnt)
        first = np.cumsum(cnt) - cnt
        within = np.arange(total, dtype=np.int64) - first[owner]
        xs = lists[offs[keys[lo:hi]][owner] + within]  # local node ids
        words = table[probe_a[lo:hi][owner], xs >> 6]
        if probe_b is not None:
            words = words | table[probe_b[lo:hi][owner], xs >> 6]
        hit = (words >> (xs.astype(np.uint64) & _U64_63)) & _U64_1
        nmiss = np.bincount(owner[hit == 0], minlength=hi - lo)
        out[lo:hi] = nmiss == 0
    return out


def _scatter_any(hits: np.ndarray, size: int) -> np.ndarray:
    """Boolean "any hit per row" from a flat array of row indices."""
    if len(hits) == 0:
        return np.zeros(size, dtype=bool)
    return np.bincount(hits, minlength=size).astype(bool)


def edge_table(
    rows_flat: np.ndarray, n: int, chunk: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed edge table of a flat ``(R, W)`` packed-row batch.

    Returns ``(eS, eD, eDf)``: flat source row, *local* destination node
    id, flat destination row — grouped by ascending source (and, within a
    source, ascending destination).  Chunked over flat rows so the
    unpacked bit matrix never exceeds ``chunk`` bits (defaults to the
    module budget); the sparse CSR path reuses this builder directly.
    """
    if chunk is None:
        chunk = _CHUNK_BITS
    R, W = rows_flat.shape
    ncols = W * 64
    rows_per = max(1, chunk // ncols)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for lo in range(0, R, rows_per):
        blk = rows_flat[lo : lo + rows_per]
        bits = np.unpackbits(blk.view(np.uint8), axis=1, bitorder="little")
        flat = np.flatnonzero(bits)
        src_parts.append(flat // ncols + lo)
        dst_parts.append((flat % ncols).astype(np.int64))
    if not src_parts:
        e = np.empty(0, dtype=np.int64)
        return e, e, e
    eS = np.concatenate(src_parts)
    eD = np.concatenate(dst_parts)
    eDf = eS - eS % n + eD  # same element: flat row of the neighbor
    return eS, eD, eDf


class BatchCDSEngine:
    """Batched marking + Rule 1/2 engine, bit-identical to ``compute_cds``.

    One instance is bound to a scheme and the fixed-point mode; ``run``
    takes a fresh ``(B, n, W)`` batch each call (the engine is stateless
    across calls — unlike :class:`~repro.core.delta.CachedRuleEngine` it
    wins by width, not by reuse).
    """

    def __init__(
        self,
        scheme: str | PriorityScheme = "id",
        *,
        fixed_point: bool = False,
        max_rounds: int = 1_000,
        memory_budget_mb: float | None = None,
    ):
        self.scheme = (
            scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        )
        self.fixed_point = fixed_point
        self.max_rounds = max_rounds
        self.memory_budget_mb = resolve_memory_budget_mb(memory_budget_mb)
        self._chunk_words = chunk_words(self.memory_budget_mb)
        self._chunk_bits = chunk_bits(self.memory_budget_mb)
        # registry schemes rank via one batched lexsort; a custom key_fn
        # falls back to exact per-element tuple keys
        self._fast_keys = SCHEMES.get(self.scheme.name) is self.scheme

    # -- structure ---------------------------------------------------------

    def _edge_table(self, rows_flat: np.ndarray, n: int):
        """Directed edge table of the whole batch (see :func:`edge_table`)."""
        return edge_table(rows_flat, n, self._chunk_bits)

    def _ranks(
        self,
        deg_flat: np.ndarray,
        energy: np.ndarray | None,
        B: int,
        n: int,
    ) -> np.ndarray:
        """Per-element dense ranks whose order equals the tuple-key order.

        Same construction as ``CachedRuleEngine._refresh_keys``: lexsort
        the exact quantized key components with the element index as the
        most significant key, then invert to local positions — one sort
        for the whole batch.
        """
        ids_flat = np.tile(np.arange(n, dtype=np.int64), B)
        name = self.scheme.name
        if not self._fast_keys:
            # generic scheme: exact tuple keys, one sort per element
            rank = np.empty(B * n, dtype=np.int32)
            for b in range(B):
                degs = [int(d) for d in deg_flat[b * n : (b + 1) * n]]
                lv = energy[b] if energy is not None else None
                keys = self.scheme.keys(degs, lv)
                order = sorted(range(n), key=keys.__getitem__)
                rank[b * n + np.asarray(order, dtype=np.int64)] = np.arange(
                    n, dtype=np.int32
                )
            return rank
        if name in ("nr", "id"):
            return ids_flat.astype(np.int32)
        elem = np.repeat(np.arange(B, dtype=np.int64), n)
        if name == "nd":
            order = np.lexsort((ids_flat, deg_flat, elem))
        else:
            e = np.asarray(energy, dtype=np.float64).reshape(B * n)
            q = self.scheme.quantum
            qe = np.rint(e / q) * q if q is not None else e
            if name == "el1":
                order = np.lexsort((ids_flat, qe, elem))
            else:  # el2
                order = np.lexsort((ids_flat, deg_flat, qe, elem))
        rank = np.empty(B * n, dtype=np.int32)
        rank[order] = ids_flat.astype(np.int32)
        return rank

    # -- kernels -----------------------------------------------------------

    def _edge_miss(self, rows_flat, eD, eoff, deg_flat, eS, eDf):
        """Per-directed-edge miss lists ``miss(v→u) = N(v) \\ N(u)``.

        One expansion pass over the edge table; returns the CSR triple
        ``(misscnt, missoff, misslist)`` indexed by edge id.  ``u`` itself
        is always a member (``u ∈ N(v)``, ``u ∉ N(u)``), so:

        * ``misscnt == 1`` ⟺ ``N[v] ⊆ N[u]`` (Rule-1 closed coverage);
        * ``misscnt >= 2`` ⟺ ``u`` certifies ``v``'s marking (some other
          neighbor of ``v`` is unreachable from ``u`` in one hop).
        """
        E = len(eS)
        if E == 0:
            z = np.empty(0, dtype=np.int64)
            return z, z, z
        counts_all = deg_flat[eS]
        avg = max(1.0, float(counts_all.mean()))
        step = max(1, int(self._chunk_words / avg))
        list_parts: list[np.ndarray] = []
        owner_parts: list[np.ndarray] = []
        for lo in range(0, E, step):
            hi = min(E, lo + step)
            cnt = counts_all[lo:hi]
            total = int(cnt.sum())
            if total == 0:
                continue
            owner = np.repeat(np.arange(hi - lo, dtype=np.int64), cnt)
            first = np.cumsum(cnt) - cnt
            within = np.arange(total, dtype=np.int64) - first[owner]
            xs = eD[eoff[eS[lo:hi]][owner] + within]  # neighbors of v
            words = rows_flat[eDf[lo:hi][owner], xs >> 6]
            hit = (words >> (xs.astype(np.uint64) & _U64_63)) & _U64_1
            miss = hit == 0
            list_parts.append(xs[miss])
            owner_parts.append(owner[miss] + lo)
        misslist = np.concatenate(list_parts)
        misscnt = np.bincount(np.concatenate(owner_parts), minlength=E)
        missoff = np.cumsum(misscnt) - misscnt
        return misscnt, missoff, misslist

    def _rule1(self, eS, eDf, misscnt, marked, rank) -> np.ndarray:
        """Simultaneous Rule-1 pass: pure arithmetic on the miss counts."""
        sel = (
            marked[eS]
            & marked[eDf]
            & (rank[eS] < rank[eDf])
            & (misscnt == 1)
        )
        removed = _scatter_any(eS[sel], len(marked))
        return marked & ~removed

    def _firing_triples(
        self, rows_flat, miss, rev, eS, eD, eDf, marked, rank, n
    ):
        """All firing triples ``(v, u, w)`` of the current marked set.

        Returns flat arrays ``(fV, fUf, fWf)``: a triple fires iff its
        coverage + case analysis + key comparison already favor removing
        ``v`` — whether it is *live* is then only a markedness check, just
        like the scratch engine's precomputed pair masks.
        """
        R = len(marked)
        misscnt, missoff, misslist = miss
        empty = np.empty(0, dtype=np.int64)
        sel = marked[eS] & marked[eDf]
        sel_idx = np.flatnonzero(sel)  # global edge ids, grouped by source
        mdeg = np.bincount(eS[sel_idx], minlength=R)
        i, j = pair_index_arrays(mdeg)
        if len(i) == 0:
            return empty, empty, empty
        offs = np.cumsum(mdeg) - mdeg  # per-row offset into sel_idx
        pcs = mdeg * (mdeg - 1) >> 1
        tV = np.repeat(np.arange(R, dtype=np.int64), pcs)
        base = np.repeat(offs, pcs)
        gU = sel_idx[base + i]  # global edge id of (v, u)
        gW = sel_idx[base + j]  # global edge id of (v, w)
        tW = eD[gW]
        tUf = eDf[gU]
        tWf = eDf[gW]

        # prefilter — u and w must be adjacent: w ∈ N(v) needs covering,
        # and w ∉ N(w), so only N(u) can supply it (symmetrically u ∈ N(w))
        adj_uw = (
            rows_flat[tUf, tW >> 6] >> (tW.astype(np.uint64) & _U64_63)
        ) & _U64_1
        keep = adj_uw.astype(bool)
        tV, tUf, tWf = tV[keep], tUf[keep], tWf[keep]
        gU, gW = gU[keep], gW[keep]
        if len(tV) == 0:
            return empty, empty, empty

        # exact primary coverage: N(v) ⊆ N(u) ∪ N(w) ⟺ miss(v→u) ⊆ N(w)
        # (u ∈ miss(v→u) always hits: the prefilter guarantees u ∈ N(w))
        cov = _covered_expand(
            misslist, missoff, misscnt, gU, rows_flat, tWf,
            chunk=self._chunk_words,
        )
        cV, cUf, cWf = tV[cov], tUf[cov], tWf[cov]
        if len(cV) == 0:
            return empty, empty, empty
        gU, gW = gU[cov], gW[cov]

        rv = rank[cV]
        lu = rv < rank[cUf]
        lw = rv < rank[cWf]
        if self.scheme.uses_coverage_cases:
            # collapse of the paper's case table (cf. delta._eval_fire):
            # the u-side key test is waived exactly when u is not mutually
            # covered (N(u) ⊄ N(v) ∪ N(w)); symmetrically for w.  Through
            # the reverse-edge permutation these reuse the miss lists:
            # N(u) ⊆ N(v) ∪ N(w) ⟺ miss(u→v) ⊆ N(w) (v ∈ N(w) since w, v
            # are adjacent through the triple)
            ccu = _covered_expand(
                misslist, missoff, misscnt, rev[gU], rows_flat, cWf,
                chunk=self._chunk_words,
            )
            ccw = _covered_expand(
                misslist, missoff, misscnt, rev[gW], rows_flat, cUf,
                chunk=self._chunk_words,
            )
            lu |= ~ccu
            lw |= ~ccw
        fire = lu & lw
        return cV[fire], cUf[fire], cWf[fire]

    def _rule2(self, rows_flat, miss, rev, eS, eD, eDf, marked, rank, n):
        """One Rule-2 pass: iterated local-minimum rounds, whole batch."""
        R = len(marked)
        fV, fUf, fWf = self._firing_triples(
            rows_flat, miss, rev, eS, eD, eDf, marked, rank, n
        )
        if len(fV) == 0:
            return marked
        current = marked.copy()
        cand = _scatter_any(fV, R)  # every initial triple is live
        # rival scans run over edges inside the initial candidate set
        ce = cand[eS] & cand[eDf]
        ceS, ceD = eS[ce], eDf[ce]
        while cand.any():
            live = cand[ceS] & cand[ceD]
            minr = np.full(R, _I32MAX, dtype=np.int32)
            ls, ld = ceS[live], ceD[live]
            if len(ls):
                np.minimum.at(minr, ls, rank[ld])
            commit = cand & (rank < minr)
            if not commit.any():  # pragma: no cover - a global min commits
                break
            current &= ~commit
            cand &= ~commit
            alive = current[fUf] & current[fWf]
            cand &= _scatter_any(fV[alive], R)
        return current

    # -- driver ------------------------------------------------------------

    def run(
        self, packed: np.ndarray, energy: np.ndarray | None = None
    ) -> tuple[np.ndarray, list[PruneStats]]:
        """Marking + pruning for every batch element.

        ``packed`` is ``(B, n, W)`` tail-clean uint64; ``energy`` is
        ``(B, n)`` float (required by the EL schemes).  Returns the
        ``(B, n)`` gateway flags and one :class:`PruneStats` per element,
        both bit-identical to running ``compute_cds`` per element.
        """
        if packed.ndim != 3:
            raise ConfigurationError(
                f"packed batch must be (B, n, W), got shape {packed.shape}"
            )
        B, n, W = packed.shape
        if W != words_for(n):
            raise ConfigurationError(
                f"batch has {W} words for n={n}, expected {words_for(n)}"
            )
        uses_rules = self.scheme.uses_rules
        if B == 0 or n == 0:
            rounds = 1 if uses_rules else 0
            return (
                np.zeros((B, n), dtype=bool),
                [PruneStats(0, 0, 0, rounds)] * B,
            )

        with obs.span("cds_batch"):
            rows_flat = packed.reshape(B * n, W)
            eS, eD, eDf = self._edge_table(rows_flat, n)
            deg_flat = np.bincount(eS, minlength=B * n)
            eoff = np.cumsum(deg_flat) - deg_flat  # CSR starts into eD
            miss = self._edge_miss(rows_flat, eD, eoff, deg_flat, eS, eDf)
            misscnt = miss[0]

            # marked iff some neighbor certifies: N(v) ⊄ N[u] ⟺ |miss| ≥ 2
            marked0 = _scatter_any(eS[misscnt >= 2], B * n)
            initial_b = marked0.reshape(B, n).sum(axis=1)

            if obs.enabled():
                obs.count("vcds.batches")
                obs.add("vcds.elements", B)
                obs.add("vcds.nodes", B * n)
                obs.add("vcds.edges", len(eS))
                obs.add("vcds.marked", int(marked0.sum()))

            if not uses_rules:
                stats = [
                    PruneStats(int(initial_b[b]), 0, 0, 0) for b in range(B)
                ]
                return marked0.reshape(B, n), stats

            energy_arr = None
            if energy is not None:
                energy_arr = np.asarray(energy, dtype=np.float64).reshape(B, n)
            rank = self._ranks(deg_flat, energy_arr, B, n)
            # reverse-edge permutation: rev[k] is the edge (u→v) for edge
            # k = (v→u); both edge orderings sort to the same pair sequence
            rev = np.lexsort((eS, eDf))

            current = marked0.copy()
            rounds_b = np.zeros(B, dtype=np.int64)
            removed1_b = np.zeros(B, dtype=np.int64)
            removed2_b = np.zeros(B, dtype=np.int64)
            done_b = np.zeros(B, dtype=bool)
            while True:
                active = ~done_b
                rounds_b += active
                after1 = self._rule1(eS, eDf, misscnt, current, rank)
                after2 = self._rule2(
                    rows_flat, miss, rev, eS, eD, eDf, after1, rank, n
                )
                d1 = (current & ~after1).reshape(B, n).sum(axis=1)
                d2 = (after1 & ~after2).reshape(B, n).sum(axis=1)
                removed1_b += np.where(active, d1, 0)
                removed2_b += np.where(active, d2, 0)
                stable_b = ~(current ^ after2).reshape(B, n).any(axis=1)
                # done elements stay frozen (relevant once max_rounds caps
                # an element that has not stabilized)
                upd = np.repeat(active, n)
                current = np.where(upd, after2, current)
                done_b |= stable_b
                if not self.fixed_point:
                    done_b[:] = True
                done_b |= rounds_b >= self.max_rounds
                if done_b.all():
                    break

            stats = [
                PruneStats(
                    int(initial_b[b]),
                    int(removed1_b[b]),
                    int(removed2_b[b]),
                    int(rounds_b[b]),
                )
                for b in range(B)
            ]
            if obs.enabled():
                obs.add("vcds.final", int(current.sum()))
                obs.add("vcds.rounds", int(rounds_b.sum()))
            return current.reshape(B, n), stats


def _validate_energy(
    sch: PriorityScheme,
    energies,
    B: int,
    n: int,
) -> np.ndarray | None:
    if sch.needs_energy and energies is None:
        raise ConfigurationError(
            f"scheme {sch.name!r} ranks by energy level; pass energies="
        )
    if energies is None:
        return None
    arr = np.asarray(energies, dtype=np.float64)
    if arr.shape != (B, n):
        raise ConfigurationError(
            f"energies has shape {arr.shape} for a ({B}, {n}) batch"
        )
    return arr


def compute_cds_batch(
    adjacencies: Sequence[Sequence[int]],
    scheme: str | PriorityScheme = "id",
    energies=None,
    *,
    fixed_point: bool = False,
    verify: bool = False,
    memory_budget_mb: float | None = None,
) -> list[CDSResult]:
    """Batched :func:`repro.core.cds.compute_cds` over same-size topologies.

    ``adjacencies`` is a sequence of bitmask adjacency lists (all the same
    n); ``energies`` is per-element energy levels, shape ``(B, n)``.  Each
    returned :class:`CDSResult` is bit-identical (mask and stats) to the
    scalar facade on that element.
    """
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    adjs = [
        list(a.adjacency) if hasattr(a, "adjacency") else list(a)
        for a in adjacencies
    ]
    B = len(adjs)
    if B == 0:
        return []
    n = len(adjs[0])
    energy_arr = _validate_energy(sch, energies, B, n)
    packed = pack_batch(adjs)
    engine = BatchCDSEngine(
        sch, fixed_point=fixed_point, memory_budget_mb=memory_budget_mb
    )
    flags, stats = engine.run(packed, energy_arr)
    masks = flags_to_masks(flags)
    results = []
    for b in range(B):
        result = CDSResult(
            scheme=sch.name, gateway_mask=masks[b], n=n, stats=stats[b]
        )
        if verify and (masks[b] or not marking_trivially_empty(adjs[b])):
            verify_cds(adjs[b], masks[b], context=f"vectorized scheme={sch.name}")
        results.append(result)
    return results


def compute_cds_rule_k_batch(
    adjacencies: Sequence[Sequence[int]],
    scheme: str | PriorityScheme = "id",
    energies=None,
) -> list[frozenset[int]]:
    """Batched :func:`repro.core.rule_k.compute_cds_rule_k`.

    The marking pass, the stronger-neighbor edge table, the Rule-1-shape
    singleton test, and the union-coverage prefilter are batched kernels;
    only candidates whose *full* stronger-union covers ``N(v)`` fall back
    to the scalar per-component walk (they are few — almost all of them
    are genuine removals).
    """
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    adjs = [
        list(a.adjacency) if hasattr(a, "adjacency") else list(a)
        for a in adjacencies
    ]
    B = len(adjs)
    if B == 0:
        return []
    n = len(adjs[0])
    energy_arr = _validate_energy(sch, energies, B, n)
    packed = pack_batch(adjs)
    engine = BatchCDSEngine(sch)
    W = packed.shape[2]
    rows_flat = packed.reshape(B * n, W) if n else packed.reshape(0, W)
    if n == 0:
        return [frozenset()] * B
    eS, eD, eDf = engine._edge_table(rows_flat, n)
    deg_flat = np.bincount(eS, minlength=B * n)
    eoff = np.cumsum(deg_flat) - deg_flat
    misscnt = engine._edge_miss(rows_flat, eD, eoff, deg_flat, eS, eDf)[0]
    marked = _scatter_any(eS[misscnt >= 2], B * n)
    if not sch.uses_rules:
        flags = marked.reshape(B, n)
        return [frozenset(np.flatnonzero(flags[b]).tolist()) for b in range(B)]
    rank = engine._ranks(deg_flat, energy_arr, B, n)

    # stronger = marked neighbors with strictly higher key
    sel = marked[eS] & marked[eDf] & (rank[eDf] > rank[eS])
    sS, sDf = eS[sel], eDf[sel]
    removed = np.zeros(B * n, dtype=bool)
    if len(sS):
        # Rule-1 shape: some single stronger neighbor covers N[v], i.e.
        # the directed edge's miss list is exactly {u}
        removed = _scatter_any(sS[misscnt[sel] == 1], B * n)
        # union prefilter: no component can cover N(v) unless the union of
        # *all* stronger neighborhoods does (sS is sorted: one reduceat)
        starts = np.flatnonzero(np.diff(sS, prepend=np.int64(-1)))
        unions = np.bitwise_or.reduceat(rows_flat[sDf], starts, axis=0)
        urows = sS[starts]
        full = ~(rows_flat[urows] & ~unions).any(axis=1)
        todo = urows[full & ~removed[urows]]
        # exact per-component walk only on the survivors (scalar, but the
        # loop is over candidate removals, not over nodes)
        from repro.core.rule_k import _some_component_covers

        for r in todo.tolist():
            b, v = divmod(r, n)
            adj = adjs[b]
            stronger = 0
            for u in sDf[sS == r].tolist():
                stronger |= 1 << (u % n)
            if _some_component_covers(adj, stronger, adj[v]):
                removed[r] = True
    final = (marked & ~removed).reshape(B, n)
    return [frozenset(np.flatnonzero(final[b]).tolist()) for b in range(B)]


class VectorizedCDSPipeline:
    """Per-interval pipeline on the batched kernels (batch width 1).

    Duck-type compatible with :class:`repro.core.delta.DeltaCDSPipeline`
    (``compute(graph, energy=...)`` / ``reset()``), so
    :func:`repro.simulation.interval.run_interval` can swap it in via the
    same ``pipeline=`` socket.  Stateless across intervals: every call
    packs the current adjacency and runs the full batch engine — the win
    is kernel width, not incrementality, which is the right trade at
    n ≳ 1000 where the scalar passes dominate.
    """

    def __init__(
        self,
        scheme: str | PriorityScheme,
        *,
        fixed_point: bool = False,
        verify: bool = False,
        shadow_check: bool = False,
        memory_budget_mb: float | None = None,
    ):
        self.scheme = (
            scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        )
        self.fixed_point = fixed_point
        self.verify = verify
        self.shadow_check = shadow_check
        self.engine = BatchCDSEngine(
            self.scheme,
            fixed_point=fixed_point,
            memory_budget_mb=memory_budget_mb,
        )

    def reset(self) -> None:
        """No cached state to drop; present for pipeline-API parity."""

    def compute(self, graph, energy: Sequence[float] | None = None) -> CDSResult:
        """The vectorized equivalent of :func:`compute_cds` (one element)."""
        adj = graph.adjacency if hasattr(graph, "adjacency") else graph
        adj = list(adj)
        n = len(adj)
        sch = self.scheme
        if sch.needs_energy and energy is None:
            raise ConfigurationError(
                f"scheme {sch.name!r} ranks by energy level; pass energy="
            )
        if energy is not None and len(energy) != n:
            raise ConfigurationError(
                f"energy has {len(energy)} entries for {n} nodes"
            )
        with obs.span("cds"):
            packed = pack_adjacency(adj)[None, :, :]
            energy_arr = None
            if energy is not None:
                energy_arr = np.asarray(energy, dtype=np.float64)[None, :]
            flags, stats = self.engine.run(packed, energy_arr)
            mask = flags_to_masks(flags)[0]
            result = CDSResult(
                scheme=sch.name, gateway_mask=mask, n=n, stats=stats[0]
            )
            if self.verify and (mask or not marking_trivially_empty(adj)):
                with obs.span("verify"):
                    verify_cds(adj, mask, context=f"vectorized scheme={sch.name}")
            if self.shadow_check:
                self._shadow_check(adj, result, energy)
            if obs.enabled():
                obs.count("cds.computed")
                obs.add("cds.size", result.size)
        return result

    def _shadow_check(self, adj, result: CDSResult, energy) -> None:
        from repro.core.cds import compute_cds

        with obs.span("shadow"):
            reference = compute_cds(
                adj, self.scheme, energy=energy, fixed_point=self.fixed_point
            )
        if reference.gateway_mask != result.gateway_mask:
            raise InvariantViolation(
                "vectorized pipeline diverged from scratch pipeline "
                f"(scheme={self.scheme.name}): vectorized mask "
                f"{result.gateway_mask:#x} != scratch mask "
                f"{reference.gateway_mask:#x}"
            )
