"""Pluggable CDS-construction algorithm registry.

The paper's marking + Rule 1/2 scheme is one point in a design space of
CDS constructions.  This module makes the construction a first-class,
swappable choice: every algorithm — the Wu–Li marking path, the
centralized baselines of :mod:`repro.baselines`, and the related-work
constructions (Aneja-style (2,2)-connected greedy, Zhou-style
minimum-weight CDS) — registers a :class:`CDSAlgorithm` here and returns
the same :class:`~repro.core.cds.CDSResult`, so the lifespan, figure,
fault, and service campaigns can be parameterized by backbone
construction the way they already are by priority ``scheme``.

Contract
--------
``CDSAlgorithm.compute(graph, scheme, energy)`` accepts anything exposing
bitmask ``adjacency`` (or a raw mask list) and returns a ``CDSResult``
whose ``gateway_mask`` passes :func:`repro.core.properties.verify_cds` on
every connected graph where a backbone is required at all (the marking
process's documented exceptions — cliques and ``n <= 2`` — may yield an
empty mask for the marking family while greedy constructions return a
single node; both are valid backbones).  Disconnected inputs are handled
per component: components of one or two hosts need no gateway, every
larger component gets its own construction, and the union is returned —
the same semantics as :func:`repro.core.components_cds.
compute_cds_per_component`.

Capability flags tell the campaign layers what an algorithm can do:

* ``supports_delta`` — an incremental pipeline exists
  (:class:`repro.core.delta.DeltaCDSPipeline`); only the marking path has
  one, because the 2-hop locality argument is a marking-process theorem;
* ``supports_vectorized`` — batched numpy kernels exist
  (:mod:`repro.core.vectorized`); again marking-only today.  The
  ``scalar``/``vectorized`` entries of :data:`EXECUTION_BACKENDS` are
  *execution backends of the Wu–Li algorithm*, not algorithms themselves;
* ``connectivity`` — 2 for constructions whose backbone survives the loss
  of any single non-cut-vertex gateway; the service publish gate checks
  exactly that property for them (:class:`repro.service.invariants.
  BackboneChecker`);
* ``uses_scheme`` / ``uses_energy`` — whether the priority scheme /
  energy levels influence the output (campaigns can skip redundant grid
  cells for algorithms that ignore a dimension).

Adding an algorithm is one decorated function::

    @register_algorithm(name="my_cds", description="...")
    def _my_cds(adj, scheme, energy, fixed_point):
        return my_mask_of(adj), None     # stats optional

Registered names are what ``SimulationConfig.algorithm``, the
``--algorithm`` CLI flags, ``repro compare``, and the algorithm-matrix
bench all validate against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.baselines.energy_greedy import energy_aware_greedy_cds
from repro.baselines.greedy_mcds import guha_khuller_cds
from repro.baselines.mis_cds import mis_cds
from repro.baselines.pieces_mcds import pieces_cds
from repro.baselines.pure_dominating import connected_greedy_ds
from repro.baselines.two_connected import aneja_two_connected_cds
from repro.baselines.weighted_mcds import zhou_min_weight_cds
from repro.core.cds import CDSResult, compute_cds
from repro.core.components_cds import compute_cds_per_component
from repro.core.marking import marking_trivially_empty
from repro.core.priority import PriorityScheme, scheme_by_name
from repro.core.properties import verify_cds
from repro.core.reduction import PruneStats
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.neighborhoods import components, is_connected

__all__ = [
    "ALGORITHMS",
    "AlgorithmPipeline",
    "CDSAlgorithm",
    "EXECUTION_BACKENDS",
    "algorithm_by_name",
    "algorithm_names",
    "register_algorithm",
]

#: Execution backends of the Wu–Li marking path (how the same pipeline is
#: evaluated, not which construction runs).  ``SimulationConfig.backend``
#: validates against this so its error message can never drift from the
#: actual choices again.  ``scalar`` auto-selects delta-vs-scratch by
#: host count; ``delta`` forces the incremental pipeline; ``vectorized``
#: is the dense batch engine; ``sparse`` the streaming CSR engine.
EXECUTION_BACKENDS: tuple[str, ...] = (
    "scalar",
    "delta",
    "vectorized",
    "sparse",
)

#: fn(adjacency, scheme, energy, fixed_point) -> (gateway_mask, stats|None)
ConstructFn = Callable[
    [list[int], PriorityScheme, Sequence[float] | None, bool],
    tuple[int, PruneStats | None],
]


@dataclass(frozen=True)
class CDSAlgorithm:
    """One registered CDS construction (see the module docstring)."""

    name: str
    fn: ConstructFn = field(repr=False)
    #: incremental (delta) pipeline available for this construction.
    supports_delta: bool = False
    #: batched numpy kernels available for this construction.
    supports_vectorized: bool = False
    #: streaming CSR / per-component kernels available (``backend="sparse"``).
    supports_sparse: bool = False
    #: persistent-CSR incremental sparse pipeline available
    #: (:mod:`repro.core.sparse_delta`; ``backend="sparse"`` + incremental).
    supports_sparse_delta: bool = False
    #: 2 for constructions that survive any single (non-cut) gateway loss.
    connectivity: int = 1
    #: the priority scheme changes the output (marking family).
    uses_scheme: bool = False
    #: energy levels change the output (energy-weighted constructions).
    uses_energy: bool = False
    description: str = ""

    def compute(
        self,
        graph,
        scheme: str | PriorityScheme = "id",
        energy: Sequence[float] | None = None,
        *,
        fixed_point: bool = False,
        verify: bool = False,
    ) -> CDSResult:
        """Run the construction; always returns a :class:`CDSResult`.

        Mirrors :func:`repro.core.cds.compute_cds`: ``graph`` is anything
        with bitmask ``adjacency`` or a raw mask list; ``energy`` is
        validated against the node count; ``verify=True`` asserts the CDS
        invariants (skipped where the marking process legitimately returns
        the empty set).  Disconnected graphs are decomposed per component.
        """
        adj = graph.adjacency if hasattr(graph, "adjacency") else graph
        adj = list(adj)
        sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        if energy is not None and len(energy) != len(adj):
            raise ConfigurationError(
                f"energy has {len(energy)} entries for {len(adj)} nodes"
            )
        with obs.span("cds_algorithm"):
            if is_connected(adj):
                mask, stats = self.fn(adj, sch, energy, fixed_point)
            else:
                mask, stats = self._per_component(adj, sch, energy, fixed_point)
            if stats is None:
                size = bitset.popcount(mask)
                stats = PruneStats(size, 0, 0, 0)
            result = CDSResult(
                scheme=sch.name, gateway_mask=mask, n=len(adj), stats=stats
            )
            if verify and (mask or not marking_trivially_empty(adj)):
                self._verify(adj, mask)
            if obs.enabled():
                obs.count("cds.computed")
                obs.add("cds.size", result.size)
        return result

    def _per_component(
        self,
        adj: list[int],
        sch: PriorityScheme,
        energy: Sequence[float] | None,
        fixed_point: bool,
    ) -> tuple[int, PruneStats | None]:
        """Union of per-component constructions (≤2-host components skip).

        The marking family runs on the full id space (its rules only look
        at neighborhoods, so foreign components are invisible); the
        centralized constructions require a *connected* input, so each
        component is remapped to dense ids — ascending, preserving the
        relative id order every tiebreak uses — run in isolation, and
        mapped back.
        """
        if self.name == "wu_li":
            mask = compute_cds_per_component(
                adj, sch, energy=energy, fixed_point=fixed_point
            )
            return mask, None
        out = 0
        for comp in components(adj):
            nodes = bitset.ids_from_mask(comp)
            if len(nodes) <= 2:
                continue  # singletons and pairs need no gateway
            back = {i: v for i, v in enumerate(nodes)}
            fwd = {v: i for i, v in enumerate(nodes)}
            sub = [
                bitset.mask_from_ids(
                    fwd[u] for u in bitset.ids_from_mask(adj[v] & comp)
                )
                for v in nodes
            ]
            sub_energy = (
                None if energy is None else [energy[v] for v in nodes]
            )
            sub_mask, _ = self.fn(sub, sch, sub_energy, fixed_point)
            out |= bitset.mask_from_ids(
                back[i] for i in bitset.ids_from_mask(sub_mask)
            )
        return out, None

    def _verify(self, adj: list[int], mask: int) -> None:
        """Per-component invariant check (strongest a fragmented graph has)."""
        with obs.span("verify"):
            if is_connected(adj):
                verify_cds(adj, mask, context=f"algorithm={self.name}")
                return
            for comp in components(adj):
                nodes = bitset.ids_from_mask(comp)
                if len(nodes) <= 2:
                    continue
                fwd = {v: i for i, v in enumerate(nodes)}
                sub = [
                    bitset.mask_from_ids(
                        fwd[u] for u in bitset.ids_from_mask(adj[v] & comp)
                    )
                    for v in nodes
                ]
                members = bitset.mask_from_ids(
                    fwd[v] for v in nodes if mask >> v & 1
                )
                if not members and marking_trivially_empty(sub):
                    continue
                verify_cds(
                    sub,
                    members,
                    context=f"algorithm={self.name} (component)",
                )


ALGORITHMS: dict[str, CDSAlgorithm] = {}


def register_algorithm(
    *,
    name: str,
    supports_delta: bool = False,
    supports_vectorized: bool = False,
    supports_sparse: bool = False,
    supports_sparse_delta: bool = False,
    connectivity: int = 1,
    uses_scheme: bool = False,
    uses_energy: bool = False,
    description: str = "",
) -> Callable[[ConstructFn], CDSAlgorithm]:
    """Decorator: wrap ``fn`` into a :class:`CDSAlgorithm` and catalog it."""

    def deco(fn: ConstructFn) -> CDSAlgorithm:
        if name in ALGORITHMS:
            raise ConfigurationError(
                f"algorithm {name!r} is already registered"
            )
        algo = CDSAlgorithm(
            name=name,
            fn=fn,
            supports_delta=supports_delta,
            supports_vectorized=supports_vectorized,
            supports_sparse=supports_sparse,
            supports_sparse_delta=supports_sparse_delta,
            connectivity=connectivity,
            uses_scheme=uses_scheme,
            uses_energy=uses_energy,
            description=description,
        )
        ALGORITHMS[name] = algo
        return algo

    return deco


def algorithm_names() -> list[str]:
    """Registered algorithm names, sorted (for CLI choices and errors)."""
    return sorted(ALGORITHMS)


def algorithm_by_name(name: str | CDSAlgorithm) -> CDSAlgorithm:
    """Look up an algorithm; raises ConfigurationError with the catalog."""
    if isinstance(name, CDSAlgorithm):
        return name
    try:
        return ALGORITHMS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown CDS algorithm {name!r}; choose from {algorithm_names()}"
        ) from None


class AlgorithmPipeline:
    """Duck-types :class:`repro.core.delta.DeltaCDSPipeline` for any algorithm.

    ``compute(graph, energy=...)`` / ``reset()`` — the socket
    :func:`repro.simulation.interval.run_interval` and the backbone
    service already use.  Stateless: non-marking constructions have no
    incremental theory to cache, so every call recomputes from the live
    adjacency.
    """

    def __init__(
        self,
        algorithm: str | CDSAlgorithm,
        scheme: str | PriorityScheme,
        *,
        verify: bool = False,
    ):
        self.algorithm = algorithm_by_name(algorithm)
        self.scheme = (
            scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        )
        self.verify = verify

    def reset(self) -> None:
        """No cached state to drop; present for pipeline-API parity."""

    def compute(self, graph, energy: Sequence[float] | None = None) -> CDSResult:
        return self.algorithm.compute(
            graph, self.scheme, energy, verify=self.verify
        )


# --------------------------------------------------------------------------
# the catalog
# --------------------------------------------------------------------------


@register_algorithm(
    name="wu_li",
    supports_delta=True,
    supports_vectorized=True,
    supports_sparse=True,
    supports_sparse_delta=True,
    uses_scheme=True,
    uses_energy=True,
    description=(
        "the paper's marking process + Rule 1/2 pruning under the "
        "configured priority scheme (scalar, delta, vectorized, and "
        "sparse execution backends)"
    ),
)
def _wu_li(adj, scheme, energy, fixed_point):
    r = compute_cds(adj, scheme, energy=energy, fixed_point=fixed_point)
    return r.gateway_mask, r.stats


@register_algorithm(
    name="greedy_mcds",
    description="Guha-Khuller Algorithm I: centralized greedy tree growth",
)
def _greedy_mcds(adj, scheme, energy, fixed_point):
    return bitset.mask_from_ids(guha_khuller_cds(adj)), None


@register_algorithm(
    name="pieces_mcds",
    description="Guha-Khuller Algorithm II: piece-merging greedy",
)
def _pieces_mcds(adj, scheme, energy, fixed_point):
    return bitset.mask_from_ids(pieces_cds(adj)), None


@register_algorithm(
    name="mis_cds",
    description="maximal independent set (clusterheads) + connectors",
)
def _mis_cds(adj, scheme, energy, fixed_point):
    return bitset.mask_from_ids(mis_cds(adj)), None


@register_algorithm(
    name="connected_greedy",
    description="greedy dominating set + Steiner-path connection",
)
def _connected_greedy(adj, scheme, energy, fixed_point):
    return bitset.mask_from_ids(connected_greedy_ds(adj)), None


@register_algorithm(
    name="energy_greedy",
    uses_energy=True,
    description=(
        "centralized Guha-Khuller growth breaking ties toward the "
        "highest-energy candidate (the price-of-locality oracle)"
    ),
)
def _energy_greedy(adj, scheme, energy, fixed_point):
    levels = list(energy) if energy is not None else [1.0] * len(adj)
    return energy_aware_greedy_cds(adj, levels), None


@register_algorithm(
    name="aneja_2conn",
    connectivity=2,
    uses_energy=True,
    description=(
        "Aneja-style (2,2)-connected greedy: CDS augmented until it "
        "2-dominates every host that can be and survives any single "
        "non-cut-vertex gateway loss"
    ),
)
def _aneja_2conn(adj, scheme, energy, fixed_point):
    return aneja_two_connected_cds(adj, energy), None


@register_algorithm(
    name="zhou_mwcds",
    uses_scheme=True,
    uses_energy=True,
    description=(
        "Zhou-style minimum-weight CDS with EL1/EL2 energy keys as node "
        "weights (coverage-per-weight greedy + min-weight connectors)"
    ),
)
def _zhou_mwcds(adj, scheme, energy, fixed_point):
    return zhou_min_weight_cds(adj, energy, scheme=scheme), None
