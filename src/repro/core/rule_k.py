"""The Rule-k generalization (Dai & Wu's follow-up to this paper).

Rule 1 covers ``N[v]`` with one neighbor; Rule 2 covers ``N(v)`` with two.
The natural closure — published by Dai and Wu as the *extended localized
algorithm* — covers ``N(v)`` with **any connected set of higher-priority
marked neighbors**:

    unmark ``v`` iff there exists a set ``C ⊆ N(v)`` of marked neighbors,
    each with ``key(u) > key(v)``, such that ``C`` is connected in G and
    ``N(v) ⊆ ∪_{u∈C} N(u)``.

Because every coverer strictly outranks ``v``, *simultaneous* application
is safe (unlike the paper's pair rules — see :mod:`repro.core.rules`):
order nodes by descending key; the top-ranked removed node's coverers are
all unremovable by induction, so coverage never collapses.  This module
implements the rule as a single simultaneous pass and the test suite
verifies the CDS invariants on random graphs.

Implementation note: it suffices to check the single candidate set
``C* = { marked u ∈ N(v) : key(u) > key(v) }`` componentwise — if any
connected component of ``C*`` covers ``N(v)``, a minimal witness exists
inside it, and components of a superset can only cover more.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.marking import marked_mask
from repro.core.priority import PriorityScheme, scheme_by_name
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.neighborhoods import degree_sequence
from repro.types import SupportsNeighborhoods

__all__ = ["rule_k_pass", "compute_cds_rule_k"]


def rule_k_pass(
    adjacency: Sequence[int],
    marked: int,
    scheme: PriorityScheme,
    energy: Sequence[float] | None = None,
) -> int:
    """One simultaneous Rule-k pass; returns the new marked mask."""
    adj = list(adjacency)
    degrees = degree_sequence(adj)
    keys = scheme.keys(degrees, energy)

    removed = 0
    m = marked
    while m:
        low = m & -m
        v = low.bit_length() - 1
        m ^= low
        nv = adj[v]
        # higher-priority marked neighbors
        stronger = 0
        cand = nv & marked
        while cand:
            lu = cand & -cand
            u = lu.bit_length() - 1
            cand ^= lu
            if keys[u] > keys[v]:
                stronger |= lu
        if not stronger:
            continue
        # singleton case = Rule 1 shape (closed coverage; an open-coverage
        # singleton can never fire because u is outside its own N(u))
        closed_v = nv | low
        fired = False
        cand = stronger
        while cand:
            lu = cand & -cand
            u = lu.bit_length() - 1
            cand ^= lu
            if bitset.is_subset(closed_v, adj[u] | lu):
                fired = True
                break
        if fired or _some_component_covers(adj, stronger, nv):
            removed |= low
    return marked & ~removed


def _some_component_covers(adj: Sequence[int], members: int, target: int) -> bool:
    """Does any connected component of ``members`` (within G) cover
    ``target`` with the union of its open neighborhoods?"""
    remaining = members
    while remaining:
        seed = remaining & -remaining
        reached = seed
        frontier = seed
        union = 0
        while frontier:
            nxt = 0
            mm = frontier
            while mm:
                lw = mm & -mm
                w = lw.bit_length() - 1
                mm ^= lw
                union |= adj[w]
                nxt |= adj[w]
            nxt &= members & ~reached
            reached |= nxt
            frontier = nxt
        if bitset.is_subset(target, union):
            return True
        remaining &= ~reached
    return False


def compute_cds_rule_k(
    graph: SupportsNeighborhoods | Sequence[int],
    scheme: str | PriorityScheme = "id",
    energy: Sequence[float] | None = None,
) -> frozenset[int]:
    """Marking process + one Rule-k pass under ``scheme``.

    Returns the gateway set.  Typically smaller than the Rule 1+2 result
    (arbitrary-size coverage sets), but not always: the pair rules' case 1
    removes a covered node even when its coverers have *lower* keys,
    whereas Rule k insists on strictly higher-priority coverers (that
    restriction is what buys simultaneous-pass safety).  The ablation
    bench quantifies the trade-off.
    """
    adj = graph.adjacency if hasattr(graph, "adjacency") else graph
    adj = list(adj)
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    if sch.needs_energy and energy is None:
        raise ConfigurationError(f"scheme {sch.name!r} needs energy levels")
    marked = marked_mask(adj)
    if sch.uses_rules:
        marked = rule_k_pass(adj, marked, sch, energy)
    return frozenset(bitset.ids_from_mask(marked))
