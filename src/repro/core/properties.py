"""Verification of the CDS invariants (Properties 1–3 of Wu–Li).

These checkers are used three ways: as assertions inside the simulator
(optional, for debugging), as oracles in the property-based test suite,
and as a public API for downstream users who want to validate their own
gateway selections.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import InvariantViolation
from repro.graphs import bitset
from repro.graphs.neighborhoods import connected_within, is_connected

__all__ = [
    "is_dominating",
    "induced_connected",
    "is_cds",
    "verify_cds",
    "shortest_paths_use_gateways",
]


def _as_mask(members: int | Iterable[int]) -> int:
    if isinstance(members, int):
        return members
    return bitset.mask_from_ids(members)


def is_dominating(adj: Sequence[int], members: int | Iterable[int]) -> bool:
    """Property 1: every node is in the set or adjacent to a member."""
    mask = _as_mask(members)
    n = len(adj)
    covered = mask
    m = mask
    while m:
        low = m & -m
        covered |= adj[low.bit_length() - 1]
        m ^= low
    return covered == (1 << n) - 1


def induced_connected(adj: Sequence[int], members: int | Iterable[int]) -> bool:
    """Property 2: the subgraph induced by the set is connected."""
    return connected_within(adj, _as_mask(members))


def is_cds(adj: Sequence[int], members: int | Iterable[int]) -> bool:
    """Dominating **and** induced-connected."""
    mask = _as_mask(members)
    return is_dominating(adj, mask) and connected_within(adj, mask)


def verify_cds(
    adj: Sequence[int], members: int | Iterable[int], *, context: str = ""
) -> None:
    """Assert the CDS invariants; raise :class:`InvariantViolation` if broken.

    Complete graphs are the documented exception: the marking process marks
    nobody on a clique (every pair of neighbors is connected), and the empty
    set does not dominate.  Callers handling cliques should special-case
    them (any single node is a valid backbone); ``verify_cds`` reports the
    failure rather than silently excusing it.
    """
    mask = _as_mask(members)
    where = f" ({context})" if context else ""
    if not is_dominating(adj, mask):
        raise InvariantViolation(f"set is not dominating{where}")
    if not connected_within(adj, mask):
        raise InvariantViolation(f"induced subgraph is not connected{where}")


def shortest_paths_use_gateways(
    adj: Sequence[int], members: int | Iterable[int]
) -> bool:
    """Property 3 (for the raw marking process output): between every pair
    of nodes there exists a shortest path whose *intermediate* vertices are
    all gateways.

    Checked by BFS distances: dist(u, v) computed in G must equal the
    distance in the graph where non-members may only appear as endpoints.
    Intended for the marked set before pruning (the pruned set guarantees
    a path, not a shortest one).
    """
    mask = _as_mask(members)
    n = len(adj)
    if n == 0:
        return True
    if not is_connected(adj):
        return False
    full = _bfs_all(adj, n, (1 << n) - 1)
    for src in range(n):
        restricted = _bfs_from(adj, n, src, mask | (1 << src))
        for dst in range(n):
            if dst == src:
                continue
            # allow dst as an endpoint: a path to dst may step off the
            # backbone exactly at the last hop
            best = restricted[dst]
            for mid in bitset.iter_bits(adj[dst]):
                if restricted[mid] + 1 < best:
                    best = restricted[mid] + 1
            if best != full[src][dst]:
                return False
    return True


def _bfs_from(adj: Sequence[int], n: int, src: int, allowed: int) -> list[int]:
    """BFS distances from ``src`` moving only through ``allowed`` nodes."""
    INF = n + 1
    dist = [INF] * n
    dist[src] = 0
    frontier = 1 << src
    reached = frontier
    d = 0
    while frontier:
        d += 1
        nxt = 0
        m = frontier
        while m:
            low = m & -m
            nxt |= adj[low.bit_length() - 1]
            m ^= low
        nxt &= allowed & ~reached
        m = nxt
        while m:
            low = m & -m
            dist[low.bit_length() - 1] = d
            m ^= low
        reached |= nxt
        frontier = nxt
    return dist


def _bfs_all(adj: Sequence[int], n: int, allowed: int) -> list[list[int]]:
    return [_bfs_from(adj, n, src, allowed) for src in range(n)]
