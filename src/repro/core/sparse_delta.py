"""Incremental sparse CDS pipeline: persistent CSR + dirty components.

:class:`repro.core.sparse.SparseCDSPipeline` rebuilds its CSR and
recomputes every component from scratch each interval, so mobility pays
the full N=100k cost even when a handful of hosts moved (ROADMAP item 1).
This module keeps the :class:`~repro.core.sparse.CSRBatch` alive across
intervals and recomputes only what a change can reach:

1. **CSR patching.**  For geometric inputs (anything with ``positions``
   and ``radius``, i.e. :class:`~repro.graphs.adhoc.AdHocNetwork`), the
   pipeline diffs cached positions to find movers and rebuilds *only
   their* rows via the grid spatial hash
   (:func:`repro.core.sparse.unit_disk_edge_lists` — the same
   bit-identical distance math the full builder uses, so the patched CSR
   equals a from-scratch build array for array).  Old edges with neither
   endpoint moved are kept; reverse edges into unmoved neighbors are
   regenerated from the mover rows.  The changed-row set is then *exact*:
   the endpoints of the symmetric difference between the old and new
   mover-incident edge keys — a mover that kept all its neighbors dirties
   nothing, the row-diff contract :meth:`AdHocNetwork.apply_moves`
   established for the packed-word path.  For raw adjacency inputs the
   rows are diffed directly (:func:`repro.core.delta.changed_row_flags`,
   the delta pipeline's primitive) and the CSR is rebuilt, but component
   reuse below still applies.

2. **Dirty components.**  A changed row can only affect its own (old)
   connected component: every added or removed edge has both endpoints in
   the changed set, so the union of touched old components is closed
   under the *new* adjacency too — it is recomputed wholesale as one
   sub-CSR through :meth:`SparseCDSEngine.run_detailed`, which also
   relabels it (splits and merges fall out of the engine's own
   ``connected_labels`` pass).  Untouched components keep their cached
   flags and per-component :class:`PruneStats` verbatim.  This is the
   component-granular analogue of :class:`repro.core.delta.
   DeltaCDSPipeline`'s 2-hop dirty set: on CSR, marking/Rule-1/Rule-2 are
   already evaluated per component, so the component is the natural
   dirty-closure unit.

3. **Key dirtiness.**  Energy drain changes keys without touching
   structure.  Rules compare nodes only *within* a component and every
   scheme's key is a strict total order (id tiebreak), so a clean
   component's result depends only on the relative key order of its
   members: the pipeline lexsorts ``(label, key)`` and re-marks exactly
   the components whose member permutation changed.  This check is taken
   for the registry schemes (``nr``/``id``/``nd`` never re-key clean
   components — degrees only change inside structurally dirty ones;
   ``el1``/``el2`` compare quantized-energy orders); a non-registry
   scheme falls back to "any energy change dirties every clean component"
   which is conservative but exact.

Aggregation replays the engine's own rule: removal counts sum over
components, ``rounds`` is the max, floored at one for rule-running
schemes.  The result — gateway mask *and* ``PruneStats`` — is
bit-identical to the stateless sparse pipeline (and hence to
:func:`repro.core.cds.compute_cds`), pinned by hypothesis properties
over random move/churn sequences in
``tests/property/test_sparse_delta_properties.py``.

A topology whose host count (or radius, or input kind) changes triggers
a cold restart — join/leave churn *within* a fixed id space is the
supported fast path, matching how the simulator models churn (hosts
moving out of range, energy death) and how the service maps tenants to
dense index spaces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.core.cds import CDSResult
from repro.core.delta import changed_row_flags
from repro.core.marking import marking_trivially_empty
from repro.core.priority import SCHEMES, PriorityScheme, scheme_by_name
from repro.core.properties import verify_cds
from repro.core.reduction import PruneStats
from repro.core.sparse import (
    CSRBatch,
    SparseCDSEngine,
    unit_disk_edge_lists,
)
from repro.core.vectorized import chunk_words, flags_to_masks
from repro.errors import ConfigurationError, InvariantViolation

__all__ = ["IncrementalSparseCDSPipeline", "sub_csr"]

_EMPTY = np.empty(0, dtype=np.int64)


def sub_csr(csr: CSRBatch, nodes: np.ndarray) -> CSRBatch:
    """Row/column-restricted CSR over ``nodes`` (ascending flat ids).

    ``nodes`` must be closed under adjacency (a union of connected
    components) so every destination remaps; local ids are the ranks of
    the global ids, an order-preserving remap — the same argument the
    engine's dense tier makes for its id tiebreaks.
    """
    indptr, dst = csr.indptr, csr.dst
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    new_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    if total == 0:
        return CSRBatch(new_indptr, _EMPTY, 1, len(nodes))
    owner = np.repeat(np.arange(len(nodes), dtype=np.int64), counts)
    within = np.arange(total, dtype=np.int64) - new_indptr[:-1][owner]
    gidx = indptr[nodes[owner]] + within
    new_dst = np.searchsorted(nodes, dst[gidx])
    return CSRBatch(new_indptr, new_dst, 1, len(nodes))


class IncrementalSparseCDSPipeline:
    """Persistent-CSR, dirty-component sparse pipeline (batch width 1).

    Duck-type compatible with the delta/vectorized/sparse pipelines
    (``compute(graph, energy=...)`` / ``reset()``) so ``run_interval``
    and the service swap it in through the same socket.  Selected by
    ``SimulationConfig(backend="sparse")`` whenever ``incremental``
    resolves to True (the default).

    Parameters match :class:`~repro.core.sparse.SparseCDSPipeline`;
    ``shadow_check`` cross-checks every interval against the scalar
    oracle (debug/CI mode — it materializes the Python-int adjacency, so
    it defeats the point at 100k but pins equivalence at test scale).
    """

    def __init__(
        self,
        scheme: str | PriorityScheme,
        *,
        fixed_point: bool = False,
        verify: bool = False,
        shadow_check: bool = False,
        memory_budget_mb: float | None = None,
    ):
        self.scheme = (
            scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        )
        self.fixed_point = fixed_point
        self.verify = verify
        self.shadow_check = shadow_check
        self.engine = SparseCDSEngine(
            self.scheme,
            fixed_point=fixed_point,
            memory_budget_mb=memory_budget_mb,
        )
        self._budget_words = chunk_words(self.engine.memory_budget_mb)
        self.reset()

    def reset(self) -> None:
        """Drop all cached state (next compute is a cold start)."""
        self._mode: str | None = None
        self._n = -1
        self._csr: CSRBatch | None = None
        self._pos: np.ndarray | None = None
        self._radius = 0.0
        self._rows: list[int] | None = None
        self._label: np.ndarray | None = None
        self._flags: np.ndarray | None = None
        self._stats: dict[int, tuple[int, int, int, int]] = {}
        self._ekey: bytes | None = None
        self._key_seq: np.ndarray | None = None
        self._key_labs: np.ndarray | None = None
        self._key_starts: np.ndarray | None = None
        self._key_sizes: np.ndarray | None = None
        self._prev_result: CDSResult | None = None

    # -- fingerprints and key order ----------------------------------------

    def _energy_fingerprint(self, energy_arr: np.ndarray | None):
        if energy_arr is None:
            return None
        q = self.scheme.quantum
        qe = np.rint(energy_arr / q) * q if q is not None else energy_arr
        return qe.tobytes()

    def _key_order(self, energy_arr: np.ndarray) -> np.ndarray:
        """Node ids grouped by component label, key-ascending within.

        Valid only for the registry EL schemes (the callers gate on
        that); the column stack mirrors ``CachedRuleEngine._refresh_keys``
        — quantized energy, then degree for el2, then id, with the label
        as the primary (grouping) column.
        """
        q = self.scheme.quantum
        qe = np.rint(energy_arr / q) * q if q is not None else energy_arr
        ids = np.arange(self._n, dtype=np.int64)
        if self.scheme.name == "el2":
            deg = np.diff(self._csr.indptr)
            cols = (ids, deg, qe, self._label)
        else:  # el1
            cols = (ids, qe, self._label)
        return np.lexsort(cols)

    def _refresh_key_cache(self, energy_arr: np.ndarray | None) -> None:
        """Cache the per-component key order for next interval's diff."""
        trusted = SCHEMES.get(self.scheme.name) is self.scheme
        if not (trusted and self.scheme.needs_energy) or energy_arr is None:
            self._key_seq = None
            self._key_labs = None
            self._key_starts = None
            self._key_sizes = None
            return
        order = self._key_order(energy_arr)
        labs, starts = np.unique(self._label[order], return_index=True)
        self._key_seq = order
        self._key_labs = labs
        self._key_starts = starts
        self._key_sizes = np.diff(np.append(starts, self._n))

    def _key_dirty_labels(
        self,
        energy_arr: np.ndarray | None,
        ekey,
        struct_labels: np.ndarray,
    ) -> np.ndarray:
        """Labels of structurally-clean components whose key order moved."""
        sch = self.scheme
        trusted = SCHEMES.get(sch.name) is sch
        if trusted and not sch.needs_energy:
            # nr/id/nd keys consult only ids and degrees; degrees change
            # only inside structurally dirty components
            return _EMPTY
        if ekey == self._ekey:
            return _EMPTY
        all_labs = np.unique(self._label)
        clean = np.setdiff1d(all_labs, struct_labels)
        if not trusted or self._key_seq is None:
            # unknown key function: any energy change may reorder any
            # component — recompute them all (correct, no reuse)
            return clean
        order = self._key_order(energy_arr)
        labs, starts = np.unique(self._label[order], return_index=True)
        sizes = np.diff(np.append(starts, self._n))
        ni = np.searchsorted(labs, clean)
        oi = np.searchsorted(self._key_labs, clean)
        oi_c = np.minimum(oi, len(self._key_labs) - 1)
        known = (self._key_labs[oi_c] == clean) & (
            self._key_sizes[oi_c] == sizes[ni]
        )
        dirty = [clean[~known]]
        check = np.flatnonzero(known)
        if len(check):
            csz = sizes[ni[check]]
            total = int(csz.sum())
            first = np.cumsum(csz) - csz
            owner = np.repeat(np.arange(len(check), dtype=np.int64), csz)
            within = np.arange(total, dtype=np.int64) - first[owner]
            new_members = order[starts[ni[check]][owner] + within]
            old_members = self._key_seq[
                self._key_starts[oi[check]][owner] + within
            ]
            moved = new_members != old_members
            dirty.append(clean[check[np.unique(owner[moved])]])
        return np.concatenate(dirty)

    # -- CSR maintenance ----------------------------------------------------

    def _patch_csr_geo(
        self, pos: np.ndarray, moved: np.ndarray
    ) -> tuple[CSRBatch, np.ndarray]:
        """Patch the cached CSR for moved rows; return it + changed nodes.

        Only mover-incident edges can differ, so the new edge list is
        [old edges with neither endpoint moved] + [fresh mover rows from
        the grid hash] + [their reverses into unmoved nodes].  The
        changed-node set is the endpoints of the old/new mover-incident
        edge-key symmetric difference — exact, not an over-approximation.
        """
        csr = self._csr
        n = csr.n
        indptr, dst = csr.indptr, csr.dst
        oS = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        mflag = np.zeros(n, dtype=bool)
        mflag[moved] = True
        minc = mflag[oS] | mflag[dst]
        keep = ~minc
        mS, mD = unit_disk_edge_lists(
            pos, self._radius, moved, self._budget_words
        )
        revk = ~mflag[mD]
        new_src = np.concatenate([oS[keep], mS, mD[revk]])
        new_dst = np.concatenate([dst[keep], mD, mS[revk]])
        perm = np.lexsort((new_dst, new_src))
        new_src, new_dst = new_src[perm], new_dst[perm]
        ndeg = np.bincount(new_src, minlength=n)
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(ndeg, out=new_indptr[1:])
        old_keys = oS[minc] * n + dst[minc]
        new_keys = np.concatenate(
            [mS * n + mD, mD[revk] * n + mS[revk]]
        )
        delta = np.setxor1d(old_keys, new_keys)
        changed = np.unique(np.concatenate([delta // n, delta % n]))
        return CSRBatch(new_indptr, new_dst, 1, n), changed

    # -- driver --------------------------------------------------------------

    def compute(
        self, graph, energy: Sequence[float] | None = None
    ) -> CDSResult:
        """The incremental equivalent of the stateless sparse compute."""
        geo = hasattr(graph, "positions") and hasattr(graph, "radius")
        if geo:
            pos = np.asarray(graph.positions, dtype=np.float64)
            n = len(pos)
            rows_src = None
        else:
            pos = None
            rows_src = (
                graph.adjacency if hasattr(graph, "adjacency") else graph
            )
            n = len(rows_src)
        sch = self.scheme
        if sch.needs_energy and energy is None:
            raise ConfigurationError(
                f"scheme {sch.name!r} ranks by energy level; pass energy="
            )
        if energy is not None and len(energy) != n:
            raise ConfigurationError(
                f"energy has {len(energy)} entries for {n} nodes"
            )
        energy_arr = (
            np.asarray(energy, dtype=np.float64)
            if energy is not None
            else None
        )
        if n == 0:
            rounds = 1 if sch.uses_rules else 0
            return CDSResult(
                scheme=sch.name,
                gateway_mask=0,
                n=0,
                stats=PruneStats(0, 0, 0, rounds),
            )

        mode = "geo" if geo else "adj"
        with obs.span("cds"):
            cold = (
                self._prev_result is None
                or self._mode != mode
                or self._n != n
                or (geo and self._radius != float(graph.radius))
            )
            if obs.enabled():
                obs.count("sdelta.intervals")
            if cold:
                result = self._cold_start(graph, mode, pos, rows_src,
                                          energy_arr, n)
            else:
                result = self._warm_step(graph, pos, rows_src, energy_arr)
        return result

    def _cold_start(
        self, graph, mode, pos, rows_src, energy_arr, n
    ) -> CDSResult:
        if mode == "geo":
            self._radius = float(graph.radius)
            csr = CSRBatch.from_positions(
                pos,
                self._radius,
                memory_budget_mb=self.engine.memory_budget_mb,
            )
            self._pos = pos.copy()
            self._rows = None
        else:
            rows = list(rows_src)
            csr = CSRBatch.from_adjacency(
                [rows], memory_budget_mb=self.engine.memory_budget_mb
            )
            self._rows = rows
            self._pos = None
        self._mode = mode
        self._n = n
        self._csr = csr
        detail = self.engine.run_detailed(csr, energy_arr)
        self._flags = detail.flags
        self._label = detail.roots[detail.comp_of]
        self._stats = {
            int(detail.roots[c]): (
                int(detail.initial_c[c]),
                int(detail.rem1_c[c]),
                int(detail.rem2_c[c]),
                int(detail.rounds_c[c]),
            )
            for c in range(len(detail.roots))
        }
        if obs.enabled():
            obs.count("sdelta.cold_starts")
        return self._finish(graph, energy_arr)

    def _warm_step(self, graph, pos, rows_src, energy_arr) -> CDSResult:
        n = self._n
        if self._mode == "geo":
            moved = np.flatnonzero(np.any(pos != self._pos, axis=1))
            if moved.size:
                self._csr, changed = self._patch_csr_geo(pos, moved)
                self._pos[moved] = pos[moved]
            else:
                changed = _EMPTY
        else:
            neq = changed_row_flags(rows_src, self._rows)
            changed = np.flatnonzero(neq).astype(np.int64)
            if changed.size:
                rows = list(rows_src)
                self._rows = rows
                self._csr = CSRBatch.from_adjacency(
                    [rows], memory_budget_mb=self.engine.memory_budget_mb
                )

        ekey = self._energy_fingerprint(energy_arr)
        struct_labels = (
            np.unique(self._label[changed]) if changed.size else _EMPTY
        )
        key_dirty = self._key_dirty_labels(energy_arr, ekey, struct_labels)
        if changed.size == 0 and key_dirty.size == 0:
            # both fingerprints clean: the previous result is exact
            if obs.enabled():
                obs.count("sdelta.short_circuit")
                obs.count("cds.computed")
                obs.add("cds.size", self._prev_result.size)
            return self._prev_result

        dirty_labels = np.union1d(struct_labels, key_dirty)
        nodes = np.flatnonzero(np.isin(self._label, dirty_labels))
        sub = sub_csr(self._csr, nodes)
        sub_energy = energy_arr[nodes] if energy_arr is not None else None
        detail = self.engine.run_detailed(sub, sub_energy)
        self._flags[nodes] = detail.flags
        self._label[nodes] = nodes[detail.roots[detail.comp_of]]
        for lab in dirty_labels.tolist():
            self._stats.pop(int(lab), None)
        groots = nodes[detail.roots]
        for c in range(len(groots)):
            self._stats[int(groots[c])] = (
                int(detail.initial_c[c]),
                int(detail.rem1_c[c]),
                int(detail.rem2_c[c]),
                int(detail.rounds_c[c]),
            )
        if obs.enabled():
            obs.add("sdelta.changed_rows", int(changed.size))
            obs.add("sdelta.dirty_nodes", int(len(nodes)))
            obs.add("sdelta.reused_nodes", int(self._n - len(nodes)))
        return self._finish(graph, energy_arr)

    def _finish(self, graph, energy_arr) -> CDSResult:
        sch = self.scheme
        initial = rem1 = rem2 = rounds = 0
        for si, s1, s2, sr in self._stats.values():
            initial += si
            rem1 += s1
            rem2 += s2
            rounds = max(rounds, sr)
        # the reference engine always runs at least one rule round
        rounds = max(rounds, 1) if sch.uses_rules else 0
        mask = flags_to_masks(self._flags[None, :])[0]
        result = CDSResult(
            scheme=sch.name,
            gateway_mask=mask,
            n=self._n,
            stats=PruneStats(initial, rem1, rem2, rounds),
        )
        self._ekey = self._energy_fingerprint(energy_arr)
        self._refresh_key_cache(energy_arr)
        self._prev_result = result
        if self.verify or self.shadow_check:
            adj = self._adjacency_rows(graph)
            if self.verify and (
                mask or not marking_trivially_empty(adj)
            ):
                with obs.span("verify"):
                    verify_cds(
                        adj, mask, context=f"sparse-delta scheme={sch.name}"
                    )
            if self.shadow_check:
                self._shadow_check(adj, result, energy_arr)
        if obs.enabled():
            obs.count("cds.computed")
            obs.add("cds.size", result.size)
        return result

    def _adjacency_rows(self, graph) -> list[int]:
        """Python-int rows for the opt-in verify/shadow paths only."""
        if self._mode == "adj":
            return self._rows
        return list(graph.adjacency)

    def _shadow_check(self, adj, result: CDSResult, energy_arr) -> None:
        from repro.core.cds import compute_cds

        with obs.span("shadow"):
            reference = compute_cds(
                adj,
                self.scheme,
                energy=energy_arr,
                fixed_point=self.fixed_point,
            )
        if (
            reference.gateway_mask != result.gateway_mask
            or reference.stats != result.stats
        ):
            raise InvariantViolation(
                "incremental sparse pipeline diverged from scratch "
                f"(scheme={self.scheme.name}): mask "
                f"{result.gateway_mask:#x} stats {result.stats} != scratch "
                f"mask {reference.gateway_mask:#x} stats {reference.stats}"
            )
