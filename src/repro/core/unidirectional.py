"""Dominating-and-absorbing sets for digraphs with unidirectional links.

The paper's model assumes bidirectional links; its stated future work —
and Wu's own follow-up ("Extended dominating-set-based routing in ad hoc
wireless networks with unidirectional links") — drops that assumption.
This module implements the directed generalization on the
:mod:`repro.graphs.digraph` substrate.

Definitions (for a digraph ``G`` with in-/out-neighborhoods ``I(v)``,
``O(v)``):

* a set ``S`` is **dominating** iff every ``v ∉ S`` has an in-neighbor in
  ``S`` (someone in ``S`` can transmit to ``v``), and **absorbing** iff
  every ``v ∉ S`` has an out-neighbor in ``S`` (``v`` can transmit to
  someone in ``S``).  Routing needs both: a non-gateway host must be able
  to hand packets to the backbone and receive them from it.

**Directed marking process** —

    ``m(v) = T  iff  ∃ u ∈ I(v), w ∈ O(v), u ≠ w, w ∉ O(u)``

i.e. ``v`` is a gateway iff it relays for some pair (an in-neighbor that
cannot reach one of ``v``'s out-neighbors directly).  This is the exact
directed analog of "two unconnected neighbors": on a symmetric digraph it
coincides with the Wu–Li marking (asserted by the tests).  The shortest-
path argument carries over verbatim: any intermediate ``vᵢ`` of a
shortest directed path has ``vᵢ₋₁ ∈ I(vᵢ)``, ``vᵢ₊₁ ∈ O(vᵢ)`` and no arc
``vᵢ₋₁ → vᵢ₊₁`` (else a shortcut), so every shortest path routes through
marked hosts (the directed Property 3); domination and absorption follow
by applying it to paths into and out of each unmarked host, and the
induced subgraph inherits strong connectivity (directed Property 2).
All three are verified by the property suite on random strongly
connected digraphs.

**Directed Rule 1** — unmark marked ``v`` when some marked ``u`` with a
*mutual* arc pair (``u ∈ I(v) ∩ O(v)``) satisfies

    ``I(v) ⊆ I(u) ∪ {u}``   and   ``O(v) ⊆ O(u) ∪ {u}``   and
    ``key(v) < key(u)``

so ``u`` can take over both directions of every path through ``v``.
Applied simultaneously; safety follows from the same ascending-key chain
argument as the undirected Rule 1 (both coverage relations are
transitive along chains).

**Directed Rule k** — unmark marked ``v`` when a set ``C`` of marked
hosts, each with ``key > key(v)`` and each having a mutual arc with
``v``'s neighborhood structure as below, jointly covers it:
``C ⊆ I(v) ∩ O(v)``, ``C`` is strongly connected using only mutual arcs
among its members, ``I(v) ⊆ ∪_{u∈C} I(u) ∪ C`` and
``O(v) ⊆ ∪_{u∈C} O(u) ∪ C``.  Restricting coverers to higher keys makes
the simultaneous pass safe exactly as in :mod:`repro.core.rule_k`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.priority import PriorityScheme, scheme_by_name
from repro.errors import ConfigurationError
from repro.graphs import bitset
from repro.graphs.digraph import DirectedView

__all__ = [
    "directed_marking",
    "directed_rule1_pass",
    "directed_rule_k_pass",
    "compute_directed_cds",
    "is_dominating_and_absorbing",
    "strongly_connected_within",
]


def directed_marking(view: DirectedView) -> int:
    """The directed marking process; returns the marked bitmask."""
    out = view.out_adj
    inn = view.in_adj
    marked = 0
    for v in range(view.n):
        ov = out[v]
        iv = inn[v]
        m = iv
        hit = False
        while m and not hit:
            low = m & -m
            u = low.bit_length() - 1
            m ^= low
            # some out-neighbor of v (other than u) that u cannot reach
            if ov & ~(out[u] | low):
                hit = True
        if hit:
            marked |= 1 << v
    return marked


def _keys(view: DirectedView, scheme: PriorityScheme, energy):
    # degree for the ND component = total distinct neighbors (in or out)
    degrees = [
        bitset.popcount(o | i) for o, i in zip(view.out_adj, view.in_adj)
    ]
    return scheme.keys(degrees, energy)


def directed_rule1_pass(
    view: DirectedView,
    marked: int,
    scheme: PriorityScheme,
    energy: Sequence[float] | None = None,
) -> int:
    """One simultaneous directed Rule-1 pass."""
    out, inn = view.out_adj, view.in_adj
    keys = _keys(view, scheme, energy)
    removed = 0
    m = marked
    while m:
        low = m & -m
        v = low.bit_length() - 1
        m ^= low
        mutual = out[v] & inn[v] & marked  # marked, arcs both ways with v
        cand = mutual
        while cand:
            lu = cand & -cand
            u = lu.bit_length() - 1
            cand ^= lu
            if (
                keys[v] < keys[u]
                and bitset.is_subset(inn[v], inn[u] | lu)
                and bitset.is_subset(out[v], out[u] | lu)
            ):
                removed |= low
                break
    return marked & ~removed


def directed_rule_k_pass(
    view: DirectedView,
    marked: int,
    scheme: PriorityScheme,
    energy: Sequence[float] | None = None,
) -> int:
    """One simultaneous directed Rule-k pass (higher-key coverer sets)."""
    out, inn = view.out_adj, view.in_adj
    keys = _keys(view, scheme, energy)
    mutual_adj = [o & i for o, i in zip(out, inn)]
    removed = 0
    m = marked
    while m:
        low = m & -m
        v = low.bit_length() - 1
        m ^= low
        # candidate coverers: marked, mutual arcs with v, strictly higher key
        stronger = 0
        cand = mutual_adj[v] & marked
        while cand:
            lu = cand & -cand
            u = lu.bit_length() - 1
            cand ^= lu
            if keys[u] > keys[v]:
                stronger |= lu
        if not stronger:
            continue
        if _component_covers(mutual_adj, inn, out, stronger, v):
            removed |= low
    return marked & ~removed


def _component_covers(mutual_adj, inn, out, members: int, v: int) -> bool:
    """Does some mutual-arc-connected component of ``members`` cover both
    I(v) and O(v) (its own members counting as covered)?"""
    iv, ov = inn[v], out[v]
    remaining = members
    while remaining:
        seed = remaining & -remaining
        reached = seed
        frontier = seed
        in_union = out_union = 0
        while frontier:
            nxt = 0
            mm = frontier
            while mm:
                lw = mm & -mm
                w = lw.bit_length() - 1
                mm ^= lw
                in_union |= inn[w]
                out_union |= out[w]
                nxt |= mutual_adj[w]
            nxt &= members & ~reached
            reached |= nxt
            frontier = nxt
        cover_in = in_union | reached
        cover_out = out_union | reached
        if bitset.is_subset(iv, cover_in) and bitset.is_subset(ov, cover_out):
            return True
        remaining &= ~reached
    return False


def compute_directed_cds(
    view: DirectedView,
    scheme: str | PriorityScheme = "id",
    energy: Sequence[float] | None = None,
    *,
    use_rule_k: bool = False,
) -> frozenset[int]:
    """Directed marking + directed Rule 1 (+ optionally Rule k).

    Returns the gateway set — a dominating *and* absorbing set whose
    induced subgraph is strongly connected (for strongly connected,
    non-trivial inputs).
    """
    sch = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
    if sch.needs_energy and energy is None:
        raise ConfigurationError(f"scheme {sch.name!r} needs energy levels")
    marked = directed_marking(view)
    if sch.uses_rules:
        marked = directed_rule1_pass(view, marked, sch, energy)
        if use_rule_k:
            marked = directed_rule_k_pass(view, marked, sch, energy)
    return frozenset(bitset.ids_from_mask(marked))


# -- verification -----------------------------------------------------------


def is_dominating_and_absorbing(view: DirectedView, members) -> bool:
    """Every outsider hears someone in the set and is heard by someone."""
    mask = members if isinstance(members, int) else bitset.mask_from_ids(members)
    n = view.n
    full = (1 << n) - 1
    dominated = mask
    absorbed = mask
    m = mask
    while m:
        low = m & -m
        g = low.bit_length() - 1
        m ^= low
        dominated |= view.out_adj[g]  # g transmits to these
        absorbed |= view.in_adj[g]    # these can transmit to g
    return dominated == full and absorbed == full


def strongly_connected_within(view: DirectedView, members) -> bool:
    """Is the member-induced subgraph strongly connected (≤1 member ok)?"""
    mask = members if isinstance(members, int) else bitset.mask_from_ids(members)
    if bitset.popcount(mask) <= 1:
        return True
    start = (mask & -mask).bit_length() - 1
    for adj in (view.out_adj, view.in_adj):
        reached = 1 << start
        frontier = reached
        while frontier:
            nxt = 0
            m = frontier
            while m:
                low = m & -m
                nxt |= adj[low.bit_length() - 1]
                m ^= low
            nxt &= mask & ~reached
            reached |= nxt
            frontier = nxt
        if reached != mask:
            return False
    return True
