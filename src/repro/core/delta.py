"""Incremental (delta) CDS pipeline: cached rule engines + dirty-set reuse.

The from-scratch pipeline (:func:`repro.core.cds.compute_cds`) rebuilds
everything each update interval: the marking pass visits all ``n`` nodes and
the :class:`~repro.core.rules.RuleEngine` re-derives keys, degrees, and the
O(Σdeg²) Rule-2 firing-pair table — in pure Python, pair by pair.  But the
paper's whole locality argument (Wu–Li §3) says the *dependency footprint*
of a topology change is 2-hop local:

* ``m(v)`` depends only on ``N(v)`` and the edges within it, so a changed
  row set ``C`` can only re-mark ``C ∪ N(C)`` (:func:`marked_mask_delta`);
* whether a Rule-1/Rule-2 coverage relation holds depends only on the rows
  of the 2–3 nodes cited, so coverage tables survive unchanged intervals
  and need a single batched refresh otherwise;
* priority keys enter the rules only through a total order, so every key
  comparison can be made against a dense integer *rank* vector.

:class:`CachedRuleEngine` keeps, across intervals:

* the adjacency in synchronized forms — Python bitmask ints for the pass
  loops plus packed ``uint64`` word matrices (row- and column-major) for
  vectorized coverage evaluation; row patches touch only the changed
  columns, and the edge/pair index tables are re-derived in one batched
  vectorized pass per structure change;
* Rule-2 coverage verdicts (``N(v) ⊆ N(u) ∪ N(w)`` + mutual-coverage case
  class) and Rule-1 closed-coverage verdicts, refreshed only on structure
  change by a word-parallel sweep over the triple table;
* firing tables (coverage ∧ key order) refreshed only when structure or
  the key vector changed — for the built-in schemes key refresh detection
  and rank construction are vectorized (``np.lexsort`` over the exact same
  quantized values the tuple keys contain, so the order is identical).

Unlike the scratch engine, pair tables cover *all* neighbor pairs rather
than currently-marked ones — markedness is checked at pass time (exactly
as the scratch engine's runtime re-check does), which makes the tables a
pure function of topology + keys and therefore cacheable.

:class:`DeltaCDSPipeline` glues the layers together and is what
:func:`repro.simulation.interval.run_interval` uses when
``SimulationConfig.incremental`` is on.  It is correct-by-equivalence: the
gateway mask (and ``PruneStats``) is bit-identical to the scratch path on
every interval — pinned by the hypothesis property in
``tests/property/test_incremental_properties.py``, by ``shadow_check``
mode, and by the CI smoke job.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.core.cds import CDSResult, compute_cds
from repro.core.marking import (
    marked_mask,
    marked_mask_delta,
    marking_trivially_empty,
)
from repro.core.priority import SCHEMES, PriorityScheme, scheme_by_name
from repro.core.properties import verify_cds
from repro.core.reduction import PruneStats
from repro.core.vectorized import pair_index_arrays
from repro.errors import ConfigurationError, InvariantViolation
from repro.graphs import bitset

__all__ = [
    "CachedRuleEngine",
    "DeltaCDSPipeline",
    "INCREMENTAL_MIN_HOSTS",
    "changed_row_flags",
]


def changed_row_flags(rows, prev_rows) -> "np.ndarray":
    """Per-node boolean flags of adjacency rows that differ.

    One vectorized object-dtype compare over arbitrary-width Python-int
    bitmask rows — the row-diff primitive behind
    :class:`DeltaCDSPipeline`'s dirty-set marking, shared with the
    incremental sparse pipeline's adjacency fallback path
    (:mod:`repro.core.sparse_delta`).  Both sequences must have the same
    length; callers handle the size-change (cold start) case first.
    """
    return np.not_equal(
        np.asarray(rows, dtype=object),
        np.asarray(prev_rows, dtype=object),
    ).astype(bool)

#: Below this many hosts the scratch path wins: the engine's vectorized
#: passes carry fixed per-call numpy overheads that only amortize once the
#: pure-python pair loops they replace grow past them (crossover measured
#: at n ≈ 45 on the Figure-11 workload; see bench_incremental.py).
#: Callers that choose between the paths per network size (the lifespan
#: simulator) consult this; the pipeline itself works at any size.
INCREMENTAL_MIN_HOSTS = 48

_EMPTY_I32 = np.empty(0, dtype=np.int32)
_EMPTY_BOOL = np.empty(0, dtype=bool)

def _pack_rows(rows: list[int], W: int) -> np.ndarray:
    """Bitmask ints -> (len(rows), W) little-endian uint64 word matrix."""
    raw = b"".join(m.to_bytes(W * 8, "little") for m in rows)
    return np.frombuffer(raw, dtype=np.uint64).reshape(len(rows), W)


def _bools_from_mask(mask: int, n: int) -> np.ndarray:
    """Bitmask int -> (n,) bool array, little-endian bit order."""
    b = mask.to_bytes((n + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(b, dtype=np.uint8), bitorder="little")
    return bits[:n].astype(bool)


def _mask_from_flags(flags: np.ndarray) -> int:
    """(n,) 0/1 array -> bitmask int."""
    return int.from_bytes(
        np.packbits(flags, bitorder="little").tobytes(), "little"
    )


class CachedRuleEngine:
    """A :class:`~repro.core.rules.RuleEngine` that survives topology deltas.

    Feed it the current adjacency plus the bitmask of rows that changed
    (:meth:`update`), then :meth:`run` the marked mask through the same
    Rule 1 → Rule 2 procedure as :func:`repro.core.reduction.prune`.  The
    output (mask and stats) is bit-identical to the scratch engine for
    every scheme; only the amount and shape of recomputation differs.
    """

    def __init__(self, scheme: PriorityScheme):
        self.scheme = scheme
        # registry schemes get vectorized key handling; a custom scheme
        # (arbitrary key_fn) falls back to exact tuple keys
        self._fast_keys = SCHEMES.get(scheme.name) is scheme
        self.n = -1  # sentinel: differs from any real size, even 0
        self._adj: list[int] = []
        self._W = 1
        self._ids32 = _EMPTY_I32
        self._deg = np.empty(0, dtype=np.int64)
        self._pcs = np.empty(0, dtype=np.int64)  # per-node pair counts
        self._packed = np.zeros((0, 1), dtype=np.uint64)  # open rows, (n, W)
        self._packedT = np.zeros((1, 0), dtype=np.uint64)  # open rows, (W, n)
        self._closedT = np.zeros((1, 0), dtype=np.uint64)  # closed rows
        # concatenated index arrays
        self._tV = self._tU = self._tW = _EMPTY_I32  # all neighbor pairs
        self._eV = self._eU = _EMPTY_I32  # directed edges
        # adjacency-only caches
        self._cV = self._cU = self._cW = _EMPTY_I32  # covered triples
        self._ccu = self._ccw = _EMPTY_BOOL  # mutual-coverage case flags
        self._edge_cov = _EMPTY_BOOL  # N[v] ⊆ N[u] per directed edge
        # key-dependent caches
        self._have_keys = False
        self._qe: np.ndarray | None = None  # quantized energy (fast path)
        self._key_deg = np.empty(0, dtype=np.int64)
        self._keys: list[tuple] | None = None  # generic path only
        self._rank = np.empty(0, dtype=np.int32)
        self._fV = self._fU = self._fW = _EMPTY_I32  # firing triples
        self._f_off: list[int] = [0]  # per-node slices into the triples
        self._fU_list: list[int] = []
        self._fW_list: list[int] = []
        self._f_order: list[int] = []  # firing nodes by ascending rank
        self._dom: list[int] = []  # Rule-1 dominator masks
        self._bufs: dict[str, np.ndarray] = {}

    @property
    def adjacency(self) -> list[int]:
        """The engine's canonical adjacency copy (do not mutate)."""
        return self._adj

    def _buf(self, name: str, shape, dtype=np.uint64) -> np.ndarray:
        """Reusable scratch buffer (the coverage sweep runs every interval
        at low stability; per-call temporaries would dominate it)."""
        if isinstance(shape, int):
            shape = (shape,)
        size = 1
        for s in shape:
            size *= s
        b = self._bufs.get(name)
        if b is None or len(b) < size or b.dtype != dtype:
            b = np.empty(max(size, 16), dtype=dtype)
            self._bufs[name] = b
        return b[:size].reshape(shape)

    # -- state refresh -----------------------------------------------------

    def update(
        self, adj: Sequence[int], changed: int, energy: Sequence[float] | None
    ) -> tuple[bool, bool]:
        """Absorb new adjacency rows and energy levels.

        ``changed`` is the bitmask of indices where ``adj`` differs from the
        engine's copy (ignored on a size change, which resets everything).
        Returns ``(structure_changed, keys_changed)`` — both False means
        every cached table, and hence any downstream result, is still valid.
        """
        n = len(adj)
        if n != self.n:
            self._init_structure(adj)
            structure_changed = True
        elif changed:
            self._patch_rows(adj, changed)
            structure_changed = True
        else:
            structure_changed = False

        uses_rules = self.scheme.uses_rules
        if structure_changed and (uses_rules or not self._fast_keys):
            self._rebuild_index()  # refreshes _deg, which the keys read
        if structure_changed and uses_rules:
            self._eval_coverage()
        keys_changed = self._refresh_keys(energy)
        if uses_rules and (structure_changed or keys_changed) and n:
            self._eval_fire()
            self._eval_dominators()
        if obs.enabled():
            obs.add("delta.rows_patched", bitset.popcount(changed))
            if keys_changed:
                obs.count("delta.key_refreshes")
        return structure_changed, keys_changed

    def _init_structure(self, adj: Sequence[int]) -> None:
        n = len(adj)
        self.n = n
        self._adj = list(adj)
        self._W = max(1, (n + 63) // 64)
        self._ids32 = np.arange(n, dtype=np.int32)
        self._have_keys = False
        self._qe = None
        self._keys = None
        self._bufs.clear()
        if n == 0:
            self._packed = np.zeros((0, self._W), dtype=np.uint64)
            self._packedT = np.zeros((self._W, 0), dtype=np.uint64)
            self._closedT = np.zeros((self._W, 0), dtype=np.uint64)
            self._deg = np.empty(0, dtype=np.int64)
            return
        words = _pack_rows(self._adj, self._W)
        self._packed = words.copy()  # frombuffer output is read-only
        self._packedT = words.T.copy()
        closed = words.copy()
        rows = np.arange(n)
        closed[rows, rows >> 6] |= np.uint64(1) << (
            rows.astype(np.uint64) & np.uint64(63)
        )
        self._closedT = closed.T.copy()

    def _patch_rows(self, adj: Sequence[int], changed: int) -> None:
        ids = bitset.ids_from_mask(changed)
        rows = [adj[v] for v in ids]
        for v, m in zip(ids, rows):
            self._adj[v] = m
        idx = np.asarray(ids, dtype=np.intp)
        words = _pack_rows(rows, self._W)
        self._packed[idx] = words
        self._packedT[:, idx] = words.T
        closed = words.copy()
        k = np.arange(len(ids))
        closed[k, idx >> 6] |= np.uint64(1) << (
            idx.astype(np.uint64) & np.uint64(63)
        )
        self._closedT[:, idx] = closed.T

    def _refresh_keys(self, energy: Sequence[float] | None) -> bool:
        """Detect key-vector changes and rebuild the rank encoding.

        Fast path (registry schemes): the tuple keys are ``(id,)``,
        ``(deg, id)``, ``(qe, id)`` or ``(qe, deg, id)`` with
        ``qe = round(e/quantum)*quantum``.  ``np.rint`` rounds half-to-even
        exactly like Python ``round``, so lexsorting the same component
        arrays yields the identical total order — rank comparisons are
        then exactly the tuple comparisons of the scratch engine.
        """
        n = self.n
        if not self._fast_keys:
            keys = self.scheme.keys([int(d) for d in self._deg], energy)
            if self._have_keys and keys == self._keys:
                return False
            self._keys = keys
            order = sorted(range(n), key=keys.__getitem__)
            rank = np.empty(n, dtype=np.int32)
            rank[np.asarray(order, dtype=np.intp)] = self._ids32
            self._rank = rank
            self._have_keys = True
            return True

        name = self.scheme.name
        uses_deg = name in ("nd", "el2")
        uses_energy = name in ("el1", "el2")
        qe = None
        if uses_energy:
            e = np.asarray(energy, dtype=np.float64)
            q = self.scheme.quantum
            qe = np.rint(e / q) * q if q is not None else e.copy()
        if self._have_keys:
            same = True
            if uses_deg and not np.array_equal(self._deg, self._key_deg):
                same = False
            if same and uses_energy and not np.array_equal(qe, self._qe):
                same = False
            if same:
                return False
        if name in ("nr", "id"):
            rank = self._ids32
        else:
            if name == "nd":
                order = np.lexsort((self._ids32, self._deg))
            elif name == "el1":
                order = np.lexsort((self._ids32, qe))
            else:  # el2
                order = np.lexsort((self._ids32, self._deg, qe))
            rank = np.empty(n, dtype=np.int32)
            rank[order] = self._ids32
        self._rank = rank
        if uses_deg:
            self._key_deg = self._deg.copy()
        self._qe = qe
        self._have_keys = True
        return True

    def _rebuild_index(self) -> None:
        """Derive degrees, the directed-edge table, and the neighbor-pair
        triple table from the packed rows in one vectorized pass.

        The per-node pair lists are never materialized: the neighbors of
        all nodes live concatenated in ``eU`` (grouped by ``v``), so node
        ``v``'s pairs are two gathers through the closed-form pair-ordinal
        decode (:func:`repro.core.vectorized.pair_index_arrays`), shifted
        by ``v``'s offset into ``eU`` — no per-node Python loop.
        """
        n = self.n
        if n == 0:
            self._deg = np.empty(0, dtype=np.int64)
            self._pcs = np.empty(0, dtype=np.int64)
            self._tV = self._tU = self._tW = _EMPTY_I32
            self._eV = self._eU = _EMPTY_I32
            return
        # full-width bit matrix: padding columns are zero, so sums and
        # nonzero positions are unaffected and stay contiguous (a 2-D
        # nonzero on the sliced view costs ~40% more)
        bits = np.unpackbits(
            self._packed.view(np.uint8), axis=1, bitorder="little"
        )
        degs = bits.sum(axis=1, dtype=np.int64)
        self._deg = degs
        flat = np.flatnonzero(bits)
        eU = (flat % bits.shape[1]).astype(np.int32)
        self._eV = np.repeat(self._ids32, degs)
        self._eU = eU
        pcs = degs * (degs - 1) >> 1
        self._pcs = pcs
        self._tV = np.repeat(self._ids32, pcs)
        if len(self._tV):
            iu, iw = pair_index_arrays(degs)
            base = np.repeat(np.cumsum(degs) - degs, pcs)
            self._tU = eU[iu + base]
            self._tW = eU[iw + base]
        else:
            self._tU = self._tW = _EMPTY_I32

    def _eval_coverage(self) -> None:
        """Re-derive every adjacency-only verdict (word-parallel sweep).

        Phase 1 evaluates the Rule-2 primary test ``N(v) ⊆ N(u) ∪ N(w)``
        over all neighbor-pair triples; phase 2 evaluates the mutual
        coverage case flags only on the covered subset (typically a small
        fraction).  Rule 1's ``N[v] ⊆ N[u]`` runs over directed edges.
        All passes reuse engine-owned scratch buffers.
        """
        tV, tU, tW = self._tV, self._tU, self._tW
        T = len(tV)
        W = self._W
        packedT = self._packedT
        if T == 0:
            self._cV = self._cU = self._cW = _EMPTY_I32
            self._ccu = self._ccw = _EMPTY_BOOL
        else:
            au = self._buf("au", (W, T))
            aw = self._buf("aw", (W, T))
            # v-side rows repeat per pair count — np.repeat walks the
            # source once, much cheaper than a gather through tV
            av = np.repeat(packedT, self._pcs, axis=1)
            np.take(packedT, tU, axis=1, out=au)
            np.take(packedT, tW, axis=1, out=aw)
            np.bitwise_or(au, aw, out=au)
            np.bitwise_not(au, out=au)
            np.bitwise_and(av, au, out=au)  # N(v) members u∪w misses
            acc = au[0]
            for j in range(1, W):
                np.bitwise_or(acc, au[j], out=acc)
            cidx = np.flatnonzero(acc == 0)
            cV = tV[cidx]
            cU = tU[cidx]
            cW = tW[cidx]
            self._cV, self._cU, self._cW = cV, cU, cW
            if self.scheme.uses_coverage_cases and len(cidx):
                S = len(cidx)
                sv = self._buf("sv", (W, S))
                su = self._buf("su", (W, S))
                sw = self._buf("sw", (W, S))
                sx = self._buf("sx", (W, S))
                np.take(packedT, cV, axis=1, out=sv)
                np.take(packedT, cU, axis=1, out=su)
                np.take(packedT, cW, axis=1, out=sw)
                np.bitwise_or(sv, sw, out=sx)  # N(v) | N(w)
                np.bitwise_not(sx, out=sx)
                np.bitwise_and(su, sx, out=sx)  # N(u) misses
                acu = sx[0].copy()
                for j in range(1, W):
                    np.bitwise_or(acu, sx[j], out=acu)
                np.bitwise_or(sv, su, out=sx)  # N(v) | N(u)
                np.bitwise_not(sx, out=sx)
                np.bitwise_and(sw, sx, out=sx)  # N(w) misses
                acw = sx[0].copy()
                for j in range(1, W):
                    np.bitwise_or(acw, sx[j], out=acw)
                self._ccu = acu == 0  # N(u) ⊆ N(v) ∪ N(w)
                self._ccw = acw == 0  # N(w) ⊆ N(u) ∪ N(v)
            else:
                self._ccu = self._ccw = _EMPTY_BOOL
        eV, eU = self._eV, self._eU
        E = len(eV)
        if E == 0:
            self._edge_cov = _EMPTY_BOOL
        else:
            closedT = self._closedT
            eu = self._buf("eeu", (W, E))
            ev = np.repeat(closedT, self._deg, axis=1)
            np.take(closedT, eU, axis=1, out=eu)
            np.bitwise_not(eu, out=eu)
            np.bitwise_and(ev, eu, out=eu)  # N[v] members N[u] misses
            acc = eu[0]
            for j in range(1, W):
                np.bitwise_or(acc, eu[j], out=acc)
            self._edge_cov = acc == 0
        if obs.enabled():
            obs.add("delta.coverage_triples", T)
            obs.add("delta.covered_triples", len(self._cV))

    def _eval_fire(self) -> None:
        """Combine cached coverage verdicts with the current key ranks.

        Besides the firing-triple arrays this materializes the structures
        the sequential Rule-2 pass consumes: per-node slice offsets into
        the (v-grouped) triple table, plain-list copies for the Python
        scan, and the firing nodes ordered by ascending rank.
        """
        if len(self._cV) == 0:
            self._fV = self._fU = self._fW = _EMPTY_I32
            self._f_off = [0] * (self.n + 1)
            self._fU_list = []
            self._fW_list = []
            self._f_order = []
            return
        rank = self._rank
        rv, ru, rw = rank[self._cV], rank[self._cU], rank[self._cW]
        lu, lw = rv < ru, rv < rw
        if self.scheme.uses_coverage_cases:
            # case 1: only v covered → fire; case 2: v + one other → key
            # test against that other; case 3: all covered → strict
            # minimum.  Collapsing the case table: the u-side key test is
            # waived exactly when u is not mutually covered, same for w.
            np.bitwise_or(lu, ~self._ccu, out=lu)
            np.bitwise_or(lw, ~self._ccw, out=lw)
        fire = np.bitwise_and(lu, lw, out=lu)
        keep = np.flatnonzero(fire)
        fV = self._cV[keep]
        self._fV = fV
        self._fU = self._cU[keep]
        self._fW = self._cW[keep]
        # _cV is grouped by ascending v (it inherits _tV's repeat order),
        # so fV is too — per-node slices come from one searchsorted
        self._f_off = np.searchsorted(
            fV, np.arange(self.n + 1, dtype=np.int32)
        ).tolist()
        self._fU_list = self._fU.tolist()
        self._fW_list = self._fW.tolist()
        # fV is sorted, so its distinct values are where it steps
        vs = fV[np.flatnonzero(np.diff(fV, prepend=np.int32(-1)))]
        self._f_order = vs[np.argsort(rank[vs])].tolist()

    def _eval_dominators(self) -> None:
        """Rule-1 dominator masks: ``dom[v] ∋ u`` iff ``N[v] ⊆ N[u]`` and
        ``key(v) < key(u)`` — at pass time ``v`` unmarks iff a dominator is
        marked."""
        dom = [0] * self.n
        if len(self._eV):
            rank = self._rank
            sel = self._edge_cov & (rank[self._eV] < rank[self._eU])
            for v, u in zip(self._eV[sel].tolist(), self._eU[sel].tolist()):
                dom[v] |= 1 << u
        self._dom = dom

    # -- rule passes -------------------------------------------------------

    def rule1_pass(self, marked: int) -> int:
        """Simultaneous Rule-1 pass via cached dominator masks."""
        dom = self._dom
        removed = 0
        m = marked
        while m:
            low = m & -m
            m ^= low
            if dom[low.bit_length() - 1] & marked:
                removed |= low
        if obs.enabled():
            obs.add("rule1.nodes_evaluated", bitset.popcount(marked))
            obs.add("rule1.removed", bitset.popcount(removed))
        return marked & ~removed

    def rule2_pass(self, marked: int) -> int:
        """One Rule-2 pass over the cached firing table.

        The scratch engine runs iterated local-minimum rounds (the
        distributed realization).  This pass removes the *same set* by
        processing firing nodes once in ascending rank order, because the
        round semantics is sequentializable:

        * firing is monotone — removals only kill firing pairs (``pm ⊆
          current``), never create them, so a non-candidate never becomes
          one;
        * a node ``w`` cannot commit while a smaller-rank candidate
          neighbor ``v`` exists (``v`` blocks ``w`` by definition of the
          local minimum), so when ``v`` is decided every smaller-rank
          neighbor is final and no larger-rank neighbor has committed;
        * non-neighbor removals cannot affect ``v`` (its firing pairs cite
          members of ``N(v)`` only).

        Hence each node's decision under round semantics equals
        ``fires(v, current)`` evaluated in rank order — which is what this
        loop computes.  Equivalence is pinned by the delta-vs-scratch
        property tests.
        """
        counting = obs.enabled()
        if counting:
            obs.add("rule2.nodes_evaluated", bitset.popcount(marked))
        if len(self._fV) == 0 or marked == 0:
            return marked
        mk = _bools_from_mask(marked, self.n).tolist()
        off = self._f_off
        fU, fW = self._fU_list, self._fW_list
        removed = 0
        for v in self._f_order:
            if not mk[v]:
                continue
            for i in range(off[v], off[v + 1]):
                if mk[fU[i]] and mk[fW[i]]:
                    mk[v] = False
                    removed |= 1 << v
                    break
        if counting:
            obs.add("rule2.removed", bitset.popcount(removed))
        return marked & ~removed

    def run(
        self, marked: int, *, fixed_point: bool = False, max_rounds: int = 1_000
    ) -> tuple[int, PruneStats]:
        """Rule 1 then Rule 2, mirroring :func:`repro.core.reduction.prune`."""
        initial = bitset.popcount(marked)
        if not self.scheme.uses_rules:
            return marked, PruneStats(initial, 0, 0, 0)
        removed1 = removed2 = 0
        rounds = 0
        current = marked
        while True:
            rounds += 1
            with obs.span("rule1"):
                after1 = self.rule1_pass(current)
            removed1 += bitset.popcount(current) - bitset.popcount(after1)
            with obs.span("rule2"):
                after2 = self.rule2_pass(after1)
            removed2 += bitset.popcount(after1) - bitset.popcount(after2)
            stable = after2 == current
            current = after2
            if stable or not fixed_point or rounds >= max_rounds:
                break
        return current, PruneStats(initial, removed1, removed2, rounds)


class DeltaCDSPipeline:
    """End-to-end incremental CDS recomputation across update intervals.

    Call :meth:`compute` once per interval with the current topology and
    energy levels.  The pipeline diffs the adjacency against the previous
    interval, re-marks only the 2-hop dirty footprint, refreshes the cached
    rule engine where adjacency/keys changed, and short-circuits to the
    previous :class:`CDSResult` when both fingerprints are unchanged.

    Parameters
    ----------
    scheme:
        Priority scheme name or instance (as :func:`compute_cds`).
    fixed_point:
        Iterate the rule passes to a fixed point (the ablation mode).
    verify:
        Assert Properties 1–2 on every result.
    shadow_check:
        Also run the from-scratch pipeline each interval and raise
        :class:`InvariantViolation` unless the gateway masks are
        bit-identical (debug / CI equivalence mode; pays for both paths).
    """

    def __init__(
        self,
        scheme: str | PriorityScheme,
        *,
        fixed_point: bool = False,
        verify: bool = False,
        shadow_check: bool = False,
    ):
        self.scheme = scheme_by_name(scheme) if isinstance(scheme, str) else scheme
        self.fixed_point = fixed_point
        self.verify = verify
        self.shadow_check = shadow_check
        self.engine = CachedRuleEngine(self.scheme)
        self._prev_marked = 0
        self._prev_result: CDSResult | None = None

    def reset(self) -> None:
        """Drop all cached state (next compute is a cold start)."""
        self.engine = CachedRuleEngine(self.scheme)
        self._prev_marked = 0
        self._prev_result = None

    def compute(self, graph, energy: Sequence[float] | None = None) -> CDSResult:
        """The incremental equivalent of :func:`compute_cds`.

        ``graph`` is anything exposing bitmask ``adjacency`` (AdHocNetwork,
        NeighborhoodView) or a raw bitmask list.  Unlike the scratch path
        no snapshot/validation pass is taken: rows are trusted as maintained
        by :meth:`AdHocNetwork.apply_moves` (or whatever the caller built).
        """
        adj = graph.adjacency if hasattr(graph, "adjacency") else graph
        n = len(adj)
        sch = self.scheme
        if sch.needs_energy and energy is None:
            raise ConfigurationError(
                f"scheme {sch.name!r} ranks by energy level; pass energy="
            )
        if energy is not None and len(energy) != n:
            raise ConfigurationError(
                f"energy has {len(energy)} entries for {n} nodes"
            )

        with obs.span("cds"):
            engine = self.engine
            cold = engine.n != n or self._prev_result is None
            if cold:
                changed = (1 << n) - 1
                dirty = changed
            else:
                prev_adj = engine.adjacency
                # one vectorized row compare, packed back to a bitmask
                neq = changed_row_flags(adj, prev_adj)
                changed = int.from_bytes(
                    np.packbits(neq, bitorder="little").tobytes(), "little"
                )
                dirty = 0
                if changed:
                    m = changed
                    while m:
                        low = m & -m
                        m ^= low
                        v = low.bit_length() - 1
                        dirty |= low | prev_adj[v] | adj[v]

            structure_changed, keys_changed = engine.update(adj, changed, energy)

            counting = obs.enabled()
            if counting:
                obs.count("delta.intervals")
                obs.add("delta.nodes", n)
                obs.add("delta.changed_rows", bitset.popcount(changed))
                obs.add("delta.dirty_marking", bitset.popcount(dirty))

            if not cold and not structure_changed and not keys_changed:
                # both fingerprints (adjacency rows, key vector) unchanged:
                # every stage would reproduce the previous interval exactly
                if counting:
                    obs.count("delta.short_circuit")
                    obs.count("cds.computed")
                    obs.add("cds.size", self._prev_result.size)
                return self._prev_result

            if cold:
                marked = marked_mask(engine.adjacency)
            elif changed:
                marked = marked_mask_delta(
                    engine.adjacency, self._prev_marked, dirty
                )
            else:
                marked = self._prev_marked

            final, stats = engine.run(marked, fixed_point=self.fixed_point)
            result = CDSResult(
                scheme=sch.name, gateway_mask=final, n=n, stats=stats
            )
            if self.verify and (
                final or not marking_trivially_empty(engine.adjacency)
            ):
                with obs.span("verify"):
                    verify_cds(
                        engine.adjacency,
                        final,
                        context=f"delta scheme={sch.name}",
                    )
            if self.shadow_check:
                self._shadow_check(result, energy)
            if counting:
                obs.count("cds.computed")
                obs.add("cds.size", result.size)

        self._prev_marked = marked
        self._prev_result = result
        return result

    def _shadow_check(self, result: CDSResult, energy) -> None:
        with obs.span("shadow"):
            reference = compute_cds(
                list(self.engine.adjacency),
                self.scheme,
                energy=energy,
                fixed_point=self.fixed_point,
            )
        if obs.enabled():
            obs.count("delta.shadow_checks")
        if reference.gateway_mask != result.gateway_mask:
            raise InvariantViolation(
                "delta pipeline diverged from scratch pipeline "
                f"(scheme={self.scheme.name}): delta mask "
                f"{result.gateway_mask:#x} != scratch mask "
                f"{reference.gateway_mask:#x}"
            )
