"""Pruning pipelines: single-pass (the paper's procedure) and fixed-point.

The paper applies the marking process, then Rule 1, then Rule 2, once each
per update interval.  A natural extension (exercised by the ablation bench)
iterates the two passes until no node changes status — removing a gateway
can create fresh Rule-1/Rule-2 opportunities for its neighbors.  Both modes
preserve the CDS invariants; fixed-point trades extra local rounds for a
smaller set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import obs
from repro.core.priority import PriorityScheme
from repro.core.rules import RuleEngine
from repro.graphs import bitset

__all__ = ["PruneStats", "prune"]


@dataclass(frozen=True)
class PruneStats:
    """What each stage of the pipeline removed."""

    initial_marked: int
    removed_rule1: int
    removed_rule2: int
    rounds: int

    @property
    def final_size(self) -> int:
        return self.initial_marked - self.removed_rule1 - self.removed_rule2


def prune(
    adjacency: Sequence[int],
    marked: int,
    scheme: PriorityScheme,
    energy: Sequence[float] | None = None,
    *,
    fixed_point: bool = False,
    max_rounds: int = 1_000,
) -> tuple[int, PruneStats]:
    """Apply Rule 1 then Rule 2 under ``scheme``; return (mask, stats).

    ``marked`` is the bitmask from the marking process.  With
    ``fixed_point=True`` the Rule1→Rule2 round repeats until stable.
    For the ``nr`` scheme this is the identity.
    """
    initial = bitset.popcount(marked)
    if not scheme.uses_rules:
        return marked, PruneStats(initial, 0, 0, 0)

    engine = RuleEngine(adjacency, scheme, energy)
    removed1 = removed2 = 0
    rounds = 0
    current = marked
    while True:
        rounds += 1
        with obs.span("rule1"):
            after1 = engine.rule1_pass(current)
        removed1 += bitset.popcount(current) - bitset.popcount(after1)
        with obs.span("rule2"):
            after2 = engine.rule2_pass(after1)
        removed2 += bitset.popcount(after1) - bitset.popcount(after2)
        stable = after2 == current
        current = after2
        if stable or not fixed_point or rounds >= max_rounds:
            break
    return current, PruneStats(initial, removed1, removed2, rounds)
