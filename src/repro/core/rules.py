"""Generic Rule 1 / Rule 2 pruning engines.

All eight rules of the paper are two rule *shapes* instantiated with a
priority key (:mod:`repro.core.priority`):

**Rule 1 shape** (Rules 1, 1a, 1b, 1b') — a marked node ``v`` unmarks when
some neighbor ``u`` satisfies ``N[v] ⊆ N[u]`` and ``key(v) < key(u)``.

**Rule 2 shape** (Rules 2, 2a, 2b, 2b') — a marked node ``v`` with two
marked neighbors ``u, w`` such that ``N(v) ⊆ N(u) ∪ N(w)`` unmarks when:

* original ID semantics (``uses_coverage_cases=False``):
  ``key(v)`` is the minimum of the three keys (the paper's
  ``id(v) = min{id(v), id(u), id(w)}``);
* extended semantics (2a/2b/2b', ``uses_coverage_cases=True``) — case
  analysis on which of the triple are *covered* by the union of the other
  two's open neighborhoods:

  1. only ``v`` covered → unmark unconditionally;
  2. ``v`` and exactly one other covered → unmark iff ``v``'s key is
     smaller than that other's;
  3. all three covered → unmark iff ``key(v)`` is the strict minimum.

  The paper enumerates case 3 as sub-cases (a)/(b)/(c); the enumeration is
  literally incomplete (e.g. it omits ``nd(v) = nd(w) < nd(u)``) but every
  listed sub-case is exactly "strict lexicographic minimum", which is what
  we implement.  The paper states case 2 only for "``v`` and ``u``
  covered"; we apply the symmetric test when the covered pair is
  ``(v, w)``.  Both deviations are noted in DESIGN.md.

Application semantics
---------------------
**Rule 1** is applied simultaneously against a snapshot: every node
evaluates against the same marked set, then all removals commit at once.
This is safe for any total-order key because closed-neighborhood coverage
is transitive along ascending keys (if ``v`` defers to ``u`` and ``u`` to
``x``, then ``N[v] ⊆ N[x]`` and ``key(v) < key(x)``), so a maximal-key
coverer always survives.

**Rule 2** is applied as *iterated local-minimum rounds*: in each round
every still-marked node whose rule fires is a *candidate*, and a candidate
commits (unmarks) iff its key is smaller than every candidate among its
marked neighbors; rounds repeat until no candidate commits.  This is the
natural distributed realization (one extra candidacy broadcast per round,
see :mod:`repro.protocol.node_agent`) and it is what the paper's
one-vertex-at-a-time correctness argument actually licenses.  A naive
all-at-once pass is **unsound** for the keyed variants: case 1 removes
``v`` regardless of key, so two nodes can each cite the other's coverer in
the same pass and jointly destroy domination (observed on dense random
graphs).  For the original ID rule the iterated semantics provably removes
exactly the same set as Wu–Li's simultaneous formulation: a candidate's
coverers carry strictly larger ids, hence defer to it and survive until it
commits, and removals never create new candidates.

Rule 2 runs after Rule 1 (the paper's order) and only considers ``u, w``
still marked at that point — the paper's "if one of ``u`` and ``w`` is not
marked, ``v`` cannot be unmarked".

The property-based suite (``tests/property/test_cds_invariants.py``)
checks domination + connectivity of the result on thousands of random
graphs for every scheme.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.core.priority import PriorityScheme
from repro.graphs import bitset
from repro.graphs.neighborhoods import degree_sequence

__all__ = ["RuleEngine", "apply_rule1", "apply_rule2"]


class RuleEngine:
    """Bundles one topology snapshot with one priority scheme.

    Precomputes degrees and keys so repeated passes (fixed-point mode) and
    both rules share the work.
    """

    def __init__(
        self,
        adjacency: Sequence[int],
        scheme: PriorityScheme,
        energy: Sequence[float] | None = None,
    ):
        self.adj = list(adjacency)
        self.n = len(self.adj)
        self.scheme = scheme
        degrees = degree_sequence(self.adj)
        self.keys = scheme.keys(degrees, energy)

    # -- Rule 1 ------------------------------------------------------------

    def rule1_pass(self, marked: int) -> int:
        """One simultaneous Rule-1 pass; returns the new marked mask.

        Observability: counts are aggregated per node outside the inner
        loop so the disabled path never pays per-iteration work.
        ``rule1.candidates`` counts marked-neighbor coverer candidates
        (an upper bound on subset tests — the scan exits on first hit).
        """
        counting = obs.enabled()
        n_candidates = 0
        removed = 0
        adj = self.adj
        keys = self.keys
        m = marked
        while m:
            low = m & -m
            v = low.bit_length() - 1
            m ^= low
            closed_v = adj[v] | low
            # candidate coverers are marked neighbors of v
            cand = adj[v] & marked
            if counting:
                n_candidates += bitset.popcount(cand)
            while cand:
                lu = cand & -cand
                u = lu.bit_length() - 1
                cand ^= lu
                if keys[v] < keys[u] and bitset.is_subset(closed_v, adj[u] | lu):
                    removed |= low
                    break
        if counting:
            obs.add("rule1.nodes_evaluated", bitset.popcount(marked))
            obs.add("rule1.candidates", n_candidates)
            obs.add("rule1.removed", bitset.popcount(removed))
        return marked & ~removed

    # -- Rule 2 ------------------------------------------------------------

    def rule2_pass(self, marked: int) -> int:
        """One Rule-2 pass (iterated local-minimum rounds); returns the new
        marked mask.  See the module docstring for why this is the sound
        batch semantics.

        Performance note (profile-driven): whether a triple ``(v, u, w)``
        *would* fire depends only on the adjacency and the (fixed) keys —
        the marked set decides merely whether ``u`` and ``w`` are still
        eligible.  So the O(deg²) coverage tests run once per node here,
        and every wave's re-check is a scan of precomputed two-bit masks.
        """
        counting = obs.enabled()
        n_cov_tests = 0
        n_firing = 0
        adj = self.adj
        keys = self.keys
        cases = self.scheme.uses_coverage_cases

        # precompute, per marked node, the neighbor pairs whose coverage +
        # case analysis + key comparison already favor removal; at run
        # time the pair fires iff both members are still marked
        firing_pairs: dict[int, list[int]] = {}
        m = marked
        while m:
            low = m & -m
            v = low.bit_length() - 1
            m ^= low
            nv = adj[v]
            nbrs = bitset.ids_from_mask(nv & marked)
            if counting:
                # every unordered neighbor pair gets exactly one primary
                # N(v) ⊆ N(u) ∪ N(w) subset test — the paper's O(deg²) cost
                n_cov_tests += len(nbrs) * (len(nbrs) - 1) // 2
            pairs: list[int] = []
            kv = keys[v]
            for i, u in enumerate(nbrs):
                nu = adj[u]
                ku = keys[u]
                for w in nbrs[i + 1 :]:
                    nw = adj[w]
                    if not bitset.is_subset(nv, nu | nw):
                        continue
                    if not cases:
                        fire = kv < ku and kv < keys[w]
                    else:
                        cov_u = bitset.is_subset(nu, nv | nw)
                        cov_w = bitset.is_subset(nw, nu | nv)
                        if not cov_u and not cov_w:
                            fire = True
                        elif cov_u and not cov_w:
                            fire = kv < ku
                        elif cov_w and not cov_u:
                            fire = kv < keys[w]
                        else:
                            fire = kv < ku and kv < keys[w]
                    if fire:
                        pairs.append((1 << u) | (1 << w))
            if pairs:
                firing_pairs[v] = pairs
                if counting:
                    n_firing += len(pairs)

        def fires(v: int, current: int) -> bool:
            return any(pm & current == pm for pm in firing_pairs.get(v, ()))

        current = marked
        candidates = 0
        for v in firing_pairs:
            if fires(v, current):
                candidates |= 1 << v
        if counting:
            obs.add("rule2.nodes_evaluated", bitset.popcount(marked))
            obs.add("rule2.coverage_tests", n_cov_tests)
            obs.add("rule2.firing_pairs", n_firing)
            obs.add("rule2.candidates_initial", bitset.popcount(candidates))
        rounds = 0
        while candidates:
            rounds += 1
            commits = 0
            m = candidates
            while m:
                low = m & -m
                v = low.bit_length() - 1
                m ^= low
                rival = adj[v] & candidates
                if all(keys[v] < keys[u] for u in bitset.iter_bits(rival)):
                    commits |= low
            if not commits:  # pragma: no cover - global min always commits
                break
            current &= ~commits
            # removals never create new candidates (firing needs a marked
            # coverage pair), so re-check only the surviving ones
            nxt = 0
            m = candidates & ~commits
            while m:
                low = m & -m
                v = low.bit_length() - 1
                m ^= low
                if fires(v, current):
                    nxt |= low
            candidates = nxt
        if counting:
            obs.add("rule2.candidate_rounds", rounds)
            obs.add("rule2.removed", bitset.popcount(marked & ~current))
        return current


def apply_rule1(
    adjacency: Sequence[int],
    marked: set[int],
    scheme: PriorityScheme,
    energy: Sequence[float] | None = None,
) -> set[int]:
    """Convenience wrapper: one Rule-1 pass on a marked *set*."""
    engine = RuleEngine(adjacency, scheme, energy)
    out = engine.rule1_pass(bitset.mask_from_ids(marked))
    return set(bitset.ids_from_mask(out))


def apply_rule2(
    adjacency: Sequence[int],
    marked: set[int],
    scheme: PriorityScheme,
    energy: Sequence[float] | None = None,
) -> set[int]:
    """Convenience wrapper: one Rule-2 pass on a marked *set*."""
    engine = RuleEngine(adjacency, scheme, energy)
    out = engine.rule2_pass(bitset.mask_from_ids(marked))
    return set(bitset.ids_from_mask(out))
