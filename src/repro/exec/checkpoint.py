"""Crash-safe sweep checkpoints: a manifest plus an append-only shard log.

Layout of a checkpoint directory::

    manifest.json   # identity of the sweep this directory belongs to
    shards.jsonl    # one completed shard per line, append-only

``shards.jsonl`` is the source of truth.  Each line is a self-contained
JSON object::

    {"k": "<config fp>:<root seed>:<trial>",   # shard key (identity)
     "cell": "...", "trial": 3,                 # display/grouping info
     "attempts": 1, "dur_s": 0.12,
     "metrics": {...},                          # TrialMetrics.to_dict()
     "obs": {...} | null}                       # Registry.snapshot() or null

Appends are flushed per record, so a ``SIGKILL`` can lose at most the line
being written; :meth:`CheckpointStore.load` tolerates one torn trailing
line (and only a trailing one — a corrupt line *followed by* valid records
means the file was edited, not torn, and raises).  Duplicate keys are
legal — later lines win — which lets a retried/raced shard simply append
again instead of rewriting the log.

The manifest pins the sweep identity: the set of cell config fingerprints
and the root seed.  Resuming against a manifest from a *different* sweep
raises :class:`~repro.errors.CheckpointError` instead of silently mixing
two experiments' shards.  (Trial count is *not* part of the identity:
shards are keyed per trial, so re-running with more trials reuses every
shard the smaller sweep completed.)
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import CheckpointError

__all__ = ["CheckpointStore", "sweep_fingerprint"]

_MANIFEST = "manifest.json"
_SHARDS = "shards.jsonl"
_VERSION = 1


def _fsync_dir(path: Path) -> None:
    """Flush directory metadata so a rename/create survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def sweep_fingerprint(
    cell_fingerprints: Iterable[str], root_seed: int | None
) -> str:
    """Identity of a whole sweep: its cell configs + root seed.

    Cell fingerprints are sorted first — the same set of cells submitted in
    a different order is the same sweep.
    """
    doc = json.dumps(
        {"cells": sorted(cell_fingerprints), "root_seed": root_seed},
        sort_keys=True,
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """One sweep's checkpoint directory (created on first use)."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._shard_path = self.directory / _SHARDS
        self._fh = None  # lazily opened append handle

    # -- manifest ------------------------------------------------------------

    def bind(
        self,
        *,
        sweep_fp: str,
        root_seed: int | None,
        trials: int,
        cells: Mapping[str, str],
    ) -> bool:
        """Attach this directory to a sweep; returns True when resuming.

        First use writes the manifest; later uses verify the directory
        belongs to the same sweep and raise :class:`CheckpointError` when
        it does not.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / _MANIFEST
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {manifest_path}: {exc}"
                ) from exc
            found = manifest.get("sweep_fp")
            if found != sweep_fp:
                raise CheckpointError(
                    f"checkpoint directory {self.directory} belongs to a "
                    f"different sweep (manifest fingerprint {found!r}, this "
                    f"sweep {sweep_fp!r}); use a fresh --resume directory "
                    "per sweep"
                )
            return True
        manifest = {
            "version": _VERSION,
            "sweep_fp": sweep_fp,
            "root_seed": root_seed,
            "trials": trials,
            "cells": dict(cells),
        }
        # temp write + fsync + atomic rename + directory fsync: a crash at
        # any instruction leaves either no manifest or a complete one,
        # never a torn file that would poison every later resume
        tmp = manifest_path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(manifest, indent=1, sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, manifest_path)
        _fsync_dir(self.directory)
        return False

    # -- shard log -----------------------------------------------------------

    def load(self) -> dict[str, dict[str, Any]]:
        """All completed shards, keyed by shard key (later lines win)."""
        records: dict[str, dict[str, Any]] = {}
        if not self._shard_path.exists():
            return records
        torn_at: int | None = None
        with self._shard_path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    torn_at = lineno
                    continue
                if torn_at is not None:
                    raise CheckpointError(
                        f"corrupt shard record at {self._shard_path}:"
                        f"{torn_at} is followed by valid records — the log "
                        "was edited, not torn; refusing to resume from it"
                    )
                key = rec.get("k")
                if isinstance(key, str) and "metrics" in rec:
                    records[key] = rec
        return records

    def append(self, record: dict[str, Any]) -> None:
        """Append one completed-shard record (flushed immediately)."""
        if self._fh is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._fh = self._shard_path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.load())
