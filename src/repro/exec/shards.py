"""Shard identity for the sweep executor.

A *shard* is the executor's unit of work: one (cell, trial) pair, where a
cell is one named :class:`SimulationConfig` of a sweep (e.g. the
``(N, scheme)`` point of a figure).  Because every trial's random stream is
derived in isolation — ``SeedSequence(root, spawn_key=(trial,))``, see
:func:`repro.simulation.rng.generator_for_trial` — a shard's result is a
pure function of ``(config, root_seed, trial)``.  That triple, with the
config collapsed to a fingerprint, is the shard's *key*: the checkpoint
store uses it to recognise already-completed work across process restarts,
and the retry path uses it to re-run a crashed shard on the same seed.

Cell *names* are display/grouping labels only; identity never depends on
them, so renaming a cell (or permuting submission order) cannot invalidate
a checkpoint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.simulation.config import SimulationConfig

__all__ = ["config_fingerprint", "shard_key", "ShardSpec"]


def config_fingerprint(config: SimulationConfig) -> str:
    """Stable short hex digest of every field of ``config``.

    Field order is canonicalised by sorting keys, so the fingerprint is a
    function of the config's *values*, not of dataclass declaration order;
    adding a field to :class:`SimulationConfig` deliberately changes every
    fingerprint (old checkpoints no longer attest to the same simulation).
    """
    doc = json.dumps(asdict(config), sort_keys=True, default=repr)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


def shard_key(fingerprint: str, root_seed: int | None, trial: int) -> str:
    """The checkpoint key of one shard: ``<config fp>:<root seed>:<trial>``."""
    seed = "none" if root_seed is None else str(root_seed)
    return f"{fingerprint}:{seed}:{trial}"


@dataclass(frozen=True)
class ShardSpec:
    """One schedulable unit: trial ``trial`` of cell ``cell``."""

    cell: str
    config: SimulationConfig
    root_seed: int | None
    trial: int
    #: cached config fingerprint (cells share it across their trials).
    fingerprint: str

    @property
    def key(self) -> str:
        return shard_key(self.fingerprint, self.root_seed, self.trial)
