"""The resilient sharded sweep executor.

Replaces the raw ``pool.map`` fan-out that multi-cell experiments used to
run on.  Differences that matter at campaign scale:

**One persistent pool per sweep.**  All (cell × trial) shards of a sweep
stream through a single process pool via ``imap_unordered`` — workers stay
warm across cells instead of a fork/teardown per cell, and results are
consumed (checkpointed, merged, reported) as they land rather than after
the slowest straggler.

**Crash-safe checkpointing.**  With a checkpoint directory configured,
every completed shard is appended to ``shards.jsonl`` the moment it
arrives (see :mod:`repro.exec.checkpoint`).  A killed sweep resumes
exactly where it stopped: shards are keyed by
``(config fingerprint, root_seed, trial)`` and each trial's random stream
is derived in isolation, so restored + freshly-run results are
bit-identical to an uninterrupted run.

**Bounded retries with attribution.**  A shard that raises (or that is
lost to a worker crash/timeout) is retried on the *same* seed up to
``max_retries`` times; past the budget the sweep raises
:class:`~repro.errors.TrialExecutionError` carrying the (cell, trial,
root_seed) needed to reproduce the failure — after draining and
checkpointing every other in-flight shard, so no completed work is lost.

**No silent observability loss.**  When instrumentation is on (or
``capture_obs=True``), every shard — worker-side *or* serial — runs under
:func:`repro.obs.isolated_capture`; its snapshot is merged into the
parent's registry and stored in the checkpoint record, so a parallel
``repro profile`` reports the same counter totals as a serial one, and a
resumed sweep reports the same totals as an uninterrupted one.

Fault injection for tests: set ``REPRO_EXEC_FAULT`` to a comma-separated
list of ``raise:<trial>:<n>`` / ``exit:<trial>:<n>`` entries to make the
first ``n`` attempts of ``trial`` raise (or hard-exit the worker).  The
variable crosses both ``fork`` and ``spawn`` boundaries; it exists so the
retry and crash-recovery paths stay testable without a real crash.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence, TextIO

from repro import obs
from repro.errors import ConfigurationError, TrialExecutionError
from repro.exec.checkpoint import CheckpointStore, sweep_fingerprint
from repro.faults.plan import mix_u01
from repro.exec.shards import ShardSpec, config_fingerprint
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import TrialMetrics

__all__ = [
    "SweepExecutor",
    "SweepOutcome",
    "SweepProgress",
    "progress_printer",
]

_FAULT_ENV = "REPRO_EXEC_FAULT"


def _maybe_inject_fault(trial: int, attempt: int) -> None:
    """Test hook: fail this (trial, attempt) if REPRO_EXEC_FAULT says so."""
    spec = os.environ.get(_FAULT_ENV)
    if not spec:
        return
    for entry in spec.split(","):
        parts = entry.strip().split(":")
        if len(parts) != 3:
            continue
        kind, t, n = parts
        if int(t) == trial and attempt < int(n):
            if kind == "exit":
                os._exit(17)
            raise RuntimeError(
                f"injected fault for trial {trial} attempt {attempt}"
            )


@dataclass(frozen=True)
class _Reply:
    """What a shard execution sends back across the pool boundary."""

    cell: str
    trial: int
    attempt: int
    ok: bool
    metrics: TrialMetrics | None
    obs_snapshot: dict[str, Any] | None
    error: str | None
    dur_s: float


@dataclass(frozen=True)
class _BatchReply:
    """What a batched-cell execution sends back across the pool boundary."""

    cell: str
    trials: tuple[int, ...]
    attempt: int
    ok: bool
    #: index-aligned with ``trials``.
    metrics: list[TrialMetrics] | None
    obs_snapshot: dict[str, Any] | None
    error: str | None
    dur_s: float


def _exec_cell(
    task: tuple[str, SimulationConfig, int | None, tuple[int, ...], int, bool],
) -> _BatchReply:
    """Run one cell's missing trials as a lockstep batch; never raises.

    The batched twin of :func:`_exec_shard`: one task covers a whole
    cell, executed through :func:`repro.simulation.batch_lifespan.
    run_lifespan_batch` on exactly the per-trial rng streams the sharded
    path would use, so the metrics (and checkpoint records) it produces
    are interchangeable with per-trial execution.
    """
    cell, config, root_seed, trial_ids, attempt, capture = task
    from repro.simulation.batch_lifespan import run_lifespan_batch

    t0 = time.perf_counter()
    try:
        _maybe_inject_fault(trial_ids[0], attempt)
        if capture:
            with obs.isolated_capture() as reg:
                results = run_lifespan_batch(
                    config, len(trial_ids),
                    root_seed=root_seed, trial_ids=trial_ids,
                )
            snapshot: dict[str, Any] | None = reg.snapshot()
        else:
            results = run_lifespan_batch(
                config, len(trial_ids),
                root_seed=root_seed, trial_ids=trial_ids,
            )
            snapshot = None
        return _BatchReply(
            cell, trial_ids, attempt, True,
            [r.metrics for r in results], snapshot, None,
            time.perf_counter() - t0,
        )
    except Exception as exc:  # noqa: BLE001 - shipped to the parent verbatim
        return _BatchReply(
            cell, trial_ids, attempt, False, None, None,
            f"{type(exc).__name__}: {exc}", time.perf_counter() - t0,
        )


def _exec_shard(
    task: tuple[str, SimulationConfig, int | None, int, int, bool],
) -> _Reply:
    """Run one trial; never raises (failures travel back as data).

    Top-level so it pickles under every start method.  The import of the
    simulator is deferred: under ``spawn`` the worker pays it once, and the
    module graph stays cycle-free (``repro.simulation`` imports the runner,
    which imports this package).
    """
    cell, config, root_seed, trial, attempt, capture = task
    from repro.simulation.lifespan import LifespanSimulator
    from repro.simulation.rng import generator_for_trial

    t0 = time.perf_counter()
    try:
        _maybe_inject_fault(trial, attempt)
        if capture:
            with obs.isolated_capture() as reg:
                sim = LifespanSimulator(
                    config, rng=generator_for_trial(root_seed, trial)
                )
                metrics = sim.run().metrics
            snapshot: dict[str, Any] | None = reg.snapshot()
        else:
            sim = LifespanSimulator(
                config, rng=generator_for_trial(root_seed, trial)
            )
            metrics = sim.run().metrics
            snapshot = None
        return _Reply(
            cell, trial, attempt, True, metrics, snapshot, None,
            time.perf_counter() - t0,
        )
    except Exception as exc:  # noqa: BLE001 - shipped to the parent verbatim
        return _Reply(
            cell, trial, attempt, False, None, None,
            f"{type(exc).__name__}: {exc}", time.perf_counter() - t0,
        )


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick, emitted after every shard lands."""

    done: int
    total: int
    restored: int
    retried: int
    cell: str
    trial: int
    #: "restored" (from checkpoint), "run", or "retry".
    source: str


def progress_printer(stream: TextIO | None = None) -> Callable[[SweepProgress], None]:
    """A progress callback that prints sensibly both on TTYs and in CI logs.

    On a TTY every tick redraws one status line; otherwise one line is
    printed roughly every 5% (and for every retry, which you want in logs).
    """
    out = stream if stream is not None else sys.stderr
    is_tty = hasattr(out, "isatty") and out.isatty()

    def emit(ev: SweepProgress) -> None:
        step = max(1, ev.total // 20)
        if is_tty:
            end = "\n" if ev.done == ev.total else "\r"
            print(
                f"  sweep: {ev.done}/{ev.total} shards "
                f"({ev.restored} restored, {ev.retried} retried)",
                end=end, file=out, flush=True,
            )
        elif ev.done % step == 0 or ev.done == ev.total or ev.source == "retry":
            print(
                f"  sweep: {ev.done}/{ev.total} shards "
                f"[{ev.source} {ev.cell} trial {ev.trial}] "
                f"({ev.restored} restored, {ev.retried} retried)",
                file=out, flush=True,
            )

    return emit


@dataclass
class SweepOutcome:
    """Everything a sweep produced, plus how it got there."""

    #: cell name -> trial-ordered metrics.
    cells: dict[str, list[TrialMetrics]]
    trials: int
    #: shards actually executed this run.
    executed: int
    #: shards restored from the checkpoint instead of executed.
    restored: int
    #: retry attempts that were performed (0 on a clean run).
    retried: int
    wall_s: float = 0.0

    def cell(self, name: str) -> list[TrialMetrics]:
        return self.cells[name]

    @property
    def total_shards(self) -> int:
        return self.executed + self.restored


@dataclass
class SweepExecutor:
    """Schedules (cell × trial) shards over one persistent process pool.

    Parameters
    ----------
    processes:
        worker count (``None`` = ``os.cpu_count()``); ``1`` runs serially
        in-process through the *same* retry/checkpoint/capture code path.
    start_method:
        multiprocessing start method (``fork``/``spawn``/``forkserver``),
        ``None`` for the platform default.  The old runner hardcoded
        ``fork``; ``spawn`` is now a first-class citizen — workers enable
        their own instrumentation instead of relying on inherited state.
    max_retries:
        re-attempts per shard beyond the first, on the same seed.
    retry_backoff_s:
        base delay before retry ``k`` (1-based):
        ``min(retry_backoff_max_s, retry_backoff_s * 2**(k-1))``, scaled
        by a deterministic jitter factor in ``[0.5, 1.0)`` keyed on the
        shard identity — a transient resource squeeze (OOM killer, disk
        stall) gets breathing room instead of an instant hammer, and
        replays are reproducible.  ``0`` disables the backoff entirely.
    retry_backoff_max_s:
        cap on the exponential growth of the retry delay.
    timeout_s:
        max seconds to wait for the *next* shard result before declaring
        the pool wedged (a hard-crashed worker never returns its task):
        the pool is rebuilt and unreturned shards are retried, each charged
        one attempt.  ``None`` (default) waits forever.
    checkpoint:
        a directory path or :class:`CheckpointStore`; completed shards are
        appended as they land and already-present shards are restored
        instead of re-run.  ``None`` disables checkpointing.
    capture_obs:
        ``None`` (default) captures per-shard observability exactly when
        instrumentation is enabled in the parent at :meth:`run` time;
        ``True``/``False`` force it.
    progress:
        callback receiving a :class:`SweepProgress` after every shard (see
        :func:`progress_printer`).
    """

    processes: int | None = None
    start_method: str | None = None
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    retry_backoff_max_s: float = 2.0
    timeout_s: float | None = None
    checkpoint: CheckpointStore | str | Path | None = None
    capture_obs: bool | None = None
    progress: Callable[[SweepProgress], None] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.start_method is not None:
            valid = mp.get_all_start_methods()
            if self.start_method not in valid:
                raise ConfigurationError(
                    f"unknown start method {self.start_method!r}; "
                    f"this platform supports {valid}"
                )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0 or self.retry_backoff_max_s < 0:
            raise ConfigurationError(
                f"retry backoff must be >= 0, got "
                f"[{self.retry_backoff_s}, {self.retry_backoff_max_s}]"
            )
        if self.processes is not None and self.processes < 1:
            raise ConfigurationError(
                f"processes must be >= 1, got {self.processes}"
            )

    # -- public entry points -------------------------------------------------

    def run(
        self,
        cells: Mapping[str, SimulationConfig]
        | Sequence[tuple[str, SimulationConfig]],
        trials: int,
        *,
        root_seed: int | None = None,
        parallel: bool = True,
        shuffle_seed: int | None = None,
    ) -> SweepOutcome:
        """Execute ``trials`` trials of every cell; returns per-cell metrics.

        ``shuffle_seed`` deterministically permutes shard submission order
        (useful to spread heterogeneous cells across the pool instead of
        finishing one expensive cell at a time); results are keyed by
        (cell, trial), so the permutation never changes what is returned.
        """
        pairs = list(cells.items()) if isinstance(cells, Mapping) else list(cells)
        if len({name for name, _ in pairs}) != len(pairs):
            raise ConfigurationError("duplicate cell names in sweep")
        if trials < 0:
            raise ConfigurationError(f"trials must be >= 0, got {trials}")
        # degenerate sweeps (no cells, or zero trials) are valid and return
        # an empty outcome — callers that generate their grid (figure
        # drivers, ablation scripts) shouldn't have to special-case "this
        # slice happened to be empty"
        if not pairs or trials == 0:
            return SweepOutcome(
                cells={name: [] for name, _ in pairs},
                trials=trials,
                executed=0,
                restored=0,
                retried=0,
                wall_s=0.0,
            )

        t0 = time.perf_counter()
        fps = {name: config_fingerprint(cfg) for name, cfg in pairs}
        shards = [
            ShardSpec(name, cfg, root_seed, t, fps[name])
            for name, cfg in pairs
            for t in range(trials)
        ]
        if shuffle_seed is not None:
            import random

            random.Random(shuffle_seed).shuffle(shards)

        store = self._bind_store(fps, root_seed, trials)
        done_records = store.load() if store is not None else {}
        capture = (
            obs.enabled() if self.capture_obs is None else self.capture_obs
        )

        results: dict[tuple[str, int], TrialMetrics] = {}
        restored = 0
        pending: list[tuple[ShardSpec, int]] = []
        for spec in shards:
            rec = done_records.get(spec.key)
            if rec is not None:
                results[(spec.cell, spec.trial)] = TrialMetrics.from_dict(
                    rec["metrics"]
                )
                if capture and rec.get("obs"):
                    obs.get_registry().merge(rec["obs"])
                restored += 1
            else:
                pending.append((spec, 0))

        total = len(shards)
        retried = 0
        done = restored
        if self.progress is not None:
            for spec in shards:
                if (spec.cell, spec.trial) in results:
                    self.progress(
                        SweepProgress(
                            done=min(done, total), total=total,
                            restored=restored, retried=retried,
                            cell=spec.cell, trial=spec.trial,
                            source="restored",
                        )
                    )
                    break  # one tick is enough to announce the restore count

        procs = self.processes if self.processes is not None else (
            os.cpu_count() or 1
        )
        serial = not parallel or procs <= 1 or len(pending) <= 1
        try:
            if pending:
                runner = self._run_serial if serial else self._run_pooled
                executed_stats = runner(
                    pending, capture, store, results,
                    total=total, restored=restored, done_start=done,
                )
                retried = executed_stats
        finally:
            if store is not None:
                store.close()

        outcome = SweepOutcome(
            cells={
                name: [results[(name, t)] for t in range(trials)]
                for name, _ in pairs
            },
            trials=trials,
            executed=len(pending),
            restored=restored,
            retried=retried,
            wall_s=time.perf_counter() - t0,
        )
        return outcome

    def run_batched(
        self,
        cells: Mapping[str, SimulationConfig]
        | Sequence[tuple[str, SimulationConfig]],
        trials: int,
        *,
        root_seed: int | None = None,
        parallel: bool = True,
    ) -> SweepOutcome:
        """Like :meth:`run`, but each cell's trials run as ONE batched shard.

        Every still-missing trial of a cell is executed in a single
        :func:`repro.simulation.batch_lifespan.run_lifespan_batch` call —
        one stacked engine pass per update interval instead of one
        process-pool task per trial — which is where the vectorized and
        sparse backends earn their keep in figure campaigns.

        Checkpoint interop is total: shards are keyed identically to
        :meth:`run` (one record per trial, same
        ``(fingerprint, root_seed, trial)`` key), so a sweep started
        per-trial can resume batched and vice versa, bit-identically.
        Only the trials a checkpoint is missing enter the batch.  Retries,
        backoff, and timeout pool-rebuild operate at cell granularity; the
        cost attribution (``dur_s``) of a batched cell is split evenly
        over its trials.
        """
        pairs = list(cells.items()) if isinstance(cells, Mapping) else list(cells)
        if len({name for name, _ in pairs}) != len(pairs):
            raise ConfigurationError("duplicate cell names in sweep")
        if trials < 0:
            raise ConfigurationError(f"trials must be >= 0, got {trials}")
        if not pairs or trials == 0:
            return SweepOutcome(
                cells={name: [] for name, _ in pairs},
                trials=trials,
                executed=0,
                restored=0,
                retried=0,
                wall_s=0.0,
            )

        t0 = time.perf_counter()
        fps = {name: config_fingerprint(cfg) for name, cfg in pairs}
        shards = [
            ShardSpec(name, cfg, root_seed, t, fps[name])
            for name, cfg in pairs
            for t in range(trials)
        ]
        store = self._bind_store(fps, root_seed, trials)
        done_records = store.load() if store is not None else {}
        capture = (
            obs.enabled() if self.capture_obs is None else self.capture_obs
        )

        results: dict[tuple[str, int], TrialMetrics] = {}
        restored = 0
        missing: dict[str, list[ShardSpec]] = {}
        first_restored: ShardSpec | None = None
        for spec in shards:
            rec = done_records.get(spec.key)
            if rec is not None:
                results[(spec.cell, spec.trial)] = TrialMetrics.from_dict(
                    rec["metrics"]
                )
                if capture and rec.get("obs"):
                    obs.get_registry().merge(rec["obs"])
                restored += 1
                if first_restored is None:
                    first_restored = spec
            else:
                missing.setdefault(spec.cell, []).append(spec)

        total = len(shards)
        retried = 0
        done = restored
        if first_restored is not None:
            self._tick(
                done=min(done, total), total=total, restored=restored,
                retried=retried, spec=first_restored, source="restored",
            )

        pending: list[tuple[list[ShardSpec], int]] = [
            (specs, 0) for specs in missing.values()
        ]
        executed = sum(len(specs) for specs, _ in pending)
        procs = self.processes if self.processes is not None else (
            os.cpu_count() or 1
        )
        serial = not parallel or procs <= 1 or len(pending) <= 1
        try:
            if pending:
                runner = (
                    self._run_cells_serial if serial else self._run_cells_pooled
                )
                retried = runner(
                    pending, capture, store, results,
                    total=total, restored=restored, done_start=done,
                )
        finally:
            if store is not None:
                store.close()

        return SweepOutcome(
            cells={
                name: [results[(name, t)] for t in range(trials)]
                for name, _ in pairs
            },
            trials=trials,
            executed=executed,
            restored=restored,
            retried=retried,
            wall_s=time.perf_counter() - t0,
        )

    # -- internals -----------------------------------------------------------

    def _bind_store(
        self,
        fps: Mapping[str, str],
        root_seed: int | None,
        trials: int,
    ) -> CheckpointStore | None:
        if self.checkpoint is None:
            return None
        store = (
            self.checkpoint
            if isinstance(self.checkpoint, CheckpointStore)
            else CheckpointStore(self.checkpoint)
        )
        store.bind(
            sweep_fp=sweep_fingerprint(fps.values(), root_seed),
            root_seed=root_seed,
            trials=trials,
            cells=fps,
        )
        return store

    def _absorb(
        self,
        reply: _Reply,
        spec: ShardSpec,
        capture: bool,
        store: CheckpointStore | None,
        results: dict[tuple[str, int], TrialMetrics],
    ) -> None:
        """Fold one successful reply into results/obs/checkpoint."""
        assert reply.metrics is not None
        results[(spec.cell, spec.trial)] = reply.metrics
        if capture and reply.obs_snapshot is not None:
            obs.get_registry().merge(reply.obs_snapshot)
        if store is not None:
            store.append(
                {
                    "k": spec.key,
                    "cell": spec.cell,
                    "trial": spec.trial,
                    "attempts": reply.attempt + 1,
                    "dur_s": reply.dur_s,
                    "metrics": reply.metrics.to_dict(),
                    "obs": reply.obs_snapshot,
                }
            )

    def _absorb_batch(
        self,
        reply: _BatchReply,
        specs: Sequence[ShardSpec],
        capture: bool,
        store: CheckpointStore | None,
        results: dict[tuple[str, int], TrialMetrics],
    ) -> None:
        """Fold one successful batched cell into results/obs/checkpoint.

        One checkpoint record per trial — the exact shape :meth:`run`
        writes — so batched and per-trial sweeps restore each other.  The
        obs snapshot rides on the *first* record only: a restore merges
        every stored snapshot, and the batch produced one snapshot for
        the whole cell, so duplicating it would multiply the counters.
        """
        assert reply.metrics is not None
        if capture and reply.obs_snapshot is not None:
            obs.get_registry().merge(reply.obs_snapshot)
        per_trial_s = reply.dur_s / max(1, len(specs))
        for i, spec in enumerate(specs):
            metrics = reply.metrics[i]
            results[(spec.cell, spec.trial)] = metrics
            if store is not None:
                store.append(
                    {
                        "k": spec.key,
                        "cell": spec.cell,
                        "trial": spec.trial,
                        "attempts": reply.attempt + 1,
                        "dur_s": per_trial_s,
                        "metrics": metrics.to_dict(),
                        "obs": reply.obs_snapshot if i == 0 else None,
                    }
                )

    def _budget_check(self, spec: ShardSpec, attempt: int, cause: str) -> int:
        """Next attempt number, or raise once the budget is exhausted."""
        if attempt + 1 > self.max_retries:
            raise TrialExecutionError(
                "trial failed after exhausting its retry budget",
                cell=spec.cell,
                trial=spec.trial,
                root_seed=spec.root_seed,
                attempts=attempt + 1,
                cause=cause,
            )
        if obs.enabled():
            obs.count("exec.retries")
        return attempt + 1

    def _retry_delay_s(self, spec: ShardSpec, next_attempt: int) -> float:
        """Jittered exponential backoff before retry ``next_attempt``.

        The jitter factor is a pure function of (shard key, attempt), so
        a resumed or replayed sweep waits the same spans — backoff never
        introduces nondeterminism into anything observable.
        """
        if self.retry_backoff_s <= 0.0:
            return 0.0
        raw = min(
            self.retry_backoff_max_s,
            self.retry_backoff_s * 2.0 ** (next_attempt - 1),
        )
        key = int.from_bytes(
            hashlib.sha256(spec.key.encode("utf-8")).digest()[:4], "little"
        )
        return raw * (0.5 + 0.5 * mix_u01(key, next_attempt))

    def _tick(
        self,
        *,
        done: int,
        total: int,
        restored: int,
        retried: int,
        spec: ShardSpec,
        source: str,
    ) -> None:
        if self.progress is not None:
            self.progress(
                SweepProgress(
                    done=done, total=total, restored=restored,
                    retried=retried, cell=spec.cell, trial=spec.trial,
                    source=source,
                )
            )

    def _run_serial(
        self,
        pending: list[tuple[ShardSpec, int]],
        capture: bool,
        store: CheckpointStore | None,
        results: dict[tuple[str, int], TrialMetrics],
        *,
        total: int,
        restored: int,
        done_start: int,
    ) -> int:
        retried = 0
        done = done_start
        queue = list(pending)
        while queue:
            spec, attempt = queue.pop(0)
            reply = _exec_shard(
                (spec.cell, spec.config, spec.root_seed, spec.trial,
                 attempt, capture)
            )
            if reply.ok:
                self._absorb(reply, spec, capture, store, results)
                done += 1
                self._tick(
                    done=done, total=total, restored=restored,
                    retried=retried, spec=spec,
                    source="retry" if attempt else "run",
                )
            else:
                next_attempt = self._budget_check(
                    spec, attempt, reply.error or "unknown error"
                )
                retried += 1
                delay = self._retry_delay_s(spec, next_attempt)
                if delay > 0.0 and len(queue) == 0:
                    # nothing else to interleave: wait out the backoff now.
                    # With other shards queued, running them first IS the
                    # backoff (the retry sits at the back of the queue).
                    time.sleep(delay)
                queue.append((spec, next_attempt))
        return retried

    def _run_pooled(
        self,
        pending: list[tuple[ShardSpec, int]],
        capture: bool,
        store: CheckpointStore | None,
        results: dict[tuple[str, int], TrialMetrics],
        *,
        total: int,
        restored: int,
        done_start: int,
    ) -> int:
        ctx = (
            mp.get_context(self.start_method)
            if self.start_method is not None
            else mp.get_context()
        )
        procs = self.processes if self.processes is not None else (
            os.cpu_count() or 1
        )
        retried = 0
        done = done_start
        wave = list(pending)
        pool = ctx.Pool(min(procs, max(1, len(wave))))
        try:
            while wave:
                by_id = {
                    (spec.cell, spec.trial): (spec, attempt)
                    for spec, attempt in wave
                }
                tasks = [
                    (spec.cell, spec.config, spec.root_seed, spec.trial,
                     attempt, capture)
                    for spec, attempt in wave
                ]
                next_wave: list[tuple[ShardSpec, int]] = []
                deferred: TrialExecutionError | None = None
                it = pool.imap_unordered(_exec_shard, tasks)
                while by_id:
                    try:
                        reply = self._next_reply(it)
                    except mp.TimeoutError:
                        # a worker died without returning its task: rebuild
                        # the pool and charge every unreturned shard one
                        # attempt.
                        pool.terminate()
                        pool.join()
                        for spec, attempt in by_id.values():
                            try:
                                next_attempt = self._budget_check(
                                    spec, attempt,
                                    "worker crashed or timed out",
                                )
                            except TrialExecutionError as exc:
                                if deferred is None:
                                    deferred = exc
                                continue
                            retried += 1
                            next_wave.append((spec, next_attempt))
                        by_id.clear()
                        if next_wave and deferred is None:
                            pool = ctx.Pool(min(procs, len(next_wave)))
                        break
                    spec, attempt = by_id.pop((reply.cell, reply.trial))
                    if reply.ok:
                        self._absorb(reply, spec, capture, store, results)
                        done += 1
                        self._tick(
                            done=done, total=total, restored=restored,
                            retried=retried, spec=spec,
                            source="retry" if attempt else "run",
                        )
                    else:
                        # keep draining the wave before raising so every
                        # completed shard is merged + checkpointed first
                        try:
                            next_attempt = self._budget_check(
                                spec, attempt, reply.error or "unknown error"
                            )
                        except TrialExecutionError as exc:
                            if deferred is None:
                                deferred = exc
                            continue
                        retried += 1
                        next_wave.append((spec, next_attempt))
                if deferred is not None:
                    raise deferred
                if next_wave:
                    # one wave-level pause: retries run concurrently, so
                    # the longest member delay is the wave's backoff
                    delay = max(
                        self._retry_delay_s(spec, attempt)
                        for spec, attempt in next_wave
                    )
                    if delay > 0.0:
                        time.sleep(delay)
                wave = next_wave
        finally:
            pool.terminate()
            pool.join()
        return retried

    def _run_cells_serial(
        self,
        pending: list[tuple[list[ShardSpec], int]],
        capture: bool,
        store: CheckpointStore | None,
        results: dict[tuple[str, int], TrialMetrics],
        *,
        total: int,
        restored: int,
        done_start: int,
    ) -> int:
        retried = 0
        done = done_start
        queue = list(pending)
        while queue:
            specs, attempt = queue.pop(0)
            reply = _exec_cell(
                (specs[0].cell, specs[0].config, specs[0].root_seed,
                 tuple(s.trial for s in specs), attempt, capture)
            )
            if reply.ok:
                self._absorb_batch(reply, specs, capture, store, results)
                done += len(specs)
                self._tick(
                    done=done, total=total, restored=restored,
                    retried=retried, spec=specs[0],
                    source="retry" if attempt else "run",
                )
            else:
                next_attempt = self._budget_check(
                    specs[0], attempt, reply.error or "unknown error"
                )
                retried += 1
                delay = self._retry_delay_s(specs[0], next_attempt)
                if delay > 0.0 and len(queue) == 0:
                    time.sleep(delay)
                queue.append((specs, next_attempt))
        return retried

    def _run_cells_pooled(
        self,
        pending: list[tuple[list[ShardSpec], int]],
        capture: bool,
        store: CheckpointStore | None,
        results: dict[tuple[str, int], TrialMetrics],
        *,
        total: int,
        restored: int,
        done_start: int,
    ) -> int:
        ctx = (
            mp.get_context(self.start_method)
            if self.start_method is not None
            else mp.get_context()
        )
        procs = self.processes if self.processes is not None else (
            os.cpu_count() or 1
        )
        retried = 0
        done = done_start
        wave = list(pending)
        pool = ctx.Pool(min(procs, max(1, len(wave))))
        try:
            while wave:
                by_cell = {
                    specs[0].cell: (specs, attempt) for specs, attempt in wave
                }
                tasks = [
                    (specs[0].cell, specs[0].config, specs[0].root_seed,
                     tuple(s.trial for s in specs), attempt, capture)
                    for specs, attempt in wave
                ]
                next_wave: list[tuple[list[ShardSpec], int]] = []
                deferred: TrialExecutionError | None = None
                it = pool.imap_unordered(_exec_cell, tasks)
                while by_cell:
                    try:
                        reply = self._next_reply(it)
                    except mp.TimeoutError:
                        pool.terminate()
                        pool.join()
                        for specs, attempt in by_cell.values():
                            try:
                                next_attempt = self._budget_check(
                                    specs[0], attempt,
                                    "worker crashed or timed out",
                                )
                            except TrialExecutionError as exc:
                                if deferred is None:
                                    deferred = exc
                                continue
                            retried += 1
                            next_wave.append((specs, next_attempt))
                        by_cell.clear()
                        if next_wave and deferred is None:
                            pool = ctx.Pool(min(procs, len(next_wave)))
                        break
                    specs, attempt = by_cell.pop(reply.cell)
                    if reply.ok:
                        self._absorb_batch(reply, specs, capture, store, results)
                        done += len(specs)
                        self._tick(
                            done=done, total=total, restored=restored,
                            retried=retried, spec=specs[0],
                            source="retry" if attempt else "run",
                        )
                    else:
                        try:
                            next_attempt = self._budget_check(
                                specs[0], attempt,
                                reply.error or "unknown error",
                            )
                        except TrialExecutionError as exc:
                            if deferred is None:
                                deferred = exc
                            continue
                        retried += 1
                        next_wave.append((specs, next_attempt))
                if deferred is not None:
                    raise deferred
                if next_wave:
                    delay = max(
                        self._retry_delay_s(specs[0], attempt)
                        for specs, attempt in next_wave
                    )
                    if delay > 0.0:
                        time.sleep(delay)
                wave = next_wave
        finally:
            pool.terminate()
            pool.join()
        return retried

    def _next_reply(self, it: Iterator[Any]) -> Any:
        if self.timeout_s is None:
            return next(it)
        return it.next(timeout=self.timeout_s)  # type: ignore[attr-defined]
