"""``repro.exec`` — the resilient sharded experiment executor.

The paper's quantitative claims are means over many independent trials per
(N, scheme, drain-model) cell; this package is the machinery that runs
those campaigns at scale without losing work or data:

* :class:`SweepExecutor` — streams (cell × trial) shards through one
  persistent process pool, checkpoints each completed shard, retries
  crashed shards on the same seed, and merges worker-side observability
  into the parent (see :mod:`repro.exec.executor`);
* :class:`CheckpointStore` — the append-only JSONL shard log + manifest a
  killed sweep resumes from, bit-identically
  (:mod:`repro.exec.checkpoint`);
* :func:`config_fingerprint` / :class:`ShardSpec` — shard identity
  (:mod:`repro.exec.shards`).

:func:`repro.simulation.runner.run_trials` is the single-cell facade over
this; :mod:`repro.analysis.experiments` and :mod:`repro.analysis.sweeps`
drive whole figures through it as one sweep.
"""

from repro.exec.checkpoint import CheckpointStore, sweep_fingerprint
from repro.exec.executor import (
    SweepExecutor,
    SweepOutcome,
    SweepProgress,
    progress_printer,
)
from repro.exec.shards import ShardSpec, config_fingerprint, shard_key

__all__ = [
    "CheckpointStore",
    "ShardSpec",
    "SweepExecutor",
    "SweepOutcome",
    "SweepProgress",
    "config_fingerprint",
    "progress_printer",
    "shard_key",
    "sweep_fingerprint",
]
