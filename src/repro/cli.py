"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``cds``       compute a CDS on a random network (or a saved topology) and
              print the gateways + an ASCII map;
``lifespan``  run lifespan trials for one or all schemes;
``figure``    regenerate one of the paper's figures (10, 11, 12, 13);
``example``   print the §3.3 worked example results for every scheme;
``compare``   run every registered CDS algorithm on one generated
              network and print a size/runtime/verified table (the
              centralized-oracle comparison the lifespan docstring
              promises);
``faults``    run the fault-injected distributed protocol and report
              convergence + retransmission overhead;
``profile``   run an instrumented simulation (and optionally the
              distributed protocol engines) and print the observability
              span tree + counters (see :mod:`repro.obs`);
``serve``     run the crash-safe multi-tenant backbone service over a
              seeded update stream, with optional journaling (kill/
              restart recovers bit-identically) and chaos injection;
``serve-bench``  measure sustained service updates/sec + query latency
              percentiles per topology size into BENCH_pipeline.json.

Everything the CLI does goes through the same public API the examples
use; it exists so the reproduction can be driven without writing Python.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.experiments import run_figure10, run_lifespan_figure
from repro.analysis.netview import render_network
from repro.analysis.stats import summarize
from repro.analysis.tables import render_table
from repro.core.cds import compute_cds
from repro.core.priority import PAPER_SERIES_ORDER
from repro.core.registry import EXECUTION_BACKENDS, algorithm_names
from repro.graphs.generators import paper_example_graph, random_connected_network
from repro.io.topology_io import load_network
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_trials

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Power-aware connected dominating sets (ICPP 2001 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("cds", help="compute a CDS and draw the network")
    c.add_argument("--hosts", type=int, default=40)
    c.add_argument("--scheme", default="nd", choices=list(PAPER_SERIES_ORDER))
    c.add_argument("--radius", type=float, default=25.0)
    c.add_argument("--seed", type=int, default=7)
    c.add_argument("--topology", help="load a saved repro-network JSON instead")

    l = sub.add_parser("lifespan", help="run lifespan trials")
    l.add_argument("--hosts", type=int, default=50)
    l.add_argument(
        "--scheme", default="all",
        choices=["all", *PAPER_SERIES_ORDER],
    )
    l.add_argument("--drain", default="fixed")
    l.add_argument("--trials", type=int, default=8)
    l.add_argument("--seed", type=int, default=2001)
    l.add_argument(
        "--processes", type=int, default=None,
        help="pool size for the trial fan-out (default: cpu count)",
    )
    l.add_argument(
        "--resume", default=None, metavar="DIR",
        help="checkpoint directory: completed (scheme, trial) shards are "
        "saved there and a re-run resumes from them bit-identically",
    )
    l.add_argument(
        "--scratch", action="store_true",
        help="recompute the CDS from scratch each interval instead of the "
        "backend's incremental pipeline (results are bit-identical; "
        "rejected for --backend delta, which is inherently incremental)",
    )
    l.add_argument(
        "--shadow-check", action="store_true",
        help="run both pipelines every interval and fail on any divergence",
    )
    l.add_argument(
        "--backend", default="scalar", choices=list(EXECUTION_BACKENDS),
        help="CDS backend: scalar/delta pipelines, the batched numpy "
        "kernels (vectorized), or the streaming CSR engine (sparse) — "
        "bit-identical results; vectorized wins at large N, sparse at "
        "N >> 10k",
    )
    l.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="chunking budget for the vectorized/sparse engines "
        "(bit-identical at any positive value; default: "
        "REPRO_MEMORY_BUDGET_MB or 64)",
    )
    l.add_argument(
        "--algorithm", default="wu_li", choices=algorithm_names(),
        help="CDS construction from the repro.core.registry catalog "
        "(default: the paper's marking + pruning path)",
    )
    l.add_argument(
        "--no-batch-cells", action="store_true",
        help="force per-trial shards even on the batched backends "
        "(default: each scheme's trials run as one stacked engine pass "
        "when the backend is vectorized/sparse; results are identical)",
    )

    f = sub.add_parser("figure", help="regenerate a paper figure")
    f.add_argument("number", type=int, choices=[10, 11, 12, 13])
    f.add_argument("--trials", type=int, default=8)
    f.add_argument(
        "--sweep", default="10,25,50,75,100",
        help="comma-separated N values",
    )
    f.add_argument(
        "--reading", default="per-gateway", choices=["literal", "per-gateway"],
        help="drain-model reading for figures 11-13 (see EXPERIMENTS.md)",
    )
    f.add_argument("--seed", type=int, default=2001)
    f.add_argument(
        "--processes", type=int, default=None,
        help="pool size for the shard fan-out (default: cpu count)",
    )
    f.add_argument(
        "--resume", default=None, metavar="DIR",
        help="checkpoint directory: a killed figure run resumes from its "
        "completed (N, scheme, trial) shards bit-identically",
    )
    f.add_argument(
        "--backend", default="scalar", choices=list(EXECUTION_BACKENDS),
        help="CDS backend per shard (bit-identical results; use vectorized "
        "for N >> 100 sweeps, sparse for N >> 10k)",
    )
    f.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="chunking budget for the vectorized/sparse engines "
        "(bit-identical at any positive value)",
    )
    f.add_argument(
        "--no-batch-cells", action="store_true",
        help="force per-trial shards even on the batched backends "
        "(default: each cell's trials run as one stacked engine pass "
        "when the backend is vectorized/sparse; results are identical)",
    )
    f.add_argument(
        "--density-scaled", action="store_true",
        help="grow the arena side as 100*sqrt(N/100) so node density (and "
        "degree) stays at the paper's level — required reading for N=10k "
        "scenario families (see EXPERIMENTS.md)",
    )
    f.add_argument(
        "--algorithm", default="wu_li", choices=algorithm_names(),
        help="CDS construction for every cell of the figure sweep",
    )

    sub.add_parser("example", help="the paper's §3.3 worked example")

    cp = sub.add_parser(
        "compare",
        help="run every registered CDS algorithm on one network and print "
        "a size/runtime/verified table",
    )
    cp.add_argument("--hosts", type=int, default=40)
    cp.add_argument("--radius", type=float, default=25.0)
    cp.add_argument("--side", type=float, default=100.0)
    cp.add_argument(
        "--scheme", default="el2", choices=list(PAPER_SERIES_ORDER),
        help="priority scheme fed to scheme-aware algorithms",
    )
    cp.add_argument("--seed", type=int, default=2001)
    cp.add_argument(
        "--jitter", type=float, default=0.3,
        help="energy heterogeneity: levels uniform in 100*(1±jitter) — "
        "what separates the energy-aware constructions",
    )

    ft = sub.add_parser(
        "faults", help="fault-injected distributed CDS (loss, crashes, repair)"
    )
    ft.add_argument("--hosts", type=int, default=50)
    ft.add_argument("--scheme", default="nd", choices=list(PAPER_SERIES_ORDER))
    ft.add_argument("--loss", type=float, default=0.2, help="per-frame loss p")
    ft.add_argument(
        "--burst", action="store_true",
        help="Gilbert-Elliott burst loss instead of Bernoulli",
    )
    ft.add_argument("--crashes", type=int, default=1, help="nodes that crash")
    ft.add_argument("--delay", type=float, default=0.0, help="P(frame slips a round)")
    ft.add_argument("--runs", type=int, default=20)
    ft.add_argument("--policy", default="degrade", choices=["strict", "degrade"])
    ft.add_argument("--max-retries", type=int, default=6)
    ft.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault plan (default: derived from --seed)",
    )
    ft.add_argument("--seed", type=int, default=2001, help="topology seed")

    d = sub.add_parser(
        "directed", help="CDS on a heterogeneous-range (unidirectional) network"
    )
    d.add_argument("--hosts", type=int, default=30)
    d.add_argument("--spread", type=float, default=0.4)
    d.add_argument("--scheme", default="nd", choices=list(PAPER_SERIES_ORDER))
    d.add_argument("--seed", type=int, default=7)

    r = sub.add_parser(
        "report", help="collect benchmarks/results into REPORT.md"
    )
    r.add_argument(
        "--results", default="benchmarks/results",
        help="directory the benches wrote to",
    )
    r.add_argument("--output", default=None)

    pr = sub.add_parser(
        "profile",
        help="instrumented run: per-stage span tree + counters (repro.obs)",
    )
    pr.add_argument("--hosts", type=int, default=50)
    pr.add_argument("--scheme", default="el2", choices=list(PAPER_SERIES_ORDER))
    pr.add_argument("--drain", default="fixed")
    pr.add_argument(
        "--intervals", type=int, default=30,
        help="max update intervals to profile (stops early on first death)",
    )
    pr.add_argument(
        "--protocol", action="store_true",
        help="also profile one sync + one async distributed execution",
    )
    pr.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write the JSON-lines span/counter event trace to FILE",
    )
    pr.add_argument(
        "--trials", type=int, default=1,
        help="with >1: profile full lifespan trials through the sharded "
        "executor instead of one in-process interval loop (worker-side "
        "counters are merged back, so the totals match a serial run)",
    )
    pr.add_argument(
        "--processes", type=int, default=None,
        help="pool size for --trials > 1 (default: cpu count)",
    )
    pr.add_argument(
        "--backend", default="scalar", choices=list(EXECUTION_BACKENDS),
        help="CDS backend to profile (bit-identical results)",
    )
    pr.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="chunking budget for the vectorized/sparse engines",
    )
    pr.add_argument(
        "--density-scaled", action="store_true",
        help="grow the arena side as 100*sqrt(N/100) — pair with "
        "--hosts 10000 --backend vectorized to profile the 10k family",
    )
    pr.add_argument(
        "--algorithm", default="wu_li", choices=algorithm_names(),
        help="CDS construction to profile",
    )
    pr.add_argument("--seed", type=int, default=2001)

    sv = sub.add_parser(
        "serve",
        help="run the crash-safe backbone service over a seeded update "
        "stream (multi-tenant; optional journaling + chaos injection)",
    )
    sv.add_argument("--tenants", type=int, default=2)
    sv.add_argument("--hosts", type=int, default=40, help="hosts per tenant")
    sv.add_argument("--updates", type=int, default=100, help="updates per tenant")
    sv.add_argument("--seed", type=int, default=2001)
    sv.add_argument("--scheme", default="el2", choices=list(PAPER_SERIES_ORDER))
    sv.add_argument(
        "--algorithm", default="wu_li", choices=algorithm_names(),
        help="backbone construction; 2-connected algorithms arm the "
        "stronger publish gate (survives any single gateway loss)",
    )
    sv.add_argument("--radius", type=float, default=25.0)
    sv.add_argument("--side", type=float, default=100.0)
    sv.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="journal root: per-tenant WAL + snapshots; a killed serve "
        "re-run with the same arguments recovers and resumes bit-identically",
    )
    sv.add_argument("--snapshot-every", type=int, default=25)
    sv.add_argument(
        "--recompute-timeout", type=float, default=None, metavar="S",
        help="per-recompute budget; overruns degrade to the stale backbone",
    )
    sv.add_argument(
        "--chaos-loss", type=float, default=0.0,
        help="probability an update apply crashes the tenant's task",
    )
    sv.add_argument(
        "--chaos-delay", type=float, default=0.0,
        help="probability a recompute is slowed (drives the timeout path)",
    )
    sv.add_argument(
        "--chaos-seed", type=int, default=None,
        help="fault-plan seed (default: derived from --seed)",
    )
    sv.add_argument(
        "--max-failures", type=int, default=5,
        help="consecutive task failures before a tenant is quarantined",
    )
    sv.add_argument(
        "--deadline", type=float, default=600.0,
        help="overall per-tenant drive deadline in seconds",
    )
    sv.add_argument(
        "--digest", action="store_true",
        help="print one machine-readable 'digest <tenant> <sha256>' line "
        "per tenant (what the CI chaos job compares)",
    )
    sv.add_argument(
        "--backend", default="delta", choices=["delta", "sparse"],
        help="recompute backend for wu_li tenants: the packed-word delta "
        "pipeline (default) or the persistent-CSR incremental sparse "
        "pipeline (bit-identical; for very large tenants)",
    )
    sv.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="chunking budget for the sparse backend's streamed builders "
        "(bit-identical at any positive value; default: "
        "REPRO_MEMORY_BUDGET_MB or 64)",
    )

    sb = sub.add_parser(
        "serve-bench",
        help="service throughput/latency: sustained updates/sec and query "
        "p99 per topology size, merged into BENCH_pipeline.json",
    )
    sb.add_argument(
        "--sizes", default="100,1000",
        help="comma-separated hosts-per-tenant topology sizes",
    )
    sb.add_argument("--updates", type=int, default=150, help="updates per size")
    sb.add_argument("--seed", type=int, default=2001)
    sb.add_argument("--scheme", default="el2", choices=list(PAPER_SERIES_ORDER))
    sb.add_argument(
        "--output", default="benchmarks/results/BENCH_pipeline.json",
        help="bench JSON to merge the service numbers into (under "
        "extra.service); '-' skips writing",
    )

    s = sub.add_parser("sweep", help="lifespan sensitivity to one config knob")
    s.add_argument(
        "knob",
        choices=["radius", "stability", "initial_energy_jitter", "n_hosts"],
    )
    s.add_argument(
        "values", help="comma-separated values, e.g. 15,25,40"
    )
    s.add_argument("--hosts", type=int, default=50)
    s.add_argument("--drain", default="fixed")
    s.add_argument("--trials", type=int, default=6)
    s.add_argument("--seed", type=int, default=2001)
    s.add_argument(
        "--processes", type=int, default=None,
        help="pool size for the shard fan-out (default: cpu count)",
    )
    s.add_argument(
        "--resume", default=None, metavar="DIR",
        help="checkpoint directory: a killed sweep resumes from its "
        "completed (value, scheme, trial) shards bit-identically",
    )
    s.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="chunking budget for the vectorized/sparse engines "
        "(bit-identical at any positive value; default: "
        "REPRO_MEMORY_BUDGET_MB or 64)",
    )
    return p


def _cmd_cds(args) -> int:
    if args.topology:
        net = load_network(args.topology)
    else:
        net = random_connected_network(
            args.hosts, radius=args.radius, rng=args.seed
        )
    energy = np.full(net.n, 100.0)
    result = compute_cds(net, args.scheme, energy=energy, verify=True)
    print(
        f"{net.n} hosts, scheme {args.scheme.upper()}: "
        f"{result.size} gateways {sorted(result.gateways)}"
    )
    print(
        render_network(
            net.positions,
            net.side,
            gateway_mask=result.gateway_mask,
            show_backbone_links=True,
            adjacency=net.adjacency,
        )
    )
    print("legend: # gateway   o host   + backbone link midpoint")
    return 0


def _cmd_lifespan(args) -> int:
    from repro.exec import SweepExecutor, progress_printer

    schemes = list(PAPER_SERIES_ORDER) if args.scheme == "all" else [args.scheme]
    cells = [
        (
            scheme,
            SimulationConfig(
                n_hosts=args.hosts,
                scheme=scheme,
                drain_model=args.drain,
                incremental=False if args.scratch else None,
                shadow_check=args.shadow_check,
                backend=args.backend,
                algorithm=args.algorithm,
                memory_budget_mb=args.memory_budget_mb,
            ),
        )
        for scheme in schemes
    ]
    executor = SweepExecutor(
        processes=args.processes,
        checkpoint=args.resume,
        progress=progress_printer(),
    )
    batch = args.backend in ("vectorized", "sparse") and not args.no_batch_cells
    run = executor.run_batched if batch else executor.run
    outcome = run(cells, args.trials, root_seed=args.seed)
    rows = []
    for scheme in schemes:
        metrics = outcome.cell(scheme)
        life = summarize([m.lifespan for m in metrics])
        size = summarize([m.mean_cds_size for m in metrics])
        rows.append([scheme.upper(), life.mean, life.sem, size.mean])
    print(
        render_table(
            ["scheme", "lifespan", "±sem", "mean |G'|"],
            rows,
            title=(
                f"Lifespan: N={args.hosts}, drain '{args.drain}', "
                f"{args.trials} trials"
            ),
        )
    )
    return 0


def _cmd_figure(args) -> int:
    from repro.exec import progress_printer

    sweep = tuple(int(x) for x in args.sweep.split(","))
    common = dict(
        n_values=sweep,
        trials=args.trials,
        root_seed=args.seed,
        processes=args.processes,
        checkpoint_dir=args.resume,
        progress=progress_printer(),
        backend=args.backend,
        density_scaled=args.density_scaled,
        algorithm=args.algorithm,
        memory_budget_mb=args.memory_budget_mb,
        batch_cells=False if args.no_batch_cells else None,
    )
    if args.number == 10:
        result = run_figure10(**common)
    else:
        literal = {11: "constant", 12: "linear", 13: "quadratic"}
        per_gw = {11: "fixed", 12: "pg-linear", 13: "pg-quadratic"}
        model = (literal if args.reading == "literal" else per_gw)[args.number]
        result = run_lifespan_figure(model, **common)
    print(result.report())
    return 0


def _cmd_example(args) -> int:
    ex = paper_example_graph()
    print("the paper's §3.3 worked example (27 hosts):")
    for scheme in PAPER_SERIES_ORDER:
        r = compute_cds(ex.graph, scheme, energy=ex.energy)
        print(
            f"  {scheme.upper():>3}: {r.size:2d} gateways "
            f"{sorted(ex.labels(r.gateways))}"
        )
    return 0


def _cmd_compare(args) -> int:
    import time as _time

    from repro.core.marking import marking_trivially_empty
    from repro.core.properties import is_cds
    from repro.core.registry import ALGORITHMS

    net = random_connected_network(
        args.hosts, side=args.side, radius=args.radius, rng=args.seed
    )
    rng = np.random.default_rng(args.seed)
    lo = 100.0 * (1.0 - args.jitter)
    hi = 100.0 * (1.0 + args.jitter)
    energy = list(rng.uniform(lo, hi, size=net.n))
    rows = []
    for name in sorted(ALGORITHMS):
        algo = ALGORITHMS[name]
        t0 = _time.perf_counter()
        result = algo.compute(net, args.scheme, energy)
        ms = (_time.perf_counter() - t0) * 1e3
        mask = result.gateway_mask
        valid = (
            is_cds(net.adjacency, mask)
            if mask
            else marking_trivially_empty(net.adjacency)
        )
        flags = []
        if algo.connectivity >= 2:
            flags.append("2-conn")
        if algo.supports_delta:
            flags.append("delta")
        if algo.supports_vectorized:
            flags.append("vec")
        rows.append(
            [
                name,
                result.size,
                f"{ms:.2f}",
                "yes" if valid else "NO",
                ",".join(flags) or "-",
            ]
        )
    print(
        render_table(
            ["algorithm", "|G'|", "runtime ms", "verified", "capabilities"],
            rows,
            title=(
                f"CDS constructions on one network: N={args.hosts}, "
                f"radius {args.radius}, scheme {args.scheme.upper()}, "
                f"energy jitter ±{args.jitter:.0%}, seed {args.seed}"
            ),
        )
    )
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import FaultPlan, GilbertElliott
    from repro.protocol.fault_tolerant import run_fault_tolerant_cds
    from repro.simulation.metrics import FaultSummary

    fault_seed = args.fault_seed if args.fault_seed is not None else args.seed + 7919
    burst = GilbertElliott() if args.burst else None
    outcomes = []
    for i in range(args.runs):
        net = random_connected_network(args.hosts, rng=args.seed + i)
        energy = np.full(net.n, 100.0)
        plan = FaultPlan.random(
            net.n,
            seed=fault_seed + i,
            loss=args.loss,
            burst=burst,
            n_crashes=args.crashes,
            delay=args.delay,
        )
        outcomes.append(
            run_fault_tolerant_cds(
                net,
                args.scheme,
                energy=energy,
                plan=plan,
                policy=args.policy,
                max_retries=args.max_retries,
            )
        )
    s = FaultSummary.from_outcomes(outcomes)
    loss_desc = "GE burst" if args.burst else f"p={args.loss}"
    print(
        render_table(
            ["metric", "value"],
            [
                ["runs", s.runs],
                ["completed", s.completed],
                ["converged", s.converged],
                ["convergence rate", f"{s.convergence_rate:.2f}"],
                ["mean extra rounds", f"{s.mean_extra_rounds:.2f}"],
                ["mean retransmissions", f"{s.mean_retransmissions:.1f}"],
                ["mean dropped frames", f"{s.mean_dropped:.1f}"],
                ["mean coverage gap", f"{s.mean_coverage_gap:.2f}"],
                ["repair rate", f"{s.repair_rate:.2f}"],
                ["mean |G'|", f"{s.mean_cds_size:.1f}"],
            ],
            title=(
                f"Faults: N={args.hosts}, {args.scheme.upper()}, loss {loss_desc}, "
                f"{args.crashes} crash(es), policy {args.policy}, "
                f"fault-seed {fault_seed}"
            ),
        )
    )
    return 0


def _cmd_directed(args) -> int:
    from repro.core.unidirectional import (
        compute_directed_cds,
        is_dominating_and_absorbing,
    )
    from repro.graphs import bitset
    from repro.graphs.digraph import random_strongly_connected_digraph

    view, _, ranges = random_strongly_connected_digraph(
        args.hosts, range_spread=args.spread, rng=args.seed
    )
    arcs = sum(bitset.popcount(m) for m in view.out_adj)
    mutual = sum(bitset.popcount(m) for m in view.bidirectional_core())
    gws = compute_directed_cds(view, args.scheme, use_rule_k=True)
    print(
        f"{args.hosts} hosts, ranges {ranges.min():.1f}..{ranges.max():.1f}: "
        f"{arcs} arcs ({arcs - mutual} one-way)"
    )
    print(
        f"directed backbone ({args.scheme.upper()} + rule-k): "
        f"{len(gws)} gateways {sorted(gws)}"
    )
    print(f"dominating and absorbing: {is_dominating_and_absorbing(view, gws)}")
    return 0


def _cmd_profile(args) -> int:
    from repro import obs
    from repro.simulation.interval import run_interval
    from repro.simulation.lifespan import LifespanSimulator

    from repro.graphs.generators import scaled_side

    cfg = SimulationConfig(
        n_hosts=args.hosts,
        scheme=args.scheme,
        drain_model=args.drain,
        backend=args.backend,
        algorithm=args.algorithm,
        side=scaled_side(args.hosts) if args.density_scaled else 100.0,
        memory_budget_mb=args.memory_budget_mb,
    )
    if args.trials > 1:
        # profile the fan-out itself: trials run through the sharded
        # executor (parallel per --processes) and every worker's counters
        # and spans are merged back into this registry — the totals match
        # a serial run of the same trials.
        with obs.capture() as reg:
            run_trials(
                cfg, args.trials, root_seed=args.seed,
                processes=args.processes,
            )
        print(
            f"profile: N={args.hosts}, scheme {args.scheme.upper()}, "
            f"drain '{args.drain}', {args.trials} trial(s) via the sharded "
            f"executor (processes={args.processes or 'auto'})"
        )
        print()
        print(obs.render_profile(reg))
        if args.trace is not None:
            print(
                "note: --trace covers the in-process interval mode only; "
                "worker-side snapshots do not carry trace events"
            )
        return 0
    with obs.capture(trace=args.trace is not None) as reg:
        sim = LifespanSimulator(cfg, rng=args.seed)
        intervals = 0
        with obs.span("profile"):
            for i in range(args.intervals):
                outcome = run_interval(
                    sim.network,
                    sim.scheme,
                    sim.accountant,
                    sim.mobility,
                    interval_index=i + 1,
                    pipeline=sim.pipeline,
                    algorithm=sim.algorithm,
                )
                intervals += 1
                if outcome.someone_died:
                    break
            if args.protocol:
                from repro.protocol.async_sim import run_async_cds
                from repro.protocol.distributed_cds import distributed_cds

                net = random_connected_network(args.hosts, rng=args.seed)
                energy = np.full(net.n, 100.0)
                with obs.span("sync_protocol"):
                    distributed_cds(net, args.scheme, energy=energy)
                run_async_cds(net, args.scheme, energy=energy, rng=args.seed)

    print(
        f"profile: N={args.hosts}, scheme {args.scheme.upper()}, "
        f"drain '{args.drain}', {intervals} interval(s)"
        + (", protocol engines" if args.protocol else "")
    )
    print()
    print(obs.render_profile(reg))
    if args.trace is not None:
        n_events = obs.write_jsonl_trace(reg, args.trace)
        print(f"\nwrote {n_events} trace events to {args.trace}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import write_report

    out = write_report(args.results, args.output)
    print(f"wrote {out}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.faults.plan import FaultPlan
    from repro.service import ChaosSchedule, RestartPolicy, ServiceConfig
    from repro.service.driver import drive_tenants
    from repro.service.server import BackboneService

    chaos = None
    if args.chaos_loss > 0.0 or args.chaos_delay > 0.0:
        chaos_seed = (
            args.chaos_seed if args.chaos_seed is not None else args.seed + 7919
        )
        chaos = ChaosSchedule(
            FaultPlan(
                seed=chaos_seed, loss=args.chaos_loss, delay=args.chaos_delay
            )
        )
    config = ServiceConfig(
        radius=args.radius,
        side=args.side,
        scheme=args.scheme,
        algorithm=args.algorithm,
        snapshot_every=args.snapshot_every,
        recompute_timeout_s=args.recompute_timeout,
        restart=RestartPolicy(
            max_failures=args.max_failures, seed=args.seed
        ),
        data_dir=args.data_dir,
        backend=args.backend,
        memory_budget_mb=args.memory_budget_mb,
    )

    async def run():
        service = BackboneService(config, chaos=chaos)
        try:
            return await drive_tenants(
                service,
                tenants=args.tenants,
                hosts=args.hosts,
                updates=args.updates,
                seed=args.seed,
                side=args.side,
                deadline_s=args.deadline,
            )
        finally:
            await service.close()

    report = asyncio.run(run())
    rows = [
        [
            name,
            st["seq"],
            st["n_nodes"],
            st["restarts"],
            st["failures"],
            st["stale_publishes"],
            "yes" if st["quarantined"] else "no",
        ]
        for name, st in sorted(report.stats.items())
    ]
    print(
        render_table(
            ["tenant", "seq", "hosts", "restarts", "failures", "stale", "quar"],
            rows,
            title=(
                f"serve: {args.tenants} tenant(s) x {args.updates} updates, "
                f"N={args.hosts}, scheme {args.scheme.upper()}, "
                f"{report.elapsed_s:.2f}s"
                + (
                    f", chaos loss={args.chaos_loss} delay={args.chaos_delay}"
                    if chaos is not None
                    else ""
                )
            ),
        )
    )
    if chaos is not None and chaos.events:
        print(f"chaos injections: {chaos.counts()}")
    if args.digest:
        for name, digest in sorted(report.digests.items()):
            print(f"digest {name} {digest}")
    if not report.ok:
        print(
            "serve: FAILED — "
            + (
                f"quarantined: {sorted(report.quarantined)}"
                if report.quarantined
                else "some tenants short of the target seq"
            )
        )
        return 1
    return 0


def _cmd_serve_bench(args) -> int:
    import asyncio
    import json
    import time as _time
    from pathlib import Path

    from repro.service import ServiceConfig
    from repro.service.driver import bench_service, scaled_side
    from repro.service.server import BackboneService

    sizes = [int(x) for x in args.sizes.split(",")]
    results: dict[str, dict] = {}
    rows = []
    for hosts in sizes:
        side = scaled_side(hosts)
        config = ServiceConfig(
            side=side,
            scheme=args.scheme,
            queue_high_water=max(256, args.updates),
        )

        async def run(hosts=hosts, side=side, config=config):
            service = BackboneService(config)
            try:
                return await bench_service(
                    service,
                    hosts=hosts,
                    updates=args.updates,
                    seed=args.seed,
                    side=side,
                )
            finally:
                await service.close()

        res = asyncio.run(run())
        results[f"n{hosts}"] = res
        rows.append(
            [
                hosts,
                f"{res['updates_per_s']:.1f}",
                f"{res['query_p50_ms']:.3f}" if res["query_p50_ms"] else "-",
                f"{res['query_p99_ms']:.3f}" if res["query_p99_ms"] else "-",
                res["queries"],
                res["final_backbone"],
            ]
        )
    print(
        render_table(
            ["hosts", "updates/s", "q p50 ms", "q p99 ms", "queries", "|G'|"],
            rows,
            title=(
                f"serve-bench: {args.updates} updates/size, scheme "
                f"{args.scheme.upper()}, seed {args.seed} "
                f"(density-constant arena)"
            ),
        )
    )
    if args.output != "-":
        out = Path(args.output)
        if out.exists():
            payload = json.loads(out.read_text(encoding="utf-8"))
        else:
            payload = {"schema": "repro-bench-pipeline/1", "benchmarks": []}
        payload.setdefault("extra", {})["service"] = {
            "created_unix": _time.time(),
            "updates": args.updates,
            "seed": args.seed,
            "scheme": args.scheme,
            "results": results,
        }
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"merged service numbers into {out} (extra.service)")
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweeps import sweep_parameter
    from repro.exec import progress_printer

    caster = int if args.knob == "n_hosts" else float
    values = tuple(caster(x) for x in args.values.split(","))
    base = SimulationConfig(
        n_hosts=args.hosts,
        drain_model=args.drain,
        memory_budget_mb=args.memory_budget_mb,
    )
    result = sweep_parameter(
        args.knob, values, base=base, trials=args.trials,
        root_seed=args.seed, processes=args.processes,
        checkpoint_dir=args.resume, progress=progress_printer(),
    )
    print(result.to_table())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "cds": _cmd_cds,
        "lifespan": _cmd_lifespan,
        "figure": _cmd_figure,
        "example": _cmd_example,
        "compare": _cmd_compare,
        "faults": _cmd_faults,
        "directed": _cmd_directed,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "serve-bench": _cmd_serve_bench,
        "sweep": _cmd_sweep,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
