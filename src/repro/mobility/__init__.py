"""Mobility substrate: host movement models.

* :mod:`repro.mobility.paper_walk` — the paper's §4 model (per-interval,
  probability ``1-c`` of moving ``l ∈ [1..6]`` units in one of 8 compass
  directions),
* :mod:`repro.mobility.random_walk` — continuous-angle random walk,
* :mod:`repro.mobility.random_waypoint` — classic random waypoint,
* :mod:`repro.mobility.manager` — drives a model against an
  :class:`~repro.graphs.adhoc.AdHocNetwork`, with optional connectivity
  enforcement (retry moves until the topology stays connected).
"""

from repro.mobility.base import MobilityModel, StationaryModel
from repro.mobility.paper_walk import PaperWalk
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.manager import MobilityManager
from repro.mobility.churn import ChurnModel

__all__ = [
    "ChurnModel",
    "MobilityModel",
    "StationaryModel",
    "PaperWalk",
    "RandomWalk",
    "RandomWaypoint",
    "MobilityManager",
]
